#include "nvp/core.h"

#include <algorithm>

#include "util/bit_ops.h"
#include "util/logging.h"

namespace inc::nvp
{

namespace
{

} // namespace

const std::array<ExecEngine, kNumExecEngines> &
allExecEngines()
{
    static const std::array<ExecEngine, kNumExecEngines> kEngines = {
        ExecEngine::reference,
        ExecEngine::predecoded,
        ExecEngine::batch,
    };
    return kEngines;
}

std::string
execEngineNames()
{
    std::string out;
    for (ExecEngine e : allExecEngines()) {
        if (!out.empty())
            out += ",";
        out += execEngineName(e);
    }
    return out;
}

std::optional<ExecEngine>
execEngineFromName(const std::string &name)
{
    for (ExecEngine e : allExecEngines()) {
        if (name == execEngineName(e))
            return e;
    }
    return std::nullopt;
}

const char *
execEngineName(ExecEngine engine)
{
    switch (engine) {
    case ExecEngine::reference:
        return "reference";
    case ExecEngine::predecoded:
        return "predecoded";
    case ExecEngine::batch:
        return "batch";
    }
    return "unknown";
}

Core::Core(const isa::Program *program, DataMemory *memory,
           CoreConfig config, util::Rng rng)
    : program_(program), mem_(memory), config_(config), alu_(rng.split())
{
    if (!program_ || !mem_)
        util::panic("Core requires a program and a data memory");
    if (config_.max_lanes < 1 || config_.max_lanes > kMaxLanes)
        util::fatal("CoreConfig::max_lanes must be 1..%d", kMaxLanes);
    lanes_[0].active = true;
    if (config_.engine != ExecEngine::reference)
        decoded_ = isa::PredecodedProgram(*program_);
}

const LaneInfo &
Core::lane(int index) const
{
    if (index < 0 || index >= kMaxLanes)
        util::panic("lane index out of range: %d", index);
    return lanes_[static_cast<size_t>(index)];
}

int
Core::activeLaneCount() const
{
    int count = 0;
    for (const LaneInfo &l : lanes_) {
        if (l.active)
            ++count;
    }
    return count;
}

int
Core::freeLane() const
{
    for (int i = 1; i < config_.max_lanes; ++i) {
        if (!lanes_[static_cast<size_t>(i)].active)
            return i;
    }
    return -1;
}

void
Core::activateLane(int index, const RegSnapshot &regs, int bits,
                   std::uint16_t frame)
{
    if (index < 1 || index >= config_.max_lanes)
        util::panic("activateLane: bad lane %d", index);
    LaneInfo &l = lanes_[static_cast<size_t>(index)];
    if (l.active)
        util::panic("activateLane: lane %d already active", index);
    l.active = true;
    l.bits = bits;
    l.frame = frame;
    ++active_lanes_;
    rf_.load(index, regs);
    mem_->clearLaneVersions(index);
}

void
Core::deactivateLane(int index)
{
    if (index < 1 || index >= kMaxLanes)
        util::panic("deactivateLane: bad lane %d", index);
    LaneInfo &l = lanes_[static_cast<size_t>(index)];
    if (!l.active)
        return;
    l.active = false;
    --active_lanes_;
    mem_->clearLaneVersions(index);
}

void
Core::deactivateAllLanes()
{
    for (int i = 1; i < kMaxLanes; ++i)
        deactivateLane(i);
}

void
Core::setLaneBits(int index, int bits)
{
    if (index < 0 || index >= kMaxLanes)
        util::panic("setLaneBits: bad lane %d", index);
    if (bits < 1 || bits > 8)
        util::panic("setLaneBits: bits out of range %d", bits);
    lanes_[static_cast<size_t>(index)].bits = bits;
}

int
Core::incidentalBitsSum() const
{
    int sum = 0;
    for (int i = 1; i < kMaxLanes; ++i) {
        if (lanes_[static_cast<size_t>(i)].active)
            sum += lanes_[static_cast<size_t>(i)].bits;
    }
    return sum;
}

std::uint64_t
Core::totalInstret() const
{
    std::uint64_t total = 0;
    for (const LaneInfo &l : lanes_)
        total += l.instret;
    return total;
}

int
Core::effectiveBits(int lane) const
{
    if (!ac_en_)
        return 8;
    return lanes_[static_cast<size_t>(lane)].bits;
}

void
Core::executeDataOp(const isa::Instruction &inst, int lane)
{
    const std::uint16_t a = rf_.read(lane, inst.rs1);
    const std::uint16_t b = isa::readsRs2(inst.op)
                                ? rf_.read(lane, inst.rs2)
                                : inst.imm;
    std::uint16_t result = ApproxAlu::compute(inst.op, a, b);
    const int bits = effectiveBits(lane);
    if (config_.approx_alu && bits < 8 && isa::isDataOp(inst.op) &&
        rf_.isAc(inst.rd))
        result = alu_.injectNoise(result, bits);
    rf_.write(lane, inst.rd, result);
}

void
Core::executeLoad(const isa::Instruction &inst, int lane)
{
    const std::uint32_t addr =
        static_cast<std::uint16_t>(rf_.read(lane, inst.rs1) +
                                   inst.imm);
    const bool approx = config_.approx_mem && ac_en_;
    const int bits = effectiveBits(lane);
    std::uint16_t value = 0;
    switch (inst.op) {
      case isa::Op::ld8:
        value = mem_->load8(lane, addr, bits, approx);
        break;
      case isa::Op::ld8s:
        value = static_cast<std::uint16_t>(util::signExtend(
            mem_->load8(lane, addr, bits, approx), 8));
        break;
      case isa::Op::ld16: {
        const std::uint8_t lo = mem_->load8(lane, addr, bits, approx);
        const std::uint8_t hi = mem_->load8(
            lane, static_cast<std::uint16_t>(addr + 1), bits, approx);
        value = static_cast<std::uint16_t>(lo | (hi << 8));
        break;
      }
      default:
        util::panic("executeLoad: not a load");
    }
    rf_.write(lane, inst.rd, value);
}

void
Core::executeStore(const isa::Instruction &inst, int lane,
                   StepResult &result)
{
    const std::uint32_t addr =
        static_cast<std::uint16_t>(rf_.read(lane, inst.rs1) +
                                   inst.imm);
    const bool approx = config_.approx_mem && ac_en_;
    const int bits = effectiveBits(lane);
    const std::uint16_t value = rf_.read(lane, inst.rs2);
    mem_->store8(lane, addr, static_cast<std::uint8_t>(value), bits,
                 approx);
    if (inst.op == isa::Op::st16) {
        mem_->store8(lane, static_cast<std::uint16_t>(addr + 1),
                     static_cast<std::uint8_t>(value >> 8), bits, approx);
    }
    if (lane == 0)
        result.store_policy = mem_->policyAt(addr);
}

StepResult
Core::stepReference()
{
    StepResult result;
    INC_OBS_COUNT(obs_, steps);
    if (halted_) {
        result.op = isa::Op::halt;
        result.halted = true;
        result.lanes_committed = 0;
        INC_OBS_COUNT(obs_, instr_system);
        return result;
    }

    const isa::Instruction &inst = program_->at(pc_);
    result.op = inst.op;
    result.cycles = isa::opCycles(inst.op);
    result.lanes_committed = activeLaneCount();

    std::uint16_t next_pc = static_cast<std::uint16_t>(pc_ + 1);
    const isa::OpClass cls = isa::opClass(inst.op);

    switch (cls) {
      case isa::OpClass::system:
        INC_OBS_COUNT(obs_, instr_system);
        if (inst.op == isa::Op::halt) {
            halted_ = true;
            result.halted = true;
        }
        break;

      case isa::OpClass::alu:
      case isa::OpClass::mul:
      case isa::OpClass::div:
        INC_OBS_COUNT(obs_, instr_alu);
        for (int lane = 0; lane < kMaxLanes; ++lane) {
            if (lanes_[static_cast<size_t>(lane)].active)
                executeDataOp(inst, lane);
        }
        break;

      case isa::OpClass::load:
        INC_OBS_COUNT(obs_, instr_load);
        for (int lane = 0; lane < kMaxLanes; ++lane) {
            if (lanes_[static_cast<size_t>(lane)].active)
                executeLoad(inst, lane);
        }
        break;

      case isa::OpClass::store:
        INC_OBS_COUNT(obs_, instr_store);
        for (int lane = 0; lane < kMaxLanes; ++lane) {
            if (lanes_[static_cast<size_t>(lane)].active)
                executeStore(inst, lane, result);
        }
        break;

      case isa::OpClass::branch: {
        INC_OBS_COUNT(obs_, instr_branch);
        const std::uint16_t a = rf_.read(0, inst.rs1);
        const std::uint16_t b = rf_.read(0, inst.rs2);
        const auto sa = static_cast<std::int16_t>(a);
        const auto sb = static_cast<std::int16_t>(b);
        bool taken = false;
        switch (inst.op) {
          case isa::Op::beq: taken = a == b; break;
          case isa::Op::bne: taken = a != b; break;
          case isa::Op::blt: taken = sa < sb; break;
          case isa::Op::bge: taken = sa >= sb; break;
          case isa::Op::bltu: taken = a < b; break;
          case isa::Op::bgeu: taken = a >= b; break;
          default: util::panic("unhandled branch");
        }
        if (taken) {
            INC_OBS_COUNT(obs_, branch_taken);
            next_pc = inst.imm;
            ++result.cycles; // taken-branch bubble
        }
        break;
      }

      case isa::OpClass::jump:
        INC_OBS_COUNT(obs_, instr_jump);
        if (inst.op == isa::Op::jmp) {
            next_pc = inst.imm;
        } else if (inst.op == isa::Op::jal) {
            for (int lane = 0; lane < kMaxLanes; ++lane) {
                if (lanes_[static_cast<size_t>(lane)].active)
                    rf_.write(lane, inst.rd,
                              static_cast<std::uint16_t>(pc_ + 1));
            }
            next_pc = inst.imm;
        } else { // jr
            next_pc = rf_.read(0, inst.rs1);
        }
        break;

      case isa::OpClass::incidental:
        INC_OBS_COUNT(obs_, instr_incidental);
        switch (inst.op) {
          case isa::Op::markrp:
            has_resume_ = true;
            resume_pc_ = pc_;
            frame_reg_ = inst.rs1;
            match_mask_ = inst.imm;
            result.mark_resume = true;
            result.resume_frame_value = rf_.read(0, inst.rs1);
            break;
          case isa::Op::acset:
            rf_.orAcMask(inst.imm);
            break;
          case isa::Op::acclr:
            rf_.clearAcMask(inst.imm);
            break;
          case isa::Op::acen:
            ac_en_ = inst.imm != 0;
            break;
          case isa::Op::assem: {
            const std::uint32_t base = rf_.read(0, inst.rs1);
            const std::uint32_t len = rf_.read(0, inst.rs2);
            result.assemble_bytes = mem_->assemble(
                base, len, static_cast<isa::AssembleMode>(inst.imm));
            result.cycles += static_cast<int>(2 * result.assemble_bytes);
            INC_OBS_COUNT(obs_, assembles);
            INC_OBS_ADD(obs_, assemble_bytes, result.assemble_bytes);
            break;
          }
          default:
            util::panic("unhandled incidental op");
        }
        break;
    }

    for (LaneInfo &l : lanes_) {
        if (l.active)
            ++l.instret;
    }
    INC_OBS_ADD(obs_, lane_commits, result.lanes_committed);
    pc_ = next_pc;
    return result;
}

// ---- predecoded fast path --------------------------------------------------
//
// Mirrors stepReference() exactly — same semantics, same RNG draw
// conditions, same observability increments, same memory-model calls in
// the same order — but fetches from the dense DecodedInst array and uses
// the unchecked register-file accessors. Any divergence is a bug caught
// by tests/test_engine_diff.cc and `nvpsim fuzz --engine-diff`.

template <typename ComputeFn>
inline void
Core::dataOpLaneFast(const isa::DecodedInst &d, int lane,
                     ComputeFn compute)
{
    const std::uint16_t a = rf_.readFast(lane, d.rs1);
    const std::uint16_t b =
        d.b_is_imm ? d.imm : rf_.readFast(lane, d.rs2);
    std::uint16_t result = compute(a, b);
    // Identical noise predicate to the reference engine: the RNG must be
    // drawn under exactly the same conditions for bit-identity.
    if (d.noise_candidate && config_.approx_alu && rf_.isAcFast(d.rd)) {
        const int bits = effectiveBits(lane);
        if (bits < 8)
            result = alu_.injectNoise(result, bits);
    }
    rf_.writeFast(lane, d.rd, result);
}

template <typename ComputeFn>
inline void
Core::dataOpFast(const isa::DecodedInst &d, ComputeFn compute)
{
    INC_OBS_COUNT(obs_, instr_alu);
    if (active_lanes_ == 1) {
        dataOpLaneFast(d, 0, compute); // lane 0 is always active
    } else {
        for (int lane = 0; lane < kMaxLanes; ++lane) {
            if (lanes_[static_cast<size_t>(lane)].active)
                dataOpLaneFast(d, lane, compute);
        }
    }
}

template <typename LoadFn>
inline void
Core::loadLaneFast(const isa::DecodedInst &d, int lane, LoadFn load)
{
    const std::uint32_t addr = static_cast<std::uint16_t>(
        rf_.readFast(lane, d.rs1) + d.imm);
    const bool approx = config_.approx_mem && ac_en_;
    const int bits = effectiveBits(lane);
    rf_.writeFast(lane, d.rd, load(lane, addr, bits, approx));
}

template <typename LoadFn>
inline void
Core::loadFast(const isa::DecodedInst &d, LoadFn load)
{
    INC_OBS_COUNT(obs_, instr_load);
    if (active_lanes_ == 1) {
        loadLaneFast(d, 0, load);
    } else {
        for (int lane = 0; lane < kMaxLanes; ++lane) {
            if (lanes_[static_cast<size_t>(lane)].active)
                loadLaneFast(d, lane, load);
        }
    }
}

template <bool kWide>
inline void
Core::storeLaneFast(const isa::DecodedInst &d, int lane,
                    StepResult &result)
{
    const std::uint32_t addr = static_cast<std::uint16_t>(
        rf_.readFast(lane, d.rs1) + d.imm);
    const bool approx = config_.approx_mem && ac_en_;
    const int bits = effectiveBits(lane);
    const std::uint16_t value = rf_.readFast(lane, d.rs2);
    mem_->store8(lane, addr, static_cast<std::uint8_t>(value), bits,
                 approx);
    if constexpr (kWide) {
        mem_->store8(lane, static_cast<std::uint16_t>(addr + 1),
                     static_cast<std::uint8_t>(value >> 8), bits,
                     approx);
    }
    if (lane == 0)
        result.store_policy = mem_->policyAt(addr);
}

template <bool kWide>
inline void
Core::storeFast(const isa::DecodedInst &d, StepResult &result)
{
    INC_OBS_COUNT(obs_, instr_store);
    if (active_lanes_ == 1) {
        storeLaneFast<kWide>(d, 0, result);
    } else {
        for (int lane = 0; lane < kMaxLanes; ++lane) {
            if (lanes_[static_cast<size_t>(lane)].active)
                storeLaneFast<kWide>(d, lane, result);
        }
    }
}

template <typename CmpFn>
inline void
Core::branchFast(const isa::DecodedInst &d, StepResult &result,
                 std::uint16_t &next_pc, CmpFn cmp)
{
    INC_OBS_COUNT(obs_, instr_branch);
    const std::uint16_t a = rf_.readFast(0, d.rs1);
    const std::uint16_t b = rf_.readFast(0, d.rs2);
    if (cmp(a, b)) {
        INC_OBS_COUNT(obs_, branch_taken);
        next_pc = d.imm;
        ++result.cycles; // taken-branch bubble
    }
}

StepResult
Core::stepPredecoded()
{
    StepResult result;
    INC_OBS_COUNT(obs_, steps);
    if (halted_) {
        result.op = isa::Op::halt;
        result.halted = true;
        result.lanes_committed = 0;
        INC_OBS_COUNT(obs_, instr_system);
        return result;
    }

    const isa::DecodedInst &d = decoded_.at(pc_);
    result.op = d.op;
    result.cycles = d.cycles;
    result.lanes_committed = active_lanes_;

    std::uint16_t next_pc = static_cast<std::uint16_t>(pc_ + 1);

    // One jump table on the predecoded opcode: each case inlines its
    // compute/comparator/access into the shared lane-stepping bodies,
    // so the dominant data/load/store steps pay a single indirect
    // branch instead of class dispatch plus a second per-op switch.
    // Semantics per op are an exact twin of ApproxAlu::compute and the
    // stepReference() class handlers — the differential tier
    // (test_engine_diff, fuzz --engine-diff) compares both engines
    // bit-for-bit.
    using U = std::uint16_t;
    using S = std::int16_t;
    switch (d.op) {
      case isa::Op::nop:
        INC_OBS_COUNT(obs_, instr_system);
        break;
      case isa::Op::halt:
        INC_OBS_COUNT(obs_, instr_system);
        halted_ = true;
        result.halted = true;
        break;

      case isa::Op::ldi:
        dataOpFast(d, [](U, U b) { return b; });
        break;
      case isa::Op::mov:
        dataOpFast(d, [](U a, U) { return a; });
        break;
      case isa::Op::add:
      case isa::Op::addi:
        dataOpFast(d, [](U a, U b) { return static_cast<U>(a + b); });
        break;
      case isa::Op::sub:
        dataOpFast(d, [](U a, U b) { return static_cast<U>(a - b); });
        break;
      case isa::Op::mul:
        dataOpFast(d, [](U a, U b) {
            return static_cast<U>(static_cast<std::uint32_t>(a) * b);
        });
        break;
      case isa::Op::divu:
        dataOpFast(d, [](U a, U b) {
            return b == 0 ? static_cast<U>(0xFFFF)
                          : static_cast<U>(a / b);
        });
        break;
      case isa::Op::remu:
        dataOpFast(d, [](U a, U b) {
            return b == 0 ? a : static_cast<U>(a % b);
        });
        break;
      case isa::Op::and_:
      case isa::Op::andi:
        dataOpFast(d, [](U a, U b) { return static_cast<U>(a & b); });
        break;
      case isa::Op::or_:
      case isa::Op::ori:
        dataOpFast(d, [](U a, U b) { return static_cast<U>(a | b); });
        break;
      case isa::Op::xor_:
      case isa::Op::xori:
        dataOpFast(d, [](U a, U b) { return static_cast<U>(a ^ b); });
        break;
      case isa::Op::sll:
      case isa::Op::slli:
        dataOpFast(d, [](U a, U b) {
            return static_cast<U>(a << (b & 15));
        });
        break;
      case isa::Op::srl:
      case isa::Op::srli:
        dataOpFast(d, [](U a, U b) {
            return static_cast<U>(a >> (b & 15));
        });
        break;
      case isa::Op::sra:
      case isa::Op::srai:
        dataOpFast(d, [](U a, U b) {
            return static_cast<U>(static_cast<S>(a) >> (b & 15));
        });
        break;
      case isa::Op::slt:
      case isa::Op::slti:
        dataOpFast(d, [](U a, U b) {
            return static_cast<U>(
                static_cast<S>(a) < static_cast<S>(b) ? 1 : 0);
        });
        break;
      case isa::Op::sltu:
      case isa::Op::sltiu:
        dataOpFast(d, [](U a, U b) {
            return static_cast<U>(a < b ? 1 : 0);
        });
        break;
      case isa::Op::min:
        dataOpFast(d, [](U a, U b) {
            return static_cast<U>(
                std::min(static_cast<S>(a), static_cast<S>(b)));
        });
        break;
      case isa::Op::max:
        dataOpFast(d, [](U a, U b) {
            return static_cast<U>(
                std::max(static_cast<S>(a), static_cast<S>(b)));
        });
        break;
      case isa::Op::minu:
        dataOpFast(d, [](U a, U b) { return std::min(a, b); });
        break;
      case isa::Op::maxu:
        dataOpFast(d, [](U a, U b) { return std::max(a, b); });
        break;

      case isa::Op::ld8:
        loadFast(d, [this](int lane, std::uint32_t addr, int bits,
                           bool approx) -> U {
            return mem_->load8(lane, addr, bits, approx);
        });
        break;
      case isa::Op::ld8s:
        loadFast(d, [this](int lane, std::uint32_t addr, int bits,
                           bool approx) -> U {
            return static_cast<U>(util::signExtend(
                mem_->load8(lane, addr, bits, approx), 8));
        });
        break;
      case isa::Op::ld16:
        loadFast(d, [this](int lane, std::uint32_t addr, int bits,
                           bool approx) -> U {
            const std::uint8_t lo =
                mem_->load8(lane, addr, bits, approx);
            const std::uint8_t hi = mem_->load8(
                lane, static_cast<std::uint16_t>(addr + 1), bits,
                approx);
            return static_cast<U>(lo | (hi << 8));
        });
        break;

      case isa::Op::st8:
        storeFast<false>(d, result);
        break;
      case isa::Op::st16:
        storeFast<true>(d, result);
        break;

      case isa::Op::beq:
        branchFast(d, result, next_pc,
                   [](U a, U b) { return a == b; });
        break;
      case isa::Op::bne:
        branchFast(d, result, next_pc,
                   [](U a, U b) { return a != b; });
        break;
      case isa::Op::blt:
        branchFast(d, result, next_pc, [](U a, U b) {
            return static_cast<S>(a) < static_cast<S>(b);
        });
        break;
      case isa::Op::bge:
        branchFast(d, result, next_pc, [](U a, U b) {
            return static_cast<S>(a) >= static_cast<S>(b);
        });
        break;
      case isa::Op::bltu:
        branchFast(d, result, next_pc,
                   [](U a, U b) { return a < b; });
        break;
      case isa::Op::bgeu:
        branchFast(d, result, next_pc,
                   [](U a, U b) { return a >= b; });
        break;

      case isa::Op::jmp:
        INC_OBS_COUNT(obs_, instr_jump);
        next_pc = d.imm;
        break;
      case isa::Op::jal:
        INC_OBS_COUNT(obs_, instr_jump);
        for (int lane = 0; lane < kMaxLanes; ++lane) {
            if (lanes_[static_cast<size_t>(lane)].active)
                rf_.writeFast(lane, d.rd,
                              static_cast<std::uint16_t>(pc_ + 1));
        }
        next_pc = d.imm;
        break;
      case isa::Op::jr:
        INC_OBS_COUNT(obs_, instr_jump);
        next_pc = rf_.readFast(0, d.rs1);
        break;

      case isa::Op::markrp:
        INC_OBS_COUNT(obs_, instr_incidental);
        has_resume_ = true;
        resume_pc_ = pc_;
        frame_reg_ = d.rs1;
        match_mask_ = d.imm;
        result.mark_resume = true;
        result.resume_frame_value = rf_.readFast(0, d.rs1);
        break;
      case isa::Op::acset:
        INC_OBS_COUNT(obs_, instr_incidental);
        rf_.orAcMask(d.imm);
        break;
      case isa::Op::acclr:
        INC_OBS_COUNT(obs_, instr_incidental);
        rf_.clearAcMask(d.imm);
        break;
      case isa::Op::acen:
        INC_OBS_COUNT(obs_, instr_incidental);
        ac_en_ = d.imm != 0;
        break;
      case isa::Op::assem: {
        INC_OBS_COUNT(obs_, instr_incidental);
        const std::uint32_t base = rf_.readFast(0, d.rs1);
        const std::uint32_t len = rf_.readFast(0, d.rs2);
        result.assemble_bytes = mem_->assemble(
            base, len, static_cast<isa::AssembleMode>(d.imm));
        result.cycles += static_cast<int>(2 * result.assemble_bytes);
        INC_OBS_COUNT(obs_, assembles);
        INC_OBS_ADD(obs_, assemble_bytes, result.assemble_bytes);
        break;
      }

      case isa::Op::num_ops:
        util::panic("stepPredecoded: invalid opcode");
    }

    if (active_lanes_ == 1) {
        ++lanes_[0].instret;
    } else {
        for (LaneInfo &l : lanes_) {
            if (l.active)
                ++l.instret;
        }
    }
    INC_OBS_ADD(obs_, lane_commits, result.lanes_committed);
    pc_ = next_pc;
    return result;
}

} // namespace inc::nvp
