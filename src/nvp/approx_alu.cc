#include "nvp/approx_alu.h"

#include <algorithm>

#include "util/bit_ops.h"
#include "util/logging.h"

namespace inc::nvp
{

ApproxAlu::ApproxAlu(util::Rng rng) : rng_(rng) {}

std::uint16_t
ApproxAlu::compute(isa::Op op, std::uint16_t a, std::uint16_t b)
{
    using isa::Op;
    const auto sa = static_cast<std::int16_t>(a);
    const auto sb = static_cast<std::int16_t>(b);
    switch (op) {
      case Op::mov:
        return a;
      case Op::ldi:
        return b;
      case Op::add:
      case Op::addi:
        return static_cast<std::uint16_t>(a + b);
      case Op::sub:
        return static_cast<std::uint16_t>(a - b);
      case Op::mul:
        return static_cast<std::uint16_t>(
            static_cast<std::uint32_t>(a) * b);
      case Op::divu:
        return b == 0 ? 0xFFFF : static_cast<std::uint16_t>(a / b);
      case Op::remu:
        return b == 0 ? a : static_cast<std::uint16_t>(a % b);
      case Op::and_:
      case Op::andi:
        return static_cast<std::uint16_t>(a & b);
      case Op::or_:
      case Op::ori:
        return static_cast<std::uint16_t>(a | b);
      case Op::xor_:
      case Op::xori:
        return static_cast<std::uint16_t>(a ^ b);
      case Op::sll:
      case Op::slli:
        return static_cast<std::uint16_t>(a << (b & 15));
      case Op::srl:
      case Op::srli:
        return static_cast<std::uint16_t>(a >> (b & 15));
      case Op::sra:
      case Op::srai:
        return static_cast<std::uint16_t>(sa >> (b & 15));
      case Op::slt:
      case Op::slti:
        return sa < sb ? 1 : 0;
      case Op::sltu:
      case Op::sltiu:
        return a < b ? 1 : 0;
      case Op::min:
        return static_cast<std::uint16_t>(std::min(sa, sb));
      case Op::max:
        return static_cast<std::uint16_t>(std::max(sa, sb));
      case Op::minu:
        return std::min(a, b);
      case Op::maxu:
        return std::max(a, b);
      default:
        util::panic("ApproxAlu::compute: non-data op '%s'",
                    isa::opName(op).c_str());
    }
}

std::uint16_t
ApproxAlu::injectNoise(std::uint16_t value, int bits)
{
    if (bits >= 8)
        return value;
    if (bits < 1)
        util::panic("injectNoise: bits out of range %d", bits);
    const auto mask = static_cast<std::uint16_t>(
        util::lowMask(static_cast<unsigned>(8 - bits)));
    const auto noise = static_cast<std::uint16_t>(rng_.next());
    return static_cast<std::uint16_t>((value & ~mask) | (noise & mask));
}

} // namespace inc::nvp
