/**
 * @file
 * The NVP's nonvolatile data memory (paper Sec. 4, "Data memory").
 *
 * Three layers of behaviour on top of a flat 64 KiB byte array:
 *
 *  - AC regions: address ranges declared approximable by the
 *    incidental(src, minbits, maxbits, policy) pragma. Loads/stores of
 *    AC data are truncated to the active bitwidth when memory
 *    approximation is enabled, and the region's retention-shaping policy
 *    determines both the (discounted) write energy and which low-order
 *    bits settle randomly across a power outage (applyOutageDecay).
 *
 *  - Versioned regions: ranges extended from 8 to 32 bits (4 versions)
 *    with 3 bits of precision metadata per version, supporting
 *    incidental SIMD lanes and recompute-and-combine. Lane 0 reads and
 *    writes the main version; lanes 1-3 read their own version
 *    (falling back to main when never written) and write through with
 *    higher-bits arbitration: a write updates the main version iff its
 *    precision is >= the main version's current precision tag.
 *
 *  - The assemble instruction's merge FSM: combine versions into main
 *    over a range with one of the Table 1 modes.
 */

#ifndef INC_NVP_MEMORY_H
#define INC_NVP_MEMORY_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "nvm/nvm_array.h"
#include "nvm/retention_policy.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace inc::arena
{
class PersistenceBackend;
}

namespace inc::nvp
{

/** An approximable memory range and its backup retention policy. */
struct AcRegion
{
    std::uint32_t start = 0;
    std::uint32_t length = 0;
    nvm::RetentionPolicy policy = nvm::RetentionPolicy::full;

    bool contains(std::uint32_t addr) const
    {
        return addr >= start && addr < start + length;
    }
};

/** The NVP data memory. */
class DataMemory
{
  public:
    /** Number of SIMD versions per word (paper: 8 -> 32 bits). */
    static constexpr int kMaxVersions = 4;

    /**
     * @param backend  where the byte arrays live. nullptr (the default)
     *     keeps them on the heap, bit-compatible with the pre-arena
     *     behaviour; an arena::PersistenceBackend places them in named
     *     blocks ("<prefix>.main", "<prefix>.prec", "<prefix>.verN")
     *     whose contents survive process death. Not owned; must outlive
     *     this object.
     */
    explicit DataMemory(util::Rng rng,
                        std::size_t size = isa::kDataMemBytes,
                        arena::PersistenceBackend *backend = nullptr,
                        std::string name_prefix = "mem");

    // Storage is pointer-based (heap vectors or backend blocks), so
    // copying would alias or dangle; moving keeps the underlying
    // buffers and stays valid.
    DataMemory(const DataMemory &) = delete;
    DataMemory &operator=(const DataMemory &) = delete;
    DataMemory(DataMemory &&) = default;
    DataMemory &operator=(DataMemory &&) = default;

    std::size_t size() const { return size_; }

    // ---- configuration -------------------------------------------------

    /** Declare an approximable region with a retention policy. */
    void addAcRegion(const AcRegion &region);

    /**
     * Declare a versioned (SIMD / RAC) region.
     *
     * @param write_through  when true (output regions), lane writes pass
     *     into the main version under higher-bits arbitration; when
     *     false (lane-private scratch), lane writes stay in their own
     *     version and never disturb lane 0's data.
     */
    void addVersionedRegion(std::uint32_t start, std::uint32_t length,
                            bool write_through = true);

    /** Remove all region declarations (memory contents kept). */
    void clearRegions();

    /** Policy of the AC region containing @p addr (full if none). */
    nvm::RetentionPolicy policyAt(std::uint32_t addr) const;

    /** True if @p addr lies in a declared AC region. */
    bool isAc(std::uint32_t addr) const;

    // ---- lane accesses -------------------------------------------------

    /**
     * Load one byte for @p lane. @p bits is the lane's active bitwidth;
     * when @p approx_mem is true and the address is in an AC region the
     * low (8-bits) bits are truncated (paper Sec. 8.1 memory model).
     */
    std::uint8_t load8(int lane, std::uint32_t addr, int bits,
                       bool approx_mem);

    /**
     * Store one byte from @p lane with precision tag @p bits. AC-region
     * truncation as for load8; versioned regions apply higher-bits
     * write-through arbitration into the main version.
     */
    void store8(int lane, std::uint32_t addr, std::uint8_t value, int bits,
                bool approx_mem);

    // ---- versioned-region management ------------------------------------

    /**
     * Reset versioned bytes in [start, start+len): main value and all
     * versions zeroed, precision tags cleared. Called when an output ring
     * slot is first claimed by a new frame.
     */
    void resetVersionedRange(std::uint32_t start, std::uint32_t len);

    /** Forget lane @p lane's private version data everywhere (retire). */
    void clearLaneVersions(int lane);

    /**
     * Merge versions 1..3 into main over [start, start+len) with
     * @p mode; clears merged version slots. Returns bytes processed by
     * the FSM (for cycle/energy accounting).
     */
    std::uint32_t assemble(std::uint32_t start, std::uint32_t len,
                           isa::AssembleMode mode);

    /** Precision tag of the main version at @p addr (0 outside
     *  versioned regions or when never written). */
    int precisionAt(std::uint32_t addr) const;

    // ---- power-failure behaviour ----------------------------------------

    /**
     * Apply retention decay across an outage of @p duration_tenth_ms:
     * every AC-region byte's expired low bits settle randomly. Violation
     * events are counted once per (region policy, bit index) and flips
     * per byte-bit (paper Fig. 22).
     */
    void applyOutageDecay(double duration_tenth_ms);

    const nvm::RetentionFailureCounts &failures() const
    {
        return failures_;
    }
    void resetFailures() { failures_.reset(); }

    // ---- host (sensor DMA / harness) access ------------------------------

    std::uint8_t hostRead8(std::uint32_t addr) const;
    void hostWrite8(std::uint32_t addr, std::uint8_t value);
    void hostWriteBlock(std::uint32_t addr,
                        const std::vector<std::uint8_t> &data);

    /** Snapshot main-version bytes of [start, start+len). */
    std::vector<std::uint8_t> snapshot(std::uint32_t start,
                                       std::uint32_t len) const;

    /** Per-byte coverage: fraction of [start,start+len) with prec > 0. */
    double coverage(std::uint32_t start, std::uint32_t len) const;

    /** Per-byte written mask (1 where precision > 0). */
    std::vector<std::uint8_t> precisionMask(std::uint32_t start,
                                            std::uint32_t len) const;

    /** Attach (or detach with nullptr) hot-path event counters; purely
     *  observational. */
    void setObsCounters(obs::MemCounters *counters) { obs_ = counters; }

    // ---- dirty-word tracking (Freezer backup strategy) -------------------

    /** Dirty-tracking granularity: one bit per 4-byte word. */
    static constexpr std::uint32_t kDirtyWordBytes = 4;

    /**
     * Start marking words whose main-version bytes are written. Off by
     * default — the bitmap is empty and every write path pays only one
     * predictable branch. Tracking covers ALL main_ mutations (lane
     * stores, write-through commits, assemble merges, versioned resets,
     * outage decay, host/DMA writes), so a consumer that copies exactly
     * the marked words after each clearDirty() interval can never miss
     * a changed byte (the property tests/test_dirty_bitmap.cc proves).
     * Over-reporting is allowed: a bit covers its whole 4-byte word and
     * is set even when a write stores the value already present.
     */
    void enableDirtyTracking();
    bool dirtyTrackingEnabled() const { return !dirty_.empty(); }

    /** Clear every dirty bit (start of a new tracking interval). */
    void clearDirty();

    /** Number of words currently marked dirty. */
    std::uint64_t dirtyWordCount() const;

    /** Raw bitmap, bit w = word [w*4, w*4+4) dirty. Empty when tracking
     *  is disabled. */
    const std::vector<std::uint64_t> &dirtyBits() const { return dirty_; }

    /** Main-version byte array (strategies copy checkpoint images from
     *  here). Valid for size() bytes. */
    const std::uint8_t *mainData() const { return main_; }

  private:
    struct VersionedRegion
    {
        std::uint32_t start = 0;
        std::uint32_t length = 0;
        bool write_through = true;
        // Lane-private values and precision tags for lanes 1..3 plus the
        // main version's precision tag. written bit i => lane i has a
        // private copy.
        struct Cell
        {
            std::array<std::uint8_t, kMaxVersions> value{};
            std::array<std::uint8_t, kMaxVersions> prec{};
            std::uint8_t written = 0;
            // Per-lane contribution already folded into main by a
            // sum-mode assemble. Re-merging replaces the contribution
            // instead of re-adding it, so recompute passes that
            // re-produce an identical frame are idempotent.
            std::array<std::uint8_t, kMaxVersions> merged_value{};
            std::uint8_t merged = 0;
        };
        // Cell is all-bytes, zero-initialized == default-constructed, so
        // a zero-filled backend block *is* a fresh cell array and a
        // persisted one resumes exactly where the killed process left it.
        Cell *cells = nullptr;
        std::vector<Cell> own_cells; ///< heap-mode storage
        std::string block_name;      ///< backend-mode block
    };

    VersionedRegion *findVersioned(std::uint32_t addr);
    const VersionedRegion *findVersioned(std::uint32_t addr) const;
    void checkAddr(std::uint32_t addr) const;

    void markDirty(std::uint32_t addr)
    {
        if (dirty_.empty())
            return;
        const std::uint32_t w = addr / kDirtyWordBytes;
        dirty_[w >> 6] |= std::uint64_t{1} << (w & 63);
    }

    void markDirtyRange(std::uint32_t addr, std::size_t len)
    {
        if (dirty_.empty() || len == 0)
            return;
        const std::uint32_t first = addr / kDirtyWordBytes;
        const std::uint32_t last =
            (addr + static_cast<std::uint32_t>(len) - 1) / kDirtyWordBytes;
        for (std::uint32_t w = first; w <= last; ++w)
            dirty_[w >> 6] |= std::uint64_t{1} << (w & 63);
    }

    std::size_t size_ = 0;
    std::uint8_t *main_ = nullptr;      ///< size_ bytes
    std::uint8_t *main_prec_ = nullptr; ///< size_ precision tags
    std::vector<std::uint8_t> own_main_; ///< heap-mode storage
    std::vector<std::uint8_t> own_prec_;
    arena::PersistenceBackend *backend_ = nullptr;
    std::string name_prefix_;
    std::vector<AcRegion> ac_regions_;
    std::vector<VersionedRegion> versioned_;
    util::Rng rng_;
    nvm::RetentionFailureCounts failures_;
    obs::MemCounters *obs_ = nullptr;
    /** One bit per 4-byte main_ word; empty = tracking disabled. Heap
     *  only (never persisted): a warm restart re-syncs conservatively
     *  by treating every word as dirty. */
    std::vector<std::uint64_t> dirty_;
};

} // namespace inc::nvp

#endif // INC_NVP_MEMORY_H
