#include "nvp/register_file.h"

#include "util/logging.h"

namespace inc::nvp
{

RegisterFile::RegisterFile()
{
    for (auto &version : values_)
        version.fill(0);
}

void
RegisterFile::checkVersion(int version) const
{
    if (version < 0 || version >= kMaxLanes)
        util::panic("register version out of range: %d", version);
}

void
RegisterFile::checkReg(int reg) const
{
    if (reg < 0 || reg >= isa::kNumRegs)
        util::panic("register index out of range: %d", reg);
}

std::uint16_t
RegisterFile::read(int version, int reg) const
{
    checkVersion(version);
    checkReg(reg);
    if (reg == 0)
        return 0;
    return values_[static_cast<size_t>(version)]
                  [static_cast<size_t>(reg)];
}

void
RegisterFile::write(int version, int reg, std::uint16_t value)
{
    checkVersion(version);
    checkReg(reg);
    if (reg == 0)
        return;
    values_[static_cast<size_t>(version)][static_cast<size_t>(reg)] =
        value;
}

RegSnapshot
RegisterFile::snapshot(int version) const
{
    checkVersion(version);
    return values_[static_cast<size_t>(version)];
}

void
RegisterFile::load(int version, const RegSnapshot &regs)
{
    checkVersion(version);
    values_[static_cast<size_t>(version)] = regs;
    values_[static_cast<size_t>(version)][0] = 0;
}

void
RegisterFile::copyVersion(int src, int dst)
{
    checkVersion(src);
    checkVersion(dst);
    values_[static_cast<size_t>(dst)] = values_[static_cast<size_t>(src)];
}

void
RegisterFile::clearVersion(int version)
{
    checkVersion(version);
    values_[static_cast<size_t>(version)].fill(0);
}

bool
RegisterFile::isAc(int reg) const
{
    checkReg(reg);
    return (ac_mask_ >> reg) & 1;
}

std::uint16_t
RegisterFile::compareVersions(int version, int other) const
{
    checkVersion(other);
    return compareSnapshot(version, values_[static_cast<size_t>(other)]);
}

std::uint16_t
RegisterFile::compareSnapshot(int version, const RegSnapshot &regs) const
{
    checkVersion(version);
    std::uint16_t match = 0;
    for (int r = 0; r < isa::kNumRegs; ++r) {
        if (read(version, r) ==
            (r == 0 ? 0 : regs[static_cast<size_t>(r)]))
            match |= static_cast<std::uint16_t>(1u << r);
    }
    return match;
}

} // namespace inc::nvp
