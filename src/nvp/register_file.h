/**
 * @file
 * Power-gated multi-version nonvolatile register file (paper Sec. 4).
 *
 * Each architectural register is built from nonvolatile logic, carries an
 * AC (approximable) bit, and is extended from one to four versions to
 * hold incidental SIMD lanes; the extensions are powered off when
 * incidental computing is not employed. Comparison circuits report which
 * registers of a stored version match the current version — the
 * controller combines that vector with the compiler-generated mask to
 * decide SIMD adoption.
 */

#ifndef INC_NVP_REGISTER_FILE_H
#define INC_NVP_REGISTER_FILE_H

#include <array>
#include <cstdint>

#include "isa/isa.h"

namespace inc::nvp
{

/** Maximum SIMD width (paper: "at most 4-way SIMD"). */
constexpr int kMaxLanes = 4;

/** One lane's architectural register snapshot. */
using RegSnapshot = std::array<std::uint16_t, isa::kNumRegs>;

/** Multi-version register file with AC flags. */
class RegisterFile
{
  public:
    RegisterFile();

    /** Read register @p reg of version @p version (r0 reads zero). */
    std::uint16_t read(int version, int reg) const;

    /** Write register @p reg of version @p version (r0 writes ignored). */
    void write(int version, int reg, std::uint16_t value);

    /**
     * Unchecked read for the predecoded fast path. Sound because (a)
     * operand fields come from 4-bit encodings so reg < kNumRegs, and
     * (b) the r0 slot of every version is invariantly zero — write()/
     * writeFast() skip r0 and load()/clearVersion() re-zero it — so no
     * r0 special case is needed here.
     */
    std::uint16_t readFast(int version, int reg) const
    {
        return values_[static_cast<size_t>(version)]
                      [static_cast<size_t>(reg)];
    }

    /** Unchecked write for the fast path; preserves the r0-zero
     *  invariant readFast() relies on. */
    void writeFast(int version, int reg, std::uint16_t value)
    {
        if (reg == 0)
            return;
        values_[static_cast<size_t>(version)][static_cast<size_t>(reg)] =
            value;
    }

    /** Unchecked AC-flag probe for the fast path (reg < kNumRegs). */
    bool isAcFast(int reg) const { return (ac_mask_ >> reg) & 1; }

    /** Snapshot a whole version. */
    RegSnapshot snapshot(int version) const;

    /** Load a whole version from a snapshot. */
    void load(int version, const RegSnapshot &regs);

    /** Copy version @p src into version @p dst. */
    void copyVersion(int src, int dst);

    /** Zero a version (lane power-up state). */
    void clearVersion(int version);

    /** AC flags: bit i set => register i holds approximable data. */
    std::uint16_t acMask() const { return ac_mask_; }
    void setAcMask(std::uint16_t mask) { ac_mask_ = mask; }
    void orAcMask(std::uint16_t mask) { ac_mask_ |= mask; }
    void clearAcMask(std::uint16_t mask) { ac_mask_ &= ~mask; }
    bool isAc(int reg) const;

    /**
     * Comparison circuit: bitvector of registers whose values in
     * @p version equal those in @p other (bit i => register i matches).
     */
    std::uint16_t compareVersions(int version, int other) const;

    /**
     * Comparison against an external snapshot; used when a backed-up lane
     * is held in the resume buffer rather than a live version.
     */
    std::uint16_t compareSnapshot(int version,
                                  const RegSnapshot &regs) const;

  private:
    void checkVersion(int version) const;
    void checkReg(int reg) const;

    std::array<RegSnapshot, kMaxLanes> values_;
    std::uint16_t ac_mask_ = 0;
};

} // namespace inc::nvp

#endif // INC_NVP_REGISTER_FILE_H
