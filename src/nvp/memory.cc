#include "nvp/memory.h"

#include <algorithm>
#include <cstdio>

#include "arena/backend.h"
#include "util/bit_ops.h"
#include "util/logging.h"

namespace inc::nvp
{

DataMemory::DataMemory(util::Rng rng, std::size_t size,
                       arena::PersistenceBackend *backend,
                       std::string name_prefix)
    : size_(size), backend_(backend),
      name_prefix_(std::move(name_prefix)), rng_(rng)
{
    if (backend_) {
        main_ = backend_->acquire(name_prefix_ + ".main", size_);
        main_prec_ = backend_->acquire(name_prefix_ + ".prec", size_);
    } else {
        own_main_.assign(size_, 0);
        own_prec_.assign(size_, 0);
        main_ = own_main_.data();
        main_prec_ = own_prec_.data();
    }
}

void
DataMemory::checkAddr(std::uint32_t addr) const
{
    if (addr >= size_)
        util::panic("data memory address out of range: %u", addr);
}

void
DataMemory::addAcRegion(const AcRegion &region)
{
    if (region.start + region.length > size_)
        util::fatal("AC region [%u, %u) out of memory bounds",
                    region.start, region.start + region.length);
    ac_regions_.push_back(region);
}

void
DataMemory::addVersionedRegion(std::uint32_t start, std::uint32_t length,
                               bool write_through)
{
    if (start + length > size_)
        util::fatal("versioned region [%u, %u) out of memory bounds",
                    start, start + length);
    VersionedRegion region;
    region.start = start;
    region.length = length;
    region.write_through = write_through;
    if (backend_) {
        char name[64];
        std::snprintf(name, sizeof name, "%s.ver%zu",
                      name_prefix_.c_str(), versioned_.size());
        region.block_name = name;
        region.cells = reinterpret_cast<VersionedRegion::Cell *>(
            backend_->acquire(region.block_name,
                              length *
                                  sizeof(VersionedRegion::Cell)));
    } else {
        region.own_cells.resize(length);
        region.cells = region.own_cells.data();
    }
    versioned_.push_back(std::move(region));
}

void
DataMemory::clearRegions()
{
    if (backend_) {
        for (const VersionedRegion &r : versioned_)
            backend_->release(r.block_name);
    }
    ac_regions_.clear();
    versioned_.clear();
}

nvm::RetentionPolicy
DataMemory::policyAt(std::uint32_t addr) const
{
    for (const AcRegion &r : ac_regions_) {
        if (r.contains(addr))
            return r.policy;
    }
    return nvm::RetentionPolicy::full;
}

bool
DataMemory::isAc(std::uint32_t addr) const
{
    for (const AcRegion &r : ac_regions_) {
        if (r.contains(addr))
            return true;
    }
    return false;
}

DataMemory::VersionedRegion *
DataMemory::findVersioned(std::uint32_t addr)
{
    for (VersionedRegion &r : versioned_) {
        if (addr >= r.start && addr < r.start + r.length)
            return &r;
    }
    return nullptr;
}

const DataMemory::VersionedRegion *
DataMemory::findVersioned(std::uint32_t addr) const
{
    for (const VersionedRegion &r : versioned_) {
        if (addr >= r.start && addr < r.start + r.length)
            return &r;
    }
    return nullptr;
}

namespace
{

std::uint8_t
truncateToBits(std::uint8_t value, int bits)
{
    return static_cast<std::uint8_t>(
        util::truncateLow(value, static_cast<unsigned>(bits), 8));
}

} // namespace

std::uint8_t
DataMemory::load8(int lane, std::uint32_t addr, int bits, bool approx_mem)
{
    checkAddr(addr);
    INC_OBS_COUNT(obs_, loads);
    std::uint8_t value = main_[addr];
    if (lane > 0) {
        if (const VersionedRegion *r = findVersioned(addr)) {
            const auto &cell = r->cells[addr - r->start];
            if (cell.written & (1u << lane))
                value = cell.value[static_cast<size_t>(lane)];
        }
    }
    if (approx_mem && bits < 8 && isAc(addr)) {
        INC_OBS_COUNT(obs_, ac_truncated_loads);
        value = truncateToBits(value, bits);
    }
    return value;
}

void
DataMemory::store8(int lane, std::uint32_t addr, std::uint8_t value,
                   int bits, bool approx_mem)
{
    checkAddr(addr);
    INC_OBS_COUNT(obs_, stores);
    if (approx_mem && bits < 8 && isAc(addr)) {
        INC_OBS_COUNT(obs_, ac_truncated_stores);
        value = truncateToBits(value, bits);
    }

    VersionedRegion *r = findVersioned(addr);
    if (!r || lane == 0) {
        markDirty(addr);
        main_[addr] = value;
        main_prec_[addr] = static_cast<std::uint8_t>(bits);
        return;
    }
    auto &cell = r->cells[addr - r->start];
    cell.value[static_cast<size_t>(lane)] = value;
    cell.prec[static_cast<size_t>(lane)] = static_cast<std::uint8_t>(bits);
    cell.written |= static_cast<std::uint8_t>(1u << lane);
    // Higher-bits write-through arbitration into the main version —
    // output regions only; lane-private scratch never disturbs lane 0.
    if (r->write_through) {
        if (bits >= main_prec_[addr]) {
            INC_OBS_COUNT(obs_, wt_commits);
            markDirty(addr);
            main_[addr] = value;
            main_prec_[addr] = static_cast<std::uint8_t>(bits);
        } else {
            INC_OBS_COUNT(obs_, wt_rejects);
        }
    }
}

void
DataMemory::resetVersionedRange(std::uint32_t start, std::uint32_t len)
{
    INC_OBS_ADD(obs_, version_resets, len);
    markDirtyRange(start, len);
    for (std::uint32_t addr = start; addr < start + len; ++addr) {
        checkAddr(addr);
        main_[addr] = 0;
        main_prec_[addr] = 0;
        if (VersionedRegion *r = findVersioned(addr))
            r->cells[addr - r->start] = VersionedRegion::Cell{};
    }
}

void
DataMemory::clearLaneVersions(int lane)
{
    if (lane <= 0 || lane >= kMaxVersions)
        util::panic("clearLaneVersions: bad lane %d", lane);
    INC_OBS_COUNT(obs_, lane_clears);
    const auto mask = static_cast<std::uint8_t>(~(1u << lane));
    for (VersionedRegion &r : versioned_) {
        for (std::uint32_t i = 0; i < r.length; ++i)
            r.cells[i].written &= mask;
    }
}

std::uint32_t
DataMemory::assemble(std::uint32_t start, std::uint32_t len,
                     isa::AssembleMode mode)
{
    std::uint32_t processed = 0;
    for (std::uint32_t addr = start; addr < start + len; ++addr) {
        checkAddr(addr);
        VersionedRegion *r = findVersioned(addr);
        if (!r)
            continue;
        auto &cell = r->cells[addr - r->start];
        ++processed;
        int value = main_[addr];
        int prec = main_prec_[addr];
        for (int lane = 1; lane < kMaxVersions; ++lane) {
            if (!(cell.written & (1u << lane)))
                continue;
            const int lv = cell.value[static_cast<size_t>(lane)];
            const int lp = cell.prec[static_cast<size_t>(lane)];
            switch (mode) {
              case isa::AssembleMode::higherbits:
                if (lp > prec) {
                    value = lv;
                    prec = lp;
                }
                break;
              case isa::AssembleMode::sum: {
                // Delta-merge: a lane's previously merged contribution
                // is replaced, not re-added, so assembling the same
                // lane values twice (recompute passes, re-adopted
                // frames) leaves main unchanged.
                const int before =
                    (cell.merged & (1u << lane))
                        ? cell.merged_value[static_cast<size_t>(lane)]
                        : 0;
                value = std::clamp(value + lv - before, 0, 255);
                cell.merged_value[static_cast<size_t>(lane)] =
                    static_cast<std::uint8_t>(lv);
                cell.merged |= static_cast<std::uint8_t>(1u << lane);
                prec = std::max(prec, lp);
                break;
              }
              case isa::AssembleMode::max:
                value = std::max(value, lv);
                prec = std::max(prec, lp);
                break;
              case isa::AssembleMode::min:
                value = std::min(value, lv);
                prec = std::max(prec, lp);
                break;
            }
        }
        cell.written = 0;
        markDirty(addr);
        main_[addr] = static_cast<std::uint8_t>(value);
        main_prec_[addr] = static_cast<std::uint8_t>(prec);
    }
    INC_OBS_ADD(obs_, assemble_bytes, processed);
    return processed;
}

int
DataMemory::precisionAt(std::uint32_t addr) const
{
    checkAddr(addr);
    return main_prec_[addr];
}

void
DataMemory::applyOutageDecay(double duration_tenth_ms)
{
    INC_OBS_COUNT(obs_, decay_passes);
    for (const AcRegion &region : ac_regions_) {
        if (region.policy == nvm::RetentionPolicy::full)
            continue;
        const int cutoff =
            nvm::NvmArray::expiredCutoff(region.policy, duration_tenth_ms);
        if (cutoff == 0)
            continue;
        // One violation event per (outage, bit index) — Fig. 22 counts.
        for (int b = 1; b <= cutoff; ++b)
            ++failures_.violations[static_cast<size_t>(b - 1)];

        const auto mask =
            static_cast<std::uint8_t>(util::lowMask(
                static_cast<unsigned>(cutoff)));
        for (std::uint32_t addr = region.start;
             addr < region.start + region.length; ++addr) {
            const std::uint8_t old = main_[addr];
            const auto rnd = static_cast<std::uint8_t>(rng_.next());
            const std::uint8_t neu =
                static_cast<std::uint8_t>((old & ~mask) | (rnd & mask));
            const std::uint8_t diff = old ^ neu;
            if (diff) {
                for (int b = 1; b <= cutoff; ++b) {
                    if (util::bit(diff, static_cast<unsigned>(b - 1)))
                        ++failures_.flips[static_cast<size_t>(b - 1)];
                }
                markDirty(addr);
                main_[addr] = neu;
            }
        }
    }
}

void
DataMemory::enableDirtyTracking()
{
    if (!dirty_.empty())
        return;
    const std::size_t words = (size_ + kDirtyWordBytes - 1) / kDirtyWordBytes;
    dirty_.assign((words + 63) / 64, 0);
}

void
DataMemory::clearDirty()
{
    std::fill(dirty_.begin(), dirty_.end(), 0);
}

std::uint64_t
DataMemory::dirtyWordCount() const
{
    std::uint64_t n = 0;
    for (std::uint64_t word : dirty_)
        n += static_cast<std::uint64_t>(util::popcount64(word));
    return n;
}

std::uint8_t
DataMemory::hostRead8(std::uint32_t addr) const
{
    checkAddr(addr);
    return main_[addr];
}

void
DataMemory::hostWrite8(std::uint32_t addr, std::uint8_t value)
{
    checkAddr(addr);
    markDirty(addr);
    main_[addr] = value;
}

void
DataMemory::hostWriteBlock(std::uint32_t addr,
                           const std::vector<std::uint8_t> &data)
{
    if (addr + data.size() > size_)
        util::panic("hostWriteBlock out of range");
    markDirtyRange(addr, data.size());
    std::copy(data.begin(), data.end(), main_ + addr);
}

std::vector<std::uint8_t>
DataMemory::snapshot(std::uint32_t start, std::uint32_t len) const
{
    if (start + len > size_)
        util::panic("snapshot out of range");
    return std::vector<std::uint8_t>(main_ + start, main_ + start + len);
}

std::vector<std::uint8_t>
DataMemory::precisionMask(std::uint32_t start, std::uint32_t len) const
{
    if (start + len > size_)
        util::panic("precisionMask range out of bounds");
    std::vector<std::uint8_t> mask(len, 0);
    for (std::uint32_t i = 0; i < len; ++i)
        mask[i] = main_prec_[start + i] > 0 ? 1 : 0;
    return mask;
}

double
DataMemory::coverage(std::uint32_t start, std::uint32_t len) const
{
    if (len == 0)
        return 1.0;
    if (start + len > size_)
        util::panic("coverage range out of bounds");
    std::uint32_t written = 0;
    for (std::uint32_t addr = start; addr < start + len; ++addr) {
        if (main_prec_[addr] > 0)
            ++written;
    }
    return static_cast<double>(written) / static_cast<double>(len);
}

} // namespace inc::nvp
