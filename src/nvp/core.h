/**
 * @file
 * The NVP core: a lane-stepped functional executor with cycle costs.
 *
 * Executes the ISA over up to four SIMD lanes (paper Sec. 4). Lane 0 is
 * the current computation; lanes 1-3 are incidental lanes adopted by the
 * controller (core/incidental.h), each with its own register version and
 * bitwidth. All lanes share the PC; control flow is resolved on lane 0 —
 * kernels keep data-dependent choices branchless (min/max/select) so
 * lanes never diverge, mirroring the paper's compiler restriction.
 *
 * The core owns the architectural incidental state written by the
 * incidental ISA ops: the resume-point PC + frame register + match mask
 * (markrp), per-register AC flags (acset/acclr), and the global AC_EN
 * bit (acen). Lane lifecycle (adoption, retirement, roll-forward) is
 * decided by the controller through the public lane API.
 */

#ifndef INC_NVP_CORE_H
#define INC_NVP_CORE_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "isa/predecode.h"
#include "isa/program.h"
#include "nvp/approx_alu.h"
#include "nvp/memory.h"
#include "nvp/register_file.h"
#include "obs/obs.h"

namespace inc::nvp
{

/**
 * Interpreter selection. All engines implement identical architectural
 * semantics — same results, same RNG draw sequence, same observability
 * counters — enforced bit-for-bit by tests/test_engine_diff.cc and the
 * fuzzer's engine-diff invariant (`nvpsim fuzz --engine-diff`).
 *
 *  - reference:  decode-as-you-go loop; metadata re-derived every step.
 *  - predecoded: dispatches over a dense DecodedInst array resolved at
 *    program load (isa/predecode.h); the default.
 *  - batch:      trial-batched engine. Inside one Core the instruction
 *    semantics are the predecoded fast path (which is exactly why
 *    byte-identity survives batching); the batching itself lives in
 *    nvp::BatchCore (src/isa/batch: W independent single-SIMD-lane
 *    cores stepped in SoA lockstep) and sim::SimBatch (N co-simulators
 *    stepped sample-by-sample), selected by SimConfig::exec_engine =
 *    batch + SweepSpec::batch_width.
 */
enum class ExecEngine
{
    reference,
    predecoded,
    batch,
};

/** Number of engines (size of allExecEngines()). */
constexpr int kNumExecEngines = 3;

/**
 * The engine registry: every engine, reference first. Benches and the
 * differential test tiers iterate this so a new engine is benched and
 * diffed automatically instead of being forgotten in a hardcoded list.
 */
const std::array<ExecEngine, kNumExecEngines> &allExecEngines();

/** Comma-separated engine names, e.g. for CLI usage strings. */
std::string execEngineNames();

/** Parse "reference"/"predecoded"/"batch"; nullopt otherwise. */
std::optional<ExecEngine> execEngineFromName(const std::string &name);

/** Engine name ("reference"/"predecoded"/"batch"). */
const char *execEngineName(ExecEngine engine);

/** Static core configuration. */
struct CoreConfig
{
    bool approx_alu = true; ///< enable ALU noise model
    bool approx_mem = true; ///< enable AC-region truncation model
    int max_lanes = kMaxLanes;
    ExecEngine engine = ExecEngine::predecoded;
};

/** Per-lane bookkeeping. */
struct LaneInfo
{
    bool active = false;
    int bits = 8;              ///< current precision (1..8)
    std::uint16_t frame = 0;   ///< frame id the lane is processing
    std::uint64_t instret = 0; ///< instructions committed by this lane
};

/** Result of executing one instruction. */
struct StepResult
{
    isa::Op op = isa::Op::nop;
    int cycles = 1;
    int lanes_committed = 1;      ///< 1 + active incidental lanes
    bool halted = false;
    bool mark_resume = false;     ///< a markrp executed this step
    std::uint16_t resume_frame_value = 0; ///< lane-0 frame reg at markrp
    std::uint32_t assemble_bytes = 0;
    /** Retention policy of the lane-0 store target (energy discount). */
    nvm::RetentionPolicy store_policy = nvm::RetentionPolicy::full;
};

/** The executor. */
class Core
{
  public:
    Core(const isa::Program *program, DataMemory *memory,
         CoreConfig config, util::Rng rng);

    // ---- architectural state --------------------------------------------

    std::uint16_t pc() const { return pc_; }
    void setPc(std::uint16_t pc) { pc_ = pc; }

    bool halted() const { return halted_; }
    void clearHalted() { halted_ = false; }

    RegisterFile &regs() { return rf_; }
    const RegisterFile &regs() const { return rf_; }

    bool acEnabled() const { return ac_en_; }
    void setAcEnabled(bool on) { ac_en_ = on; }

    /** Resume-point state recorded by the last markrp. */
    bool hasResumePoint() const { return has_resume_; }
    std::uint16_t resumePc() const { return resume_pc_; }
    int frameReg() const { return frame_reg_; }
    std::uint16_t matchMask() const { return match_mask_; }

    // ---- lanes ------------------------------------------------------------

    const LaneInfo &lane(int index) const;
    int maxLanes() const { return config_.max_lanes; }

    /** Number of active lanes including lane 0. */
    int activeLaneCount() const;

    /** Lowest free incidental lane slot, or -1. */
    int freeLane() const;

    /** Activate incidental lane @p index with a register snapshot. */
    void activateLane(int index, const RegSnapshot &regs, int bits,
                      std::uint16_t frame);

    /** Retire incidental lane @p index (clears its memory versions). */
    void deactivateLane(int index);

    /** Retire all incidental lanes. */
    void deactivateAllLanes();

    void setLaneBits(int index, int bits);
    void setMainBits(int bits) { setLaneBits(0, bits); }
    int mainBits() const { return lanes_[0].bits; }

    /** Lane-0 frame bookkeeping (set by the controller). */
    void setMainFrame(std::uint16_t frame) { lanes_[0].frame = frame; }

    /** Sum of active incidental lanes' bitwidths (energy model input). */
    int incidentalBitsSum() const;

    /** Total instructions committed across all lanes. */
    std::uint64_t totalInstret() const;

    // ---- execution ---------------------------------------------------------

    /** Execute one instruction across all active lanes. */
    StepResult step()
    {
        // The batch engine's per-instruction semantics inside a single
        // Core are the predecoded fast path; only `reference` takes the
        // decode-as-you-go baseline.
        return config_.engine == ExecEngine::reference
                   ? stepReference()
                   : stepPredecoded();
    }

    const CoreConfig &config() const { return config_; }
    const isa::Program &program() const { return *program_; }
    DataMemory &memory() { return *mem_; }

    /** Attach (or detach with nullptr) hot-path event counters. The
     *  counters only observe — attaching never perturbs execution. */
    void setObsCounters(obs::CoreCounters *counters)
    {
        obs_ = counters;
    }

  private:
    /** Effective precision of a lane (8 when approximation disabled). */
    int effectiveBits(int lane) const;

    /** Decode-as-you-go engine (the semantic baseline). */
    StepResult stepReference();
    /** Fast-path engine over the predecoded program. */
    StepResult stepPredecoded();

    void executeDataOp(const isa::Instruction &inst, int lane);
    void executeLoad(const isa::Instruction &inst, int lane);
    void executeStore(const isa::Instruction &inst, int lane,
                      StepResult &result);

    // Fast-path bodies (core.cc). stepPredecoded() dispatches once on
    // the predecoded opcode and instantiates these per op, so the
    // compute/comparator/access lambdas inline into a single jump
    // table — no second-level switch per step.
    template <typename ComputeFn>
    void dataOpFast(const isa::DecodedInst &d, ComputeFn compute);
    template <typename ComputeFn>
    void dataOpLaneFast(const isa::DecodedInst &d, int lane,
                        ComputeFn compute);
    template <typename LoadFn>
    void loadFast(const isa::DecodedInst &d, LoadFn load);
    template <typename LoadFn>
    void loadLaneFast(const isa::DecodedInst &d, int lane, LoadFn load);
    template <bool kWide>
    void storeFast(const isa::DecodedInst &d, StepResult &result);
    template <bool kWide>
    void storeLaneFast(const isa::DecodedInst &d, int lane,
                       StepResult &result);
    template <typename CmpFn>
    void branchFast(const isa::DecodedInst &d, StepResult &result,
                    std::uint16_t &next_pc, CmpFn cmp);

    const isa::Program *program_;
    DataMemory *mem_;
    CoreConfig config_;
    isa::PredecodedProgram decoded_; ///< built iff engine != reference
    RegisterFile rf_;
    ApproxAlu alu_;

    std::uint16_t pc_ = 0;
    bool halted_ = false;
    bool ac_en_ = false;

    bool has_resume_ = false;
    std::uint16_t resume_pc_ = 0;
    int frame_reg_ = 0;
    std::uint16_t match_mask_ = 0;

    std::array<LaneInfo, kMaxLanes> lanes_;
    /** Cached activeLaneCount(), maintained by (de)activateLane; the
     *  fast path reads it instead of re-scanning the lane array. */
    int active_lanes_ = 1;
    obs::CoreCounters *obs_ = nullptr;
};

} // namespace inc::nvp

#endif // INC_NVP_CORE_H
