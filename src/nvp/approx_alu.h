/**
 * @file
 * Configurable approximate ALU (paper Sec. 4, Sec. 8.1).
 *
 * The precise path implements the 16-bit integer semantics of the ISA.
 * The approximate path models the gradient-VDD designs of the paper's
 * refs [8, 75]: an N-bit reduced-quality ALU preserves the upper N bits
 * of the 8-bit significance window and produces random outputs in the
 * low (8-N) bits — i.e. noise injection rather than truncation (which is
 * the *memory* approximation model; see DataMemory).
 */

#ifndef INC_NVP_APPROX_ALU_H
#define INC_NVP_APPROX_ALU_H

#include <cstdint>

#include "isa/isa.h"
#include "util/rng.h"

namespace inc::nvp
{

/** Approximate ALU model. */
class ApproxAlu
{
  public:
    explicit ApproxAlu(util::Rng rng);

    /**
     * Precise 16-bit result of @p op on operands @p a and @p b
     * (b is the immediate for I-type ops). Only data-producing ops are
     * valid here.
     */
    static std::uint16_t compute(isa::Op op, std::uint16_t a,
                                 std::uint16_t b);

    /**
     * Randomize the low (8 - @p bits) bits of @p value (noise model).
     * bits >= 8 returns the value unchanged.
     */
    std::uint16_t injectNoise(std::uint16_t value, int bits);

  private:
    util::Rng rng_;
};

} // namespace inc::nvp

#endif // INC_NVP_APPROX_ALU_H
