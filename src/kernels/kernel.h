/**
 * @file
 * The testbench kernels (paper Sec. 7, Fig. 28).
 *
 * The paper evaluates image-processing / pattern-matching kernels from
 * MiBench compiled for its modified 8051. We hand-write the equivalent
 * kernels for our ISA through ProgramBuilder, each paired with a golden
 * C++ reference that reproduces the precise program bit-exactly (used
 * for output-quality scoring and correctness tests).
 *
 * Common structure: an infinite frame loop opened by markrp (the
 * incidental_recover_from pragma), per-frame input/output ring slots
 * addressed from the frame induction register, and branchless inner data
 * operations so incidental SIMD lanes never diverge.
 *
 * Register conventions:
 *   r15 frame induction variable (markrp register)
 *   r14 input slot base      r13 output slot base
 *   r12, r11 row/column induction variables (in the compiler match mask)
 *   r1..r10 kernel data and temporaries (AC-flagged as appropriate)
 */

#ifndef INC_KERNELS_KERNEL_H
#define INC_KERNELS_KERNEL_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.h"
#include "isa/program.h"
#include "util/image.h"

namespace inc::kernels
{

/** A fully described testbench kernel. */
struct Kernel
{
    std::string name;
    int width = 32;
    int height = 32;

    isa::Program program;
    core::FrameLayout layout;

    /** Versioned lane-private scratch (0 bytes when unused). */
    std::uint32_t scratch_base = 0;
    std::uint32_t scratch_bytes = 0;

    /** Frame induction register (markrp rs1). */
    int frame_reg = 15;

    /**
     * True when interrupted frames may be adopted mid-loop as SIMD lanes.
     * Kernels that carry state in memory scratch (integral, fft) cannot
     * be resumed mid-frame — the paper's compiler places the same
     * restriction on loop-carried dependences — and are instead
     * restarted from the frame top by history spawning.
     */
    bool adoption_safe = true;

    /** Compiler-generated adoption match mask (markrp imm). */
    std::uint16_t match_mask = 0;

    /** AC-flagged data registers (program acsets this; kept for docs). */
    std::uint16_t ac_reg_mask = 0;

    /** Constant tables to preload into data memory. */
    std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>
        init_blocks;

    /** Build the input-frame bytes for frame @p index. */
    std::function<std::vector<std::uint8_t>(const util::SceneGenerator &,
                                            int)> make_input;

    /** Golden reference: input frame bytes -> precise output bytes. */
    std::function<std::vector<std::uint8_t>(
        const std::vector<std::uint8_t> &)> golden;

    /** Scene flavour this kernel is typically evaluated on. */
    util::SceneKind scene = util::SceneKind::scene;
};

/** Names of all registered kernels (Fig. 28 testbench set). */
std::vector<std::string> kernelNames();

/**
 * Construct a kernel by name ("sobel", "median", "integral",
 * "susan.corners", "susan.edges", "susan.smoothing", "jpeg.encode",
 * "fft", "tiff2bw", "tiff2rgba"). Width/height must be powers of two.
 * fatal() on unknown names.
 */
Kernel makeKernel(const std::string &name, int width = 32,
                  int height = 32);

// Individual factories (one per translation unit).
Kernel makeSobel(int width, int height);
Kernel makeMedian(int width, int height);
Kernel makeIntegral(int width, int height);
Kernel makeSusanCorners(int width, int height);
Kernel makeSusanEdges(int width, int height);
Kernel makeSusanSmoothing(int width, int height);
Kernel makeJpegEncode(int width, int height);
Kernel makeFft(int width, int height);
Kernel makeTiff2Bw(int width, int height);
Kernel makeTiff2Rgba(int width, int height);

/**
 * Extension kernel beyond the paper's Fig. 28 set: 8x8 template
 * matching (the pattern-matching archetype the paper's Sec. 2.1
 * motivates). Constructible via makeKernel("patmatch") but excluded
 * from kernelNames() so the Fig. 28 reproduction stays exact.
 */
Kernel makePatMatch(int width, int height);

} // namespace inc::kernels

#endif // INC_KERNELS_KERNEL_H
