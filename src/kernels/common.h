/**
 * @file
 * Shared scaffolding for the kernel builders: memory-plan computation and
 * the standard frame-loop prologue (acen/acset, markrp, ring-slot base
 * address computation).
 */

#ifndef INC_KERNELS_COMMON_H
#define INC_KERNELS_COMMON_H

#include <cstdint>

#include "isa/builder.h"
#include "kernels/kernel.h"

namespace inc::kernels
{

/** Resolved data-memory layout for one kernel instance. */
struct MemoryPlan
{
    std::uint32_t const_base = 0x0100; ///< constant tables
    std::uint32_t in_base = 0;
    std::uint32_t in_bytes = 0;
    int in_slots = 4;
    std::uint32_t out_base = 0;
    std::uint32_t out_bytes = 0;
    int out_slots = 4;
    std::uint32_t scratch_base = 0;
    std::uint32_t scratch_bytes = 0;

    core::FrameLayout layout() const;
};

/**
 * Lay out rings and scratch after the constant area. fatal() if the plan
 * exceeds the 64 KiB data memory.
 */
MemoryPlan planMemory(std::uint32_t in_bytes, std::uint32_t out_bytes,
                      std::uint32_t scratch_bytes = 0,
                      std::uint32_t const_bytes = 0x0300);

/** Registers with fixed roles in every kernel. */
constexpr isa::Reg kFrameReg = isa::r15;
constexpr isa::Reg kInBase = isa::r14;
constexpr isa::Reg kOutBase = isa::r13;
constexpr isa::Reg kRowReg = isa::r12;
constexpr isa::Reg kColReg = isa::r11;

/** Bitmask helper for register masks. */
constexpr std::uint16_t
regMask(std::initializer_list<isa::Reg> regs)
{
    std::uint16_t mask = 0;
    for (isa::Reg r : regs)
        mask |= static_cast<std::uint16_t>(1u << r);
    return mask;
}

/**
 * Emit the standard kernel prologue and frame-loop header:
 *
 *   acen 1; acset ac_regs
 *   r15 = 0
 * frame_loop:
 *   markrp r15, match_mask
 *   r14 = in_base  + (r15 % in_slots)  * in_bytes
 *   r13 = out_base + (r15 % out_slots) * out_bytes
 *
 * Returns the frame-loop label; the caller emits the body, then calls
 * emitFrameLoopTail. @p tmp is clobbered.
 */
isa::Label emitFrameLoopHead(isa::ProgramBuilder &b, const MemoryPlan &plan,
                             std::uint16_t ac_regs,
                             std::uint16_t match_mask,
                             isa::Reg tmp = isa::r10);

/** Emit "r15 += 1; jmp frame_loop". */
void emitFrameLoopTail(isa::ProgramBuilder &b, isa::Label frame_loop);

/** log2 of a power of two; fatal() otherwise. */
int log2Exact(std::uint32_t value);

} // namespace inc::kernels

#endif // INC_KERNELS_COMMON_H
