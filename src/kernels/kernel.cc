#include "kernels/kernel.h"

#include "util/logging.h"

namespace inc::kernels
{

std::vector<std::string>
kernelNames()
{
    return {"sobel",          "median",       "integral",
            "susan.corners",  "susan.edges",  "susan.smoothing",
            "jpeg.encode",    "fft",          "tiff2bw",
            "tiff2rgba"};
}

Kernel
makeKernel(const std::string &name, int width, int height)
{
    if (width < 8 || height < 8)
        util::fatal("kernel frames must be at least 8x8");
    if (name == "sobel")
        return makeSobel(width, height);
    if (name == "median")
        return makeMedian(width, height);
    if (name == "integral")
        return makeIntegral(width, height);
    if (name == "susan.corners")
        return makeSusanCorners(width, height);
    if (name == "susan.edges")
        return makeSusanEdges(width, height);
    if (name == "susan.smoothing")
        return makeSusanSmoothing(width, height);
    if (name == "jpeg.encode")
        return makeJpegEncode(width, height);
    if (name == "fft")
        return makeFft(width, height);
    if (name == "tiff2bw")
        return makeTiff2Bw(width, height);
    if (name == "tiff2rgba")
        return makeTiff2Rgba(width, height);
    if (name == "patmatch")
        return makePatMatch(width, height);
    util::fatal("unknown kernel '%s'", name.c_str());
}

} // namespace inc::kernels
