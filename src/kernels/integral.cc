/**
 * @file
 * Integral image: 2D prefix sums in 16-bit wrapping arithmetic; each
 * output pixel is the high byte of the running sum (a display-scaled
 * integral image, as in the paper's Fig. 11 testbench). Column sums are
 * kept in lane-private versioned scratch, so interrupted frames are
 * restarted from the frame top rather than adopted mid-loop
 * (adoption_safe = false).
 */

#include <cstdint>

#include "kernels/common.h"

namespace inc::kernels
{

namespace
{

std::vector<std::uint8_t>
goldenIntegral(const std::vector<std::uint8_t> &in, int w, int h)
{
    std::vector<std::uint8_t> out(static_cast<size_t>(w) * h, 0);
    std::vector<std::uint16_t> col(static_cast<size_t>(w), 0);
    for (int y = 0; y < h; ++y) {
        std::uint16_t rowsum = 0;
        for (int x = 0; x < w; ++x) {
            rowsum = static_cast<std::uint16_t>(
                rowsum + in[static_cast<size_t>(y * w + x)]);
            col[static_cast<size_t>(x)] = static_cast<std::uint16_t>(
                col[static_cast<size_t>(x)] + rowsum);
            out[static_cast<size_t>(y * w + x)] =
                static_cast<std::uint8_t>(col[static_cast<size_t>(x)] >>
                                          8);
        }
    }
    return out;
}

} // namespace

Kernel
makeIntegral(int width, int height)
{
    using namespace isa;
    const int log2w = log2Exact(static_cast<std::uint32_t>(width));
    const auto bytes =
        static_cast<std::uint32_t>(width) * static_cast<std::uint32_t>(
                                                height);

    Kernel k;
    k.name = "integral";
    k.width = width;
    k.height = height;
    k.scene = util::SceneKind::blobs;
    k.adoption_safe = false; // column sums live in memory scratch
    k.ac_reg_mask = regMask({r1, r2, r3});
    k.match_mask = regMask({kRowReg, kColReg});

    const auto scratch_bytes = static_cast<std::uint32_t>(2 * width);
    const MemoryPlan plan = planMemory(bytes, bytes, scratch_bytes);
    k.layout = plan.layout();
    k.scratch_base = plan.scratch_base;
    k.scratch_bytes = scratch_bytes;

    ProgramBuilder b;
    Label frame_loop =
        emitFrameLoopHead(b, plan, k.ac_reg_mask, k.match_mask);

    // Zero the per-column running sums.
    b.ldi(kColReg, 0);
    Label zero_loop = b.here("zero_cols");
    b.slli(r10, kColReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(plan.scratch_base));
    b.add(r10, r10, r9);
    b.st16(r0, r10, 0);
    b.addi(kColReg, kColReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(width));
    b.blt(kColReg, r9, zero_loop);

    b.ldi(kRowReg, 0);
    Label y_loop = b.here("y_loop");
    b.ldi(r1, 0); // rowsum
    b.ldi(kColReg, 0);
    Label x_loop = b.here("x_loop");

    // rowsum += pixel
    b.slli(r10, kRowReg, static_cast<std::uint16_t>(log2w));
    b.add(r10, r10, kColReg);
    b.add(r10, r10, kInBase);
    b.ld8(r2, r10, 0);
    b.add(r1, r1, r2);

    // col[x] += rowsum; out = col[x] >> 8
    b.slli(r10, kColReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(plan.scratch_base));
    b.add(r10, r10, r9);
    b.ld16(r3, r10, 0);
    b.add(r3, r3, r1);
    b.st16(r3, r10, 0);
    b.srli(r2, r3, 8);

    b.slli(r10, kRowReg, static_cast<std::uint16_t>(log2w));
    b.add(r10, r10, kColReg);
    b.add(r10, r10, kOutBase);
    b.st8(r2, r10, 0);

    b.addi(kColReg, kColReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(width));
    b.blt(kColReg, r9, x_loop);
    b.addi(kRowReg, kRowReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(height));
    b.blt(kRowReg, r9, y_loop);

    emitFrameLoopTail(b, frame_loop);
    k.program = b.finish();

    k.make_input = [](const util::SceneGenerator &scene, int frame) {
        return scene.frame(frame).data();
    };
    k.golden = [width, height](const std::vector<std::uint8_t> &in) {
        return goldenIntegral(in, width, height);
    };
    return k;
}

} // namespace inc::kernels
