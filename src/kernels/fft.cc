/**
 * @file
 * Row-wise radix-2 FFT testbench (spectrum analysis, as in the paper's
 * gas-sensing / water-quality motivating workloads). Each image row is a
 * W-point signal; the kernel computes an in-place fixed-point FFT (Q6
 * twiddles, per-stage halving) in lane-private versioned scratch and
 * writes the |re|+|im| magnitude per bin. The golden model reproduces
 * the 16-bit wrapping arithmetic bit-exactly.
 *
 * The butterflies are fully unrolled at program-build time, so twiddle
 * factors are immediates and the scratch is absolutely addressed.
 */

#include <cmath>
#include <cstdlib>

#include "kernels/common.h"

namespace inc::kernels
{

namespace
{

int
bitrev(int value, int bits)
{
    int out = 0;
    for (int i = 0; i < bits; ++i) {
        out = (out << 1) | (value & 1);
        value >>= 1;
    }
    return out;
}

/** 16-bit ALU semantics mirrored for the golden model. */
std::uint16_t
mul16(std::uint16_t a, std::uint16_t b)
{
    return static_cast<std::uint16_t>(static_cast<std::uint32_t>(a) * b);
}

std::uint16_t
sra16(std::uint16_t a, int sh)
{
    return static_cast<std::uint16_t>(static_cast<std::int16_t>(a) >> sh);
}

struct Twiddle
{
    std::uint16_t wr;
    std::uint16_t wi;
};

Twiddle
twiddle(int j, int m)
{
    const double angle = -2.0 * M_PI * j / m;
    const auto wr = static_cast<std::int16_t>(
        std::lround(std::cos(angle) * 64.0));
    const auto wi = static_cast<std::int16_t>(
        std::lround(std::sin(angle) * 64.0));
    return {static_cast<std::uint16_t>(wr),
            static_cast<std::uint16_t>(wi)};
}

std::vector<std::uint8_t>
goldenFft(const std::vector<std::uint8_t> &in, int w, int h)
{
    const int log2w = [w] {
        int n = 0;
        while ((w >> n) != 1)
            ++n;
        return n;
    }();
    std::vector<std::uint8_t> out(static_cast<size_t>(w) * h, 0);
    std::vector<std::uint16_t> re(static_cast<size_t>(w));
    std::vector<std::uint16_t> im(static_cast<size_t>(w));

    for (int y = 0; y < h; ++y) {
        for (int i = 0; i < w; ++i) {
            const std::uint8_t p =
                in[static_cast<size_t>(y * w + bitrev(i, log2w))];
            re[static_cast<size_t>(i)] =
                static_cast<std::uint16_t>(p >> 2);
            im[static_cast<size_t>(i)] = 0;
        }
        for (int s = 1; s <= log2w; ++s) {
            const int m = 1 << s;
            const int half = m >> 1;
            for (int k = 0; k < w; k += m) {
                for (int j = 0; j < half; ++j) {
                    const auto [wr, wi] = twiddle(j, m);
                    const size_t i1 = static_cast<size_t>(k + j);
                    const size_t i2 = i1 + static_cast<size_t>(half);
                    const std::uint16_t tr = sra16(
                        static_cast<std::uint16_t>(mul16(re[i2], wr) -
                                                   mul16(im[i2], wi)),
                        6);
                    const std::uint16_t ti = sra16(
                        static_cast<std::uint16_t>(mul16(re[i2], wi) +
                                                   mul16(im[i2], wr)),
                        6);
                    const std::uint16_t r1 = re[i1];
                    const std::uint16_t m1 = im[i1];
                    re[i1] = sra16(static_cast<std::uint16_t>(r1 + tr), 1);
                    re[i2] = sra16(static_cast<std::uint16_t>(r1 - tr), 1);
                    im[i1] = sra16(static_cast<std::uint16_t>(m1 + ti), 1);
                    im[i2] = sra16(static_cast<std::uint16_t>(m1 - ti), 1);
                }
            }
        }
        for (int i = 0; i < w; ++i) {
            auto absv = [](std::uint16_t v) {
                const auto s = static_cast<std::int16_t>(v);
                const auto n = static_cast<std::int16_t>(-s);
                return static_cast<std::uint16_t>(std::max(s, n));
            };
            const std::uint16_t mag = static_cast<std::uint16_t>(
                (absv(re[static_cast<size_t>(i)]) +
                 absv(im[static_cast<size_t>(i)])) >>
                2);
            out[static_cast<size_t>(y * w + i)] = static_cast<std::uint8_t>(
                std::min<std::uint16_t>(mag, 255));
        }
    }
    return out;
}

} // namespace

Kernel
makeFft(int width, int height)
{
    using namespace isa;
    const int log2w = log2Exact(static_cast<std::uint32_t>(width));
    const auto bytes =
        static_cast<std::uint32_t>(width) * static_cast<std::uint32_t>(
                                                height);

    Kernel k;
    k.name = "fft";
    k.width = width;
    k.height = height;
    k.scene = util::SceneKind::texture;
    k.adoption_safe = false; // re/im planes live in memory scratch
    k.ac_reg_mask = regMask({r1, r2, r3, r4, r5, r6});
    k.match_mask = regMask({kRowReg});

    const auto scratch_bytes = static_cast<std::uint32_t>(4 * width);
    const MemoryPlan plan = planMemory(bytes, bytes, scratch_bytes);
    k.layout = plan.layout();
    k.scratch_base = plan.scratch_base;
    k.scratch_bytes = scratch_bytes;

    const std::uint32_t re_base = plan.scratch_base;
    const std::uint32_t im_base =
        plan.scratch_base + 2 * static_cast<std::uint32_t>(width);
    auto reAddr = [re_base](int i) {
        return static_cast<std::int16_t>(re_base +
                                         2 * static_cast<unsigned>(i));
    };
    auto imAddr = [im_base](int i) {
        return static_cast<std::int16_t>(im_base +
                                         2 * static_cast<unsigned>(i));
    };

    ProgramBuilder b;
    Label frame_loop =
        emitFrameLoopHead(b, plan, k.ac_reg_mask, k.match_mask);

    b.ldi(kRowReg, 0);
    Label y_loop = b.here("y_loop");

    // Row base addresses: r9 input, r8 output.
    b.slli(r9, kRowReg, static_cast<std::uint16_t>(log2w));
    b.add(r8, r9, kOutBase);
    b.add(r9, r9, kInBase);

    // Bit-reversed load with >>2 prescale; imaginary parts zeroed.
    for (int i = 0; i < width; ++i) {
        b.ld8(r1, r9, static_cast<std::int16_t>(bitrev(i, log2w)));
        b.srli(r1, r1, 2);
        b.st16(r1, r0, reAddr(i));
        b.st16(r0, r0, imAddr(i));
    }

    // Unrolled butterflies, Q6 twiddle immediates.
    for (int s = 1; s <= log2w; ++s) {
        const int m = 1 << s;
        const int half = m >> 1;
        for (int kk = 0; kk < width; kk += m) {
            for (int j = 0; j < half; ++j) {
                const auto [wr, wi] = twiddle(j, m);
                const int i1 = kk + j;
                const int i2 = i1 + half;
                b.ld16(r1, r0, reAddr(i2));
                b.ld16(r2, r0, imAddr(i2));
                b.ldi(r3, wr);
                b.mul(r4, r1, r3);
                b.ldi(r3, wi);
                b.mul(r5, r2, r3);
                b.sub(r4, r4, r5);
                b.srai(r4, r4, 6); // tr
                b.ldi(r3, wi);
                b.mul(r5, r1, r3);
                b.ldi(r3, wr);
                b.mul(r6, r2, r3);
                b.add(r5, r5, r6);
                b.srai(r5, r5, 6); // ti
                b.ld16(r1, r0, reAddr(i1));
                b.ld16(r2, r0, imAddr(i1));
                b.add(r6, r1, r4);
                b.srai(r6, r6, 1);
                b.st16(r6, r0, reAddr(i1));
                b.sub(r6, r1, r4);
                b.srai(r6, r6, 1);
                b.st16(r6, r0, reAddr(i2));
                b.add(r6, r2, r5);
                b.srai(r6, r6, 1);
                b.st16(r6, r0, imAddr(i1));
                b.sub(r6, r2, r5);
                b.srai(r6, r6, 1);
                b.st16(r6, r0, imAddr(i2));
            }
        }
    }

    // Magnitude per bin: min(255, (|re| + |im|) >> 2).
    for (int i = 0; i < width; ++i) {
        b.ld16(r1, r0, reAddr(i));
        b.abs_(r1, r1, r3);
        b.ld16(r2, r0, imAddr(i));
        b.abs_(r2, r2, r3);
        b.add(r1, r1, r2);
        b.srli(r1, r1, 2);
        b.ldi(r3, 255);
        b.min(r1, r1, r3);
        b.st8(r1, r8, static_cast<std::int16_t>(i));
    }

    b.addi(kRowReg, kRowReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(height));
    b.blt(kRowReg, r9, y_loop);

    emitFrameLoopTail(b, frame_loop);
    k.program = b.finish();

    k.make_input = [](const util::SceneGenerator &scene, int frame) {
        return scene.frame(frame).data();
    };
    k.golden = [width, height](const std::vector<std::uint8_t> &in) {
        return goldenFft(in, width, height);
    };
    return k;
}

} // namespace inc::kernels
