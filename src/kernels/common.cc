#include "kernels/common.h"

#include "util/logging.h"

namespace inc::kernels
{

core::FrameLayout
MemoryPlan::layout() const
{
    core::FrameLayout l;
    l.in_base = in_base;
    l.in_bytes = in_bytes;
    l.in_slots = in_slots;
    l.out_base = out_base;
    l.out_bytes = out_bytes;
    l.out_slots = out_slots;
    return l;
}

MemoryPlan
planMemory(std::uint32_t in_bytes, std::uint32_t out_bytes,
           std::uint32_t scratch_bytes, std::uint32_t const_bytes)
{
    // Deeper frame rings keep interrupted frames alive longer for
    // incidental adoption; pick the deepest power-of-two depth that
    // fits the 64 KiB data memory.
    for (int slots : {8, 4, 2}) {
        MemoryPlan plan;
        plan.in_slots = slots;
        plan.out_slots = slots;
        plan.in_bytes = in_bytes;
        plan.out_bytes = out_bytes;
        plan.scratch_bytes = scratch_bytes;
        plan.in_base = plan.const_base + const_bytes;
        plan.out_base = plan.in_base +
                        in_bytes * static_cast<std::uint32_t>(slots);
        plan.scratch_base =
            plan.out_base + out_bytes * static_cast<std::uint32_t>(slots);
        if (plan.scratch_base + scratch_bytes <= isa::kDataMemBytes)
            return plan;
    }
    util::fatal("memory plan exceeds data memory even with 2-deep rings "
                "(in=%u out=%u scratch=%u)",
                in_bytes, out_bytes, scratch_bytes);
}

int
log2Exact(std::uint32_t value)
{
    if (value == 0 || (value & (value - 1)) != 0)
        util::fatal("expected a power of two, got %u", value);
    int n = 0;
    while ((value >> n) != 1)
        ++n;
    return n;
}

isa::Label
emitFrameLoopHead(isa::ProgramBuilder &b, const MemoryPlan &plan,
                  std::uint16_t ac_regs, std::uint16_t match_mask,
                  isa::Reg tmp)
{
    using namespace isa;
    b.acEnable(true);
    b.acSet(ac_regs);
    b.ldi(kFrameReg, 0);

    Label frame_loop = b.here("frame_loop");
    b.markResume(kFrameReg, match_mask);

    auto emitSlotBase = [&b, tmp](Reg dst, std::uint32_t base,
                                  std::uint32_t bytes, int slots) {
        b.andi(dst, kFrameReg,
               static_cast<std::uint16_t>(slots - 1));
        if ((bytes & (bytes - 1)) == 0) {
            b.slli(dst, dst,
                   static_cast<std::uint16_t>(log2Exact(bytes)));
        } else {
            b.ldi(tmp, static_cast<std::uint16_t>(bytes));
            b.mul(dst, dst, tmp);
        }
        b.ldi(tmp, static_cast<std::uint16_t>(base));
        b.add(dst, dst, tmp);
    };

    emitSlotBase(kInBase, plan.in_base, plan.in_bytes, plan.in_slots);
    emitSlotBase(kOutBase, plan.out_base, plan.out_bytes, plan.out_slots);
    return frame_loop;
}

void
emitFrameLoopTail(isa::ProgramBuilder &b, isa::Label frame_loop)
{
    b.addi(kFrameReg, kFrameReg, 1);
    b.jmp(frame_loop);
}

} // namespace inc::kernels
