/**
 * @file
 * MiBench tiff-tool testbenches.
 *
 * tiff2bw: planar-RGB frame (three correlated scene planes) to
 * luminance, out = (28*R + 151*G + 77*B) >> 8 (the tool's integer
 * weights).
 *
 * tiff2rgba: grayscale frame to RGBA with a gamma lookup table in
 * constant memory; out pixels are {L[p], L[p], L[p], 255}.
 */

#include <cmath>

#include "kernels/common.h"

namespace inc::kernels
{

namespace
{

std::vector<std::uint8_t>
goldenTiff2Bw(const std::vector<std::uint8_t> &in, int w, int h)
{
    const size_t plane = static_cast<size_t>(w) * h;
    std::vector<std::uint8_t> out(plane, 0);
    for (size_t i = 0; i < plane; ++i) {
        const unsigned v = 28u * in[i] + 151u * in[plane + i] +
                           77u * in[2 * plane + i];
        out[i] = static_cast<std::uint8_t>(v >> 8);
    }
    return out;
}

std::vector<std::uint8_t>
gammaLut()
{
    std::vector<std::uint8_t> lut(256);
    for (int i = 0; i < 256; ++i) {
        lut[static_cast<size_t>(i)] = static_cast<std::uint8_t>(
            std::lround(255.0 * std::pow(i / 255.0, 1.0 / 1.8)));
    }
    return lut;
}

std::vector<std::uint8_t>
goldenTiff2Rgba(const std::vector<std::uint8_t> &in, int w, int h)
{
    const std::vector<std::uint8_t> lut = gammaLut();
    const size_t plane = static_cast<size_t>(w) * h;
    std::vector<std::uint8_t> out(plane * 4, 0);
    for (size_t i = 0; i < plane; ++i) {
        const std::uint8_t l = lut[in[i]];
        out[4 * i] = l;
        out[4 * i + 1] = l;
        out[4 * i + 2] = l;
        out[4 * i + 3] = 255;
    }
    return out;
}

} // namespace

Kernel
makeTiff2Bw(int width, int height)
{
    using namespace isa;
    const auto plane =
        static_cast<std::uint32_t>(width) * static_cast<std::uint32_t>(
                                                height);

    Kernel k;
    k.name = "tiff2bw";
    k.width = width;
    k.height = height;
    k.scene = util::SceneKind::scene;
    k.ac_reg_mask = regMask({r1, r2, r3});
    k.match_mask = regMask({kColReg});

    const MemoryPlan plan = planMemory(3 * plane, plane);
    k.layout = plan.layout();

    ProgramBuilder b;
    Label frame_loop =
        emitFrameLoopHead(b, plan, k.ac_reg_mask, k.match_mask);

    // Flat pixel loop (r11 = linear index).
    b.ldi(kColReg, 0);
    Label px_loop = b.here("px_loop");

    b.add(r10, kInBase, kColReg);
    b.ld8(r1, r10, 0); // R
    b.ldi(r9, 28);
    b.mul(r1, r1, r9);
    b.ld8(r2, r10, static_cast<std::int16_t>(plane)); // G
    b.ldi(r9, 151);
    b.mul(r2, r2, r9);
    b.add(r1, r1, r2);
    b.ld8(r2, r10, static_cast<std::int16_t>(2 * plane)); // B
    b.ldi(r9, 77);
    b.mul(r2, r2, r9);
    b.add(r1, r1, r2);
    b.srli(r1, r1, 8);

    b.add(r10, kOutBase, kColReg);
    b.st8(r1, r10, 0);

    b.addi(kColReg, kColReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(plane));
    b.bltu(kColReg, r9, px_loop);

    emitFrameLoopTail(b, frame_loop);
    k.program = b.finish();

    // Input: three correlated planes (consecutive scene frames).
    k.make_input = [plane](const util::SceneGenerator &scene, int frame) {
        std::vector<std::uint8_t> bytes;
        bytes.reserve(3 * plane);
        for (int c = 0; c < 3; ++c) {
            const auto img = scene.frame(3 * frame + c);
            bytes.insert(bytes.end(), img.data().begin(),
                         img.data().end());
        }
        return bytes;
    };
    k.golden = [width, height](const std::vector<std::uint8_t> &in) {
        return goldenTiff2Bw(in, width, height);
    };
    return k;
}

Kernel
makeTiff2Rgba(int width, int height)
{
    using namespace isa;
    const auto plane =
        static_cast<std::uint32_t>(width) * static_cast<std::uint32_t>(
                                                height);

    Kernel k;
    k.name = "tiff2rgba";
    k.width = width;
    k.height = height;
    k.scene = util::SceneKind::blobs;
    k.ac_reg_mask = regMask({r1, r2, r3});
    k.match_mask = regMask({kColReg});

    const MemoryPlan plan = planMemory(plane, 4 * plane);
    k.layout = plan.layout();
    k.init_blocks.push_back({plan.const_base, gammaLut()});

    ProgramBuilder b;
    Label frame_loop =
        emitFrameLoopHead(b, plan, k.ac_reg_mask, k.match_mask);

    b.ldi(kColReg, 0);
    Label px_loop = b.here("px_loop");

    b.add(r10, kInBase, kColReg);
    b.ld8(r1, r10, 0);
    // Gamma LUT lookup.
    b.ldi(r9, static_cast<std::uint16_t>(plan.const_base));
    b.add(r9, r9, r1);
    b.ld8(r2, r9, 0);

    b.slli(r10, kColReg, 2);
    b.add(r10, r10, kOutBase);
    b.st8(r2, r10, 0);
    b.st8(r2, r10, 1);
    b.st8(r2, r10, 2);
    b.ldi(r3, 255);
    b.st8(r3, r10, 3);

    b.addi(kColReg, kColReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(plane));
    b.bltu(kColReg, r9, px_loop);

    emitFrameLoopTail(b, frame_loop);
    k.program = b.finish();

    k.make_input = [](const util::SceneGenerator &scene, int frame) {
        return scene.frame(frame).data();
    };
    k.golden = [width, height](const std::vector<std::uint8_t> &in) {
        return goldenTiff2Rgba(in, width, height);
    };
    return k;
}

} // namespace inc::kernels
