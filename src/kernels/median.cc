/**
 * @file
 * 3x3 median filter using a 19-exchange sorting network (branchless
 * min/max ops, safe for incidental SIMD). Borders are left unwritten.
 */

#include <algorithm>
#include <array>

#include "kernels/common.h"

namespace inc::kernels
{

namespace
{

std::vector<std::uint8_t>
goldenMedian(const std::vector<std::uint8_t> &in, int w, int h)
{
    std::vector<std::uint8_t> out(static_cast<size_t>(w) * h, 0);
    for (int y = 1; y < h - 1; ++y) {
        for (int x = 1; x < w - 1; ++x) {
            std::array<std::uint8_t, 9> v;
            int i = 0;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    v[static_cast<size_t>(i++)] =
                        in[static_cast<size_t>((y + dy) * w + (x + dx))];
                }
            }
            std::nth_element(v.begin(), v.begin() + 4, v.end());
            out[static_cast<size_t>(y * w + x)] = v[4];
        }
    }
    return out;
}

} // namespace

Kernel
makeMedian(int width, int height)
{
    using namespace isa;
    const auto w16 = static_cast<std::int16_t>(width);
    const int log2w = log2Exact(static_cast<std::uint32_t>(width));
    const auto bytes =
        static_cast<std::uint32_t>(width) * static_cast<std::uint32_t>(
                                                height);

    Kernel k;
    k.name = "median";
    k.width = width;
    k.height = height;
    k.scene = util::SceneKind::texture;
    // r10 doubles as the exchange-network temporary and the address
    // register; it stays precise (non-AC) so addresses are never noisy —
    // the window registers still receive noise at every max/mov
    // write-back.
    k.ac_reg_mask = regMask({r1, r2, r3, r4, r5, r6, r7, r8, r9});
    k.match_mask = regMask({kRowReg, kColReg});

    const MemoryPlan plan = planMemory(bytes, bytes);
    k.layout = plan.layout();

    ProgramBuilder b;
    Label frame_loop =
        emitFrameLoopHead(b, plan, k.ac_reg_mask, k.match_mask);

    b.ldi(kRowReg, 1);
    Label y_loop = b.here("y_loop");
    b.ldi(kColReg, 1);
    Label x_loop = b.here("x_loop");

    // r10 = input address of the window center.
    b.slli(r10, kRowReg, static_cast<std::uint16_t>(log2w));
    b.add(r10, r10, kColReg);
    b.add(r10, r10, kInBase);

    const std::int16_t offs[9] = {
        static_cast<std::int16_t>(-w16 - 1),
        static_cast<std::int16_t>(-w16),
        static_cast<std::int16_t>(-w16 + 1),
        -1, 0, 1,
        static_cast<std::int16_t>(w16 - 1),
        w16,
        static_cast<std::int16_t>(w16 + 1)};
    const Reg window[9] = {r1, r2, r3, r4, r5, r6, r7, r8, r9};
    for (int i = 0; i < 9; ++i)
        b.ld8(window[static_cast<size_t>(i)], r10,
              offs[static_cast<size_t>(i)]);

    // Paeth's 19-exchange median-of-9 network; median lands in slot 4
    // (register r5). cx(a,b): a <- min, b <- max, via temp r10.
    auto cx = [&b, &window](int i, int j) {
        const Reg a = window[static_cast<size_t>(i)];
        const Reg c = window[static_cast<size_t>(j)];
        b.min(r10, a, c);
        b.max(c, a, c);
        b.mov(a, r10);
    };
    cx(1, 2); cx(4, 5); cx(7, 8);
    cx(0, 1); cx(3, 4); cx(6, 7);
    cx(1, 2); cx(4, 5); cx(7, 8);
    cx(0, 3); cx(5, 8); cx(4, 7);
    cx(3, 6); cx(1, 4); cx(2, 5);
    cx(4, 7); cx(4, 2); cx(6, 4);
    cx(4, 2);

    // Output address and store (recompute index from y/x).
    b.slli(r10, kRowReg, static_cast<std::uint16_t>(log2w));
    b.add(r10, r10, kColReg);
    b.add(r10, r10, kOutBase);
    b.st8(r5, r10, 0);

    b.addi(kColReg, kColReg, 1);
    b.ldi(r10, static_cast<std::uint16_t>(width - 1));
    b.blt(kColReg, r10, x_loop);
    b.addi(kRowReg, kRowReg, 1);
    b.ldi(r10, static_cast<std::uint16_t>(height - 1));
    b.blt(kRowReg, r10, y_loop);

    emitFrameLoopTail(b, frame_loop);
    k.program = b.finish();

    k.make_input = [](const util::SceneGenerator &scene, int frame) {
        return scene.frame(frame).data();
    };
    k.golden = [width, height](const std::vector<std::uint8_t> &in) {
        return goldenMedian(in, width, height);
    };
    return k;
}

} // namespace inc::kernels
