/**
 * @file
 * Sobel edge detection (3x3 gradient magnitude, |Gx| + |Gy|, clamped).
 * Border pixels are left unwritten (zero), as in the golden reference.
 */

#include <algorithm>
#include <cstdlib>

#include "kernels/common.h"
#include "util/logging.h"

namespace inc::kernels
{

namespace
{

std::vector<std::uint8_t>
goldenSobel(const std::vector<std::uint8_t> &in, int w, int h)
{
    std::vector<std::uint8_t> out(static_cast<size_t>(w) * h, 0);
    auto px = [&in, w](int x, int y) {
        return static_cast<int>(in[static_cast<size_t>(y * w + x)]);
    };
    for (int y = 1; y < h - 1; ++y) {
        for (int x = 1; x < w - 1; ++x) {
            const int gx = (px(x + 1, y - 1) + 2 * px(x + 1, y) +
                            px(x + 1, y + 1)) -
                           (px(x - 1, y - 1) + 2 * px(x - 1, y) +
                            px(x - 1, y + 1));
            const int gy = (px(x - 1, y + 1) + 2 * px(x, y + 1) +
                            px(x + 1, y + 1)) -
                           (px(x - 1, y - 1) + 2 * px(x, y - 1) +
                            px(x + 1, y - 1));
            const int mag = std::min(255, std::abs(gx) + std::abs(gy));
            out[static_cast<size_t>(y * w + x)] =
                static_cast<std::uint8_t>(mag);
        }
    }
    return out;
}

} // namespace

Kernel
makeSobel(int width, int height)
{
    using namespace isa;
    const auto w16 = static_cast<std::int16_t>(width);
    const int log2w = log2Exact(static_cast<std::uint32_t>(width));
    const auto bytes =
        static_cast<std::uint32_t>(width) * static_cast<std::uint32_t>(
                                                height);

    Kernel k;
    k.name = "sobel";
    k.width = width;
    k.height = height;
    k.scene = util::SceneKind::scene;
    k.ac_reg_mask = regMask({r1, r2, r3, r4});
    k.match_mask = regMask({kRowReg, kColReg});

    const MemoryPlan plan = planMemory(bytes, bytes);
    k.layout = plan.layout();

    ProgramBuilder b;
    Label frame_loop =
        emitFrameLoopHead(b, plan, k.ac_reg_mask, k.match_mask);

    b.ldi(kRowReg, 1);
    Label y_loop = b.here("y_loop");
    b.ldi(kColReg, 1);
    Label x_loop = b.here("x_loop");

    // r10 = y*W + x; r9 = input address of the window center.
    b.slli(r10, kRowReg, static_cast<std::uint16_t>(log2w));
    b.add(r10, r10, kColReg);
    b.add(r9, r10, kInBase);

    // Gx: right column minus left column (1,2,1 weights).
    b.ld8(r1, r9, static_cast<std::int16_t>(1 - w16));
    b.ld8(r2, r9, 1);
    b.slli(r2, r2, 1);
    b.add(r1, r1, r2);
    b.ld8(r2, r9, static_cast<std::int16_t>(1 + w16));
    b.add(r1, r1, r2);
    b.ld8(r2, r9, static_cast<std::int16_t>(-1 - w16));
    b.ld8(r3, r9, -1);
    b.slli(r3, r3, 1);
    b.add(r2, r2, r3);
    b.ld8(r3, r9, static_cast<std::int16_t>(w16 - 1));
    b.add(r2, r2, r3);
    b.sub(r1, r1, r2); // gx

    // Gy: bottom row minus top row.
    b.ld8(r2, r9, static_cast<std::int16_t>(w16 - 1));
    b.ld8(r3, r9, w16);
    b.slli(r3, r3, 1);
    b.add(r2, r2, r3);
    b.ld8(r3, r9, static_cast<std::int16_t>(w16 + 1));
    b.add(r2, r2, r3);
    b.ld8(r3, r9, static_cast<std::int16_t>(-w16 - 1));
    b.ld8(r4, r9, static_cast<std::int16_t>(-w16));
    b.slli(r4, r4, 1);
    b.add(r3, r3, r4);
    b.ld8(r4, r9, static_cast<std::int16_t>(1 - w16));
    b.add(r3, r3, r4);
    b.sub(r2, r2, r3); // gy

    // |gx| + |gy|, clamped to 255.
    b.abs_(r1, r1, r3);
    b.abs_(r2, r2, r3);
    b.add(r1, r1, r2);
    b.ldi(r3, 255);
    b.min(r1, r1, r3);

    b.add(r10, r10, kOutBase);
    b.st8(r1, r10, 0);

    b.addi(kColReg, kColReg, 1);
    b.ldi(r10, static_cast<std::uint16_t>(width - 1));
    b.blt(kColReg, r10, x_loop);
    b.addi(kRowReg, kRowReg, 1);
    b.ldi(r10, static_cast<std::uint16_t>(height - 1));
    b.blt(kRowReg, r10, y_loop);

    emitFrameLoopTail(b, frame_loop);
    k.program = b.finish();

    k.make_input = [](const util::SceneGenerator &scene, int frame) {
        return scene.frame(frame).data();
    };
    k.golden = [width, height](const std::vector<std::uint8_t> &in) {
        return goldenSobel(in, width, height);
    };
    return k;
}

} // namespace inc::kernels
