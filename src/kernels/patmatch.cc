/**
 * @file
 * Template matching (extension kernel, beyond the Fig. 28 set).
 *
 * The paper motivates its workloads as "image processing and pattern
 * matching kernels" (Secs. 2.1, 7); this kernel is the pattern-matching
 * archetype: slide an 8x8 template over the frame and emit the inverted,
 * scaled sum of absolute differences per position — bright pixels mark
 * template hits. Branchless inner loops (abs via neg/max) keep it safe
 * for incidental SIMD adoption.
 *
 * Construct with makeKernel("patmatch"); it is not part of
 * kernelNames() so the Fig. 28 reproduction remains the paper's exact
 * testbench set.
 */

#include <algorithm>
#include <cstdlib>

#include "kernels/common.h"

namespace inc::kernels
{

namespace
{

constexpr int kTemplateSize = 8;

/** The sought pattern: a bright diagonal bar on a dark field. */
std::vector<std::uint8_t>
templatePattern()
{
    std::vector<std::uint8_t> pattern(kTemplateSize * kTemplateSize, 32);
    for (int y = 0; y < kTemplateSize; ++y) {
        for (int x = 0; x < kTemplateSize; ++x) {
            if (std::abs(x - y) <= 1) {
                pattern[static_cast<size_t>(y * kTemplateSize + x)] =
                    220;
            }
        }
    }
    return pattern;
}

std::vector<std::uint8_t>
goldenPatMatch(const std::vector<std::uint8_t> &in, int w, int h)
{
    const auto pattern = templatePattern();
    std::vector<std::uint8_t> out(static_cast<size_t>(w) * h, 0);
    for (int y = 0; y + kTemplateSize <= h; ++y) {
        for (int x = 0; x + kTemplateSize <= w; ++x) {
            int sad = 0;
            for (int dy = 0; dy < kTemplateSize; ++dy) {
                for (int dx = 0; dx < kTemplateSize; ++dx) {
                    const int p = in[static_cast<size_t>(
                        (y + dy) * w + (x + dx))];
                    const int t = pattern[static_cast<size_t>(
                        dy * kTemplateSize + dx)];
                    sad += std::abs(p - t);
                }
            }
            // Invert and scale: perfect match -> 255, poor match -> 0.
            const int score = 255 - std::min(255, sad >> 6);
            out[static_cast<size_t>(y * w + x)] =
                static_cast<std::uint8_t>(score);
        }
    }
    return out;
}

} // namespace

Kernel
makePatMatch(int width, int height)
{
    using namespace isa;
    const int log2w = log2Exact(static_cast<std::uint32_t>(width));
    const auto bytes =
        static_cast<std::uint32_t>(width) * static_cast<std::uint32_t>(
                                                height);

    Kernel k;
    k.name = "patmatch";
    k.width = width;
    k.height = height;
    k.scene = util::SceneKind::scene;
    k.ac_reg_mask = regMask({r1, r2, r3, r5});
    k.match_mask = regMask({kRowReg, kColReg, r8, r7});

    const MemoryPlan plan = planMemory(bytes, bytes);
    k.layout = plan.layout();
    k.init_blocks.push_back({plan.const_base, templatePattern()});

    ProgramBuilder b;
    Label frame_loop =
        emitFrameLoopHead(b, plan, k.ac_reg_mask, k.match_mask);

    b.ldi(kRowReg, 0); // y
    Label y_loop = b.here("y_loop");
    b.ldi(kColReg, 0); // x
    Label x_loop = b.here("x_loop");

    b.ldi(r5, 0); // SAD accumulator
    b.ldi(r8, 0); // dy
    Label dy_loop = b.here("dy_loop");
    b.ldi(r7, 0); // dx
    Label dx_loop = b.here("dx_loop");

    // r10 = input address of (x+dx, y+dy).
    b.add(r10, kRowReg, r8);
    b.slli(r10, r10, static_cast<std::uint16_t>(log2w));
    b.add(r10, r10, kColReg);
    b.add(r10, r10, r7);
    b.add(r10, r10, kInBase);
    b.ld8(r1, r10, 0);

    // r9 = template address of (dx, dy).
    b.slli(r9, r8, 3);
    b.add(r9, r9, r7);
    b.ldi(r10, static_cast<std::uint16_t>(plan.const_base));
    b.add(r9, r9, r10);
    b.ld8(r2, r9, 0);

    b.sub(r3, r1, r2);
    b.abs_(r3, r3, r2);
    b.add(r5, r5, r3);

    b.addi(r7, r7, 1);
    b.ldi(r9, kTemplateSize);
    b.blt(r7, r9, dx_loop);
    b.addi(r8, r8, 1);
    b.ldi(r9, kTemplateSize);
    b.blt(r8, r9, dy_loop);

    // score = 255 - min(255, sad >> 6)
    b.srli(r5, r5, 6);
    b.ldi(r9, 255);
    b.min(r5, r5, r9);
    b.sub(r5, r9, r5);

    b.slli(r10, kRowReg, static_cast<std::uint16_t>(log2w));
    b.add(r10, r10, kColReg);
    b.add(r10, r10, kOutBase);
    b.st8(r5, r10, 0);

    b.addi(kColReg, kColReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(width - kTemplateSize + 1));
    b.blt(kColReg, r9, x_loop);
    b.addi(kRowReg, kRowReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(height - kTemplateSize + 1));
    b.blt(kRowReg, r9, y_loop);

    emitFrameLoopTail(b, frame_loop);
    k.program = b.finish();

    k.make_input = [](const util::SceneGenerator &scene, int frame) {
        return scene.frame(frame).data();
    };
    k.golden = [width, height](const std::vector<std::uint8_t> &in) {
        return goldenPatMatch(in, width, height);
    };
    return k;
}

} // namespace inc::kernels
