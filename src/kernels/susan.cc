/**
 * @file
 * SUSAN-family kernels (corners, edges, smoothing) on a 3x3 USAN window.
 *
 * Each interior pixel's USAN count n is the number of neighbours whose
 * absolute difference from the nucleus is within the brightness
 * threshold. The three testbenches share that core:
 *
 *   corners   : out = clamp((g_c - n) * 63),  g_c = 4
 *   edges     : out = clamp((g_e - n) * 42),  g_e = 6
 *   smoothing : out = (c + sum of similar neighbours) / (1 + n)
 *
 * All data-dependent choices are branchless (abs via neg/max, the
 * similarity test via sltiu), keeping incidental SIMD lanes convergent.
 */

#include <algorithm>
#include <cstdlib>

#include "kernels/common.h"

namespace inc::kernels
{

namespace
{

constexpr int kThreshold = 15;
constexpr int kCornerG = 4;
constexpr int kCornerScale = 63;
constexpr int kEdgeG = 6;
constexpr int kEdgeScale = 42;

enum class SusanVariant
{
    corners,
    edges,
    smoothing
};

std::vector<std::uint8_t>
goldenSusan(const std::vector<std::uint8_t> &in, int w, int h,
            SusanVariant variant)
{
    std::vector<std::uint8_t> out(static_cast<size_t>(w) * h, 0);
    auto px = [&in, w](int x, int y) {
        return static_cast<int>(in[static_cast<size_t>(y * w + x)]);
    };
    for (int y = 1; y < h - 1; ++y) {
        for (int x = 1; x < w - 1; ++x) {
            const int c = px(x, y);
            int n = 0;
            int sum = c;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    if (dx == 0 && dy == 0)
                        continue;
                    const int p = px(x + dx, y + dy);
                    const int s = std::abs(p - c) <= kThreshold ? 1 : 0;
                    n += s;
                    sum += p * s;
                }
            }
            int value = 0;
            switch (variant) {
              case SusanVariant::corners:
                value = std::min(255,
                                 std::max(0, kCornerG - n) * kCornerScale);
                break;
              case SusanVariant::edges:
                value = std::min(255,
                                 std::max(0, kEdgeG - n) * kEdgeScale);
                break;
              case SusanVariant::smoothing:
                value = sum / (1 + n);
                break;
            }
            out[static_cast<size_t>(y * w + x)] =
                static_cast<std::uint8_t>(value);
        }
    }
    return out;
}

Kernel
makeSusan(int width, int height, SusanVariant variant,
          const std::string &name)
{
    using namespace isa;
    const auto w16 = static_cast<std::int16_t>(width);
    const int log2w = log2Exact(static_cast<std::uint32_t>(width));
    const auto bytes =
        static_cast<std::uint32_t>(width) * static_cast<std::uint32_t>(
                                                height);

    Kernel k;
    k.name = name;
    k.width = width;
    k.height = height;
    k.scene = variant == SusanVariant::smoothing
                  ? util::SceneKind::texture
                  : util::SceneKind::scene;
    // Pixel values (r1, r2), differences (r3) and the brightness sum
    // (r6) are approximable; the similarity flag (r4) and USAN count
    // (r5) feed the divisor / response scaling and stay precise — a
    // noisy divisor would make quality collapse at any bitwidth rather
    // than degrade gradually.
    k.ac_reg_mask = regMask({r1, r2, r3, r6});
    k.match_mask = regMask({kRowReg, kColReg});

    const MemoryPlan plan = planMemory(bytes, bytes);
    k.layout = plan.layout();

    ProgramBuilder b;
    Label frame_loop =
        emitFrameLoopHead(b, plan, k.ac_reg_mask, k.match_mask);

    b.ldi(kRowReg, 1);
    Label y_loop = b.here("y_loop");
    b.ldi(kColReg, 1);
    Label x_loop = b.here("x_loop");

    // r9 = input address of the nucleus.
    b.slli(r10, kRowReg, static_cast<std::uint16_t>(log2w));
    b.add(r10, r10, kColReg);
    b.add(r9, r10, kInBase);

    b.ld8(r1, r9, 0); // nucleus
    b.ldi(r5, 0);     // n
    if (variant == SusanVariant::smoothing)
        b.mov(r6, r1); // sum starts at the nucleus

    const std::int16_t offs[8] = {
        static_cast<std::int16_t>(-w16 - 1),
        static_cast<std::int16_t>(-w16),
        static_cast<std::int16_t>(-w16 + 1),
        -1, 1,
        static_cast<std::int16_t>(w16 - 1),
        w16,
        static_cast<std::int16_t>(w16 + 1)};
    for (std::int16_t off : offs) {
        b.ld8(r2, r9, off);
        b.sub(r3, r2, r1);
        b.abs_(r3, r3, r4);
        b.sltiu(r4, r3, kThreshold + 1); // s = |p-c| <= t
        b.add(r5, r5, r4);
        if (variant == SusanVariant::smoothing) {
            b.mul(r4, r4, r2); // p*s
            b.add(r6, r6, r4);
        }
    }

    switch (variant) {
      case SusanVariant::corners:
        b.ldi(r2, kCornerG);
        b.sub(r2, r2, r5);
        b.max(r2, r2, r0);
        b.ldi(r3, kCornerScale);
        b.mul(r2, r2, r3);
        b.ldi(r3, 255);
        b.min(r2, r2, r3);
        break;
      case SusanVariant::edges:
        b.ldi(r2, kEdgeG);
        b.sub(r2, r2, r5);
        b.max(r2, r2, r0);
        b.ldi(r3, kEdgeScale);
        b.mul(r2, r2, r3);
        b.ldi(r3, 255);
        b.min(r2, r2, r3);
        break;
      case SusanVariant::smoothing:
        b.addi(r5, r5, 1);
        b.divu(r2, r6, r5);
        break;
    }

    b.add(r10, r10, kOutBase);
    b.st8(r2, r10, 0);

    b.addi(kColReg, kColReg, 1);
    b.ldi(r10, static_cast<std::uint16_t>(width - 1));
    b.blt(kColReg, r10, x_loop);
    b.addi(kRowReg, kRowReg, 1);
    b.ldi(r10, static_cast<std::uint16_t>(height - 1));
    b.blt(kRowReg, r10, y_loop);

    emitFrameLoopTail(b, frame_loop);
    k.program = b.finish();

    k.make_input = [](const util::SceneGenerator &scene, int frame) {
        return scene.frame(frame).data();
    };
    k.golden = [width, height, variant](
                   const std::vector<std::uint8_t> &in) {
        return goldenSusan(in, width, height, variant);
    };
    return k;
}

} // namespace

Kernel
makeSusanCorners(int width, int height)
{
    return makeSusan(width, height, SusanVariant::corners,
                     "susan.corners");
}

Kernel
makeSusanEdges(int width, int height)
{
    return makeSusan(width, height, SusanVariant::edges, "susan.edges");
}

Kernel
makeSusanSmoothing(int width, int height)
{
    return makeSusan(width, height, SusanVariant::smoothing,
                     "susan.smoothing");
}

} // namespace inc::kernels
