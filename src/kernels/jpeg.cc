/**
 * @file
 * JPEG encode testbench, reduced to its compute-dominant core: per 8x8
 * block, the DC term (block mean) and a rate estimate from the quantized
 * sum of absolute differences against the DC (the SAD loop mirrors the
 * motion-estimation workload the paper applies incidental computing to;
 * approximation error affects the estimated output *size*, matching the
 * paper's Table 2 QoS definition for JPEG).
 *
 * Output: (W/8)*(H/8) blocks x 2 bytes = [DC, rate].
 */

#include <algorithm>
#include <cstdlib>

#include "kernels/common.h"

namespace inc::kernels
{

namespace
{

std::vector<std::uint8_t>
goldenJpeg(const std::vector<std::uint8_t> &in, int w, int h)
{
    const int bw = w / 8;
    const int bh = h / 8;
    std::vector<std::uint8_t> out(static_cast<size_t>(bw) * bh * 2, 0);
    for (int by = 0; by < bh; ++by) {
        for (int bx = 0; bx < bw; ++bx) {
            int sum = 0;
            for (int dy = 0; dy < 8; ++dy) {
                for (int dx = 0; dx < 8; ++dx) {
                    sum += in[static_cast<size_t>((by * 8 + dy) * w +
                                                  bx * 8 + dx)];
                }
            }
            const int dc = sum >> 6;
            int sad = 0;
            for (int dy = 0; dy < 8; ++dy) {
                for (int dx = 0; dx < 8; ++dx) {
                    const int p = in[static_cast<size_t>(
                        (by * 8 + dy) * w + bx * 8 + dx)];
                    sad += std::abs(p - dc);
                }
            }
            const int rate = std::min(255, sad >> 4);
            const size_t base =
                static_cast<size_t>((by * bw + bx) * 2);
            out[base] = static_cast<std::uint8_t>(dc);
            out[base + 1] = static_cast<std::uint8_t>(rate);
        }
    }
    return out;
}

} // namespace

Kernel
makeJpegEncode(int width, int height)
{
    using namespace isa;
    const int log2w = log2Exact(static_cast<std::uint32_t>(width));
    const int bw = width / 8;
    const int bh = height / 8;
    const auto in_bytes =
        static_cast<std::uint32_t>(width) * static_cast<std::uint32_t>(
                                                height);
    const auto out_bytes = static_cast<std::uint32_t>(bw * bh * 2);

    Kernel k;
    k.name = "jpeg.encode";
    k.width = width;
    k.height = height;
    k.scene = util::SceneKind::scene;
    k.ac_reg_mask = regMask({r1, r2, r3, r4, r5});
    k.match_mask = regMask({kRowReg, kColReg, r8, r7});

    const MemoryPlan plan = planMemory(in_bytes, out_bytes);
    k.layout = plan.layout();

    ProgramBuilder b;
    Label frame_loop =
        emitFrameLoopHead(b, plan, k.ac_reg_mask, k.match_mask);

    b.ldi(kRowReg, 0); // by
    Label by_loop = b.here("by_loop");
    b.ldi(kColReg, 0); // bx
    Label bx_loop = b.here("bx_loop");

    // Helper: r10 = input address of block pixel (r8=dy, r7=dx).
    auto emitPixelAddr = [&]() {
        b.slli(r10, kRowReg, 3);
        b.add(r10, r10, r8);
        b.slli(r10, r10, static_cast<std::uint16_t>(log2w));
        b.add(r10, r10, r7);
        b.slli(r9, kColReg, 3);
        b.add(r10, r10, r9);
        b.add(r10, r10, kInBase);
    };

    // Pass 1: block sum -> DC.
    b.ldi(r1, 0);
    b.ldi(r8, 0);
    Label sum_dy = b.here("sum_dy");
    b.ldi(r7, 0);
    Label sum_dx = b.here("sum_dx");
    emitPixelAddr();
    b.ld8(r2, r10, 0);
    b.add(r1, r1, r2);
    b.addi(r7, r7, 1);
    b.ldi(r9, 8);
    b.blt(r7, r9, sum_dx);
    b.addi(r8, r8, 1);
    b.ldi(r9, 8);
    b.blt(r8, r9, sum_dy);
    b.srli(r4, r1, 6); // DC

    // Pass 2: SAD against DC.
    b.ldi(r5, 0);
    b.ldi(r8, 0);
    Label sad_dy = b.here("sad_dy");
    b.ldi(r7, 0);
    Label sad_dx = b.here("sad_dx");
    emitPixelAddr();
    b.ld8(r2, r10, 0);
    b.sub(r3, r2, r4);
    b.abs_(r3, r3, r2);
    b.add(r5, r5, r3);
    b.addi(r7, r7, 1);
    b.ldi(r9, 8);
    b.blt(r7, r9, sad_dx);
    b.addi(r8, r8, 1);
    b.ldi(r9, 8);
    b.blt(r8, r9, sad_dy);

    b.srli(r5, r5, 4);
    b.ldi(r9, 255);
    b.min(r5, r5, r9); // rate

    // Store [DC, rate] at out_base + (by*bw + bx)*2.
    b.ldi(r9, static_cast<std::uint16_t>(bw));
    b.mul(r10, kRowReg, r9);
    b.add(r10, r10, kColReg);
    b.slli(r10, r10, 1);
    b.add(r10, r10, kOutBase);
    b.st8(r4, r10, 0);
    b.st8(r5, r10, 1);

    b.addi(kColReg, kColReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(bw));
    b.blt(kColReg, r9, bx_loop);
    b.addi(kRowReg, kRowReg, 1);
    b.ldi(r9, static_cast<std::uint16_t>(bh));
    b.blt(kRowReg, r9, by_loop);

    emitFrameLoopTail(b, frame_loop);
    k.program = b.finish();

    k.make_input = [](const util::SceneGenerator &scene, int frame) {
        return scene.frame(frame).data();
    };
    k.golden = [width, height](const std::vector<std::uint8_t> &in) {
        return goldenJpeg(in, width, height);
    };
    return k;
}

} // namespace inc::kernels
