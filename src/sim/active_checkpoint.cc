#include "sim/active_checkpoint.h"

#include "energy/capacitor.h"
#include "nvm/nvm_array.h"
#include "obs/observer.h"
#include "obs/report/flight_recorder.h"
#include "obs/schema.h"
#include "sim/strategy/image_store.h"
#include "util/logging.h"

namespace inc::sim
{

ActiveCheckpointResult
runActiveCheckpoint(const trace::PowerTrace &trace,
                    const ActiveCheckpointConfig &config)
{
    if (config.checkpoint_interval_instr <= 0)
        util::fatal("checkpoint interval must be positive");

    const energy::EnergyModel model(config.energy);
    // Application instructions use the image-kernel blend (the same
    // workload the NVP runs): mostly ALU with a realistic load/store/
    // multiply share.
    const double instr_energy =
        0.55 * model.instructionEnergyNj(isa::Op::add, 8) +
        0.25 * model.instructionEnergyNj(isa::Op::ld8, 8) +
        0.10 * model.instructionEnergyNj(isa::Op::st8, 8) +
        0.10 * model.instructionEnergyNj(isa::Op::mul, 8);
    // Software checkpoint: a bookkeeping prologue, then state_bytes
    // copied through load+store pairs (2 cycles / byte).
    const double prologue_energy =
        config.checkpoint_overhead_instr * instr_energy;
    const double byte_energy =
        model.instructionEnergyNj(isa::Op::ld8, 8) +
        model.instructionEnergyNj(isa::Op::st8, 8);
    const double checkpoint_energy =
        prologue_energy +
        static_cast<double>(config.state_bytes) * byte_energy;

    energy::CapacitorParams cap_params;
    cap_params.capacity_nj = config.capacity_nj;
    cap_params.efficiency = config.efficiency;
    energy::Capacitor cap(cap_params);

    ActiveCheckpointResult result;
    constexpr int kCyclesPerSample = 100;
    std::uint64_t checkpoint_attempts = 0; ///< prologue starts
    bool on = false;
    bool has_image = false;     // an intact checkpoint exists in FeRAM
    int copy_progress = -1;     // bytes copied; -1 = no copy in flight

    // Materialised FeRAM: a double-buffered image plus commit metadata
    // behind the ImageStore discipline shared with the strategy zoo.
    // The copy loop writes the in-flight image into the *inactive* slot
    // and flips the metadata only after the last byte, so a kill at any
    // byte leaves the committed slot untouched — exactly the
    // double-buffered commit the model's torn-checkpoint accounting
    // assumes. The legacy 16-byte "ac.meta" layout is preserved
    // byte-identically (tests/test_arena_sweep.cc reads it raw).
    const auto state_bytes = static_cast<std::size_t>(config.state_bytes);
    ImageStore store(config.persistence, "ac", state_bytes);
    has_image = store.warmStart(); // warm restart from the committed image
    const std::uint64_t attempt_base = store.bootSeq();
    double since_checkpoint = 0.0; // committed-but-unsaved instructions
    double off_tenth_ms = 0.0;     // dark time since last brown-out
    const double start_threshold =
        config.restart_overhead_instr * instr_energy +
        checkpoint_energy * 1.5;

    obs::FlightRecorder *flight =
        config.obs ? config.obs->flight : nullptr;
    std::size_t cur_sample = 0;

    // Flight-recorder view of a brown-out: what the software checkpoint
    // had persisted when the lights went out. Must run before the
    // caller resets copy_progress.
    const auto recordOutage = [&](bool torn_copy) {
        if (!flight)
            return;
        if (obs::OutageRecord *rec = flight->appendOutage()) {
            rec->fail_sample = cur_sample;
            rec->stored_nj = cap.energyNj();
            rec->lanes = 1;
            rec->torn = torn_copy;
            rec->bits_written =
                torn_copy ? static_cast<std::uint32_t>(copy_progress) * 8
                : has_image
                    ? static_cast<std::uint32_t>(config.state_bytes) * 8
                    : 0;
        }
    };

    // A torn copy loses the in-flight image; the double-buffered commit
    // keeps the previous checkpoint intact, so only the work since it is
    // re-executed.
    const auto tear = [&] {
        recordOutage(/*torn_copy=*/true);
        ++result.torn_checkpoints;
        copy_progress = -1;
        result.instructions_lost +=
            static_cast<std::uint64_t>(since_checkpoint);
        since_checkpoint = 0.0;
        on = false;
    };

    for (std::size_t i = 0; i < trace.size(); ++i) {
        cur_sample = i;
        cap.step(trace.at(i), 0.1);

        if (!on) {
            if (cap.energyNj() >= start_threshold) {
                on = true;
                // Reboot + restore-from-checkpoint software path. Low
                // bits of the image may have expired while dark
                // (checkpoint_policy-shaped FeRAM retention).
                std::uint64_t expiries = 0;
                if (has_image) {
                    ++result.restores;
                    expiries = static_cast<std::uint64_t>(
                        nvm::NvmArray::expiredCutoff(
                            config.checkpoint_policy, off_tenth_ms));
                    result.restore_bit_expirations += expiries;
                }
                if (flight) {
                    if (obs::OutageRecord *rec = flight->openOutage()) {
                        rec->resumed = true;
                        rec->outage_samples =
                            static_cast<std::uint64_t>(off_tenth_ms);
                        rec->resume = has_image
                                          ? obs::ResumeKind::plain_resume
                                          : obs::ResumeKind::cold_boot;
                        rec->resume_bits = 8;
                        rec->retention_decays = expiries;
                    }
                }
                off_tenth_ms = 0.0;
                cap.drain(config.restart_overhead_instr * instr_energy);
                result.instructions_executed +=
                    static_cast<std::uint64_t>(
                        config.restart_overhead_instr);
            } else {
                off_tenth_ms += 1.0; // one 0.1 ms sample in the dark
                continue;
            }
        }

        double budget = kCyclesPerSample;
        while (budget >= 1.0 && on) {
            if (cap.energyNj() < instr_energy) {
                // Brown-out: everything since the last checkpoint is
                // re-executed after reboot (volatile state lost), and
                // any copy in flight is torn.
                if (copy_progress >= 0) {
                    tear();
                } else {
                    recordOutage(/*torn_copy=*/false);
                    result.instructions_lost +=
                        static_cast<std::uint64_t>(since_checkpoint);
                    since_checkpoint = 0.0;
                    on = false;
                }
                break;
            }
            if (copy_progress < 0 &&
                since_checkpoint >=
                    static_cast<double>(config.checkpoint_interval_instr)) {
                // Optimistic start: the software has only a voltage
                // trigger, not income foresight, so the copy begins as
                // soon as the prologue and first byte are covered and
                // may tear partway through.
                if (cap.energyNj() < prologue_energy + byte_energy)
                    break; // wait for charge before starting the copy
                cap.drain(prologue_energy);
                budget -= config.checkpoint_overhead_instr;
                result.checkpoint_energy_nj += prologue_energy;
                copy_progress = 0;
                ++checkpoint_attempts;
                continue;
            }
            if (copy_progress >= 0) {
                if (cap.energyNj() < byte_energy) {
                    tear();
                    break;
                }
                cap.drain(byte_energy);
                result.checkpoint_energy_nj += byte_energy;
                budget -= 2.0; // ld8 + st8 per byte
                // A deterministic byte pattern keyed by (attempt,
                // offset) stands in for the MCU's register/RAM state;
                // tests distinguish torn from committed images by it.
                // (No-op without a persistence backend.)
                {
                    const std::uint64_t attempt =
                        attempt_base + checkpoint_attempts;
                    store.writeByte(
                        static_cast<std::size_t>(copy_progress),
                        static_cast<std::uint8_t>(
                            (attempt * 31 +
                             static_cast<std::uint64_t>(copy_progress) *
                                 7) &
                            0xff));
                }
                if (++copy_progress >= config.state_bytes) {
                    copy_progress = -1;
                    has_image = true;
                    ++result.checkpoints;
                    // Commit: flip the active slot, then mark valid.
                    store.commit(attempt_base + checkpoint_attempts);
                    result.forward_progress +=
                        static_cast<std::uint64_t>(since_checkpoint);
                    since_checkpoint = 0.0;
                }
                continue;
            }
            cap.drain(instr_energy);
            ++result.instructions_executed;
            since_checkpoint += 1.0;
            budget -= 1.0;
        }
    }
    // Work since the final checkpoint never persisted.
    result.instructions_lost +=
        static_cast<std::uint64_t>(since_checkpoint);

    if (config.obs) {
        obs::MetricsRegistry &m = config.obs->registry;
        const auto count = [&m](const char *name, std::uint64_t v) {
            m.counter(name).value += v;
        };
        count(obs::kAcAttempts, checkpoint_attempts);
        count(obs::kAcCommitted, result.checkpoints);
        count(obs::kAcTorn, result.torn_checkpoints);
        count(obs::kAcInFlightAtEnd, copy_progress >= 0 ? 1 : 0);
        count(obs::kAcRestores, result.restores);
        count(obs::kAcBitExpirations, result.restore_bit_expirations);
        count(obs::kAcInstrExecuted, result.instructions_executed);
        count(obs::kAcInstrLost, result.instructions_lost);
        count(obs::kAcForwardProgress, result.forward_progress);
        m.gauge(obs::kAcCheckpointEnergy).value +=
            result.checkpoint_energy_nj;
    }
    return result;
}

} // namespace inc::sim
