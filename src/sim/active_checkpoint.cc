#include "sim/active_checkpoint.h"

#include "energy/capacitor.h"
#include "util/logging.h"

namespace inc::sim
{

ActiveCheckpointResult
runActiveCheckpoint(const trace::PowerTrace &trace,
                    const ActiveCheckpointConfig &config)
{
    if (config.checkpoint_interval_instr <= 0)
        util::fatal("checkpoint interval must be positive");

    const energy::EnergyModel model(config.energy);
    // Software checkpoint: copy state_bytes through load+store pairs,
    // plus the detection/bookkeeping prologue.
    const double checkpoint_instr =
        config.checkpoint_overhead_instr +
        2.0 * static_cast<double>(config.state_bytes);
    // Application instructions use the image-kernel blend (the same
    // workload the NVP runs): mostly ALU with a realistic load/store/
    // multiply share.
    const double instr_energy =
        0.55 * model.instructionEnergyNj(isa::Op::add, 8) +
        0.25 * model.instructionEnergyNj(isa::Op::ld8, 8) +
        0.10 * model.instructionEnergyNj(isa::Op::st8, 8) +
        0.10 * model.instructionEnergyNj(isa::Op::mul, 8);
    const double store_energy =
        model.instructionEnergyNj(isa::Op::st8, 8);
    const double checkpoint_energy =
        config.checkpoint_overhead_instr * instr_energy +
        static_cast<double>(config.state_bytes) *
            (model.instructionEnergyNj(isa::Op::ld8, 8) + store_energy);

    energy::CapacitorParams cap_params;
    cap_params.capacity_nj = config.capacity_nj;
    cap_params.efficiency = config.efficiency;
    energy::Capacitor cap(cap_params);

    ActiveCheckpointResult result;
    constexpr int kCyclesPerSample = 100;
    bool on = false;
    double since_checkpoint = 0.0; // committed-but-unsaved instructions
    const double start_threshold =
        config.restart_overhead_instr * instr_energy +
        checkpoint_energy * 1.5;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        cap.step(trace.at(i), 0.1);

        if (!on) {
            if (cap.energyNj() >= start_threshold) {
                on = true;
                // Reboot + restore-from-checkpoint software path.
                cap.drain(config.restart_overhead_instr * instr_energy);
                result.instructions_executed +=
                    static_cast<std::uint64_t>(
                        config.restart_overhead_instr);
            } else {
                continue;
            }
        }

        double budget = kCyclesPerSample;
        while (budget >= 1.0 && on) {
            if (cap.energyNj() < instr_energy) {
                // Brown-out: everything since the last checkpoint is
                // re-executed after reboot (volatile state lost).
                result.instructions_lost += static_cast<std::uint64_t>(
                    since_checkpoint);
                since_checkpoint = 0.0;
                on = false;
                break;
            }
            if (since_checkpoint >=
                static_cast<double>(config.checkpoint_interval_instr)) {
                if (cap.energyNj() < checkpoint_energy)
                    break; // wait for charge before checkpointing
                cap.drain(checkpoint_energy);
                budget -= checkpoint_instr;
                ++result.checkpoints;
                result.checkpoint_energy_nj += checkpoint_energy;
                result.forward_progress += static_cast<std::uint64_t>(
                    since_checkpoint);
                since_checkpoint = 0.0;
                continue;
            }
            cap.drain(instr_energy);
            ++result.instructions_executed;
            since_checkpoint += 1.0;
            budget -= 1.0;
        }
    }
    // Work since the final checkpoint never persisted.
    result.instructions_lost +=
        static_cast<std::uint64_t>(since_checkpoint);
    return result;
}

} // namespace inc::sim
