#include "sim/system_sim.h"

#include <algorithm>

#include "sim/functional.h"
#include "util/logging.h"

namespace inc::sim
{

namespace
{
/** Cycles per 0.1 ms trace sample at the 1 MHz core clock. */
constexpr int kCyclesPerSample = 100;
} // namespace

SystemSimulator::SystemSimulator(kernels::Kernel kernel,
                                 const trace::PowerTrace *trace,
                                 SimConfig config)
    : kernel_(std::move(kernel)), trace_(trace), config_(config),
      rng_(config.seed),
      scene_(kernel_.width, kernel_.height, kernel_.scene, config.seed),
      energy_model_(config.energy), capacitor_(config.capacitor),
      bit_ctrl_(config.bits)
{
    if (!trace_ || trace_->empty())
        util::fatal("SystemSimulator requires a non-empty power trace");

    // Kernels with loop-carried memory scratch cannot be adopted
    // mid-loop (see Kernel::adoption_safe).
    if (!kernel_.adoption_safe)
        config_.controller.simd_adoption = false;

    mem_ = std::make_unique<nvp::DataMemory>(rng_.split());
    for (const auto &[addr, data] : kernel_.init_blocks)
        mem_->hostWriteBlock(addr, data);
    mem_->addAcRegion({kernel_.layout.in_base,
                       kernel_.layout.in_bytes *
                           static_cast<std::uint32_t>(
                               kernel_.layout.in_slots),
                       config_.controller.backup_policy});
    mem_->addVersionedRegion(kernel_.layout.out_base,
                             kernel_.layout.out_bytes *
                                 static_cast<std::uint32_t>(
                                     kernel_.layout.out_slots));
    if (kernel_.scratch_bytes > 0) {
        mem_->addVersionedRegion(kernel_.scratch_base,
                                 kernel_.scratch_bytes,
                                 /*write_through=*/false);
    }

    core_ = std::make_unique<nvp::Core>(&kernel_.program, mem_.get(),
                                        config_.core, rng_.split());
    controller_ = std::make_unique<core::IncidentalController>(
        core_.get(), config_.controller, kernel_.layout, &bit_ctrl_,
        rng_.split());
    if (config_.score_quality) {
        controller_->setCompletionCallback(
            [this](const core::FrameCompletion &c) { scoreFrame(c); });
    }

    // ---- thresholds -------------------------------------------------------
    const bool multi_lane = config_.controller.simd_adoption ||
                            config_.controller.history_spawn ||
                            config_.controller.force_full_simd ||
                            config_.controller.auto_recompute_times > 0;
    reserve_versions_ = multi_lane ? config_.core.max_lanes : 1;
    const double backup_nj = energy_model_.backupEnergyNj(
        config_.controller.backup_policy, reserve_versions_);
    backup_threshold_nj_ = backup_nj * config_.backup_guard;

    int min_bits = 8;
    switch (config_.bits.mode) {
      case approx::ApproxMode::precise: min_bits = 8; break;
      case approx::ApproxMode::fixed: min_bits = config_.bits.fixed_bits;
          break;
      case approx::ApproxMode::dynamic: min_bits = config_.bits.min_bits;
          break;
    }
    const int lane_bits_sum = (reserve_versions_ - 1) * min_bits;
    const double quantum_nj =
        config_.start_quantum_instr *
        energy_model_.instructionEnergyNj(isa::Op::add, min_bits,
                                          lane_bits_sum);
    start_threshold_nj_ = backup_threshold_nj_ +
                          energy_model_.restoreEnergyNj(
                              reserve_versions_) +
                          quantum_nj;

    // ---- sensor -----------------------------------------------------------
    frame_period_ = config_.frame_period_tenth_ms;
    if (frame_period_ <= 0.0) {
        FunctionalConfig cal;
        cal.frames = 1;
        cal.bits = 8;
        cal.seed = config_.seed;
        const FunctionalResult r = runFunctional(kernel_, cal);
        // cycles at 1 MHz -> 0.1 ms units: 100 cycles per unit.
        frame_period_ = std::max(
            10.0, config_.frame_period_factor * r.cyclesPerFrame() /
                      kCyclesPerSample);
    }
}

void
SystemSimulator::captureFramesUpTo(std::size_t sample)
{
    // The sensor captures a frame every frame_period_. The DMA engine
    // interlocks with the controller: it will not overwrite an input
    // slot a live lane is still reading from (it drops the capture and
    // retries next period), so in-flight computations never see their
    // input change underneath them.
    while (static_cast<double>(captures_attempted_) * frame_period_ <=
           static_cast<double>(sample)) {
        ++captures_attempted_;
        const auto f = static_cast<std::uint32_t>(newest_frame_ + 1);
        const auto slot = f % static_cast<std::uint32_t>(
                                  kernel_.layout.in_slots);
        bool slot_busy = false;
        for (int lane = 0; lane < nvp::kMaxLanes; ++lane) {
            const nvp::LaneInfo &info = core_->lane(lane);
            // Lane 0's frame field is meaningful only once the program
            // has reached its first resume point.
            if (lane == 0 && !lane0_frame_valid_)
                continue;
            if (info.active &&
                info.frame % static_cast<std::uint32_t>(
                                 kernel_.layout.in_slots) ==
                    slot) {
                slot_busy = true;
                break;
            }
        }
        if (slot_busy) {
            ++result_.frames_dropped_by_dma;
            continue;
        }
        ++newest_frame_;
        mem_->hostWriteBlock(
            kernel_.layout.inSlotAddr(f),
            kernel_.make_input(scene_, static_cast<int>(f)));
        capture_time_[f] = sample;
        if (capture_time_.size() > 64)
            capture_time_.erase(capture_time_.begin());
        ++result_.frames_captured;
    }
}

void
SystemSimulator::scoreFrame(const core::FrameCompletion &completion)
{
    const std::uint32_t f = completion.frame;
    auto golden_it = golden_cache_.find(f);
    if (golden_it == golden_cache_.end()) {
        golden_it = golden_cache_
                        .emplace(f, kernel_.golden(kernel_.make_input(
                                        scene_, static_cast<int>(f))))
                        .first;
    }
    const std::uint32_t addr = kernel_.layout.outSlotAddr(f);
    const auto out = mem_->snapshot(addr, kernel_.layout.out_bytes);

    // Quality is scored over the pixels actually produced; completeness
    // is reported separately as coverage (partial outputs are the point
    // of incidental computing — "at least some low quality results").
    const auto mask =
        mem_->precisionMask(addr, kernel_.layout.out_bytes);
    FrameScore &score = scores_[f];
    score.frame = f;
    score.mse = approx::maskedMse(out, golden_it->second, mask);
    score.psnr = approx::psnrFromMse(score.mse);
    score.coverage = mem_->coverage(addr, kernel_.layout.out_bytes);
    ++score.completions;
    if (score.completions == 1) {
        const auto it = capture_time_.find(f);
        if (it != capture_time_.end()) {
            score.first_completion_age =
                static_cast<double>(current_sample_ - it->second);
        }
    }
    score.out_byte_sum = 0.0;
    score.golden_byte_sum = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
        if (!mask[i])
            continue;
        score.out_byte_sum += out[i];
        score.golden_byte_sum += golden_it->second[i];
    }

    // Keep the golden cache bounded.
    if (golden_cache_.size() > 16)
        golden_cache_.erase(golden_cache_.begin());
}

void
SystemSimulator::performBackup(std::size_t sample)
{
    controller_->onBackup();
    const int lanes = core_->activeLaneCount();
    const double cost = energy_model_.backupEnergyNj(
        config_.controller.backup_policy, lanes);
    capacitor_.drain(cost);
    result_.backup_energy_nj += cost;
    ++result_.backups;
    on_ = false;
    off_since_ = sample;

    // Arm the next wake-up comparator for the state just saved: restore
    // cost, a backup reserve for the resumed lane count, and a minimum
    // work quantum.
    int min_bits = 8;
    switch (config_.bits.mode) {
      case approx::ApproxMode::precise: min_bits = 8; break;
      case approx::ApproxMode::fixed: min_bits = config_.bits.fixed_bits;
          break;
      case approx::ApproxMode::dynamic: min_bits = config_.bits.min_bits;
          break;
    }
    next_start_threshold_nj_ =
        energy_model_.restoreEnergyNj(lanes) +
        config_.backup_guard * cost +
        config_.start_quantum_instr *
            energy_model_.instructionEnergyNj(isa::Op::add, min_bits,
                                              (lanes - 1) * min_bits);
}

void
SystemSimulator::performRestore(std::size_t sample)
{
    const double cost =
        energy_model_.restoreEnergyNj(reserve_versions_);
    capacitor_.drain(cost);
    result_.restore_energy_nj += cost;
    ++result_.restores;
    const double outage =
        static_cast<double>(sample - off_since_); // 0.1 ms units
    controller_->onRestore(
        outage, static_cast<std::uint32_t>(std::max<std::int64_t>(
                    0, newest_frame_)));
    on_ = true;
}

SimResult
SystemSimulator::run()
{
    const std::size_t samples = trace_->size();
    std::uint64_t on_samples = 0;
    bool first_start = true;

    for (std::size_t i = 0; i < samples; ++i) {
        current_sample_ = i;
        captureFramesUpTo(i);
        capacitor_.step(config_.income_scale * trace_->at(i), 0.1);

        if (!on_) {
            const double wake = next_start_threshold_nj_ > 0.0
                                    ? next_start_threshold_nj_
                                    : start_threshold_nj_;
            if (capacitor_.energyNj() >= wake && newest_frame_ >= 0) {
                if (first_start) {
                    // Cold boot: no restore cost, start at the program
                    // entry.
                    first_start = false;
                    on_ = true;
                    ++result_.restores;
                } else {
                    performRestore(i);
                }
            }
            if (!on_) {
                bit_ctrl_.recordTick(0);
                continue;
            }
        }

        ++on_samples;
        controller_->updateLaneBits(capacitor_.fraction());
        bit_ctrl_.recordTick(core_->acEnabled() ? core_->mainBits() : 8);

        int budget = kCyclesPerSample;
        while (budget > 0 && on_) {
            if (waiting_for_frame_) {
                if (newest_frame_ >= 0 &&
                    static_cast<std::uint32_t>(newest_frame_) >=
                        wanted_frame_) {
                    waiting_for_frame_ = false;
                    core_->setPc(core_->resumePc());
                } else {
                    // Idle (clock-gated) until the next capture; a long
                    // enough wait still drains to the backup reserve.
                    const double idle = std::min(
                        energy_model_.idleCycleEnergyNj() * budget,
                        capacitor_.energyNj());
                    capacitor_.drain(idle);
                    result_.consumed_energy_nj += idle;
                    budget = 0;
                    const double reserve =
                        config_.backup_guard *
                        energy_model_.backupEnergyNj(
                            config_.controller.backup_policy,
                            core_->activeLaneCount());
                    if (capacitor_.energyNj() <= reserve)
                        performBackup(i);
                    break;
                }
            }

            controller_->maybeAdopt(capacitor_.fraction(),
                                    static_cast<std::uint32_t>(
                                        std::max<std::int64_t>(
                                            0, newest_frame_)));

            const nvp::StepResult step = core_->step();
            const int main_bits =
                core_->acEnabled() ? core_->mainBits() : 8;
            double cost = energy_model_.instructionEnergyNj(
                step.op, main_bits, core_->incidentalBitsSum(),
                step.store_policy);
            if (step.assemble_bytes > 0) {
                cost += energy_model_.assembleEnergyNj(
                    static_cast<int>(step.assemble_bytes));
            }
            capacitor_.drain(cost);
            result_.consumed_energy_nj += cost;
            result_.forward_progress +=
                static_cast<std::uint64_t>(step.lanes_committed);
            ++result_.main_instructions;
            result_.cycles_executed +=
                static_cast<std::uint64_t>(step.cycles);
            budget -= step.cycles;

            if (step.mark_resume) {
                lane0_frame_valid_ = true;
                const auto outcome = controller_->handleMarkResume(
                    step.resume_frame_value,
                    static_cast<std::uint32_t>(
                        std::max<std::int64_t>(0, newest_frame_)),
                    capacitor_.fraction());
                if (outcome.wait_for_frame) {
                    waiting_for_frame_ = true;
                    wanted_frame_ = outcome.frame;
                }
            }
            if (step.halted)
                break;

            // The backup reserve tracks the state that actually needs
            // saving: the controller knows its live lane count and sets
            // the comparator level accordingly.
            const double reserve =
                config_.backup_guard *
                energy_model_.backupEnergyNj(
                    config_.controller.backup_policy,
                    core_->activeLaneCount());
            if (capacitor_.energyNj() <= reserve) {
                performBackup(i);
                break;
            }
        }
        if (core_->halted())
            break;
    }

    // Final flush: score everything still in flight.
    if (config_.score_quality) {
        for (int lane = 0; lane < nvp::kMaxLanes; ++lane) {
            const nvp::LaneInfo &info = core_->lane(lane);
            if (info.active && (lane > 0 || newest_frame_ >= 0))
                scoreFrame({info.frame, lane, info.bits});
        }
    }

    result_.on_time_fraction =
        static_cast<double>(on_samples) / static_cast<double>(samples);
    result_.controller = controller_->stats();
    result_.retention_failures = mem_->failures();
    result_.start_threshold_nj = start_threshold_nj_;
    result_.backup_threshold_nj = backup_threshold_nj_;
    result_.income_energy_nj = capacitor_.totalIncomeNj();
    result_.frame_period_tenth_ms = frame_period_;
    for (int b = 0; b <= 8; ++b)
        result_.bit_ticks[static_cast<size_t>(b)] = bit_ctrl_.ticksAt(b);

    int aged = 0;
    for (const auto &[frame, score] : scores_) {
        result_.mean_mse += score.mse;
        result_.mean_psnr += score.psnr;
        result_.mean_coverage += score.coverage;
        if (score.first_completion_age > 0.0) {
            result_.mean_completion_age += score.first_completion_age;
            ++aged;
        }
        result_.frame_scores.push_back(score);
    }
    result_.frames_scored = static_cast<int>(scores_.size());
    if (result_.frames_scored > 0) {
        result_.mean_mse /= result_.frames_scored;
        result_.mean_psnr /= result_.frames_scored;
        result_.mean_coverage /= result_.frames_scored;
    }
    if (aged > 0)
        result_.mean_completion_age /= aged;
    return result_;
}

} // namespace inc::sim
