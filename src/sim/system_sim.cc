#include "sim/system_sim.h"

#include <algorithm>

#include "obs/observer.h"
#include "obs/report/flight_recorder.h"
#include "obs/schema.h"
#include "sim/functional.h"
#include "util/logging.h"

namespace inc::sim
{

namespace
{
/** Cycles per 0.1 ms trace sample at the 1 MHz core clock. */
constexpr int kCyclesPerSample = 100;
} // namespace

SystemSimulator::SystemSimulator(kernels::Kernel kernel,
                                 const trace::PowerTrace *trace,
                                 SimConfig config)
    : kernel_(std::move(kernel)), trace_(trace), config_(config),
      rng_(config.seed),
      scene_(kernel_.width, kernel_.height, kernel_.scene, config.seed),
      energy_model_(config.energy), capacitor_(config.capacitor),
      bit_ctrl_(config.bits)
{
    if (!trace_ || trace_->empty())
        util::fatal("SystemSimulator requires a non-empty power trace");

    // Kernels with loop-carried memory scratch cannot be adopted
    // mid-loop (see Kernel::adoption_safe).
    if (!kernel_.adoption_safe)
        config_.controller.simd_adoption = false;

    config_.core.engine = config_.exec_engine;

    mem_ = std::make_unique<nvp::DataMemory>(
        rng_.split(), isa::kDataMemBytes, config_.persistence);
    for (const auto &[addr, data] : kernel_.init_blocks)
        mem_->hostWriteBlock(addr, data);
    mem_->addAcRegion({kernel_.layout.in_base,
                       kernel_.layout.in_bytes *
                           static_cast<std::uint32_t>(
                               kernel_.layout.in_slots),
                       config_.controller.backup_policy});
    mem_->addVersionedRegion(kernel_.layout.out_base,
                             kernel_.layout.out_bytes *
                                 static_cast<std::uint32_t>(
                                     kernel_.layout.out_slots));
    if (kernel_.scratch_bytes > 0) {
        mem_->addVersionedRegion(kernel_.scratch_base,
                                 kernel_.scratch_bytes,
                                 /*write_through=*/false);
    }

    core_ = std::make_unique<nvp::Core>(&kernel_.program, mem_.get(),
                                        config_.core, rng_.split());
    controller_ = std::make_unique<core::IncidentalController>(
        core_.get(), config_.controller, kernel_.layout, &bit_ctrl_,
        rng_.split());
    if (config_.score_quality) {
        controller_->setCompletionCallback(
            [this](const core::FrameCompletion &c) { scoreFrame(c); });
    }

    // Backup strategy (DESIGN.md §14): an observation-only overlay built
    // after the memory image and regions are initialized, so a freezer
    // strategy's dirty tracking starts from a clean interval. The
    // modeled per-byte cost is the software copy loop's ld8+st8 pair.
    {
        StrategyConfig sc;
        sc.kind = config_.strategy;
        sc.persistence = config_.persistence;
        sc.backup_nj_per_byte =
            energy_model_.instructionEnergyNj(isa::Op::ld8, 8) +
            energy_model_.instructionEnergyNj(isa::Op::st8, 8);
        strategy_ = makeStrategy(sc, mem_.get());
    }

    obs_ = config_.obs;
    if (obs_) {
        obs_initial_nj_ = capacitor_.energyNj();
        core_->setObsCounters(&obs_->core);
        mem_->setObsCounters(&obs_->mem);
        controller_->recomputeQueue().setObsCounters(&obs_->queue);
    }

    // ---- thresholds -------------------------------------------------------
    const bool multi_lane = config_.controller.simd_adoption ||
                            config_.controller.history_spawn ||
                            config_.controller.force_full_simd ||
                            config_.controller.auto_recompute_times > 0;
    reserve_versions_ = multi_lane ? config_.core.max_lanes : 1;
    const double backup_nj = energy_model_.backupEnergyNj(
        config_.controller.backup_policy, reserve_versions_);
    backup_threshold_nj_ = backup_nj * config_.backup_guard;

    int min_bits = 8;
    switch (config_.bits.mode) {
      case approx::ApproxMode::precise: min_bits = 8; break;
      case approx::ApproxMode::fixed: min_bits = config_.bits.fixed_bits;
          break;
      case approx::ApproxMode::dynamic: min_bits = config_.bits.min_bits;
          break;
    }
    const int lane_bits_sum = (reserve_versions_ - 1) * min_bits;
    const double quantum_nj =
        config_.start_quantum_instr *
        energy_model_.instructionEnergyNj(isa::Op::add, min_bits,
                                          lane_bits_sum);
    start_threshold_nj_ = backup_threshold_nj_ +
                          energy_model_.restoreEnergyNj(
                              reserve_versions_) +
                          quantum_nj;

    // ---- sensor -----------------------------------------------------------
    frame_period_ = config_.frame_period_tenth_ms;
    if (frame_period_ <= 0.0) {
        FunctionalConfig cal;
        cal.frames = 1;
        cal.bits = 8;
        cal.seed = config_.seed;
        const FunctionalResult r = runFunctional(kernel_, cal);
        // cycles at 1 MHz -> 0.1 ms units: 100 cycles per unit.
        frame_period_ = std::max(
            10.0, config_.frame_period_factor * r.cyclesPerFrame() /
                      kCyclesPerSample);
    }

    // ---- quantum stepping -------------------------------------------------
    // Worst-case bound for one sample: at most kCyclesPerSample steps
    // (every step costs >= 1 cycle), each draining at most the maximum
    // per-instruction energy over every opcode x precision x lane-width
    // x store-policy combination, plus at most a full budget of idle
    // cycles on the wait-for-frame path. The reserve the comparison is
    // checked against is itself bounded by the max-lane backup reserve.
    // Above reserve_max + drain_max, no reserve check in the sample can
    // fire, so skipping it is observationally invisible (assem excepted;
    // it re-derives the bound after its unbounded drain).
    double max_step_nj = 0.0;
    const nvm::RetentionPolicy policies[] = {
        nvm::RetentionPolicy::full, nvm::RetentionPolicy::linear,
        nvm::RetentionPolicy::log, nvm::RetentionPolicy::parabola};
    for (int op = 0; op < static_cast<int>(isa::Op::num_ops); ++op) {
        for (int bits = 1; bits <= 8; ++bits) {
            for (int lanes = 1; lanes <= config_.core.max_lanes;
                 ++lanes) {
                for (const auto policy : policies) {
                    max_step_nj = std::max(
                        max_step_nj,
                        energy_model_.instructionEnergyNj(
                            static_cast<isa::Op>(op), bits,
                            (lanes - 1) * 8, policy));
                }
            }
        }
    }
    double reserve_max_nj = 0.0;
    for (int lanes = 1; lanes <= config_.core.max_lanes; ++lanes) {
        reserve_max_nj = std::max(
            reserve_max_nj,
            config_.backup_guard *
                energy_model_.backupEnergyNj(
                    config_.controller.backup_policy, lanes));
    }
    quantum_safe_level_nj_ =
        reserve_max_nj +
        kCyclesPerSample *
            (max_step_nj + energy_model_.idleCycleEnergyNj());
}

void
SystemSimulator::captureFramesUpTo(std::size_t sample)
{
    // The sensor captures a frame every frame_period_. The DMA engine
    // interlocks with the controller: it will not overwrite an input
    // slot a live lane is still reading from (it drops the capture and
    // retries next period), so in-flight computations never see their
    // input change underneath them.
    while (static_cast<double>(captures_attempted_) * frame_period_ <=
           static_cast<double>(sample)) {
        ++captures_attempted_;
        const auto f = static_cast<std::uint32_t>(newest_frame_ + 1);
        const auto slot = f % static_cast<std::uint32_t>(
                                  kernel_.layout.in_slots);
        bool slot_busy = false;
        for (int lane = 0; lane < nvp::kMaxLanes; ++lane) {
            const nvp::LaneInfo &info = core_->lane(lane);
            // Lane 0's frame field is meaningful only once the program
            // has reached its first resume point.
            if (lane == 0 && !lane0_frame_valid_)
                continue;
            if (info.active &&
                info.frame % static_cast<std::uint32_t>(
                                 kernel_.layout.in_slots) ==
                    slot) {
                slot_busy = true;
                break;
            }
        }
        if (slot_busy) {
            ++result_.frames_dropped_by_dma;
            continue;
        }
        ++newest_frame_;
        mem_->hostWriteBlock(
            kernel_.layout.inSlotAddr(f),
            kernel_.make_input(scene_, static_cast<int>(f)));
        capture_time_[f] = sample;
        if (capture_time_.size() > 64)
            capture_time_.erase(capture_time_.begin());
        ++result_.frames_captured;
    }
}

void
SystemSimulator::scoreFrame(const core::FrameCompletion &completion)
{
    const std::uint32_t f = completion.frame;
    auto golden_it = golden_cache_.find(f);
    if (golden_it == golden_cache_.end()) {
        golden_it = golden_cache_
                        .emplace(f, kernel_.golden(kernel_.make_input(
                                        scene_, static_cast<int>(f))))
                        .first;
    }
    const std::uint32_t addr = kernel_.layout.outSlotAddr(f);
    const auto out = mem_->snapshot(addr, kernel_.layout.out_bytes);

    // Quality is scored over the pixels actually produced; completeness
    // is reported separately as coverage (partial outputs are the point
    // of incidental computing — "at least some low quality results").
    const auto mask =
        mem_->precisionMask(addr, kernel_.layout.out_bytes);
    FrameScore &score = scores_[f];
    score.frame = f;
    score.mse = approx::maskedMse(out, golden_it->second, mask);
    score.psnr = approx::psnrFromMse(score.mse);
    score.coverage = mem_->coverage(addr, kernel_.layout.out_bytes);
    ++score.completions;
    if (score.completions == 1) {
        const auto it = capture_time_.find(f);
        if (it != capture_time_.end()) {
            score.first_completion_age =
                static_cast<double>(current_sample_ - it->second);
            if (obs_ && obs_->flight) {
                if (obs::FrameRecord *rec = obs_->flight->appendFrame()) {
                    rec->frame = f;
                    rec->capture_sample = it->second;
                    rec->age_samples = score.first_completion_age;
                    rec->mse = score.mse;
                    rec->psnr = score.psnr;
                    rec->coverage = score.coverage;
                    rec->bits = completion.bits;
                }
            }
            if (obs_ && obs_->tracer) {
                // Frame lifetime: capture to first completion.
                obs_->tracer->span(
                    obs::Track::frames, "frame",
                    100.0 * static_cast<double>(it->second),
                    100.0 * score.first_completion_age);
            }
        }
    }
    score.out_byte_sum = 0.0;
    score.golden_byte_sum = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
        if (!mask[i])
            continue;
        score.out_byte_sum += out[i];
        score.golden_byte_sum += golden_it->second[i];
    }

    // Keep the golden cache bounded.
    if (golden_cache_.size() > 16)
        golden_cache_.erase(golden_cache_.begin());
}

void
SystemSimulator::performBackup(std::size_t sample)
{
    // Failure-time snapshot for the flight recorder, taken before the
    // backup drains the capacitor or the controller reshapes lanes.
    const double stored_at_failure_nj = capacitor_.energyNj();
    controller_->onBackup();
    const int lanes = core_->activeLaneCount();
    const double cost = energy_model_.backupEnergyNj(
        config_.controller.backup_policy, lanes);
    const double drained = capacitor_.drain(cost);
    result_.backup_energy_nj += cost;
    ++result_.backups;
    strategy_->onBackup(sample);
    if (obs_) {
        obs_unfunded_nj_ += cost - drained;
        obs_->registry
            .histogram(obs::kHistBackupLanes, {1.0, 2.0, 3.0})
            .record(static_cast<double>(lanes));
        obs_->registry
            .histogram(obs::kHistOnPeriodSamples,
                       {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                        500.0, 1000.0})
            .record(static_cast<double>(sample - obs_phase_start_));
        if (obs_->flight) {
            if (obs::OutageRecord *rec = obs_->flight->appendOutage()) {
                rec->fail_sample = sample;
                rec->pc = core_->pc();
                rec->frame = core_->lane(0).frame;
                rec->stored_nj = stored_at_failure_nj;
                rec->lanes = static_cast<std::uint32_t>(lanes);
                // The passive in-situ backup writes every live lane's
                // register/memory state at its current precision.
                rec->bits_written = static_cast<std::uint32_t>(
                    core_->acEnabled()
                        ? core_->mainBits() + core_->incidentalBitsSum()
                        : 8 * lanes);
            }
        }
        if (obs_->tracer) {
            obs_->tracer->instant(obs::Track::checkpoint, "backup",
                                  100.0 * static_cast<double>(sample));
        }
    }
    tracePowerPhase(sample, /*next_on=*/false);
    on_ = false;
    off_since_ = sample;

    // Arm the next wake-up comparator for the state just saved: restore
    // cost, a backup reserve for the resumed lane count, and a minimum
    // work quantum.
    int min_bits = 8;
    switch (config_.bits.mode) {
      case approx::ApproxMode::precise: min_bits = 8; break;
      case approx::ApproxMode::fixed: min_bits = config_.bits.fixed_bits;
          break;
      case approx::ApproxMode::dynamic: min_bits = config_.bits.min_bits;
          break;
    }
    next_start_threshold_nj_ =
        energy_model_.restoreEnergyNj(lanes) +
        config_.backup_guard * cost +
        config_.start_quantum_instr *
            energy_model_.instructionEnergyNj(isa::Op::add, min_bits,
                                              (lanes - 1) * min_bits);
}

void
SystemSimulator::performRestore(std::size_t sample)
{
    const double cost =
        energy_model_.restoreEnergyNj(reserve_versions_);
    const double drained = capacitor_.drain(cost);
    result_.restore_energy_nj += cost;
    ++result_.restores;
    strategy_->onRestore(sample);
    const double outage =
        static_cast<double>(sample - off_since_); // 0.1 ms units
    if (obs_) {
        obs_unfunded_nj_ += cost - drained;
        obs_->registry
            .histogram(obs::kHistOutageSamples,
                       {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                        500.0, 1000.0})
            .record(outage);
        if (obs_->tracer) {
            obs_->tracer->instant(obs::Track::checkpoint, "restore",
                                  100.0 * static_cast<double>(sample));
        }
    }
    tracePowerPhase(sample, /*next_on=*/true);
    obs::OutageRecord *rec =
        obs_ && obs_->flight ? obs_->flight->openOutage() : nullptr;
    const core::ControllerStats stats_before =
        rec ? controller_->stats() : core::ControllerStats{};
    controller_->onRestore(
        outage, static_cast<std::uint32_t>(std::max<std::int64_t>(
                    0, newest_frame_)));
    on_ = true;
    if (rec) {
        // The restore decision and the retention outcome are visible
        // as controller-stat deltas across onRestore().
        const core::ControllerStats &after = controller_->stats();
        rec->resumed = true;
        rec->outage_samples = sample - off_since_;
        rec->resume = after.roll_forwards > stats_before.roll_forwards
                          ? obs::ResumeKind::roll_forward
                          : obs::ResumeKind::plain_resume;
        rec->resume_bits = static_cast<std::uint32_t>(
            core_->acEnabled() ? core_->mainBits() : 8);
        rec->retention_decays =
            after.reg_decay_events - stats_before.reg_decay_events;
    }
}

SimResult
SystemSimulator::run()
{
    while (stepSample()) {
    }
    return finalize();
}

bool
SystemSimulator::stepSample()
{
    const std::size_t samples = trace_->size();
    if (finalized_)
        util::panic("SystemSimulator: stepSample after finalize");
    if (sample_cursor_ >= samples || core_->halted())
        return false;

    {
        const std::size_t i = sample_cursor_++;
        current_sample_ = i;
        ++obs_samples_;
        captureFramesUpTo(i);
        capacitor_.step(config_.income_scale * trace_->at(i), 0.1);
        if (obs_ && obs_->tracer) {
            obs_->tracer->counter(obs::kTraceCapSeries,
                                  100.0 * static_cast<double>(i),
                                  capacitor_.energyNj());
        }

        if (!on_) {
            const double wake = next_start_threshold_nj_ > 0.0
                                    ? next_start_threshold_nj_
                                    : start_threshold_nj_;
            if (capacitor_.energyNj() >= wake && newest_frame_ >= 0) {
                if (first_start_) {
                    // Cold boot: no restore cost, start at the program
                    // entry.
                    first_start_ = false;
                    ++obs_cold_boots_;
                    tracePowerPhase(i, /*next_on=*/true);
                    on_ = true;
                    ++result_.restores;
                    strategy_->onColdBoot(i);
                    if (obs_ && obs_->flight) {
                        // No checkpoint image exists yet; log the boot
                        // as a completed outage covering the dark lead-in
                        // so the report's power-cycle count closes
                        // against sim.cold_boots.
                        if (obs::OutageRecord *rec =
                                obs_->flight->appendOutage()) {
                            rec->fail_sample = i;
                            rec->pc = core_->pc();
                            rec->stored_nj = capacitor_.energyNj();
                            rec->resumed = true;
                            rec->outage_samples = i;
                            rec->resume = obs::ResumeKind::cold_boot;
                            rec->resume_bits = static_cast<std::uint32_t>(
                                core_->acEnabled() ? core_->mainBits()
                                                   : 8);
                        }
                    }
                } else {
                    performRestore(i);
                }
            }
            if (!on_) {
                bit_ctrl_.recordTick(0);
                return sample_cursor_ < samples;
            }
        }

        ++on_samples_;
        controller_->updateLaneBits(capacitor_.fraction());
        bit_ctrl_.recordTick(core_->acEnabled() ? core_->mainBits() : 8);
        strategy_->onSample(i, capacitor_.fraction());

        // Quantum stepping (fast-path engines only): when the stored
        // energy provably cannot reach the backup reserve within this
        // sample's cycle budget, the per-step reserve comparison is
        // dead code and is skipped for the whole quantum. The proof is
        // engine-independent; only the reference baseline keeps the
        // naive per-step comparison as the semantic anchor.
        const bool quantum_ok =
            config_.exec_engine != nvp::ExecEngine::reference;
        bool skip_reserve =
            quantum_ok && capacitor_.energyNj() > quantum_safe_level_nj_;

        int budget = kCyclesPerSample;
        while (budget > 0 && on_) {
            if (waiting_for_frame_) {
                if (newest_frame_ >= 0 &&
                    static_cast<std::uint32_t>(newest_frame_) >=
                        wanted_frame_) {
                    waiting_for_frame_ = false;
                    core_->setPc(core_->resumePc());
                } else {
                    // Idle (clock-gated) until the next capture; a long
                    // enough wait still drains to the backup reserve.
                    const double idle = std::min(
                        energy_model_.idleCycleEnergyNj() * budget,
                        capacitor_.energyNj());
                    capacitor_.drain(idle);
                    result_.consumed_energy_nj += idle;
                    if (obs_)
                        obs_idle_nj_ += idle;
                    budget = 0;
                    if (!skip_reserve) {
                        const double reserve =
                            config_.backup_guard *
                            energy_model_.backupEnergyNj(
                                config_.controller.backup_policy,
                                core_->activeLaneCount());
                        if (capacitor_.energyNj() <= reserve)
                            performBackup(i);
                    }
                    break;
                }
            }

            controller_->maybeAdopt(capacitor_.fraction(),
                                    static_cast<std::uint32_t>(
                                        std::max<std::int64_t>(
                                            0, newest_frame_)));

            const nvp::StepResult step = core_->step();
            const int main_bits =
                core_->acEnabled() ? core_->mainBits() : 8;
            const double instr_cost = energy_model_.instructionEnergyNj(
                step.op, main_bits, core_->incidentalBitsSum(),
                step.store_policy);
            double cost = instr_cost;
            if (step.assemble_bytes > 0) {
                const double assemble_cost =
                    energy_model_.assembleEnergyNj(
                        static_cast<int>(step.assemble_bytes));
                cost += assemble_cost;
#if INC_OBS_ENABLED
                if (obs_) {
                    obs_assemble_nj_ += assemble_cost;
                    if (obs_->tracer) {
                        obs_->tracer->instant(
                            obs::Track::rac, "assemble",
                            100.0 * static_cast<double>(i));
                    }
                }
#endif
            }
#if INC_OBS_ENABLED
            // Ledger split + unfunded-demand tracking. Compiled out
            // (leaving the plain drain below) with INCIDENTAL_OBS=OFF,
            // so the hot loop carries no extra branches then.
            if (obs_) {
                const double fetch =
                    energy_model_.instructionBaseEnergyNj(step.op);
                obs_fetch_nj_ += fetch;
                obs_datapath_nj_ += instr_cost - fetch;
                if (step.lanes_committed > 1) {
                    obs_adopted_cycles_ +=
                        static_cast<std::uint64_t>(step.cycles);
                }
                obs_unfunded_nj_ += cost - capacitor_.drain(cost);
            } else {
                capacitor_.drain(cost);
            }
#else
            capacitor_.drain(cost);
#endif
            result_.consumed_energy_nj += cost;
            result_.forward_progress +=
                static_cast<std::uint64_t>(step.lanes_committed);
            ++result_.main_instructions;
            result_.cycles_executed +=
                static_cast<std::uint64_t>(step.cycles);
            budget -= step.cycles;

            if (step.mark_resume) {
                lane0_frame_valid_ = true;
                const auto outcome = controller_->handleMarkResume(
                    step.resume_frame_value,
                    static_cast<std::uint32_t>(
                        std::max<std::int64_t>(0, newest_frame_)),
                    capacitor_.fraction());
                if (outcome.wait_for_frame) {
                    waiting_for_frame_ = true;
                    wanted_frame_ = outcome.frame;
                }
            }
            if (step.halted)
                break;

            // An assemble drains an input-dependent amount not covered
            // by the per-sample bound; re-derive the quantum guarantee.
            if (step.assemble_bytes > 0) {
                skip_reserve = quantum_ok && capacitor_.energyNj() >
                                                 quantum_safe_level_nj_;
            }
            if (skip_reserve)
                continue;

            // The backup reserve tracks the state that actually needs
            // saving: the controller knows its live lane count and sets
            // the comparator level accordingly.
            const double reserve =
                config_.backup_guard *
                energy_model_.backupEnergyNj(
                    config_.controller.backup_policy,
                    core_->activeLaneCount());
            if (capacitor_.energyNj() <= reserve) {
                performBackup(i);
                break;
            }
        }
    }
    return sample_cursor_ < samples && !core_->halted();
}

SimResult
SystemSimulator::finalize()
{
    const std::size_t samples = trace_->size();
    if (finalized_)
        util::panic("SystemSimulator: finalize called twice");
    finalized_ = true;
    const std::uint64_t on_samples = on_samples_;

    // Final flush: score everything still in flight.
    if (config_.score_quality) {
        for (int lane = 0; lane < nvp::kMaxLanes; ++lane) {
            const nvp::LaneInfo &info = core_->lane(lane);
            if (info.active && (lane > 0 || newest_frame_ >= 0))
                scoreFrame({info.frame, lane, info.bits});
        }
    }

    result_.on_time_fraction =
        static_cast<double>(on_samples) / static_cast<double>(samples);
    result_.controller = controller_->stats();
    result_.retention_failures = mem_->failures();
    result_.start_threshold_nj = start_threshold_nj_;
    result_.backup_threshold_nj = backup_threshold_nj_;
    result_.income_energy_nj = capacitor_.totalIncomeNj();
    result_.frame_period_tenth_ms = frame_period_;
    for (int b = 0; b <= 8; ++b)
        result_.bit_ticks[static_cast<size_t>(b)] = bit_ctrl_.ticksAt(b);

    int aged = 0;
    for (const auto &[frame, score] : scores_) {
        result_.mean_mse += score.mse;
        result_.mean_psnr += score.psnr;
        result_.mean_coverage += score.coverage;
        if (score.first_completion_age > 0.0) {
            result_.mean_completion_age += score.first_completion_age;
            ++aged;
        }
        result_.frame_scores.push_back(score);
    }
    result_.frames_scored = static_cast<int>(scores_.size());
    if (result_.frames_scored > 0) {
        result_.mean_mse /= result_.frames_scored;
        result_.mean_psnr /= result_.frames_scored;
        result_.mean_coverage /= result_.frames_scored;
    }
    if (aged > 0)
        result_.mean_completion_age /= aged;

    if (obs_) {
        // Close the trailing power phase and fold everything into the
        // observer's registry.
        tracePowerPhase(static_cast<std::size_t>(obs_samples_), on_);
        publishMetrics(on_samples);
        // Flight-recorder overflow must survive into the registry so
        // offline reports can still flag a truncated log.
        if (obs_->flight)
            obs::publishFlightDrops(*obs_->flight, obs_->registry);
    }
    return result_;
}

void
SystemSimulator::tracePowerPhase(std::size_t now_sample, bool next_on)
{
    if (!obs_ || !obs_->tracer) {
        obs_phase_start_ = now_sample;
        return;
    }
    // Emit the span of the phase that just ended (state still in on_).
    if (now_sample > obs_phase_start_ || on_ != next_on) {
        obs_->tracer->span(
            obs::Track::power, on_ ? "power_on" : "power_off",
            100.0 * static_cast<double>(obs_phase_start_),
            100.0 * static_cast<double>(now_sample - obs_phase_start_));
    }
    obs_phase_start_ = now_sample;
}

void
SystemSimulator::publishMetrics(std::uint64_t on_samples)
{
    obs::MetricsRegistry &m = obs_->registry;
    const auto count = [&m](const char *name, std::uint64_t v) {
        m.counter(name).value += v;
    };
    const auto gauge = [&m](const char *name, double v) {
        m.gauge(name).value += v;
    };

    count(obs::kSimSamples, obs_samples_);
    count(obs::kSimOnSamples, on_samples);
    count(obs::kSimColdBoots, obs_cold_boots_);
    count(obs::kSimInstructions, result_.main_instructions);
    count(obs::kSimForwardProgress, result_.forward_progress);
    count(obs::kSimCycles, result_.cycles_executed);
    count(obs::kSimAdoptedLaneCycles, obs_adopted_cycles_);
    // The NVP's passive in-situ backup is atomic at this model's
    // granularity (contrast the active-checkpoint baseline's torn
    // copies); torn is published so the identity is uniform.
    count(obs::kSimBackupAttempts, result_.backups);
    count(obs::kSimBackupsCommitted, result_.backups);
    count(obs::kSimBackupsTorn, 0);
    count(obs::kSimRestores, result_.restores);
    count(obs::kSimFrameAttempts, captures_attempted_);
    count(obs::kSimFramesCaptured, result_.frames_captured);
    count(obs::kSimFramesDmaDropped, result_.frames_dropped_by_dma);
    count(obs::kSimFramesScored,
          static_cast<std::uint64_t>(result_.frames_scored));

    std::uint64_t violations = 0;
    std::uint64_t flips = 0;
    for (std::size_t b = 0; b < result_.retention_failures.flips.size();
         ++b) {
        violations += result_.retention_failures.violations[b];
        flips += result_.retention_failures.flips[b];
    }
    count(obs::kSimRetentionViolations, violations);
    count(obs::kSimRetentionFlips, flips);

    for (int b = 0; b <= 8; ++b) {
        count((std::string(obs::kBitTicksPrefix) + std::to_string(b))
                  .c_str(),
              result_.bit_ticks[static_cast<std::size_t>(b)]);
    }

    const core::ControllerStats &cs = result_.controller;
    count("ctrl.backups", cs.backups);
    count("ctrl.restores", cs.restores);
    count("ctrl.roll_forwards", cs.roll_forwards);
    count("ctrl.plain_resumes", cs.plain_resumes);
    count("ctrl.adoptions", cs.adoptions);
    count("ctrl.history_spawns", cs.history_spawns);
    count("ctrl.recompute_spawns", cs.recompute_spawns);
    count("ctrl.retirements", cs.retirements);
    count("ctrl.dropped_stale", cs.dropped_stale);
    count("ctrl.frames_started", cs.frames_started);
    count("ctrl.frames_completed", cs.frames_completed);
    count("ctrl.frames_abandoned", cs.frames_abandoned);
    count("ctrl.reg_decay_events", cs.reg_decay_events);

    gauge(obs::kEnergyInitial, obs_initial_nj_);
    gauge(obs::kEnergyIncome, result_.income_energy_nj);
    gauge(obs::kEnergyFetch, obs_fetch_nj_);
    gauge(obs::kEnergyDatapath, obs_datapath_nj_);
    gauge(obs::kEnergyIdle, obs_idle_nj_);
    gauge(obs::kEnergyAssemble, obs_assemble_nj_);
    gauge(obs::kEnergyConsumed, result_.consumed_energy_nj);
    gauge(obs::kEnergyBackup, result_.backup_energy_nj);
    gauge(obs::kEnergyRestore, result_.restore_energy_nj);
    gauge(obs::kEnergyLeak, capacitor_.totalLossNj());
    gauge(obs::kEnergyStoredFinal, capacitor_.energyNj());
    gauge(obs::kEnergyUnfunded, obs_unfunded_nj_);

#if INC_OBS_ENABLED
    // Hot-path counter structs (all zero — and misleading — when the
    // increments are compiled out, so only published when live).
    const obs::CoreCounters &cc = obs_->core;
    count(obs::kCoreSteps, cc.steps);
    count(obs::kCoreInstrAlu, cc.instr_alu);
    count(obs::kCoreInstrLoad, cc.instr_load);
    count(obs::kCoreInstrStore, cc.instr_store);
    count(obs::kCoreInstrBranch, cc.instr_branch);
    count(obs::kCoreBranchTaken, cc.branch_taken);
    count(obs::kCoreInstrJump, cc.instr_jump);
    count(obs::kCoreInstrIncidental, cc.instr_incidental);
    count(obs::kCoreInstrSystem, cc.instr_system);
    count(obs::kCoreAssembles, cc.assembles);
    count(obs::kCoreAssembleBytes, cc.assemble_bytes);
    count(obs::kCoreLaneCommits, cc.lane_commits);

    const obs::MemCounters &mc = obs_->mem;
    count(obs::kMemLoads, mc.loads);
    count(obs::kMemStores, mc.stores);
    count(obs::kMemAcTruncatedLoads, mc.ac_truncated_loads);
    count(obs::kMemAcTruncatedStores, mc.ac_truncated_stores);
    count(obs::kMemWtCommits, mc.wt_commits);
    count(obs::kMemWtRejects, mc.wt_rejects);
    count(obs::kMemAssembleBytes, mc.assemble_bytes);
    count(obs::kMemVersionResets, mc.version_resets);
    count(obs::kMemLaneClears, mc.lane_clears);
    count(obs::kMemDecayPasses, mc.decay_passes);

    const obs::QueueCounters &qc = obs_->queue;
    count(obs::kQueueRequests, qc.requests);
    count(obs::kQueuePasses, qc.passes);
    count(obs::kQueueDropped, qc.dropped);
#endif

    strategy_->publish(m);
}

} // namespace inc::sim
