/**
 * @file
 * Wait-compute baseline: a volatile low-power MCU with a large energy
 * storage device (paper Sec. 2.2). The system alternates between
 * charging the ESD until it holds enough energy for an entire logical
 * work unit (one frame) and executing that unit; losing power mid-frame
 * loses all progress (volatile state). The model includes the ESD's
 * poorer conversion efficiency, proportional leakage and a minimum
 * charging current below which income is wasted (paper cites the
 * GZ115's 20 uA floor).
 */

#ifndef INC_SIM_WAIT_COMPUTE_H
#define INC_SIM_WAIT_COMPUTE_H

#include <cstdint>

#include "energy/energy_model.h"
#include "trace/power_trace.h"

namespace inc::sim
{

/** Wait-compute baseline configuration. */
struct WaitComputeConfig
{
    double cycles_per_frame = 30000.0;       ///< calibrated per kernel
    double instructions_per_frame = 20000.0; ///< calibrated per kernel
    energy::EnergyParams energy{};

    /** ESD capacity relative to one frame's energy. */
    double capacity_factor = 1.5;

    /** Charge margin before execution begins. */
    double start_margin = 1.1;

    /** Conversion efficiency through the big storage element. */
    double efficiency = 0.55;

    /** Proportional ESD leakage per ms. */
    double leak_frac_per_ms = 2e-5;

    /**
     * Fixed ESD leakage in nJ/ms (= uW). Supercap-class storage leaks
     * tens of uA — comparable to the harvester's average income, the
     * paper's "incoming power may not be sufficient compared to leakage
     * in the ESD" failure mode. The NVP's small on-chip capacitor leaks
     * ~0.5 uW by comparison.
     */
    double leak_nj_per_ms = 15.0;

    /** Income below this is wasted (minimum charging current). */
    double min_charge_uw = 50.0;
};

/** Wait-compute run metrics. */
struct WaitComputeResult
{
    std::uint64_t frames_completed = 0;
    std::uint64_t frames_lost = 0;

    /** Persisted instructions: completed frames only. */
    std::uint64_t forward_progress = 0;

    /** Mean wall time between completed frames, seconds. */
    double seconds_per_frame = 0.0;
};

/** Simulate the wait-compute baseline over @p trace. */
WaitComputeResult runWaitCompute(const trace::PowerTrace &trace,
                                 const WaitComputeConfig &config);

} // namespace inc::sim

#endif // INC_SIM_WAIT_COMPUTE_H
