/**
 * @file
 * Active (software) checkpointing baseline — the Hibernus / Mementos /
 * QuickRecall class of systems from the paper's related-work taxonomy:
 * a volatile MCU with on-chip FeRAM that periodically copies its state
 * out in software. "The active method is modest in cost, but it is
 * bounded by the backup speed and energy" (Sec. 9) — the checkpoint is
 * an instruction-by-instruction copy loop, work since the last
 * checkpoint is lost on every brown-out, and reboot runs a software
 * restore path. Contrast with the NVP's passive, in-situ,
 * microarchitectural backup (SystemSimulator).
 */

#ifndef INC_SIM_ACTIVE_CHECKPOINT_H
#define INC_SIM_ACTIVE_CHECKPOINT_H

#include <cstdint>

#include "energy/energy_model.h"
#include "nvm/retention_policy.h"
#include "trace/power_trace.h"

namespace inc::obs
{
struct Observer;
}

namespace inc::arena
{
class PersistenceBackend;
}

namespace inc::sim
{

/** Active-checkpointing MCU configuration. */
struct ActiveCheckpointConfig
{
    /** Instructions between checkpoints (the tuning knob the class's
     *  papers sweep). */
    int checkpoint_interval_instr = 2000;

    /** Bytes of state each checkpoint copies to FeRAM. */
    int state_bytes = 256;

    /** Fixed bookkeeping instructions per checkpoint. */
    double checkpoint_overhead_instr = 50.0;

    /** Reboot + software-restore instructions per power-up. */
    double restart_overhead_instr = 400.0;

    /** On-chip capacitor (same class as the NVP's). */
    double capacity_nj = 2000.0;
    double efficiency = 0.70;

    /**
     * Retention shaping of the checkpoint image in FeRAM. With `full`
     * every bit survives any off period (the classic assumption of this
     * system class); shaped policies let low bits of the image expire
     * while the system is dark, which the result reports as
     * restore_bit_expirations.
     */
    nvm::RetentionPolicy checkpoint_policy = nvm::RetentionPolicy::full;

    energy::EnergyParams energy{};

    /** Optional observability sink (publishes the `ac.*` schema of
     *  obs/schema.h). Not owned; may be null. */
    obs::Observer *obs = nullptr;

    /**
     * Where the FeRAM checkpoint image lives. nullptr keeps the image
     * abstract (pre-arena behaviour, no bytes materialised). With a
     * backend, the double-buffered image ("ac.image", two state_bytes
     * slots) and its commit metadata ("ac.meta": valid flag, active
     * slot, attempt counter) are real persisted bytes: a process killed
     * mid-copy leaves the previous slot intact, and a re-run on the
     * same arena warm-restarts with the committed image (its first
     * power-up runs the restore path instead of a cold boot). Not
     * owned; must outlive the run.
     */
    arena::PersistenceBackend *persistence = nullptr;
};

/** Run metrics. */
struct ActiveCheckpointResult
{
    /** Instructions persisted via checkpoints. */
    std::uint64_t forward_progress = 0;

    /** All instructions executed (incl. later-lost and restart code). */
    std::uint64_t instructions_executed = 0;

    /** Instructions re-executed because a brown-out preceded the next
     *  checkpoint. */
    std::uint64_t instructions_lost = 0;

    std::uint64_t checkpoints = 0;
    double checkpoint_energy_nj = 0.0;

    /**
     * Checkpoints that browned out mid-copy. The copy loop is
     * interruptible (the software has no income foresight, only a
     * voltage trigger); a torn image is discarded — the model assumes
     * the double-buffered commit these systems use — so the previous
     * intact checkpoint is restored and the work since it is lost.
     */
    std::uint64_t torn_checkpoints = 0;

    /** Power-up software restore passes. */
    std::uint64_t restores = 0;

    /**
     * Sum over restores of the highest expired bit index of the
     * checkpoint image (nvm::NvmArray::expiredCutoff of the off
     * duration under checkpoint_policy). 0 with full retention.
     */
    std::uint64_t restore_bit_expirations = 0;
};

/** Simulate the active-checkpointing MCU over @p trace. */
ActiveCheckpointResult
runActiveCheckpoint(const trace::PowerTrace &trace,
                    const ActiveCheckpointConfig &config);

} // namespace inc::sim

#endif // INC_SIM_ACTIVE_CHECKPOINT_H
