/**
 * @file
 * Double-buffered checkpoint image storage on a PersistenceBackend.
 *
 * Extracted from sim/active_checkpoint so every backup strategy shares
 * one crash-safe commit discipline: two state-sized slots live in
 * "<prefix>.image" and a small metadata block in "<prefix>.meta"; all
 * in-flight writes target the *inactive* slot, and commit() publishes
 * it by flipping the active-slot byte only after the copy is complete.
 * A process killed at any byte therefore leaves the previously
 * committed slot untouched — the invariant both the active-checkpoint
 * baseline's torn-copy accounting and the strategy conformance tier
 * (tests/test_strategy_conformance.cc) are built on.
 *
 * Metadata layout (byte offsets, stable across PRs — the raw-layout
 * assertions in tests/test_arena_sweep.cc read it directly):
 *
 *   [0]      valid flag (1 after the first commit)
 *   [1]      active slot index (0 or 1)
 *   [8..15]  committed sequence number (u64, little-endian memcpy)
 *
 * With the extended kMetaBytesCrc layout (used by the strategy zoo;
 * the legacy 16-byte layout keeps "ac.meta" byte-identical):
 *
 *   [16..19] CRC32 of slot 0's committed content
 *   [20..23] CRC32 of slot 1's committed content
 *
 * The per-slot CRC is written *before* the active-slot flip, so a kill
 * anywhere inside commit() leaves a verifiable image: whatever slot
 * meta[1] names has a matching CRC (verifyCommitted()).
 */

#ifndef INC_SIM_STRATEGY_IMAGE_STORE_H
#define INC_SIM_STRATEGY_IMAGE_STORE_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace inc::arena
{
class PersistenceBackend;
}

namespace inc::sim
{

class ImageStore
{
  public:
    /** Legacy metadata block (valid/slot/seq) — the exact bytes
     *  sim/active_checkpoint has always persisted under "ac.meta". */
    static constexpr std::size_t kMetaBytes = 16;
    /** Extended metadata with per-slot content CRCs. */
    static constexpr std::size_t kMetaBytesCrc = 32;

    /**
     * Acquire (get-or-create) "<prefix>.image" (2 x @p state_bytes) and
     * "<prefix>.meta" (@p meta_bytes) from @p backend. With a null
     * backend the store is inert: nothing is materialized, every write
     * is a no-op and warmStart() is false — the pre-arena behaviour of
     * the active-checkpoint baseline. @p backend is not owned and must
     * outlive this object.
     */
    ImageStore(arena::PersistenceBackend *backend, std::string prefix,
               std::size_t state_bytes,
               std::size_t meta_bytes = kMetaBytes);

    bool materialized() const { return image_ != nullptr; }
    std::size_t stateBytes() const { return state_bytes_; }

    /** A committed image existed when this store was opened (warm
     *  restart on a persisted arena). */
    bool warmStart() const { return warm_start_; }

    /** Sequence number found at open (0 on a fresh store). */
    std::uint64_t bootSeq() const { return boot_seq_; }

    /** A committed image exists now (found at open or committed since). */
    bool hasCommitted() const;

    /** Committed sequence number as persisted (0 when none). */
    std::uint64_t committedSeq() const;

    /** Index of the slot in-flight writes target. */
    std::size_t inactiveIndex() const;

    std::uint8_t *inactiveSlot();
    const std::uint8_t *committedSlot() const;

    /** Write one byte of in-flight image state at @p offset of the
     *  inactive slot (the active-checkpoint copy loop's granularity). */
    void writeByte(std::size_t offset, std::uint8_t value);

    /** Write @p len bytes at @p offset of the inactive slot. */
    void writeSpan(std::size_t offset, const std::uint8_t *data,
                   std::size_t len);

    /**
     * Publish the inactive slot: record its CRC (extended layout only),
     * flip the active-slot byte, set the valid flag, persist @p seq.
     * The flip is the commit point — everything before it is invisible
     * to a reader of the committed slot.
     */
    void commit(std::uint64_t seq);

    /**
     * Check the committed slot against its recorded CRC. True when
     * there is nothing to verify (no backend, no committed image, or
     * the legacy CRC-less layout); false with *why set on a mismatch —
     * which would mean a torn commit escaped the double-buffer
     * discipline.
     */
    bool verifyCommitted(std::string *why = nullptr) const;

  private:
    std::size_t state_bytes_ = 0;
    std::size_t meta_bytes_ = 0;
    std::uint8_t *image_ = nullptr; ///< 2 x state_bytes_ (slot 0, slot 1)
    std::uint8_t *meta_ = nullptr;
    bool warm_start_ = false;
    std::uint64_t boot_seq_ = 0;
};

} // namespace inc::sim

#endif // INC_SIM_STRATEGY_IMAGE_STORE_H
