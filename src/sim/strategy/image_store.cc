#include "sim/strategy/image_store.h"

#include <cstdio>
#include <cstring>

#include "arena/backend.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace inc::sim
{

ImageStore::ImageStore(arena::PersistenceBackend *backend,
                       std::string prefix, std::size_t state_bytes,
                       std::size_t meta_bytes)
    : state_bytes_(state_bytes), meta_bytes_(meta_bytes)
{
    if (meta_bytes_ < kMetaBytes)
        util::fatal("ImageStore meta block must hold at least %zu bytes",
                    kMetaBytes);
    if (!backend)
        return;
    bool image_existed = false;
    bool meta_existed = false;
    image_ = backend->acquire(prefix + ".image", 2 * state_bytes_,
                              &image_existed);
    meta_ = backend->acquire(prefix + ".meta", meta_bytes_,
                             &meta_existed);
    if (image_existed && meta_existed && meta_[0] == 1)
        warm_start_ = true;
    std::memcpy(&boot_seq_, meta_ + 8, sizeof boot_seq_);
}

bool
ImageStore::hasCommitted() const
{
    return meta_ != nullptr && meta_[0] == 1;
}

std::uint64_t
ImageStore::committedSeq() const
{
    if (!meta_)
        return 0;
    std::uint64_t seq = 0;
    std::memcpy(&seq, meta_ + 8, sizeof seq);
    return seq;
}

std::size_t
ImageStore::inactiveIndex() const
{
    return meta_ && meta_[1] != 0 ? 0 : 1;
}

std::uint8_t *
ImageStore::inactiveSlot()
{
    return image_ ? image_ + inactiveIndex() * state_bytes_ : nullptr;
}

const std::uint8_t *
ImageStore::committedSlot() const
{
    return image_ ? image_ + (meta_[1] != 0 ? 1 : 0) * state_bytes_
                  : nullptr;
}

void
ImageStore::writeByte(std::size_t offset, std::uint8_t value)
{
    if (!image_)
        return;
    image_[inactiveIndex() * state_bytes_ + offset] = value;
}

void
ImageStore::writeSpan(std::size_t offset, const std::uint8_t *data,
                      std::size_t len)
{
    if (!image_ || len == 0)
        return;
    std::memcpy(image_ + inactiveIndex() * state_bytes_ + offset, data,
                len);
}

void
ImageStore::commit(std::uint64_t seq)
{
    if (!meta_)
        return;
    const std::size_t inactive = inactiveIndex();
    if (meta_bytes_ >= kMetaBytesCrc) {
        // CRC first: once the flip lands, the named slot already has a
        // matching checksum, so a kill anywhere in here verifies.
        const std::uint32_t crc =
            util::crc32(image_ + inactive * state_bytes_, state_bytes_);
        std::memcpy(meta_ + 16 + 4 * inactive, &crc, sizeof crc);
    }
    // The legacy commit order (byte-identical under the 16-byte "ac"
    // layout): flip the active slot, then mark valid, then the seq.
    meta_[1] = static_cast<std::uint8_t>(inactive);
    meta_[0] = 1;
    std::memcpy(meta_ + 8, &seq, sizeof seq);
}

bool
ImageStore::verifyCommitted(std::string *why) const
{
    if (!image_ || !hasCommitted() || meta_bytes_ < kMetaBytesCrc)
        return true;
    const std::size_t active = meta_[1] != 0 ? 1 : 0;
    std::uint32_t want = 0;
    std::memcpy(&want, meta_ + 16 + 4 * active, sizeof want);
    const std::uint32_t got =
        util::crc32(image_ + active * state_bytes_, state_bytes_);
    if (got == want)
        return true;
    if (why) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "committed slot %zu CRC %08x != recorded %08x",
                      active, got, want);
        *why = buf;
    }
    return false;
}

} // namespace inc::sim
