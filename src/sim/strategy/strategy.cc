#include "sim/strategy/strategy.h"

#include <cstring>

#include "arena/backend.h"
#include "nvp/memory.h"
#include "obs/metrics.h"
#include "obs/schema.h"
#include "sim/strategy/image_store.h"
#include "util/bit_ops.h"
#include "util/logging.h"

namespace inc::sim
{

const std::array<StrategyKind, kNumStrategies> &
allStrategies()
{
    static const std::array<StrategyKind, kNumStrategies> kAll = {
        StrategyKind::active,
        StrategyKind::freezer,
        StrategyKind::ondemand,
    };
    return kAll;
}

const char *
strategyName(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::active:
        return "active";
      case StrategyKind::freezer:
        return "freezer";
      case StrategyKind::ondemand:
        return "ondemand";
    }
    util::panic("strategyName: bad kind %d", static_cast<int>(kind));
}

std::string
strategyNames()
{
    std::string names;
    for (StrategyKind kind : allStrategies()) {
        if (!names.empty())
            names += ", ";
        names += strategyName(kind);
    }
    return names;
}

std::optional<StrategyKind>
strategyFromName(const std::string &name)
{
    for (StrategyKind kind : allStrategies()) {
        if (name == strategyName(kind))
            return kind;
    }
    return std::nullopt;
}

CheckpointStrategy::CheckpointStrategy(const StrategyConfig &config,
                                       nvp::DataMemory *mem)
    : config_(config), mem_(mem)
{
    if (!mem_)
        util::fatal("CheckpointStrategy requires a data memory");
    arena::PersistenceBackend *backend = config_.persistence;
    if (!backend) {
        own_backend_ = std::make_unique<arena::HeapBackend>();
        backend = own_backend_.get();
    }
    image_ = std::make_unique<ImageStore>(backend, config_.name_prefix,
                                          mem_->size(),
                                          ImageStore::kMetaBytesCrc);
    seq_ = image_->bootSeq();
}

CheckpointStrategy::~CheckpointStrategy() = default;

void
CheckpointStrategy::onSample(std::size_t, double)
{
}

void
CheckpointStrategy::onRestore(std::size_t)
{
    ++stats_.restores;
    if (image_->hasCommitted()) {
        const auto bytes =
            static_cast<std::uint64_t>(image_->stateBytes());
        stats_.restore_bytes += bytes;
        stats_.restore_latency_us +=
            static_cast<double>(bytes) * config_.restore_us_per_byte;
    }
}

void
CheckpointStrategy::onColdBoot(std::size_t)
{
}

bool
CheckpointStrategy::verifyImage(std::string *why) const
{
    return image_->verifyCommitted(why);
}

void
CheckpointStrategy::commitFullImage()
{
    const std::size_t bytes = mem_->size();
    image_->writeSpan(0, mem_->mainData(), bytes);
    image_->commit(++seq_);
    const std::uint64_t words =
        bytes / nvp::DataMemory::kDirtyWordBytes;
    stats_.backup_bytes += bytes;
    stats_.words_written += words;
    stats_.words_tracked += words;
    stats_.backup_energy_nj +=
        static_cast<double>(bytes) * config_.backup_nj_per_byte;
}

void
CheckpointStrategy::publish(obs::MetricsRegistry &m) const
{
    const auto count = [&m](const char *name, std::uint64_t v) {
        m.counter(name).value += v;
    };
    count(obs::kCkptBackups, stats_.backups);
    count(obs::kCkptSnapshots, stats_.snapshots);
    count(obs::kCkptBackupBytes, stats_.backup_bytes);
    count(obs::kCkptRestores, stats_.restores);
    count(obs::kCkptRestoreBytes, stats_.restore_bytes);
    count(obs::kCkptWordsWritten, stats_.words_written);
    count(obs::kCkptWordsTracked, stats_.words_tracked);
    m.gauge(obs::kCkptBackupEnergy).value += stats_.backup_energy_nj;
    m.gauge(obs::kCkptRestoreLatency).value += stats_.restore_latency_us;
    m.counter(std::string(obs::kCkptStrategyPrefix) +
              strategyName(config_.kind))
        .value += 1;
}

namespace
{

/** The full-image baseline: every backup persists the whole memory. */
class ActiveStrategy final : public CheckpointStrategy
{
  public:
    ActiveStrategy(const StrategyConfig &config, nvp::DataMemory *mem)
        : CheckpointStrategy(config, mem)
    {
    }

    void onBackup(std::size_t) override
    {
        ++stats_.backups;
        commitFullImage();
    }
};

/**
 * Freezer-style dirty-word backup (arXiv 2101.09968).
 *
 * The store intercepts in nvp::DataMemory mark 4-byte words written
 * since the last clearDirty(). Because the image is double-buffered,
 * each slot needs its OWN notion of staleness: a word synced into slot
 * A at backup N is still stale in slot B at backup N+1. pending_[s]
 * accumulates words slot s has not absorbed yet; a backup folds the
 * memory's bitmap into BOTH pendings, clears it, then flushes the
 * inactive slot's pending set. Both pendings start all-ones so a warm
 * restart (or a fresh store over pre-initialized memory) conservatively
 * resyncs every word before trusting incremental deltas.
 */
class FreezerStrategy final : public CheckpointStrategy
{
  public:
    FreezerStrategy(const StrategyConfig &config, nvp::DataMemory *mem)
        : CheckpointStrategy(config, mem)
    {
        mem_->enableDirtyTracking();
        mem_->clearDirty();
        const std::size_t words = mem_->dirtyBits().size();
        pending_[0].assign(words, ~std::uint64_t{0});
        pending_[1].assign(words, ~std::uint64_t{0});
    }

    void onBackup(std::size_t) override
    {
        ++stats_.backups;
        const std::vector<std::uint64_t> &dirty = mem_->dirtyBits();
        for (std::size_t i = 0; i < dirty.size(); ++i) {
            pending_[0][i] |= dirty[i];
            pending_[1][i] |= dirty[i];
        }
        mem_->clearDirty();

        const std::size_t slot = image_->inactiveIndex();
        std::vector<std::uint64_t> &pend = pending_[slot];
        const std::uint8_t *mem_bytes = mem_->mainData();
        const std::size_t bytes = mem_->size();
        const std::size_t total_words =
            bytes / nvp::DataMemory::kDirtyWordBytes;
        std::uint64_t written = 0;
        for (std::size_t i = 0; i < pend.size(); ++i) {
            std::uint64_t bits = pend[i];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                bits &= bits - 1;
                const std::size_t w = i * 64 + static_cast<std::size_t>(b);
                if (w >= total_words)
                    break;
                const std::size_t off =
                    w * nvp::DataMemory::kDirtyWordBytes;
                image_->writeSpan(off, mem_bytes + off,
                                  nvp::DataMemory::kDirtyWordBytes);
                ++written;
            }
            pend[i] = 0;
        }
        image_->commit(++seq_);
        const std::uint64_t copied =
            written * nvp::DataMemory::kDirtyWordBytes;
        stats_.backup_bytes += copied;
        stats_.words_written += written;
        stats_.words_tracked += total_words;
        stats_.backup_energy_nj +=
            static_cast<double>(copied) * config_.backup_nj_per_byte;
    }

  private:
    std::array<std::vector<std::uint64_t>, 2> pending_;
};

/**
 * Rapid-Recovery-style placement (arXiv 2209.08826): full snapshots at
 * the in-situ backup plus whenever the stored-energy fraction crosses a
 * configured watermark downward, keeping the committed image fresher at
 * the cost of extra snapshot writes. The previous-fraction tracker is
 * reset across restores/cold boots so the charging ramp after an outage
 * never reads as a downward crossing.
 */
class OndemandStrategy final : public CheckpointStrategy
{
  public:
    OndemandStrategy(const StrategyConfig &config, nvp::DataMemory *mem)
        : CheckpointStrategy(config, mem)
    {
    }

    void onBackup(std::size_t) override
    {
        ++stats_.backups;
        commitFullImage();
        have_prev_ = false;
    }

    void onSample(std::size_t, double stored_fraction) override
    {
        if (have_prev_) {
            for (double mark : config_.watermarks) {
                if (prev_fraction_ >= mark && stored_fraction < mark) {
                    ++stats_.snapshots;
                    commitFullImage();
                    break;
                }
            }
        }
        prev_fraction_ = stored_fraction;
        have_prev_ = true;
    }

    void onRestore(std::size_t sample) override
    {
        CheckpointStrategy::onRestore(sample);
        have_prev_ = false;
    }

    void onColdBoot(std::size_t) override { have_prev_ = false; }

  private:
    double prev_fraction_ = 0.0;
    bool have_prev_ = false;
};

} // namespace

std::unique_ptr<CheckpointStrategy>
makeStrategy(const StrategyConfig &config, nvp::DataMemory *mem)
{
    switch (config.kind) {
      case StrategyKind::active:
        return std::make_unique<ActiveStrategy>(config, mem);
      case StrategyKind::freezer:
        return std::make_unique<FreezerStrategy>(config, mem);
      case StrategyKind::ondemand:
        return std::make_unique<OndemandStrategy>(config, mem);
    }
    util::panic("makeStrategy: bad kind %d",
                static_cast<int>(config.kind));
}

} // namespace inc::sim
