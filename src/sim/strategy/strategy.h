/**
 * @file
 * The pluggable backup-strategy zoo (DESIGN.md §14).
 *
 * The paper's NVP performs a passive in-situ backup: when the capacitor
 * reaches the reserve, distributed FeRAM flops capture all live state
 * at once. That is one point in the intermittent-computing design
 * space; the related work maps out others (ROADMAP "backup-strategy
 * zoo"). This subsystem puts a strategy interface behind the
 * co-simulator's checkpoint events so those baselines run head-to-head
 * on every existing bench, report and fuzzer invariant:
 *
 *   active   — the full-image double-buffered software checkpoint
 *              (today's sim/active_checkpoint image discipline): every
 *              backup persists the complete main data image.
 *   freezer  — Freezer-style dirty-state tracking (arXiv 2101.09968):
 *              a write-intercept bitmap in nvp::DataMemory marks
 *              4-byte words touched since each image slot last synced;
 *              a backup copies only those, cutting backup bytes/energy
 *              by the workload's write locality.
 *   ondemand — Rapid-Recovery-style placement (arXiv 2209.08826):
 *              in addition to reserve-triggered backups, a full
 *              snapshot is taken when the stored-energy fraction
 *              crosses a watermark downward, trading extra snapshot
 *              writes for a fresher image (lower recovery latency).
 *
 * Shared contract, enforced by tests/test_strategy_conformance.cc and
 * the fuzzer's strategy_diff mode: a strategy is a persistence +
 * accounting overlay. It observes the simulation (onBackup/onRestore/
 * onSample) and writes its image through an ImageStore, but it NEVER
 * feeds back into the capacitor, core, controller or data memory —
 * crash-free runs are bit-identical across all registered strategies
 * and all execution engines, the backup-energy comparison lives purely
 * in the ckpt.* metrics (obs/schema.h), and any-crash-point recovery
 * finds a CRC-consistent committed frame (ImageStore discipline).
 *
 * The registry mirrors nvp::allExecEngines(): tests, benches and the
 * CLI iterate allStrategies() so a newly registered strategy is
 * automatically pulled into the conformance matrix.
 */

#ifndef INC_SIM_STRATEGY_STRATEGY_H
#define INC_SIM_STRATEGY_STRATEGY_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace inc::obs
{
class MetricsRegistry;
}

namespace inc::arena
{
class PersistenceBackend;
class HeapBackend;
}

namespace inc::nvp
{
class DataMemory;
}

namespace inc::sim
{

class ImageStore;

/** Registered checkpoint strategies. */
enum class StrategyKind : int
{
    active = 0,
    freezer,
    ondemand,
};

constexpr int kNumStrategies = 3;

/** Every registered strategy, `active` (the semantic baseline) first.
 *  Conformance tests and the CLI iterate this. */
const std::array<StrategyKind, kNumStrategies> &allStrategies();

/** Canonical CLI/report name. */
const char *strategyName(StrategyKind kind);

/** Comma-separated list of every registered name (error messages). */
std::string strategyNames();

/** Parse a CLI name; nullopt when unknown. */
std::optional<StrategyKind> strategyFromName(const std::string &name);

/** What a strategy did over one run — the ckpt.* metric source. All
 *  fields are additive so merged sweep registries stay meaningful. */
struct StrategyStats
{
    /** Image commits triggered by in-situ backup events. */
    std::uint64_t backups = 0;
    /** Extra threshold-triggered image commits (ondemand watermarks). */
    std::uint64_t snapshots = 0;
    /** Restore events serviced (cold boots excluded). */
    std::uint64_t restores = 0;
    /** Bytes written into the image across all commits. */
    std::uint64_t backup_bytes = 0;
    /** Bytes read back across all restores. */
    std::uint64_t restore_bytes = 0;
    /** 4-byte words written / words covered per commit (dirty ratio =
     *  words_written / words_tracked after any merge). */
    std::uint64_t words_written = 0;
    std::uint64_t words_tracked = 0;
    /** Modeled backup energy (ld8+st8 per byte). Reported, never
     *  drained — strategies must not perturb the simulation. */
    double backup_energy_nj = 0.0;
    /** Modeled restore latency (copy loop over the image), us. */
    double restore_latency_us = 0.0;
};

/** Strategy construction parameters (SystemSimulator fills these). */
struct StrategyConfig
{
    StrategyKind kind = StrategyKind::active;

    /** Backing store for the image. nullptr = a private HeapBackend is
     *  created (images still materialize, but die with the process). */
    arena::PersistenceBackend *persistence = nullptr;

    /** Block-name prefix ("<prefix>.image" / "<prefix>.meta"). Distinct
     *  from the active-checkpoint baseline's "ac" namespace. */
    std::string name_prefix = "ckpt";

    /** Modeled energy per image byte (ld8+st8 pair), nJ. */
    double backup_nj_per_byte = 0.0;

    /** Modeled restore copy-loop cost per byte, us (2 cycles @ 1 MHz). */
    double restore_us_per_byte = 2.0;

    /** ondemand: stored-energy fractions whose downward crossing
     *  triggers a snapshot. */
    std::array<double, 2> watermarks{0.6, 0.3};
};

/**
 * One checkpoint strategy attached to a SystemSimulator run.
 *
 * Lifecycle hooks are observation-only (see the file comment): the
 * simulator calls onBackup() at every committed in-situ backup,
 * onRestore() at every wake-up restore, onColdBoot() on the first
 * power-up, and onSample() once per processed ON sample with the
 * capacitor fill fraction.
 */
class CheckpointStrategy
{
  public:
    virtual ~CheckpointStrategy();

    CheckpointStrategy(const CheckpointStrategy &) = delete;
    CheckpointStrategy &operator=(const CheckpointStrategy &) = delete;

    StrategyKind kind() const { return config_.kind; }

    /** A committed in-situ backup event at @p sample. */
    virtual void onBackup(std::size_t sample) = 0;

    /** One processed ON sample; @p stored_fraction is the capacitor
     *  fill in [0, 1]. Default: ignored. */
    virtual void onSample(std::size_t sample, double stored_fraction);

    /** A wake-up restore at @p sample. */
    virtual void onRestore(std::size_t sample);

    /** The run's first power-up (no image to restore). */
    virtual void onColdBoot(std::size_t sample);

    const StrategyStats &stats() const { return stats_; }

    /** The underlying image (conformance tests inspect commits). */
    const ImageStore &image() const { return *image_; }

    /** CRC-verify the committed image slot (true when consistent). */
    bool verifyImage(std::string *why = nullptr) const;

    /** Fold this run's ckpt.* metrics into @p registry. */
    void publish(obs::MetricsRegistry &registry) const;

  protected:
    CheckpointStrategy(const StrategyConfig &config,
                       nvp::DataMemory *mem);

    /** Copy the full main image into the inactive slot and commit. */
    void commitFullImage();

    StrategyConfig config_;
    nvp::DataMemory *mem_ = nullptr;
    std::unique_ptr<arena::HeapBackend> own_backend_;
    std::unique_ptr<ImageStore> image_;
    StrategyStats stats_;
    std::uint64_t seq_ = 0;
};

/** Build the strategy named by @p config.kind over @p mem (the freezer
 *  enables mem's dirty-word tracking as a side effect). */
std::unique_ptr<CheckpointStrategy>
makeStrategy(const StrategyConfig &config, nvp::DataMemory *mem);

} // namespace inc::sim

#endif // INC_SIM_STRATEGY_STRATEGY_H
