/**
 * @file
 * The NVP + energy-harvesting co-simulator (paper Sec. 7, Fig. 10).
 *
 * Replaces the authors' ModelSim-RTL + MATLAB/Python system framework:
 * the functional core (nvp::Core) plays the role of the RTL while this
 * class implements the system level — capacitor, front-end efficiency,
 * thresholds, backup/restore sequencing, the sensor's frame arrivals,
 * and the metric collection (forward progress, backup counts, system-on
 * time, per-frame output quality).
 *
 * Time advances in 0.1 ms trace samples; within an ON sample the core
 * executes up to 100 cycles (1 MHz clock). Threshold structure:
 *
 *   backup threshold = guard * backup energy of the worst-case lane
 *                      configuration under the configured retention
 *                      policy (the reserve that must never be touched);
 *   start threshold  = backup threshold + restore energy + a minimum
 *                      work quantum at the configured minimum precision
 *                      (this ordering yields Fig. 9's hierarchy:
 *                      precise < incidental(2,8) < incidental(6,8) <
 *                      always-4-SIMD).
 */

#ifndef INC_SIM_SYSTEM_SIM_H
#define INC_SIM_SYSTEM_SIM_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "approx/bitwidth_controller.h"
#include "approx/quality.h"
#include "core/incidental.h"
#include "energy/capacitor.h"
#include "energy/energy_model.h"
#include "kernels/kernel.h"
#include "sim/strategy/strategy.h"
#include "trace/power_trace.h"

namespace inc::obs
{
struct Observer;
}

namespace inc::arena
{
class PersistenceBackend;
}

namespace inc::sim
{

/** Full system configuration. */
struct SimConfig
{
    energy::CapacitorParams capacitor{};
    energy::EnergyParams energy{};
    approx::BitwidthConfig bits{};
    core::ControllerConfig controller{};
    nvp::CoreConfig core{};

    /**
     * Interpreter engine (propagated into core.engine at construction).
     * The fast-path engines (`predecoded`, `batch`) additionally enable
     * quantum stepping: the per-step backup-reserve comparison is
     * skipped for a whole sample when the stored energy provably cannot
     * fall to the reserve within it (see DESIGN.md §11). `batch` also
     * marks the run as packable into a lane-batched sweep
     * (runner::SweepSpec::batch_width, sim::SimBatch). All engines are
     * bit-identical by contract — enforced by tests/test_engine_diff.cc
     * and fuzz --engine-diff.
     */
    nvp::ExecEngine exec_engine = nvp::ExecEngine::predecoded;

    /**
     * Income calibration factor applied to the trace's power samples.
     * The paper reports 42 % system-on time for the precise 8-bit NVP
     * (0.209 mW @ 1 MHz) on its watch traces (Fig. 9), which requires a
     * harvest-to-consumption ratio well above the traces' 10-40 uW
     * average; the default scale reproduces that operating regime (see
     * EXPERIMENTS.md, calibration notes).
     */
    double income_scale = 12.0;

    /** Safety margin on the reserved backup energy. */
    double backup_guard = 1.05;

    /** Minimum work quantum (instructions) covered by the start
     *  threshold. */
    int start_quantum_instr = 64;

    /** Sensor frame period in 0.1 ms units; 0 = auto-calibrate to
     *  frame_period_factor x the precise frame compute time. */
    double frame_period_tenth_ms = 0.0;
    double frame_period_factor = 2.0;

    /** Score output quality against the golden model. */
    bool score_quality = true;

    std::uint64_t seed = 2017;

    /**
     * Observability sink (src/obs). When non-null the run publishes the
     * metric schema of obs/schema.h into its registry (and Chrome-trace
     * events into its tracer, if one is attached). Observation is
     * non-perturbing: attaching an observer never changes simulation
     * results. Not owned; must outlive the simulator.
     */
    obs::Observer *obs = nullptr;

    /**
     * Persistence backend for the simulated NVM state (data memory,
     * RAC version store; sim/active_checkpoint reads it too). nullptr
     * = transient heap buffers, bit-compatible with the pre-arena
     * behaviour. When an arena::ArenaBackend is supplied, the NVM
     * images live in its mmap'd file and survive process death. Not
     * owned; must outlive the simulator.
     */
    arena::PersistenceBackend *persistence = nullptr;

    /**
     * Backup strategy attached to the run (DESIGN.md §14). Strategies
     * are a persistence + ckpt.* accounting overlay over the
     * simulation: they never feed back into the capacitor, core or
     * data memory, so crash-free results are bit-identical across all
     * registered strategies (enforced by tests/test_strategy_conformance
     * and fuzz --modes strategy_diff). The strategy's checkpoint image
     * lives in `persistence` under the "ckpt" prefix (a private heap
     * store when persistence is null).
     */
    StrategyKind strategy = StrategyKind::active;
};

/** Per-frame quality record. */
struct FrameScore
{
    std::uint32_t frame = 0;
    double mse = 0.0;
    double psnr = 0.0;
    double coverage = 0.0;
    int completions = 0; ///< times finished (recompute passes merge in)

    /** Byte sums of produced vs golden output — the size-style QoS used
     *  for JPEG in Table 2 (rate bytes dominate the sum). */
    double out_byte_sum = 0.0;
    double golden_byte_sum = 0.0;

    /**
     * Data age when the frame first completed, 0.1 ms units (capture to
     * first completion). Timeliness is the paper's core motivation:
     * "catching up quickly after a power failure may take priority over
     * the quality of response".
     */
    double first_completion_age = 0.0;
};

/** Aggregated run metrics. */
struct SimResult
{
    // Forward progress (paper's execution metric).
    std::uint64_t forward_progress = 0; ///< all lanes
    std::uint64_t main_instructions = 0; ///< lane 0 only
    std::uint64_t cycles_executed = 0;

    std::uint64_t backups = 0;
    std::uint64_t restores = 0;
    double on_time_fraction = 0.0;

    double income_energy_nj = 0.0;
    double consumed_energy_nj = 0.0;
    double backup_energy_nj = 0.0;
    double restore_energy_nj = 0.0;

    core::ControllerStats controller;
    nvm::RetentionFailureCounts retention_failures;

    /** Derived thresholds (copies of the simulator accessors, so batch
     *  runners can report them from the result record alone). */
    double start_threshold_nj = 0.0;
    double backup_threshold_nj = 0.0;

    /** Bitwidth utilization ticks: [0]=off, [1..8] = bits (Fig. 18). */
    std::array<std::uint64_t, 9> bit_ticks{};

    // Quality.
    int frames_scored = 0;
    double mean_mse = 0.0;
    double mean_psnr = 0.0;
    double mean_coverage = 0.0;
    /** Mean data age at first completion, 0.1 ms units. */
    double mean_completion_age = 0.0;
    std::vector<FrameScore> frame_scores;

    double frame_period_tenth_ms = 0.0;
    std::uint64_t frames_captured = 0;
    /** Captures skipped by the DMA interlock (input slot in use). */
    std::uint64_t frames_dropped_by_dma = 0;
};

/** The co-simulator. */
class SystemSimulator
{
  public:
    SystemSimulator(kernels::Kernel kernel, const trace::PowerTrace *trace,
                    SimConfig config);

    /** Run over the whole trace and return the aggregated metrics.
     *  Equivalent to stepSample() until exhausted, then finalize(). */
    SimResult run();

    /**
     * Advance the co-simulation by one 0.1 ms trace sample. Returns
     * true while more work remains (trace not exhausted, core not
     * halted); a false return means the next call would do nothing and
     * finalize() may be taken. sim::SimBatch drives N simulators in
     * lockstep through this — the decomposition is observationally
     * identical to run() (run() IS this loop), so interleaving
     * independent simulators cannot change any result.
     */
    bool stepSample();

    /** Aggregate and return the run metrics. Call exactly once, after
     *  stepSample() returns false. */
    SimResult finalize();

    /** The controller (for scripted recompute requests in examples). */
    core::IncidentalController &controller() { return *controller_; }

    /** Live data memory (for differential checkers in src/check). */
    nvp::DataMemory &memory() { return *mem_; }

    /** The attached backup strategy (conformance tests inspect its
     *  stats and image). */
    const CheckpointStrategy &strategy() const { return *strategy_; }

    /** Derived thresholds (for inspection / tests). */
    double startThresholdNj() const { return start_threshold_nj_; }
    double backupThresholdNj() const { return backup_threshold_nj_; }

  private:
    void captureFramesUpTo(std::size_t sample);
    void scoreFrame(const core::FrameCompletion &completion);
    void performBackup(std::size_t sample);
    void performRestore(std::size_t sample);

    /** Fold the run's counters + energy ledger into the observer's
     *  registry (end of run()). */
    void publishMetrics(std::uint64_t on_samples);
    /** Close the current power phase span on the tracer. */
    void tracePowerPhase(std::size_t now_sample, bool next_on);

    kernels::Kernel kernel_;
    const trace::PowerTrace *trace_;
    SimConfig config_;

    util::Rng rng_;
    util::SceneGenerator scene_;
    energy::EnergyModel energy_model_;
    energy::Capacitor capacitor_;
    approx::BitwidthController bit_ctrl_;
    std::unique_ptr<nvp::DataMemory> mem_;
    std::unique_ptr<nvp::Core> core_;
    std::unique_ptr<core::IncidentalController> controller_;
    std::unique_ptr<CheckpointStrategy> strategy_;

    double start_threshold_nj_ = 0.0;
    double backup_threshold_nj_ = 0.0;
    double next_start_threshold_nj_ = 0.0;
    int reserve_versions_ = 1;

    /**
     * Quantum-stepping level: stored energy strictly above this at the
     * top of a sample guarantees the backup-reserve comparison cannot
     * trip anywhere inside the sample (worst-case reserve plus the
     * worst-case drain of a full cycle budget), so the per-step check
     * is provably dead and may be skipped. assem steps drain an
     * unbounded assemble cost and therefore re-derive the guarantee.
     */
    double quantum_safe_level_nj_ = 0.0;

    // Sensor state.
    double frame_period_ = 0.0;
    std::int64_t newest_frame_ = -1;
    std::uint64_t captures_attempted_ = 0;
    std::size_t current_sample_ = 0;
    std::map<std::uint32_t, std::size_t> capture_time_;
    std::map<std::uint32_t, std::vector<std::uint8_t>> golden_cache_;

    // Execution state.
    std::size_t sample_cursor_ = 0; ///< next trace sample to execute
    std::uint64_t on_samples_ = 0;
    bool first_start_ = true;
    bool finalized_ = false;
    bool on_ = false;
    std::size_t off_since_ = 0;
    bool waiting_for_frame_ = false;
    std::uint32_t wanted_frame_ = 0;
    bool lane0_frame_valid_ = false; ///< first markrp reached

    SimResult result_;
    std::map<std::uint32_t, FrameScore> scores_;

    // Observability state (inert when obs_ is null; the per-instruction
    // accumulation sites additionally compile out with INCIDENTAL_OBS=OFF).
    obs::Observer *obs_ = nullptr;
    double obs_initial_nj_ = 0.0;
    double obs_fetch_nj_ = 0.0;
    double obs_datapath_nj_ = 0.0;
    double obs_idle_nj_ = 0.0;
    double obs_assemble_nj_ = 0.0;
    double obs_unfunded_nj_ = 0.0;
    std::uint64_t obs_adopted_cycles_ = 0;
    std::uint64_t obs_samples_ = 0;
    std::uint64_t obs_cold_boots_ = 0;
    std::size_t obs_phase_start_ = 0; ///< sample the power phase began
};

} // namespace inc::sim

#endif // INC_SIM_SYSTEM_SIM_H
