#include "sim/functional.h"

#include "util/logging.h"

namespace inc::sim
{

double
FunctionalResult::meanMse() const
{
    if (outputs.empty())
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < outputs.size(); ++i)
        sum += approx::mse(outputs[i], golden[i]);
    return sum / static_cast<double>(outputs.size());
}

double
FunctionalResult::meanPsnr() const
{
    return approx::psnrFromMse(meanMse());
}

FunctionalResult
runFunctional(const kernels::Kernel &kernel,
              const FunctionalConfig &config)
{
    if (config.bits < 1 || config.bits > 8)
        util::fatal("FunctionalConfig bits must be 1..8");
    if (config.frames < 1)
        util::fatal("FunctionalConfig frames must be >= 1");

    util::Rng rng(config.seed);
    util::SceneGenerator scene(kernel.width, kernel.height, kernel.scene,
                               config.seed);

    nvp::DataMemory mem(rng.split());
    for (const auto &[addr, data] : kernel.init_blocks)
        mem.hostWriteBlock(addr, data);
    // AC region over the input ring (policy irrelevant without power
    // failures; full retention keeps decay out of functional runs).
    mem.addAcRegion({kernel.layout.in_base,
                     kernel.layout.in_bytes *
                         static_cast<std::uint32_t>(
                             kernel.layout.in_slots),
                     nvm::RetentionPolicy::full});
    mem.addVersionedRegion(kernel.layout.out_base,
                           kernel.layout.out_bytes *
                               static_cast<std::uint32_t>(
                                   kernel.layout.out_slots));
    if (kernel.scratch_bytes > 0) {
        mem.addVersionedRegion(kernel.scratch_base, kernel.scratch_bytes,
                               /*write_through=*/false);
    }

    nvp::CoreConfig core_cfg;
    core_cfg.approx_alu = config.approx_alu;
    core_cfg.approx_mem = config.approx_mem;
    nvp::Core core(&kernel.program, &mem, core_cfg, rng.split());
    core.setMainBits(config.bits);

    FunctionalResult result;
    std::vector<std::vector<std::uint8_t>> inputs;
    inputs.reserve(static_cast<size_t>(config.frames));
    for (int f = 0; f < config.frames; ++f) {
        inputs.push_back(kernel.make_input(scene, f));
        result.golden.push_back(kernel.golden(inputs.back()));
    }

    int current_frame = -1;
    while (result.instructions < config.max_instructions) {
        const nvp::StepResult step = core.step();
        core.setMainBits(config.bits); // acen may have reset state
        result.instructions += static_cast<std::uint64_t>(
            step.lanes_committed);
        result.cycles += static_cast<std::uint64_t>(step.cycles);

        if (step.mark_resume) {
            // Frame boundary: collect the finished frame, feed the next.
            if (current_frame >= 0) {
                const std::uint32_t addr = kernel.layout.outSlotAddr(
                    static_cast<std::uint32_t>(current_frame));
                result.outputs.push_back(
                    mem.snapshot(addr, kernel.layout.out_bytes));
            }
            const int next = step.resume_frame_value;
            if (next >= config.frames)
                break;
            current_frame = next;
            mem.hostWriteBlock(
                kernel.layout.inSlotAddr(
                    static_cast<std::uint32_t>(next)),
                inputs[static_cast<size_t>(next)]);
            mem.resetVersionedRange(
                kernel.layout.outSlotAddr(
                    static_cast<std::uint32_t>(next)),
                kernel.layout.out_bytes);
        }
        if (step.halted)
            break;
    }

    if (result.outputs.size() != result.golden.size()) {
        util::warn("functional run finished %zu of %zu frames",
                   result.outputs.size(), result.golden.size());
        result.golden.resize(result.outputs.size());
    }
    return result;
}

} // namespace inc::sim
