/**
 * @file
 * SimBatch: the lane-batched SystemSim driver for sweeps.
 *
 * Runs N independent co-simulators in lockstep, one 0.1 ms trace
 * sample per lane per round, via SystemSimulator::stepSample(). This is
 * the sim-layer face of the batch engine (SimConfig::exec_engine =
 * batch): SweepRunner packs compatible jobs into a SimBatch instead of
 * running them one after another, keeping N co-simulations' hot state
 * interleaved through the cache and letting each lane's core take the
 * fast-path interpreter.
 *
 * Byte-identity contract: the lanes are fully independent simulators —
 * separate RNG trees, memories, capacitors, observers — and
 * stepSample() is exactly the loop body of run(), so any interleaving
 * of lanes produces results byte-identical to running each simulator
 * serially. Lanes that finish early (shorter trace, core halt = a
 * different outage/retire point) simply drop out of the round-robin —
 * the batch analogue of a divergence mask — and never perturb the
 * remaining lanes. Enforced by tests/test_engine_diff.cc (ragged
 * tails, single-lane batches, per-lane divergent outage points) and
 * the SweepRunner packing tests.
 */

#ifndef INC_SIM_BATCH_SIM_H
#define INC_SIM_BATCH_SIM_H

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/system_sim.h"

namespace inc::sim
{

/** N SystemSimulators stepped sample-by-sample in lockstep. */
class SimBatch
{
  public:
    SimBatch() = default;

    /** Add a lane. The simulator is owned by the batch. */
    void add(std::unique_ptr<SystemSimulator> simulator);

    std::size_t width() const { return lanes_.size(); }

    /**
     * One lockstep round: every live lane advances one trace sample.
     * Returns false once every lane has finished (its stepSample()
     * returned false), without stepping anything.
     */
    bool stepRound();

    /**
     * Drive all lanes to completion and return each lane's finalized
     * SimResult, in lane order. Byte-identical to running each
     * simulator's run() serially.
     */
    std::vector<SimResult> runAll();

  private:
    struct Lane
    {
        std::unique_ptr<SystemSimulator> sim;
        bool live = true; ///< false once stepSample() returned false
    };

    std::vector<Lane> lanes_;
    std::size_t live_count_ = 0;
};

} // namespace inc::sim

#endif // INC_SIM_BATCH_SIM_H
