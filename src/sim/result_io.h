/**
 * @file
 * Exact text serialization of SimResult for differential testing.
 *
 * The engine-equivalence contract (DESIGN.md §11) is *bit* identity:
 * two runs agree iff every SimResult field — including every double —
 * is bit-for-bit equal. serializeResult() therefore renders floating-
 * point fields as C99 hexfloats (%a), which round-trip exactly, so a
 * byte comparison of two serializations is equivalent to a field-wise
 * bit comparison. Used by tests/test_engine_diff.cc and the fuzzer's
 * engine-diff invariant (check/diff_harness).
 */

#ifndef INC_SIM_RESULT_IO_H
#define INC_SIM_RESULT_IO_H

#include <string>

#include "sim/system_sim.h"

namespace inc::sim
{

/** Render every field of @p result as one canonical key=value text
 *  block (doubles as hexfloats; byte equality == bit equality). */
std::string serializeResult(const SimResult &result);

/**
 * Parse a serializeResult() block back into @p out. Bit-exact inverse:
 * serializeResult(parse(serializeResult(r))) == serializeResult(r), so
 * results persisted by the sweep journal (runner/journal) reproduce
 * byte-identical campaign output after a crash-and-resume. Returns
 * false (with *error set when non-null) on malformed input.
 */
bool parseResult(const std::string &text, SimResult *out,
                 std::string *error = nullptr);

} // namespace inc::sim

#endif // INC_SIM_RESULT_IO_H
