#include "sim/wait_compute.h"

#include "energy/capacitor.h"
#include "util/logging.h"

namespace inc::sim
{

WaitComputeResult
runWaitCompute(const trace::PowerTrace &trace,
               const WaitComputeConfig &config)
{
    if (config.cycles_per_frame <= 0)
        util::fatal("WaitComputeConfig cycles_per_frame must be positive");

    const energy::EnergyModel model(config.energy);
    const double frame_energy_nj =
        config.cycles_per_frame * config.energy.cycle_energy_nj;

    energy::CapacitorParams cap_params;
    cap_params.capacity_nj = frame_energy_nj * config.capacity_factor;
    cap_params.efficiency = config.efficiency;
    cap_params.leak_frac_per_ms = config.leak_frac_per_ms;
    cap_params.leak_nj_per_ms = config.leak_nj_per_ms;
    cap_params.min_charge_uw = config.min_charge_uw;
    energy::Capacitor cap(cap_params);

    const double start_energy = frame_energy_nj * config.start_margin;
    const double cycle_energy = config.energy.cycle_energy_nj;
    constexpr int kCyclesPerSample = 100;

    WaitComputeResult result;
    bool executing = false;
    double frame_cycles_left = 0.0;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        cap.step(trace.at(i), 0.1);

        if (!executing) {
            if (cap.energyNj() >= start_energy) {
                executing = true;
                frame_cycles_left = config.cycles_per_frame;
            }
            continue;
        }

        // Execute up to 100 cycles this sample.
        const double want = std::min(
            frame_cycles_left, static_cast<double>(kCyclesPerSample));
        const double affordable = cap.energyNj() / cycle_energy;
        const double run = std::min(want, affordable);
        cap.drain(run * cycle_energy);
        frame_cycles_left -= run;

        if (frame_cycles_left <= 0.0) {
            ++result.frames_completed;
            result.forward_progress += static_cast<std::uint64_t>(
                config.instructions_per_frame);
            executing = false;
        } else if (run < want) {
            // Brown-out mid-frame: volatile state lost.
            ++result.frames_lost;
            executing = false;
        }
    }

    if (result.frames_completed > 0) {
        result.seconds_per_frame =
            trace.durationSec() /
            static_cast<double>(result.frames_completed);
    }
    return result;
}

} // namespace inc::sim
