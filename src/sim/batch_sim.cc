#include "sim/batch_sim.h"

#include <utility>

#include "util/logging.h"

namespace inc::sim
{

void
SimBatch::add(std::unique_ptr<SystemSimulator> simulator)
{
    if (!simulator)
        util::panic("SimBatch::add: null simulator");
    lanes_.push_back(Lane{std::move(simulator), /*live=*/true});
    ++live_count_;
}

bool
SimBatch::stepRound()
{
    if (live_count_ == 0)
        return false;
    for (Lane &lane : lanes_) {
        if (!lane.live)
            continue; // finished lane: masked out, never touched again
        if (!lane.sim->stepSample()) {
            lane.live = false;
            --live_count_;
        }
    }
    return live_count_ > 0;
}

std::vector<SimResult>
SimBatch::runAll()
{
    while (stepRound()) {
    }
    std::vector<SimResult> results;
    results.reserve(lanes_.size());
    for (Lane &lane : lanes_)
        results.push_back(lane.sim->finalize());
    return results;
}

} // namespace inc::sim
