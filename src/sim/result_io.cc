#include "sim/result_io.h"

#include <cstdio>

namespace inc::sim
{

namespace
{

void
appendU64(std::string &out, const char *key, std::uint64_t v)
{
    char buf[192];
    std::snprintf(buf, sizeof buf, "%s=%llu\n", key,
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
appendI64(std::string &out, const char *key, long long v)
{
    char buf[192];
    std::snprintf(buf, sizeof buf, "%s=%lld\n", key, v);
    out += buf;
}

/** Hexfloat: round-trips the exact bit pattern of the double. */
void
appendF64(std::string &out, const char *key, double v)
{
    char buf[192];
    std::snprintf(buf, sizeof buf, "%s=%a\n", key, v);
    out += buf;
}

} // namespace

std::string
serializeResult(const SimResult &r)
{
    std::string out;
    out.reserve(4096);

    appendU64(out, "forward_progress", r.forward_progress);
    appendU64(out, "main_instructions", r.main_instructions);
    appendU64(out, "cycles_executed", r.cycles_executed);
    appendU64(out, "backups", r.backups);
    appendU64(out, "restores", r.restores);
    appendF64(out, "on_time_fraction", r.on_time_fraction);

    appendF64(out, "income_energy_nj", r.income_energy_nj);
    appendF64(out, "consumed_energy_nj", r.consumed_energy_nj);
    appendF64(out, "backup_energy_nj", r.backup_energy_nj);
    appendF64(out, "restore_energy_nj", r.restore_energy_nj);

    appendU64(out, "ctrl.backups", r.controller.backups);
    appendU64(out, "ctrl.restores", r.controller.restores);
    appendU64(out, "ctrl.roll_forwards", r.controller.roll_forwards);
    appendU64(out, "ctrl.plain_resumes", r.controller.plain_resumes);
    appendU64(out, "ctrl.adoptions", r.controller.adoptions);
    appendU64(out, "ctrl.history_spawns", r.controller.history_spawns);
    appendU64(out, "ctrl.recompute_spawns",
              r.controller.recompute_spawns);
    appendU64(out, "ctrl.retirements", r.controller.retirements);
    appendU64(out, "ctrl.dropped_stale", r.controller.dropped_stale);
    appendU64(out, "ctrl.frames_started", r.controller.frames_started);
    appendU64(out, "ctrl.frames_completed",
              r.controller.frames_completed);
    appendU64(out, "ctrl.frames_abandoned",
              r.controller.frames_abandoned);
    appendU64(out, "ctrl.reg_decay_events",
              r.controller.reg_decay_events);

    for (std::size_t b = 0; b < r.retention_failures.violations.size();
         ++b) {
        char key[64];
        std::snprintf(key, sizeof key, "retention.violations.%zu", b);
        appendU64(out, key, r.retention_failures.violations[b]);
        std::snprintf(key, sizeof key, "retention.flips.%zu", b);
        appendU64(out, key, r.retention_failures.flips[b]);
    }

    appendF64(out, "start_threshold_nj", r.start_threshold_nj);
    appendF64(out, "backup_threshold_nj", r.backup_threshold_nj);

    for (std::size_t b = 0; b < r.bit_ticks.size(); ++b) {
        char key[64];
        std::snprintf(key, sizeof key, "bit_ticks.%zu", b);
        appendU64(out, key, r.bit_ticks[b]);
    }

    appendI64(out, "frames_scored", r.frames_scored);
    appendF64(out, "mean_mse", r.mean_mse);
    appendF64(out, "mean_psnr", r.mean_psnr);
    appendF64(out, "mean_coverage", r.mean_coverage);
    appendF64(out, "mean_completion_age", r.mean_completion_age);

    appendU64(out, "frame_scores.size", r.frame_scores.size());
    for (std::size_t i = 0; i < r.frame_scores.size(); ++i) {
        const FrameScore &s = r.frame_scores[i];
        char key[96];
        std::snprintf(key, sizeof key, "frame_scores.%zu.frame", i);
        appendU64(out, key, s.frame);
        std::snprintf(key, sizeof key, "frame_scores.%zu.mse", i);
        appendF64(out, key, s.mse);
        std::snprintf(key, sizeof key, "frame_scores.%zu.psnr", i);
        appendF64(out, key, s.psnr);
        std::snprintf(key, sizeof key, "frame_scores.%zu.coverage", i);
        appendF64(out, key, s.coverage);
        std::snprintf(key, sizeof key, "frame_scores.%zu.completions",
                      i);
        appendI64(out, key, s.completions);
        std::snprintf(key, sizeof key, "frame_scores.%zu.out_byte_sum",
                      i);
        appendF64(out, key, s.out_byte_sum);
        std::snprintf(key, sizeof key,
                      "frame_scores.%zu.golden_byte_sum", i);
        appendF64(out, key, s.golden_byte_sum);
        std::snprintf(key, sizeof key,
                      "frame_scores.%zu.first_completion_age", i);
        appendF64(out, key, s.first_completion_age);
    }

    appendF64(out, "frame_period_tenth_ms", r.frame_period_tenth_ms);
    appendU64(out, "frames_captured", r.frames_captured);
    appendU64(out, "frames_dropped_by_dma", r.frames_dropped_by_dma);
    return out;
}

} // namespace inc::sim
