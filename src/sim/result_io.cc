#include "sim/result_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace inc::sim
{

namespace
{

void
appendU64(std::string &out, const char *key, std::uint64_t v)
{
    char buf[192];
    std::snprintf(buf, sizeof buf, "%s=%llu\n", key,
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
appendI64(std::string &out, const char *key, long long v)
{
    char buf[192];
    std::snprintf(buf, sizeof buf, "%s=%lld\n", key, v);
    out += buf;
}

/** Hexfloat: round-trips the exact bit pattern of the double. */
void
appendF64(std::string &out, const char *key, double v)
{
    char buf[192];
    std::snprintf(buf, sizeof buf, "%s=%a\n", key, v);
    out += buf;
}

} // namespace

std::string
serializeResult(const SimResult &r)
{
    std::string out;
    out.reserve(4096);

    appendU64(out, "forward_progress", r.forward_progress);
    appendU64(out, "main_instructions", r.main_instructions);
    appendU64(out, "cycles_executed", r.cycles_executed);
    appendU64(out, "backups", r.backups);
    appendU64(out, "restores", r.restores);
    appendF64(out, "on_time_fraction", r.on_time_fraction);

    appendF64(out, "income_energy_nj", r.income_energy_nj);
    appendF64(out, "consumed_energy_nj", r.consumed_energy_nj);
    appendF64(out, "backup_energy_nj", r.backup_energy_nj);
    appendF64(out, "restore_energy_nj", r.restore_energy_nj);

    appendU64(out, "ctrl.backups", r.controller.backups);
    appendU64(out, "ctrl.restores", r.controller.restores);
    appendU64(out, "ctrl.roll_forwards", r.controller.roll_forwards);
    appendU64(out, "ctrl.plain_resumes", r.controller.plain_resumes);
    appendU64(out, "ctrl.adoptions", r.controller.adoptions);
    appendU64(out, "ctrl.history_spawns", r.controller.history_spawns);
    appendU64(out, "ctrl.recompute_spawns",
              r.controller.recompute_spawns);
    appendU64(out, "ctrl.retirements", r.controller.retirements);
    appendU64(out, "ctrl.dropped_stale", r.controller.dropped_stale);
    appendU64(out, "ctrl.frames_started", r.controller.frames_started);
    appendU64(out, "ctrl.frames_completed",
              r.controller.frames_completed);
    appendU64(out, "ctrl.frames_abandoned",
              r.controller.frames_abandoned);
    appendU64(out, "ctrl.reg_decay_events",
              r.controller.reg_decay_events);

    for (std::size_t b = 0; b < r.retention_failures.violations.size();
         ++b) {
        char key[64];
        std::snprintf(key, sizeof key, "retention.violations.%zu", b);
        appendU64(out, key, r.retention_failures.violations[b]);
        std::snprintf(key, sizeof key, "retention.flips.%zu", b);
        appendU64(out, key, r.retention_failures.flips[b]);
    }

    appendF64(out, "start_threshold_nj", r.start_threshold_nj);
    appendF64(out, "backup_threshold_nj", r.backup_threshold_nj);

    for (std::size_t b = 0; b < r.bit_ticks.size(); ++b) {
        char key[64];
        std::snprintf(key, sizeof key, "bit_ticks.%zu", b);
        appendU64(out, key, r.bit_ticks[b]);
    }

    appendI64(out, "frames_scored", r.frames_scored);
    appendF64(out, "mean_mse", r.mean_mse);
    appendF64(out, "mean_psnr", r.mean_psnr);
    appendF64(out, "mean_coverage", r.mean_coverage);
    appendF64(out, "mean_completion_age", r.mean_completion_age);

    appendU64(out, "frame_scores.size", r.frame_scores.size());
    for (std::size_t i = 0; i < r.frame_scores.size(); ++i) {
        const FrameScore &s = r.frame_scores[i];
        char key[96];
        std::snprintf(key, sizeof key, "frame_scores.%zu.frame", i);
        appendU64(out, key, s.frame);
        std::snprintf(key, sizeof key, "frame_scores.%zu.mse", i);
        appendF64(out, key, s.mse);
        std::snprintf(key, sizeof key, "frame_scores.%zu.psnr", i);
        appendF64(out, key, s.psnr);
        std::snprintf(key, sizeof key, "frame_scores.%zu.coverage", i);
        appendF64(out, key, s.coverage);
        std::snprintf(key, sizeof key, "frame_scores.%zu.completions",
                      i);
        appendI64(out, key, s.completions);
        std::snprintf(key, sizeof key, "frame_scores.%zu.out_byte_sum",
                      i);
        appendF64(out, key, s.out_byte_sum);
        std::snprintf(key, sizeof key,
                      "frame_scores.%zu.golden_byte_sum", i);
        appendF64(out, key, s.golden_byte_sum);
        std::snprintf(key, sizeof key,
                      "frame_scores.%zu.first_completion_age", i);
        appendF64(out, key, s.first_completion_age);
    }

    appendF64(out, "frame_period_tenth_ms", r.frame_period_tenth_ms);
    appendU64(out, "frames_captured", r.frames_captured);
    appendU64(out, "frames_dropped_by_dma", r.frames_dropped_by_dma);
    return out;
}

namespace
{

/** key=value lines -> map; rejects lines without '='. */
bool
splitLines(const std::string &text,
           std::map<std::string, std::string> *fields, std::string *error)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        if (nl > pos) { // skip blank lines
            std::size_t eq = text.find('=', pos);
            if (eq == std::string::npos || eq >= nl) {
                if (error)
                    *error = "malformed line: " +
                             text.substr(pos, nl - pos);
                return false;
            }
            (*fields)[text.substr(pos, eq - pos)] =
                text.substr(eq + 1, nl - eq - 1);
        }
        pos = nl + 1;
    }
    return true;
}

struct FieldReader
{
    const std::map<std::string, std::string> &fields;
    std::string *error;
    bool ok = true;

    const std::string *find(const char *key)
    {
        auto it = fields.find(key);
        if (it == fields.end()) {
            if (ok && error)
                *error = std::string("missing field: ") + key;
            ok = false;
            return nullptr;
        }
        return &it->second;
    }

    void fail(const char *key)
    {
        if (ok && error)
            *error = std::string("bad value for field: ") + key;
        ok = false;
    }

    std::uint64_t u64(const char *key)
    {
        const std::string *v = find(key);
        if (!v)
            return 0;
        errno = 0;
        char *end = nullptr;
        unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
        if (errno != 0 || end == v->c_str() || *end != '\0') {
            fail(key);
            return 0;
        }
        return parsed;
    }

    long long i64(const char *key)
    {
        const std::string *v = find(key);
        if (!v)
            return 0;
        errno = 0;
        char *end = nullptr;
        long long parsed = std::strtoll(v->c_str(), &end, 10);
        if (errno != 0 || end == v->c_str() || *end != '\0') {
            fail(key);
            return 0;
        }
        return parsed;
    }

    /** strtod understands the %a hexfloats serializeResult writes, so
     *  the parsed double is bit-identical to the serialized one. */
    double f64(const char *key)
    {
        const std::string *v = find(key);
        if (!v)
            return 0.0;
        char *end = nullptr;
        double parsed = std::strtod(v->c_str(), &end);
        if (end == v->c_str() || *end != '\0') {
            fail(key);
            return 0.0;
        }
        return parsed;
    }
};

} // namespace

bool
parseResult(const std::string &text, SimResult *out, std::string *error)
{
    std::map<std::string, std::string> fields;
    if (!splitLines(text, &fields, error))
        return false;
    FieldReader rd{fields, error};
    SimResult r;

    r.forward_progress = rd.u64("forward_progress");
    r.main_instructions = rd.u64("main_instructions");
    r.cycles_executed = rd.u64("cycles_executed");
    r.backups = rd.u64("backups");
    r.restores = rd.u64("restores");
    r.on_time_fraction = rd.f64("on_time_fraction");

    r.income_energy_nj = rd.f64("income_energy_nj");
    r.consumed_energy_nj = rd.f64("consumed_energy_nj");
    r.backup_energy_nj = rd.f64("backup_energy_nj");
    r.restore_energy_nj = rd.f64("restore_energy_nj");

    r.controller.backups = rd.u64("ctrl.backups");
    r.controller.restores = rd.u64("ctrl.restores");
    r.controller.roll_forwards = rd.u64("ctrl.roll_forwards");
    r.controller.plain_resumes = rd.u64("ctrl.plain_resumes");
    r.controller.adoptions = rd.u64("ctrl.adoptions");
    r.controller.history_spawns = rd.u64("ctrl.history_spawns");
    r.controller.recompute_spawns = rd.u64("ctrl.recompute_spawns");
    r.controller.retirements = rd.u64("ctrl.retirements");
    r.controller.dropped_stale = rd.u64("ctrl.dropped_stale");
    r.controller.frames_started = rd.u64("ctrl.frames_started");
    r.controller.frames_completed = rd.u64("ctrl.frames_completed");
    r.controller.frames_abandoned = rd.u64("ctrl.frames_abandoned");
    r.controller.reg_decay_events = rd.u64("ctrl.reg_decay_events");

    for (std::size_t b = 0; b < r.retention_failures.violations.size();
         ++b) {
        char key[64];
        std::snprintf(key, sizeof key, "retention.violations.%zu", b);
        r.retention_failures.violations[b] = rd.u64(key);
        std::snprintf(key, sizeof key, "retention.flips.%zu", b);
        r.retention_failures.flips[b] = rd.u64(key);
    }

    r.start_threshold_nj = rd.f64("start_threshold_nj");
    r.backup_threshold_nj = rd.f64("backup_threshold_nj");

    for (std::size_t b = 0; b < r.bit_ticks.size(); ++b) {
        char key[64];
        std::snprintf(key, sizeof key, "bit_ticks.%zu", b);
        r.bit_ticks[b] = rd.u64(key);
    }

    r.frames_scored = static_cast<int>(rd.i64("frames_scored"));
    r.mean_mse = rd.f64("mean_mse");
    r.mean_psnr = rd.f64("mean_psnr");
    r.mean_coverage = rd.f64("mean_coverage");
    r.mean_completion_age = rd.f64("mean_completion_age");

    std::uint64_t n_scores = rd.u64("frame_scores.size");
    if (!rd.ok)
        return false; // bail before sizing a vector from a bad count
    if (n_scores > fields.size()) {
        if (error)
            *error = "implausible frame_scores.size";
        return false;
    }
    r.frame_scores.resize(n_scores);
    for (std::size_t i = 0; i < r.frame_scores.size(); ++i) {
        FrameScore &s = r.frame_scores[i];
        char key[96];
        std::snprintf(key, sizeof key, "frame_scores.%zu.frame", i);
        s.frame = static_cast<std::uint32_t>(rd.u64(key));
        std::snprintf(key, sizeof key, "frame_scores.%zu.mse", i);
        s.mse = rd.f64(key);
        std::snprintf(key, sizeof key, "frame_scores.%zu.psnr", i);
        s.psnr = rd.f64(key);
        std::snprintf(key, sizeof key, "frame_scores.%zu.coverage", i);
        s.coverage = rd.f64(key);
        std::snprintf(key, sizeof key, "frame_scores.%zu.completions",
                      i);
        s.completions = static_cast<int>(rd.i64(key));
        std::snprintf(key, sizeof key, "frame_scores.%zu.out_byte_sum",
                      i);
        s.out_byte_sum = rd.f64(key);
        std::snprintf(key, sizeof key,
                      "frame_scores.%zu.golden_byte_sum", i);
        s.golden_byte_sum = rd.f64(key);
        std::snprintf(key, sizeof key,
                      "frame_scores.%zu.first_completion_age", i);
        s.first_completion_age = rd.f64(key);
    }

    r.frame_period_tenth_ms = rd.f64("frame_period_tenth_ms");
    r.frames_captured = rd.u64("frames_captured");
    r.frames_dropped_by_dma = rd.u64("frames_dropped_by_dma");

    if (!rd.ok)
        return false;
    *out = r;
    return true;
}

} // namespace inc::sim
