/**
 * @file
 * Power-free functional execution of a kernel.
 *
 * Runs the kernel's frame loop for a fixed number of frames at a fixed
 * precision configuration, with no harvesting model. Used for:
 *
 *  - kernel correctness tests (precise run must match the golden model
 *    bit-exactly);
 *  - the fixed-bitwidth quality experiments (paper Figs. 11-14), where
 *    the ALU and memory approximation models are exercised separately;
 *  - calibration: cycles and instructions per frame feed the sensor
 *    frame-period choice and the wait-compute baseline.
 */

#ifndef INC_SIM_FUNCTIONAL_H
#define INC_SIM_FUNCTIONAL_H

#include <cstdint>
#include <vector>

#include "approx/quality.h"
#include "kernels/kernel.h"
#include "nvp/core.h"

namespace inc::sim
{

/** Functional run configuration. */
struct FunctionalConfig
{
    int frames = 1;           ///< number of frames to process
    int bits = 8;             ///< fixed datapath/memory precision
    bool approx_alu = true;   ///< enable the ALU noise model
    bool approx_mem = true;   ///< enable the memory truncation model
    std::uint64_t seed = 99;  ///< scene + noise seed
    std::uint64_t max_instructions = 200'000'000; ///< runaway guard
};

/** Result of a functional run. */
struct FunctionalResult
{
    std::vector<std::vector<std::uint8_t>> outputs; ///< per frame
    std::vector<std::vector<std::uint8_t>> golden;  ///< per frame
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;

    double cyclesPerFrame() const
    {
        return outputs.empty() ? 0.0
                               : static_cast<double>(cycles) /
                                     static_cast<double>(outputs.size());
    }

    /** Mean MSE / PSNR of outputs against golden. */
    double meanMse() const;
    double meanPsnr() const;
};

/** Execute @p kernel functionally under @p config. */
FunctionalResult runFunctional(const kernels::Kernel &kernel,
                               const FunctionalConfig &config);

} // namespace inc::sim

#endif // INC_SIM_FUNCTIONAL_H
