/**
 * @file
 * ASCII table rendering for the experiment harnesses. Every bench binary
 * prints the rows of its paper table/figure through this class so output
 * formats stay uniform.
 */

#ifndef INC_UTIL_TABLE_H
#define INC_UTIL_TABLE_H

#include <string>
#include <vector>

namespace inc::util
{

/** Column-aligned ASCII table with an optional title. */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (cells already formatted). */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Convenience: format an integer with thousands separators. */
    static std::string integer(long long value);

    /** Render the table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace inc::util

#endif // INC_UTIL_TABLE_H
