#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace inc::util
{

namespace
{
LogLevel g_level = LogLevel::normal;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

void
inform(const char *fmt, ...)
{
    if (g_level == LogLevel::quiet)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
trace(const char *fmt, ...)
{
    if (g_level != LogLevel::verbose)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "trace: %s\n", msg.c_str());
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace inc::util
