/**
 * @file
 * Streaming statistics and histogram helpers used by trace analysis and
 * the experiment harnesses.
 */

#ifndef INC_UTIL_STATS_H
#define INC_UTIL_STATS_H

#include <cstdint>
#include <vector>

namespace inc::util
{

/** Welford-style streaming mean/variance plus min/max. */
class RunningStats
{
  public:
    void add(double x);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Fixed-width-bin histogram over [lo, hi); out-of-range values clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, int bins);

    void add(double x);

    int bins() const { return static_cast<int>(counts_.size()); }
    std::uint64_t count(int bin) const { return counts_[bin]; }
    std::uint64_t total() const { return total_; }
    /** Left edge of @p bin. */
    double edge(int bin) const;
    double binWidth() const { return width_; }

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** Exact percentile (linear interpolation) of a sample vector. */
double percentile(std::vector<double> values, double p);

} // namespace inc::util

#endif // INC_UTIL_STATS_H
