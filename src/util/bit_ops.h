/**
 * @file
 * Small bit-manipulation helpers shared across the datapath models.
 */

#ifndef INC_UTIL_BIT_OPS_H
#define INC_UTIL_BIT_OPS_H

#include <cstdint>

namespace inc::util
{

/** Mask with the low @p n bits set (n in [0, 64]). */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/** Mask selecting the top @p keep bits of an @p width-bit value. */
constexpr std::uint64_t
highMask(unsigned keep, unsigned width)
{
    if (keep >= width)
        return lowMask(width);
    return lowMask(width) & ~lowMask(width - keep);
}

/** Truncate @p value to its top @p keep bits within @p width (zero rest). */
constexpr std::uint64_t
truncateLow(std::uint64_t value, unsigned keep, unsigned width)
{
    return value & highMask(keep, width);
}

/** Extract bit @p index (0 = LSB). */
constexpr bool
bit(std::uint64_t value, unsigned index)
{
    return (value >> index) & 1ULL;
}

/** Set/clear bit @p index. */
constexpr std::uint64_t
setBit(std::uint64_t value, unsigned index, bool on)
{
    const std::uint64_t m = 1ULL << index;
    return on ? (value | m) : (value & ~m);
}

/** Number of set bits in @p value. */
constexpr int
popcount64(std::uint64_t value)
{
    return __builtin_popcountll(value);
}

/** Sign extend the low @p width bits of @p value. */
constexpr std::int64_t
signExtend(std::uint64_t value, unsigned width)
{
    const std::uint64_t m = 1ULL << (width - 1);
    const std::uint64_t x = value & lowMask(width);
    return static_cast<std::int64_t>((x ^ m) - m);
}

/** Saturate a signed value into [0, 255]. */
constexpr std::uint8_t
clampU8(std::int64_t value)
{
    if (value < 0)
        return 0;
    if (value > 255)
        return 255;
    return static_cast<std::uint8_t>(value);
}

} // namespace inc::util

#endif // INC_UTIL_BIT_OPS_H
