#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace inc::util
{

void
RunningStats::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), width_((hi - lo) / bins),
      counts_(static_cast<size_t>(bins), 0)
{
    if (bins <= 0 || hi <= lo)
        panic("Histogram requires bins > 0 and hi > lo");
}

void
Histogram::add(double x)
{
    int bin = static_cast<int>((x - lo_) / width_);
    bin = std::clamp(bin, 0, static_cast<int>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(bin)];
    ++total_;
}

double
Histogram::edge(int bin) const
{
    return lo_ + bin * width_;
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

} // namespace inc::util
