#include "util/fs.h"

#include <filesystem>
#include <system_error>

#include "util/logging.h"

namespace inc::util
{

bool
ensureDir(const std::string &path)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(fs::path(path), ec);
    if (ec) {
        warn("could not create directory '%s': %s", path.c_str(),
             ec.message().c_str());
        return false;
    }
    if (!fs::is_directory(fs::path(path), ec)) {
        warn("'%s' exists but is not a directory", path.c_str());
        return false;
    }
    return true;
}

bool
ensureParentDir(const std::string &path)
{
    namespace fs = std::filesystem;
    const fs::path parent = fs::path(path).parent_path();
    if (parent.empty())
        return true;
    return ensureDir(parent.string());
}

} // namespace inc::util
