/**
 * @file
 * 8-bit grayscale images: container, PGM/PPM I/O and synthetic scenes.
 *
 * The paper's testbenches are image-processing kernels operating on sensor
 * frames. We do not ship the authors' captured images, so SceneGenerator
 * synthesizes deterministic frames with natural-image-like structure
 * (smooth shading, edges, corners and texture) that exercise the same code
 * paths; see DESIGN.md, substitution table.
 */

#ifndef INC_UTIL_IMAGE_H
#define INC_UTIL_IMAGE_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace inc::util
{

/** Row-major 8-bit grayscale image. */
class Image
{
  public:
    Image() = default;

    /** Create a width x height image filled with @p fill. */
    Image(int width, int height, std::uint8_t fill = 0);

    int width() const { return width_; }
    int height() const { return height_; }
    int pixels() const { return width_ * height_; }
    bool empty() const { return data_.empty(); }

    /** Unchecked pixel access. */
    std::uint8_t at(int x, int y) const { return data_[idx(x, y)]; }
    void set(int x, int y, std::uint8_t v) { data_[idx(x, y)] = v; }

    /** Clamped-border access: coordinates outside are clamped to edge. */
    std::uint8_t atClamped(int x, int y) const;

    const std::vector<std::uint8_t> &data() const { return data_; }
    std::vector<std::uint8_t> &data() { return data_; }

    bool operator==(const Image &other) const = default;

  private:
    int idx(int x, int y) const { return y * width_ + x; }

    int width_ = 0;
    int height_ = 0;
    std::vector<std::uint8_t> data_;
};

/** Write @p img as a binary PGM (P5) file. Returns false on I/O error. */
bool writePgm(const Image &img, const std::string &path);

/** Read a binary PGM (P5) file. Returns an empty image on error. */
Image readPgm(const std::string &path);

/** Kinds of synthetic scene available from SceneGenerator. */
enum class SceneKind
{
    gradient,   ///< smooth diagonal shading (tests low-frequency response)
    checker,    ///< high-contrast 8x8 checkerboard (edges everywhere)
    blobs,      ///< soft gaussian blobs (corners/edges on silhouettes)
    texture,    ///< band-limited value noise (median/smoothing stressor)
    scene       ///< composite: shading + blobs + edges + mild noise
};

/**
 * Deterministic synthetic-frame source standing in for the paper's image
 * sensor. Consecutive frames are correlated: the underlying scene drifts
 * slowly, as buffered frames from a real sensor would.
 */
class SceneGenerator
{
  public:
    SceneGenerator(int width, int height, SceneKind kind,
                   std::uint64_t seed = 1);

    /** Generate frame number @p frame_index (any order; deterministic). */
    Image frame(int frame_index) const;

    int width() const { return width_; }
    int height() const { return height_; }

  private:
    int width_;
    int height_;
    SceneKind kind_;
    std::uint64_t seed_;
};

} // namespace inc::util

#endif // INC_UTIL_IMAGE_H
