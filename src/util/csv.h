/**
 * @file
 * Minimal CSV writing/reading, used for exporting experiment series and
 * loading externally captured power traces.
 */

#ifndef INC_UTIL_CSV_H
#define INC_UTIL_CSV_H

#include <string>
#include <vector>

namespace inc::util
{

/** Accumulates rows and writes an RFC-4180-ish CSV file. */
class CsvWriter
{
  public:
    void setHeader(std::vector<std::string> header);
    void addRow(std::vector<std::string> row);

    /** Write to @p path. Returns false on I/O error. */
    bool write(const std::string &path) const;

    /** Render to a string (for tests). */
    std::string render() const;

  private:
    static std::string escape(const std::string &cell);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Parse a CSV file into rows of cells. Handles quoted cells with embedded
 * commas/quotes; does not handle embedded newlines. Returns empty on error.
 */
std::vector<std::vector<std::string>> readCsv(const std::string &path);

/** Parse CSV content from a string (same dialect as readCsv). */
std::vector<std::vector<std::string>> parseCsv(const std::string &content);

} // namespace inc::util

#endif // INC_UTIL_CSV_H
