#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace inc::util
{

namespace
{

/** splitmix64: seed expansion recommended by the xoshiro authors. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded called with bound 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange with lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::nextExponential(double mean)
{
    double u = 0.0;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace inc::util
