#include "util/crc32.h"

#include <array>
#include <cstring>

namespace inc::util
{

namespace
{

/**
 * Slicing-by-8 tables: table[0] is the classic bytewise table;
 * table[k][b] is the CRC of byte b followed by k zero bytes. Eight
 * bytes are then folded per step instead of one — same polynomial,
 * bit-identical results, ~8x the throughput. Throughput matters since
 * the checkpoint ImageStore checksums a full memory image per commit
 * (hundreds of 64 KiB CRCs per simulated run).
 */
constexpr std::array<std::array<std::uint32_t, 256>, 8>
makeTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        tables[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = tables[0][i];
        for (std::size_t k = 1; k < 8; ++k) {
            c = tables[0][c & 0xFFu] ^ (c >> 8);
            tables[k][i] = c;
        }
    }
    return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables =
    makeTables();

} // namespace

std::uint32_t
crc32(std::uint32_t crc, const void *data, std::size_t length)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t c = crc ^ 0xFFFFFFFFu;
    while (length >= 8) {
        std::uint32_t lo;
        std::uint32_t hi;
        std::memcpy(&lo, bytes, sizeof lo);
        std::memcpy(&hi, bytes + 4, sizeof hi);
        c ^= lo;
        c = kTables[7][c & 0xFFu] ^ kTables[6][(c >> 8) & 0xFFu] ^
            kTables[5][(c >> 16) & 0xFFu] ^ kTables[4][c >> 24] ^
            kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
            kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
        bytes += 8;
        length -= 8;
    }
    for (std::size_t i = 0; i < length; ++i)
        c = kTables[0][(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace inc::util
