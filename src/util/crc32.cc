#include "util/crc32.h"

#include <array>

namespace inc::util
{

namespace
{

constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> kTable = makeTable();

} // namespace

std::uint32_t
crc32(std::uint32_t crc, const void *data, std::size_t length)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t c = crc ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < length; ++i)
        c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace inc::util
