/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element in the library (trace synthesis, approximate-ALU
 * noise, retention-failure bit flips) draws from a seeded Rng so that all
 * experiments are exactly reproducible. The engine is xoshiro256** which is
 * fast, has a 256-bit state and passes BigCrush.
 */

#ifndef INC_UTIL_RNG_H
#define INC_UTIL_RNG_H

#include <cstdint>

namespace inc::util
{

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Not thread safe; each simulator component owns its own instance, forked
 * from a master seed via split() so streams are independent.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x1badb002dedf00dULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound) without modulo bias. bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of true. */
    bool nextBool(double p = 0.5);

    /** Standard normal variate (Box-Muller, cached pair). */
    double nextGaussian();

    /** Exponential variate with the given mean. */
    double nextExponential(double mean);

    /**
     * Fork an independent child stream. The child is seeded from this
     * stream's output, so a single master seed yields a reproducible tree
     * of independent generators.
     */
    Rng split();

  private:
    std::uint64_t s_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

} // namespace inc::util

#endif // INC_UTIL_RNG_H
