#include "util/image.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/bit_ops.h"
#include "util/logging.h"

namespace inc::util
{

Image::Image(int width, int height, std::uint8_t fill)
    : width_(width), height_(height),
      data_(static_cast<size_t>(width) * height, fill)
{
    if (width <= 0 || height <= 0)
        panic("Image dimensions must be positive (%dx%d)", width, height);
}

std::uint8_t
Image::atClamped(int x, int y) const
{
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return data_[idx(x, y)];
}

bool
writePgm(const Image &img, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P5\n%d %d\n255\n", img.width(), img.height());
    const size_t n = img.data().size();
    const bool ok = std::fwrite(img.data().data(), 1, n, f) == n;
    std::fclose(f);
    return ok;
}

Image
readPgm(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    char magic[3] = {0, 0, 0};
    int w = 0, h = 0, maxv = 0;
    if (std::fscanf(f, "%2s %d %d %d", magic, &w, &h, &maxv) != 4 ||
        std::string(magic) != "P5" || w <= 0 || h <= 0 || maxv != 255) {
        std::fclose(f);
        return {};
    }
    std::fgetc(f); // single whitespace after header
    Image img(w, h);
    const size_t n = img.data().size();
    const bool ok = std::fread(img.data().data(), 1, n, f) == n;
    std::fclose(f);
    return ok ? img : Image{};
}

namespace
{

/**
 * Smooth value noise: hash lattice points, bilinearly interpolate with a
 * smoothstep fade. Deterministic in (seed, x, y).
 */
double
valueNoise(std::uint64_t seed, double x, double y)
{
    auto lattice = [seed](int ix, int iy) {
        std::uint64_t h = seed;
        h ^= static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ULL;
        h ^= static_cast<std::uint64_t>(iy) * 0xc2b2ae3d27d4eb4fULL;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        return static_cast<double>(h >> 11) * 0x1.0p-53;
    };
    const int ix = static_cast<int>(std::floor(x));
    const int iy = static_cast<int>(std::floor(y));
    const double fx = x - ix;
    const double fy = y - iy;
    auto fade = [](double t) { return t * t * (3.0 - 2.0 * t); };
    const double ux = fade(fx);
    const double uy = fade(fy);
    const double a = lattice(ix, iy);
    const double b = lattice(ix + 1, iy);
    const double c = lattice(ix, iy + 1);
    const double d = lattice(ix + 1, iy + 1);
    const double top = a + (b - a) * ux;
    const double bot = c + (d - c) * ux;
    return top + (bot - top) * uy;
}

std::uint8_t
toPixel(double v)
{
    return clampU8(static_cast<std::int64_t>(std::lround(v * 255.0)));
}

} // namespace

SceneGenerator::SceneGenerator(int width, int height, SceneKind kind,
                               std::uint64_t seed)
    : width_(width), height_(height), kind_(kind), seed_(seed)
{
    if (width <= 0 || height <= 0)
        panic("SceneGenerator dimensions must be positive");
}

Image
SceneGenerator::frame(int frame_index) const
{
    Image img(width_, height_);
    // Scene drift: content shifts slowly so consecutive frames correlate.
    const double drift = 0.35 * frame_index;
    const double w = width_;
    const double h = height_;
    Rng noise_rng(seed_ ^ (0xABCDULL + static_cast<std::uint64_t>(
                                           frame_index) * 0x9e3779b9ULL));

    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            double v = 0.0;
            const double fx = (x + drift) / w;
            const double fy = (y + 0.5 * drift) / h;
            switch (kind_) {
              case SceneKind::gradient:
                v = 0.5 * fx + 0.5 * fy;
                break;
              case SceneKind::checker: {
                const int cx = static_cast<int>((x + drift) / 8.0);
                const int cy = static_cast<int>(y / 8.0);
                v = ((cx + cy) & 1) ? 0.85 : 0.15;
                break;
              }
              case SceneKind::blobs: {
                v = 0.15;
                for (int b = 0; b < 3; ++b) {
                    const double bx =
                        w * (0.25 + 0.22 * b) + 3.0 * std::sin(
                            drift * 0.2 + b);
                    const double by =
                        h * (0.3 + 0.18 * b) + 2.0 * std::cos(
                            drift * 0.15 + 2 * b);
                    const double r2 = (x - bx) * (x - bx) +
                                      (y - by) * (y - by);
                    const double sigma = 0.018 * w * h / 4.0 + 8.0;
                    v += 0.6 * std::exp(-r2 / sigma);
                }
                break;
              }
              case SceneKind::texture:
                v = 0.5 * valueNoise(seed_, (x + drift) / 5.0, y / 5.0) +
                    0.3 * valueNoise(seed_ + 7, (x + drift) / 11.0,
                                     y / 11.0) +
                    0.2 * valueNoise(seed_ + 13, (x + drift) / 23.0,
                                     y / 23.0);
                break;
              case SceneKind::scene: {
                // Shading + a blob silhouette + a hard vertical edge +
                // faint texture: exercises gradients, corners and noise
                // response together.
                v = 0.25 + 0.3 * fx + 0.15 * fy;
                const double bx = w * 0.55 + 4.0 * std::sin(drift * 0.1);
                const double by = h * 0.45;
                const double r2 = (x - bx) * (x - bx) + (y - by) * (y - by);
                if (r2 < 0.03 * w * h)
                    v += 0.4;
                if (x > static_cast<int>(w * 0.75 + drift) % width_)
                    v -= 0.2;
                v += 0.08 * (valueNoise(seed_, (x + drift) / 6.0,
                                        y / 6.0) - 0.5);
                break;
              }
            }
            // Mild sensor noise on every kind but gradient/checker.
            if (kind_ == SceneKind::texture || kind_ == SceneKind::scene ||
                kind_ == SceneKind::blobs) {
                v += 0.01 * noise_rng.nextGaussian();
            }
            img.set(x, y, toPixel(v));
        }
    }
    return img;
}

} // namespace inc::util
