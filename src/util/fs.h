/**
 * @file
 * Small filesystem helpers shared by the experiment harnesses.
 */

#ifndef INC_UTIL_FS_H
#define INC_UTIL_FS_H

#include <string>

namespace inc::util
{

/**
 * Create @p path (and any missing parents) as a directory. Returns
 * true when the directory exists on return — freshly created or
 * already present. Logs a warning and returns false on failure.
 */
bool ensureDir(const std::string &path);

/**
 * Create the parent directory of file @p path (and any missing
 * grandparents). A bare filename has no parent and trivially
 * succeeds. Returns false only when the parent cannot be created —
 * callers writing "outdir/file.json" get the same treatment as
 * INC_BENCH_OUTDIR instead of a bare open error.
 */
bool ensureParentDir(const std::string &path);

} // namespace inc::util

#endif // INC_UTIL_FS_H
