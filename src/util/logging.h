/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user errors that make
 * continuing impossible (bad configuration, malformed input); panic() is
 * for internal invariant violations, i.e. library bugs. inform()/warn()
 * never stop execution.
 */

#ifndef INC_UTIL_LOGGING_H
#define INC_UTIL_LOGGING_H

#include <cstdarg>
#include <string>

namespace inc::util
{

/** Verbosity levels for informational output. */
enum class LogLevel
{
    quiet,   ///< only warnings and errors
    normal,  ///< informational messages included
    verbose  ///< per-event tracing included
};

/** Set the global verbosity (default: normal). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Informational message; printed at normal verbosity or above. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose tracing message; printed only at verbose verbosity. */
void trace(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate because of a user-level error (bad config, malformed input).
 * Exits with status 1.
 */
[[noreturn]]
void fatal(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate because of an internal invariant violation (a library bug).
 * Calls abort().
 */
[[noreturn]]
void panic(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format helper: vsnprintf into a std::string. */
std::string vformat(const char *fmt, std::va_list args);

/** Format helper: snprintf into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace inc::util

#endif // INC_UTIL_LOGGING_H
