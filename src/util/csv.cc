#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace inc::util
{

void
CsvWriter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
CsvWriter::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += "\"";
    return out;
}

std::string
CsvWriter::render() const
{
    std::string out;
    auto emit = [&out](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                out.push_back(',');
            out += escape(row[i]);
        }
        out.push_back('\n');
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return out;
}

bool
CsvWriter::write(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << render();
    return static_cast<bool>(f);
}

std::vector<std::vector<std::string>>
parseCsv(const std::string &content)
{
    std::vector<std::vector<std::string>> rows;
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        std::vector<std::string> row;
        std::string cell;
        bool quoted = false;
        for (size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            if (quoted) {
                if (c == '"') {
                    if (i + 1 < line.size() && line[i + 1] == '"') {
                        cell.push_back('"');
                        ++i;
                    } else {
                        quoted = false;
                    }
                } else {
                    cell.push_back(c);
                }
            } else if (c == '"') {
                quoted = true;
            } else if (c == ',') {
                row.push_back(std::move(cell));
                cell.clear();
            } else {
                cell.push_back(c);
            }
        }
        row.push_back(std::move(cell));
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<std::vector<std::string>>
readCsv(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return {};
    std::ostringstream ss;
    ss << f.rdbuf();
    return parseCsv(ss.str());
}

} // namespace inc::util
