/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum guarding
 * the persistence arena's log records and commit markers (src/arena).
 */

#ifndef INC_UTIL_CRC32_H
#define INC_UTIL_CRC32_H

#include <cstddef>
#include <cstdint>

namespace inc::util
{

/**
 * Incremental CRC-32: feed @p crc the previous return value (or 0 for
 * the first chunk). The final value is already inverted — callers
 * never xor with 0xFFFFFFFF themselves.
 */
std::uint32_t crc32(std::uint32_t crc, const void *data,
                    std::size_t length);

/** One-shot convenience over a single buffer. */
inline std::uint32_t
crc32(const void *data, std::size_t length)
{
    return crc32(0, data, length);
}

} // namespace inc::util

#endif // INC_UTIL_CRC32_H
