#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace inc::util
{

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
Table::num(double value, int precision)
{
    return format("%.*f", precision, value);
}

std::string
Table::integer(long long value)
{
    std::string digits = format("%lld", value < 0 ? -value : value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    if (value < 0)
        out.push_back('-');
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
Table::render() const
{
    std::vector<size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto renderRow = [&widths](const std::vector<std::string> &row) {
        std::string line = "|";
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            line += " " + cell +
                    std::string(widths[i] - cell.size(), ' ') + " |";
        }
        return line + "\n";
    };

    std::string sep = "+";
    for (size_t w : widths)
        sep += std::string(w + 2, '-') + "+";
    sep += "\n";

    std::string out;
    if (!title_.empty())
        out += "== " + title_ + " ==\n";
    out += sep;
    if (!header_.empty()) {
        out += renderRow(header_);
        out += sep;
    }
    for (const auto &row : rows_)
        out += renderRow(row);
    out += sep;
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace inc::util
