/**
 * @file
 * Sweep-campaign journal: persistent warm-restart state for SweepRunner,
 * stored in a persistence arena (src/arena).
 *
 * A journal binds one campaign to one arena directory via a fingerprint
 * of the fully expanded sweep (kernels, trace contents, variants, seed
 * tree, plus a caller-supplied extra string covering CLI flags). Each
 * successfully completed job is recorded as its bit-exact serialized
 * SimResult plus its metrics JSON, and a completed-job bitmap tracks
 * progress; every record is sealed with an arena commit, so a SIGKILL
 * at any instant loses at most the jobs that had not yet committed.
 *
 * On resume, SweepRunner delivers journaled results for completed jobs
 * without re-running them. Because serializeResult() round-trips
 * doubles bit-exactly and merged metrics are folded in job-index order,
 * a killed-and-resumed campaign produces merged metrics and reports
 * byte-identical to an uninterrupted run (the check/ fuzzer's seventh
 * invariant pins this).
 *
 * Thread safe: every member that touches campaign state — record()
 * and the read-side API (completed(), load(), completedCount()) —
 * takes an internal mutex, and all arena access goes through it, so
 * the single-threaded Arena is never entered concurrently through
 * this class. SweepRunner additionally finishes all read-side calls
 * before submitting any job, so in practice readers and writers never
 * even contend.
 */

#ifndef INC_RUNNER_JOURNAL_H
#define INC_RUNNER_JOURNAL_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "arena/arena.h"
#include "runner/sweep.h"

namespace inc::runner
{

class SweepJournal
{
  public:
    /** Attach to @p arena (not owned) and load any committed campaign
     *  state already present. */
    explicit SweepJournal(arena::Arena *arena);

    /**
     * Identity of a fully expanded campaign: CRC chained over kernel
     * names, trace names/sizes/sample bytes, variant names, the seed
     * tree, and @p extra (callers fold in anything else that changes
     * results — e.g. nvpsim's CLI flags). Two sweeps with equal
     * fingerprints produce bit-identical per-job results.
     */
    static std::string fingerprint(const SweepSpec &spec,
                                   const std::vector<JobSpec> &jobs,
                                   const std::string &extra);

    /** True once a campaign has been bound (fresh arenas are unbound). */
    bool bound() const { return jobs_total_ > 0; }
    const std::string &boundFingerprint() const { return fingerprint_; }
    std::size_t jobsTotal() const { return jobs_total_; }
    std::size_t completedCount() const;

    /** Bind a fresh arena to a campaign (fingerprint + empty bitmap),
     *  sealing with a commit. */
    void bind(const std::string &fingerprint, std::size_t num_jobs);

    bool completed(std::size_t index) const;

    /**
     * Reconstruct the journaled result of completed job @p index
     * (result bytes parsed bit-exactly; metrics JSON re-parsed; ok =
     * true; wall_ms = 0 — wall time is a scheduling artifact and never
     * reaches deterministic outputs). False if absent or malformed.
     */
    bool load(std::size_t index, JobResult *out,
              std::string *error = nullptr) const;

    /**
     * Persist one successful job and mark it complete, sealing with a
     * commit. Failed jobs are not recorded — they re-run on resume.
     * Returns false when the arena's injected fault has tripped.
     */
    bool record(const JobResult &result);

  private:
    /** completed() without taking mutex_ (callers hold it). */
    bool completedLocked(std::size_t index) const;

    arena::Arena *arena_;
    mutable std::mutex mutex_;
    std::string fingerprint_;
    std::size_t jobs_total_ = 0;
    std::string done_; ///< bitmap, (jobs_total_+7)/8 bytes
};

} // namespace inc::runner

#endif // INC_RUNNER_JOURNAL_H
