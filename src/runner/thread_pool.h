/**
 * @file
 * Fixed-size worker-thread pool for the experiment runner.
 *
 * A deliberately small design: one mutex + two condition variables
 * around a FIFO task queue. Workers are spawned once in the
 * constructor and joined in shutdown(); tasks already queued when
 * shutdown begins are drained, so submitted work is never silently
 * dropped. wait() blocks the caller until the queue is empty AND all
 * in-flight tasks have finished, which is what a sweep campaign needs
 * between "submit everything" and "aggregate results".
 */

#ifndef INC_RUNNER_THREAD_POOL_H
#define INC_RUNNER_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace inc::runner
{

/** Fixed worker-thread pool with a mutex+condvar job queue. */
class ThreadPool
{
  public:
    /**
     * Spawn @p threads workers. 0 selects defaultThreads(). The pool
     * never grows or shrinks after construction.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains queued tasks, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task. Tasks must not throw — wrap fallible work (the
     * SweepRunner catches job exceptions before they reach the pool).
     * Submitting after shutdown() is a no-op.
     */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is executing. */
    void wait();

    /**
     * Graceful shutdown: finish every already-queued task, then join
     * the workers. Idempotent; called by the destructor.
     */
    void shutdown();

    /** Number of worker threads. */
    unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

    /** Hardware concurrency with a floor of 1 (the library's default). */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable work_cv_; ///< signalled on submit/shutdown
    std::condition_variable idle_cv_; ///< signalled when work completes
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

} // namespace inc::runner

#endif // INC_RUNNER_THREAD_POOL_H
