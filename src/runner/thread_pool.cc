#include "runner/thread_pool.h"

namespace inc::runner
{

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && in_flight_ == 0; });
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            // Drain the queue even when stopping: graceful shutdown
            // completes accepted work instead of dropping it.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
        }
        idle_cv_.notify_all();
    }
}

} // namespace inc::runner
