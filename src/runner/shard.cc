#include "runner/shard.h"

#include "util/logging.h"

namespace inc::runner
{

std::vector<ShardRange>
planShards(std::size_t num_jobs, std::size_t max_shards)
{
    if (max_shards == 0)
        util::fatal("planShards: max_shards must be >= 1");
    std::vector<ShardRange> shards;
    if (num_jobs == 0)
        return shards;
    const std::size_t count =
        max_shards < num_jobs ? max_shards : num_jobs;
    const std::size_t base = num_jobs / count;
    const std::size_t rem = num_jobs % count;
    shards.reserve(count);
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < count; ++i) {
        ShardRange shard;
        shard.id = i;
        shard.begin = cursor;
        shard.end = cursor + base + (i < rem ? 1 : 0);
        cursor = shard.end;
        shards.push_back(shard);
    }
    return shards;
}

} // namespace inc::runner
