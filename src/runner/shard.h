/**
 * @file
 * Shard planning for fleet campaigns (src/fleet).
 *
 * A shard is a contiguous range of job indices in expansion order.
 * planShards() partitions [0, num_jobs) into at most @p max_shards
 * near-equal contiguous ranges — deterministic, covering every job
 * exactly once — so a coordinator can hand each range to a worker
 * process and fold the results back in job-index order. Contiguity
 * matters: SweepRunner::setJobRange() executes a shard without
 * re-deriving any seed (the full grid is always expanded first), so a
 * shard's results are bit-identical to the same jobs in a serial run.
 */

#ifndef INC_RUNNER_SHARD_H
#define INC_RUNNER_SHARD_H

#include <cstddef>
#include <vector>

namespace inc::runner
{

/** One contiguous slice [begin, end) of a campaign's job list. */
struct ShardRange
{
    std::size_t id = 0; ///< position in plan order (== vector index)
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
};

/**
 * Partition @p num_jobs jobs into min(max_shards, num_jobs) contiguous
 * shards whose sizes differ by at most one (earlier shards take the
 * remainder). Empty when num_jobs == 0; fatal when max_shards == 0.
 */
std::vector<ShardRange> planShards(std::size_t num_jobs,
                                   std::size_t max_shards);

} // namespace inc::runner

#endif // INC_RUNNER_SHARD_H
