/**
 * @file
 * Declarative experiment-sweep orchestration (the batch runner behind
 * bench/fig*, tools/nvpsim sweep, and any future campaign).
 *
 * A SweepSpec names a grid — kernels x power traces x configuration
 * variants — plus a master seed and a parallelism degree. expandSweep()
 * flattens the grid into JobSpecs in a fixed (kernel-major, then trace,
 * then variant) order, forking one RNG seed per job from the master
 * seed in that same order. Because every job is fully described by its
 * JobSpec and jobs share no mutable state, executing them on 1 thread
 * or N threads produces bit-identical results; the ResultSink then
 * restores deterministic job-index order before aggregation, so all
 * downstream tables/CSVs are byte-identical at any --jobs value.
 *
 * Failure semantics: a job that throws is retried up to
 * SweepSpec::max_retries times; a job still failing lands in the
 * report's failure list (with its spec and attempt count) instead of
 * sinking the whole campaign. Campaign drivers exit nonzero only when
 * failures remain after retry.
 */

#ifndef INC_RUNNER_SWEEP_H
#define INC_RUNNER_SWEEP_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/report/report.h"
#include "sim/system_sim.h"
#include "trace/power_trace.h"
#include "util/rng.h"

namespace inc::runner
{

class SweepJournal;

/**
 * One configuration axis point. @p make receives the kernel name so a
 * variant can be kernel-dependent (e.g. the Table 2 tuned policies).
 */
struct ConfigVariant
{
    std::string name;
    std::function<sim::SimConfig(const std::string &kernel)> make;
};

/** Declarative description of a sweep campaign. */
struct SweepSpec
{
    std::vector<std::string> kernels;
    std::vector<trace::PowerTrace> traces;
    std::vector<ConfigVariant> variants;

    /** Root of the per-job RNG tree (see expandSweep()). */
    std::uint64_t master_seed = 2017;

    /**
     * When true, each job's SimConfig.seed is overwritten with the
     * job's forked rng_seed, giving every grid point an independent
     * random stream. The figure reproductions keep this false: the
     * paper's experiments run every configuration on the same seed so
     * columns are comparable.
     */
    bool derive_config_seeds = false;

    /** Worker threads; 0 = ThreadPool::defaultThreads(). */
    int jobs = 0;

    /** Bounded re-executions of a throwing job (0 = no retry). */
    int max_retries = 1;

    /**
     * Attach a per-job obs::Observer and keep each job's metric
     * registry in its JobResult (see SweepReport::mergedMetrics()).
     * Observation is non-perturbing, so results are unchanged; the
     * merge is performed in job-index order, so the aggregated
     * registry is byte-identical at any `jobs` value.
     */
    bool collect_metrics = false;

    /**
     * Lane-batched execution width (`nvpsim sweep --batch-width`).
     * When > 1, pending jobs are packed — in expansion order — into
     * groups of up to this many lanes, and each group runs as one
     * sim::SimBatch: N independent co-simulators stepped in lockstep,
     * one trace sample per lane per round. Every job keeps the seed it
     * was forked at expansion time and the lanes share no mutable
     * state, so results (and merged metrics, and journal contents) are
     * byte-identical to serial execution at any --jobs x batch-width
     * combination. A group in which any lane throws falls back to the
     * serial per-job path, restoring the full retry semantics.
     *
     * Batched execution drives the default sim job directly; custom
     * job bodies (SweepRunner's JobFn constructor) are incompatible
     * with widths > 1 and are rejected by run().
     */
    int batch_width = 1;
};

/** One fully resolved grid point. */
struct JobSpec
{
    std::size_t index = 0; ///< position in expansion order
    std::size_t kernel_index = 0;
    std::size_t trace_index = 0;
    std::size_t variant_index = 0;
    std::string kernel;
    std::string trace_name;
    std::string variant;
    sim::SimConfig config;

    /** Seed forked from the master seed at expansion time. */
    std::uint64_t rng_seed = 0;

    /** "kernel x trace x variant (#index)" for logs and reports. */
    std::string describe() const;
};

/**
 * Flatten the grid into jobs (kernel-major, then trace, then variant)
 * and fork one rng_seed per job from spec.master_seed. Deterministic:
 * the same spec always yields the same jobs, so results are
 * reproducible at any parallelism.
 */
std::vector<JobSpec> expandSweep(const SweepSpec &spec);

/** Outcome of one job, successful or not. */
struct JobResult
{
    JobSpec spec;
    sim::SimResult result; ///< valid only when ok
    double wall_ms = 0.0;
    int attempts = 0;
    bool ok = false;
    std::string error; ///< last exception message when !ok

    /** Per-job metric registry (populated when
     *  SweepSpec::collect_metrics and the job succeeded). */
    obs::MetricsRegistry metrics;
};

/** Aggregated campaign outcome, in deterministic job-index order. */
struct SweepReport
{
    std::vector<JobResult> results;
    double wall_seconds = 0.0;
    unsigned jobs_used = 1;

    bool allOk() const;
    std::size_t failureCount() const;

    /** Failed jobs, in job-index order. */
    std::vector<const JobResult *> failures() const;

    /**
     * Human-readable failure report (one line per failed job: spec,
     * attempts, last error). Empty string when allOk().
     */
    std::string failureReport() const;

    /**
     * Merge every successful job's registry, in job-index order, plus
     * `runner.jobs_total` / `runner.jobs_failed` counters. Excludes
     * scheduling artifacts (jobs_used, wall time), so serialising the
     * result is byte-identical at any parallelism. Empty unless the
     * sweep ran with SweepSpec::collect_metrics.
     */
    obs::MetricsRegistry mergedMetrics() const;

    /**
     * Per-kernel forward-progress efficiency rows for the run report,
     * aggregated over successful jobs. Rows appear in first-appearance
     * (i.e. expansion, kernel-major) order and fold every trace/variant
     * of a kernel together — deterministic at any parallelism, like
     * mergedMetrics().
     */
    std::vector<obs::KernelEfficiency> kernelEfficiency() const;
};

/**
 * Collects JobResults from worker threads and hands them back sorted
 * into job-index order. Thread safe. The two-argument constructor
 * restricts the sink to the job-index range [begin, end) — the shape a
 * fleet shard executes (see runner/shard.h); out-of-range deliveries
 * panic just like out-of-bounds ones.
 */
class ResultSink
{
  public:
    explicit ResultSink(std::size_t num_jobs);
    ResultSink(std::size_t begin, std::size_t end);

    /** Deliver a finished job (any thread). */
    void deliver(JobResult result);

    /** All results in job-index order. Call after the pool drained. */
    std::vector<JobResult> take();

  private:
    std::mutex mutex_;
    std::size_t begin_ = 0;
    std::vector<JobResult> slots_;
    std::vector<bool> filled_;
};

/** Executes a sweep across a ThreadPool. */
class SweepRunner
{
  public:
    /**
     * A job body: runs one grid point and returns its metrics. @p rng
     * is this job's private stream (seeded from JobSpec::rng_seed);
     * the default body ignores it because SystemSimulator seeds itself
     * from config.seed. May throw; the runner captures and retries.
     */
    using JobFn = std::function<sim::SimResult(
        const JobSpec &, const trace::PowerTrace &, util::Rng &)>;

    explicit SweepRunner(SweepSpec spec);
    SweepRunner(SweepSpec spec, JobFn body);

    /** True when constructed with the default sim job body (the only
     *  body SweepSpec::batch_width > 1 can pack into a SimBatch). */
    bool hasDefaultBody() const { return default_body_; }

    /**
     * Attach a warm-restart journal (not owned; must outlive run()).
     * Jobs the journal marks completed are delivered from their
     * journaled, bit-exact results instead of re-running; jobs that
     * finish successfully are recorded (and committed) before delivery.
     * The caller is responsible for fingerprint checking/binding —
     * run() assumes the journal belongs to this campaign.
     */
    void setJournal(SweepJournal *journal) { journal_ = journal; }

    /**
     * Called after each job is journaled (with its index), from the
     * worker thread that ran it. Test hook: `nvpsim sweep
     * --kill-after N` uses it to SIGKILL itself mid-campaign.
     */
    void setRecordHook(std::function<void(std::size_t)> hook)
    {
        record_hook_ = std::move(hook);
    }

    /**
     * Restrict execution to jobs [begin, end) of the expansion order.
     * The full grid is still expanded — the per-job seed tree is forked
     * in expansion order, so a restricted run's results are bit-exactly
     * the same jobs a full run would produce — but only the range is
     * executed (or loaded from the journal) and run() returns only its
     * results. This is how a fleet worker executes one shard
     * (runner/shard.h). Validated against the grid inside run().
     */
    void setJobRange(std::size_t begin, std::size_t end)
    {
        range_begin_ = begin;
        range_end_ = end;
        has_range_ = true;
    }

    /**
     * Called with each finished JobResult right before it is delivered
     * to the sink — journaled warm-restart results included — from
     * whichever thread delivers it (callers synchronize). A fleet
     * worker uses it to stream results to the coordinator as they
     * complete instead of waiting for the whole shard.
     */
    void setDeliveryHook(std::function<void(const JobResult &)> hook)
    {
        delivery_hook_ = std::move(hook);
    }

    /**
     * Called right after each delivery with the finished result, the
     * number of jobs delivered so far in the executed range, and the
     * range total — journaled warm-restart deliveries included, so a
     * resumed run's progress starts where the journal left off. Runs
     * on the delivering thread, like the delivery hook; the counts
     * are maintained atomically by the runner. The fleet worker's
     * PROGRESS cadence (DESIGN.md §16) is driven from here.
     */
    void setProgressHook(
        std::function<void(const JobResult &, std::size_t done,
                           std::size_t total)>
            hook)
    {
        progress_hook_ = std::move(hook);
    }

    /** Expand, execute across the pool, aggregate. */
    SweepReport run();

    /** The default body: co-simulate spec.kernel on the trace. */
    static sim::SimResult simJob(const JobSpec &spec,
                                 const trace::PowerTrace &trace,
                                 util::Rng &rng);

  private:
    /** Run one job through body_ with the full retry loop. */
    JobResult runSingleJob(const JobSpec &job, int retries,
                           bool collect);

    /** Journal (+ hook) and deliver one finished job. */
    void recordAndDeliver(JobResult result, ResultSink &sink);

    /**
     * Run jobs [start, end) of @p pending as one lane-batched
     * SimBatch; on any lane failure, rerun the whole group through the
     * serial per-job path (runSingleJob) so retry semantics hold.
     */
    void runBatchGroup(const std::vector<const JobSpec *> &pending,
                       std::size_t start, std::size_t end, int retries,
                       bool collect, ResultSink &sink);

    /** Bump the delivered-count and fire the progress hook. */
    void notifyProgress(const JobResult &result);

    SweepSpec spec_;
    JobFn body_;
    bool default_body_ = false;
    SweepJournal *journal_ = nullptr;
    std::function<void(std::size_t)> record_hook_;
    std::function<void(const JobResult &)> delivery_hook_;
    std::function<void(const JobResult &, std::size_t, std::size_t)>
        progress_hook_;
    std::atomic<std::size_t> progress_done_{0};
    std::size_t progress_total_ = 0;
    std::size_t range_begin_ = 0;
    std::size_t range_end_ = 0;
    bool has_range_ = false;
};

} // namespace inc::runner

#endif // INC_RUNNER_SWEEP_H
