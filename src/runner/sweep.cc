#include "runner/sweep.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <sstream>
#include <utility>

#include "kernels/kernel.h"
#include "obs/observer.h"
#include "obs/schema.h"
#include "runner/journal.h"
#include "runner/thread_pool.h"
#include "sim/batch_sim.h"
#include "util/logging.h"

namespace inc::runner
{

namespace
{

/**
 * Seed for one retry attempt. Attempt 0 returns the job's own seed
 * untouched (bit-compatible with pre-retry sweeps); later attempts mix
 * the attempt index through a splitmix64 finalizer so a job whose
 * failure depends on its draws gets a genuinely different stream
 * instead of deterministically re-failing.
 */
std::uint64_t
retrySeed(std::uint64_t base, int attempt)
{
    if (attempt == 0)
        return base;
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL *
                                 static_cast<std::uint64_t>(attempt);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

std::string
JobSpec::describe() const
{
    std::ostringstream out;
    out << kernel << " x " << trace_name << " x " << variant << " (#"
        << index << ")";
    return out.str();
}

std::vector<JobSpec>
expandSweep(const SweepSpec &spec)
{
    if (spec.kernels.empty() || spec.traces.empty() ||
        spec.variants.empty())
        util::fatal("sweep grid is empty (kernels=%zu traces=%zu "
                    "variants=%zu)",
                    spec.kernels.size(), spec.traces.size(),
                    spec.variants.size());

    // The seed tree is forked in expansion order from a master stream,
    // never inside workers, so parallel execution cannot perturb it.
    util::Rng master(spec.master_seed);
    std::vector<JobSpec> jobs;
    jobs.reserve(spec.kernels.size() * spec.traces.size() *
                 spec.variants.size());
    for (std::size_t k = 0; k < spec.kernels.size(); ++k) {
        for (std::size_t t = 0; t < spec.traces.size(); ++t) {
            for (std::size_t v = 0; v < spec.variants.size(); ++v) {
                JobSpec job;
                job.index = jobs.size();
                job.kernel_index = k;
                job.trace_index = t;
                job.variant_index = v;
                job.kernel = spec.kernels[k];
                job.trace_name = spec.traces[t].name();
                job.variant = spec.variants[v].name;
                job.config = spec.variants[v].make(job.kernel);
                job.rng_seed = master.next();
                if (spec.derive_config_seeds)
                    job.config.seed = job.rng_seed;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

bool
SweepReport::allOk() const
{
    return failureCount() == 0;
}

std::size_t
SweepReport::failureCount() const
{
    std::size_t n = 0;
    for (const auto &r : results)
        n += r.ok ? 0 : 1;
    return n;
}

std::vector<const JobResult *>
SweepReport::failures() const
{
    std::vector<const JobResult *> out;
    for (const auto &r : results) {
        if (!r.ok)
            out.push_back(&r);
    }
    return out;
}

obs::MetricsRegistry
SweepReport::mergedMetrics() const
{
    obs::MetricsRegistry merged;
    // results is already in job-index order (ResultSink guarantees it),
    // so this fold — including the floating-point gauge sums — visits
    // jobs in the same order at any parallelism.
    for (const JobResult &r : results) {
        if (r.ok)
            merged.merge(r.metrics);
    }
    merged.counter(obs::kRunnerJobsTotal).value +=
        static_cast<std::uint64_t>(results.size());
    merged.counter(obs::kRunnerJobsFailed).value +=
        static_cast<std::uint64_t>(failureCount());
    return merged;
}

std::vector<obs::KernelEfficiency>
SweepReport::kernelEfficiency() const
{
    std::vector<obs::KernelEfficiency> rows;
    for (const JobResult &r : results) {
        if (!r.ok)
            continue;
        obs::KernelEfficiency *row = nullptr;
        for (obs::KernelEfficiency &existing : rows) {
            if (existing.kernel == r.spec.kernel) {
                row = &existing;
                break;
            }
        }
        if (!row) {
            rows.emplace_back();
            row = &rows.back();
            row->kernel = r.spec.kernel;
        }
        row->forward_progress += r.result.forward_progress;
        row->instructions += r.result.main_instructions;
        row->frames_completed += r.result.controller.frames_completed;
        row->consumed_nj += r.result.consumed_energy_nj;
    }
    // progress_per_uj is derived by buildRunReport(); leave it zero.
    return rows;
}

std::string
SweepReport::failureReport() const
{
    std::ostringstream out;
    for (const JobResult *f : failures()) {
        out << "FAILED " << f->spec.describe() << " after "
            << f->attempts << " attempt" << (f->attempts == 1 ? "" : "s")
            << ": " << f->error << "\n";
    }
    return out.str();
}

ResultSink::ResultSink(std::size_t num_jobs)
    : ResultSink(0, num_jobs)
{
}

ResultSink::ResultSink(std::size_t begin, std::size_t end)
    : begin_(begin), slots_(end - begin), filled_(end - begin, false)
{
    if (end < begin)
        util::panic("ResultSink: inverted range [%zu, %zu)", begin,
                    end);
}

void
ResultSink::deliver(JobResult result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t index = result.spec.index;
    if (index < begin_ || index - begin_ >= slots_.size())
        util::panic("ResultSink: job index %zu outside range "
                    "[%zu, %zu)",
                    index, begin_, begin_ + slots_.size());
    const std::size_t slot = index - begin_;
    if (filled_[slot])
        util::panic("ResultSink: job %zu delivered twice", index);
    slots_[slot] = std::move(result);
    filled_[slot] = true;
}

std::vector<JobResult>
ResultSink::take()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < filled_.size(); ++i) {
        if (!filled_[i])
            util::panic("ResultSink: job %zu never delivered",
                        begin_ + i);
    }
    return std::move(slots_);
}

SweepRunner::SweepRunner(SweepSpec spec)
    : SweepRunner(std::move(spec), &SweepRunner::simJob)
{
    default_body_ = true;
}

SweepRunner::SweepRunner(SweepSpec spec, JobFn body)
    : spec_(std::move(spec)), body_(std::move(body))
{
}

sim::SimResult
SweepRunner::simJob(const JobSpec &spec, const trace::PowerTrace &trace,
                    util::Rng &rng)
{
    (void)rng; // SystemSimulator forks its own tree from config.seed.
    const kernels::Kernel kernel = kernels::makeKernel(spec.kernel);
    sim::SystemSimulator simulator(kernel, &trace, spec.config);
    return simulator.run();
}

SweepReport
SweepRunner::run()
{
    using clock = std::chrono::steady_clock;

    const std::vector<JobSpec> jobs = expandSweep(spec_);
    const int retries = spec_.max_retries < 0 ? 0 : spec_.max_retries;

    // setJobRange(): the grid (and its seed tree) above is always the
    // full campaign; the range only restricts which jobs execute.
    const std::size_t range_begin = has_range_ ? range_begin_ : 0;
    const std::size_t range_end = has_range_ ? range_end_ : jobs.size();
    if (range_begin >= range_end || range_end > jobs.size())
        util::fatal("SweepRunner: job range [%zu, %zu) invalid for "
                    "%zu-job campaign",
                    range_begin, range_end, jobs.size());

    SweepReport report;
    ResultSink sink(range_begin, range_end);
    const auto campaign_start = clock::now();
    progress_done_.store(0);
    progress_total_ = range_end - range_begin;

    // Warm restart: deliver journaled jobs without re-running. All
    // journal reads (and the underlying single-threaded Arena reads)
    // happen here, before any job is submitted — once workers start
    // they call journal_->record(), and interleaving the read side
    // with that would race. The journaled result text round-trips
    // bit-exactly, so the resumed campaign's aggregates are
    // byte-identical to an uninterrupted run's.
    std::vector<const JobSpec *> pending;
    pending.reserve(range_end - range_begin);
    for (std::size_t i = range_begin; i < range_end; ++i) {
        const JobSpec &job = jobs[i];
        if (journal_ && journal_->completed(job.index)) {
            JobResult jr;
            std::string err;
            if (journal_->load(job.index, &jr, &err)) {
                jr.spec = job;
                if (delivery_hook_)
                    delivery_hook_(jr);
                notifyProgress(jr);
                sink.deliver(std::move(jr));
                continue;
            }
            util::warn("sweep journal: job %zu marked complete but "
                       "unreadable (%s); re-running",
                       job.index, err.c_str());
        }
        pending.push_back(&job);
    }

    const int batch_width = spec_.batch_width;
    if (batch_width < 1)
        util::fatal("SweepSpec::batch_width must be >= 1 (got %d)",
                    batch_width);
    if (batch_width > 1 && !default_body_)
        util::fatal("SweepSpec::batch_width > 1 requires the default "
                    "sim job body (custom JobFn bodies cannot be "
                    "packed into a SimBatch)");

    {
        ThreadPool pool(spec_.jobs <= 0
                            ? 0
                            : static_cast<unsigned>(spec_.jobs));
        report.jobs_used = pool.threadCount();
        const bool collect = spec_.collect_metrics;
        if (batch_width > 1) {
            // Lane-batched execution: pack pending jobs, in expansion
            // order, into groups of up to batch_width lanes; each group
            // is one pool task driving one SimBatch. Jobs keep their
            // expansion-time seeds and lanes share no mutable state,
            // so this is byte-identical to the serial path at any
            // --jobs x batch-width combination.
            const auto width = static_cast<std::size_t>(batch_width);
            for (std::size_t start = 0; start < pending.size();
                 start += width) {
                const std::size_t end =
                    std::min(pending.size(), start + width);
                pool.submit([this, &sink, &pending, start, end,
                             retries, collect] {
                    runBatchGroup(pending, start, end, retries,
                                  collect, sink);
                });
            }
        } else {
            for (const JobSpec *job_ptr : pending) {
                const JobSpec &job = *job_ptr;
                pool.submit([this, &sink, &job, retries, collect] {
                    recordAndDeliver(
                        runSingleJob(job, retries, collect), sink);
                });
            }
        }
        pool.wait();
    }
    report.results = sink.take();
    report.wall_seconds =
        std::chrono::duration<double>(clock::now() - campaign_start)
            .count();
    return report;
}

JobResult
SweepRunner::runSingleJob(const JobSpec &job, int retries, bool collect)
{
    using clock = std::chrono::steady_clock;

    JobResult jr;
    jr.spec = job;
    const auto start = clock::now();
    for (int attempt = 0; attempt <= retries; ++attempt) {
        jr.attempts = attempt + 1;
        try {
            // Attempt 0 uses the job's own seed so results are
            // reproducible; retries fork a distinct stream — replaying
            // the identical RNG state would deterministically re-fail
            // any job whose failure is draw-dependent.
            util::Rng rng(retrySeed(job.rng_seed, attempt));
            if (collect) {
                // Fresh observer per attempt: a partial registry from
                // a thrown attempt must not leak into the kept one.
                obs::Observer observer;
                JobSpec instrumented = job;
                instrumented.config.obs = &observer;
                jr.result = body_(instrumented,
                                  spec_.traces[job.trace_index], rng);
                jr.metrics = std::move(observer.registry);
            } else {
                jr.result =
                    body_(job, spec_.traces[job.trace_index], rng);
            }
            jr.ok = true;
            jr.error.clear();
            break;
        } catch (const std::exception &e) {
            jr.ok = false;
            jr.error = e.what();
        } catch (...) {
            jr.ok = false;
            jr.error = "unknown exception";
        }
    }
    jr.wall_ms = std::chrono::duration<double, std::milli>(
                     clock::now() - start)
                     .count();
    return jr;
}

void
SweepRunner::recordAndDeliver(JobResult result, ResultSink &sink)
{
    if (journal_) {
        journal_->record(result);
        if (record_hook_)
            record_hook_(result.spec.index);
    }
    if (delivery_hook_)
        delivery_hook_(result);
    notifyProgress(result);
    sink.deliver(std::move(result));
}

void
SweepRunner::notifyProgress(const JobResult &result)
{
    const std::size_t done = progress_done_.fetch_add(1) + 1;
    if (progress_hook_)
        progress_hook_(result, done, progress_total_);
}

void
SweepRunner::runBatchGroup(const std::vector<const JobSpec *> &pending,
                           std::size_t start, std::size_t end,
                           int retries, bool collect, ResultSink &sink)
{
    using clock = std::chrono::steady_clock;

    const std::size_t count = end - start;
    std::vector<std::unique_ptr<obs::Observer>> observers(count);
    const auto group_start = clock::now();
    bool batched_ok = false;
    std::vector<sim::SimResult> results;
    try {
        sim::SimBatch batch;
        for (std::size_t k = 0; k < count; ++k) {
            const JobSpec &job = *pending[start + k];
            sim::SimConfig config = job.config;
            if (collect) {
                observers[k] = std::make_unique<obs::Observer>();
                config.obs = observers[k].get();
            }
            const kernels::Kernel kernel =
                kernels::makeKernel(job.kernel);
            batch.add(std::make_unique<sim::SystemSimulator>(
                kernel, &spec_.traces[job.trace_index], config));
        }
        results = batch.runAll();
        batched_ok = true;
    } catch (...) {
        // A single lane failing poisons the whole lockstep group (the
        // exception unwound the round-robin, so sibling lanes are
        // part-run). Discard the group and rerun every job through the
        // serial path: attempt 0 replays the identical spec — the sims
        // are pure in it — and the retry ladder applies per job.
    }
    if (batched_ok) {
        const double wall_ms =
            std::chrono::duration<double, std::milli>(clock::now() -
                                                      group_start)
                .count();
        for (std::size_t k = 0; k < count; ++k) {
            JobResult jr;
            jr.spec = *pending[start + k];
            jr.attempts = 1;
            jr.ok = true;
            jr.result = std::move(results[k]);
            if (collect)
                jr.metrics = std::move(observers[k]->registry);
            jr.wall_ms = wall_ms;
            recordAndDeliver(std::move(jr), sink);
        }
        return;
    }
    for (std::size_t k = 0; k < count; ++k)
        recordAndDeliver(runSingleJob(*pending[start + k], retries,
                                      collect),
                         sink);
}

} // namespace inc::runner
