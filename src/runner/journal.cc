#include "runner/journal.h"

#include <cstdio>
#include <cstdlib>

#include "sim/result_io.h"
#include "util/crc32.h"

namespace inc::runner
{

namespace
{

constexpr char kKeyFingerprint[] = "sweep.fingerprint";
constexpr char kKeyJobs[] = "sweep.jobs";
constexpr char kKeyDone[] = "sweep.done";

std::string
jobKey(std::size_t index)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "job.%zu", index);
    return buf;
}

std::uint32_t
crcU64(std::uint32_t crc, std::uint64_t v)
{
    return util::crc32(crc, &v, sizeof v);
}

std::uint32_t
crcString(std::uint32_t crc, const std::string &s)
{
    crc = crcU64(crc, s.size());
    return util::crc32(crc, s.data(), s.size());
}

} // namespace

SweepJournal::SweepJournal(arena::Arena *arena) : arena_(arena)
{
    std::string jobs_text;
    if (!arena_->get(kKeyFingerprint, &fingerprint_) ||
        !arena_->get(kKeyJobs, &jobs_text) ||
        !arena_->get(kKeyDone, &done_))
        return; // fresh arena: stay unbound
    jobs_total_ =
        static_cast<std::size_t>(std::strtoull(jobs_text.c_str(),
                                               nullptr, 10));
    const std::size_t want = (jobs_total_ + 7) / 8;
    if (jobs_total_ == 0 || done_.size() != want) {
        // Inconsistent (shouldn't happen: bind() commits atomically).
        fingerprint_.clear();
        jobs_total_ = 0;
        done_.clear();
    }
}

std::string
SweepJournal::fingerprint(const SweepSpec &spec,
                          const std::vector<JobSpec> &jobs,
                          const std::string &extra)
{
    std::uint32_t crc = 0;
    crc = crcU64(crc, spec.kernels.size());
    for (const std::string &k : spec.kernels)
        crc = crcString(crc, k);
    crc = crcU64(crc, spec.traces.size());
    for (const trace::PowerTrace &t : spec.traces) {
        crc = crcString(crc, t.name());
        crc = crcU64(crc, t.size());
        // Sample *contents* matter: same-named traces from different
        // captures must not alias.
        crc = util::crc32(crc, t.samples().data(),
                          t.samples().size() * sizeof(double));
    }
    crc = crcU64(crc, spec.variants.size());
    for (const ConfigVariant &v : spec.variants)
        crc = crcString(crc, v.name);
    crc = crcU64(crc, spec.master_seed);
    crc = crcU64(crc, spec.derive_config_seeds ? 1 : 0);
    crc = crcU64(crc, jobs.size());
    for (const JobSpec &j : jobs)
        crc = crcU64(crc, j.rng_seed);
    crc = crcString(crc, extra);

    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", crc);
    return buf;
}

std::size_t
SweepJournal::completedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < jobs_total_; ++i)
        n += completedLocked(i) ? 1 : 0;
    return n;
}

void
SweepJournal::bind(const std::string &fingerprint, std::size_t num_jobs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    fingerprint_ = fingerprint;
    jobs_total_ = num_jobs;
    done_.assign((num_jobs + 7) / 8, '\0');

    char jobs_text[32];
    std::snprintf(jobs_text, sizeof jobs_text, "%zu", num_jobs);
    arena_->put(kKeyFingerprint, fingerprint_);
    arena_->put(kKeyJobs, jobs_text);
    arena_->put(kKeyDone, done_);
    arena_->commit();
}

bool
SweepJournal::completed(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completedLocked(index);
}

bool
SweepJournal::completedLocked(std::size_t index) const
{
    if (index >= jobs_total_)
        return false;
    return (static_cast<unsigned char>(done_[index / 8]) >>
            (index % 8)) &
           1u;
}

bool
SweepJournal::load(std::size_t index, JobResult *out,
                   std::string *error) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string payload;
    if (!arena_->get(jobKey(index), &payload)) {
        if (error)
            *error = "journal entry missing";
        return false;
    }

    // Header: "attempts=<n>\nresult_bytes=<len>\n", then <len> result
    // bytes, then the metrics JSON (possibly empty).
    int attempts = 0;
    unsigned long long result_len = 0;
    int header_end = -1;
    if (std::sscanf(payload.c_str(), "attempts=%d\nresult_bytes=%llu\n%n",
                    &attempts, &result_len, &header_end) < 2 ||
        header_end < 0 ||
        static_cast<std::size_t>(header_end) + result_len >
            payload.size()) {
        if (error)
            *error = "journal entry malformed";
        return false;
    }

    const std::string result_text =
        payload.substr(static_cast<std::size_t>(header_end),
                       static_cast<std::size_t>(result_len));
    const std::string metrics_json = payload.substr(
        static_cast<std::size_t>(header_end) +
        static_cast<std::size_t>(result_len));

    JobResult jr;
    jr.attempts = attempts;
    jr.ok = true;
    if (!sim::parseResult(result_text, &jr.result, error))
        return false;
    if (!metrics_json.empty() &&
        !obs::MetricsRegistry::fromJson(metrics_json, &jr.metrics,
                                        error))
        return false;
    *out = std::move(jr);
    return true;
}

bool
SweepJournal::record(const JobResult &result)
{
    if (!result.ok)
        return true; // failed jobs re-run on resume
    std::lock_guard<std::mutex> lock(mutex_);
    if (result.spec.index >= jobs_total_ ||
        completedLocked(result.spec.index))
        return true;

    const std::string result_text = sim::serializeResult(result.result);
    const std::string metrics_json =
        result.metrics.empty() ? std::string() : result.metrics.toJson();

    char header[96];
    std::snprintf(header, sizeof header,
                  "attempts=%d\nresult_bytes=%zu\n", result.attempts,
                  result_text.size());
    arena_->put(jobKey(result.spec.index),
                header + result_text + metrics_json);

    done_[result.spec.index / 8] = static_cast<char>(
        static_cast<unsigned char>(done_[result.spec.index / 8]) |
        (1u << (result.spec.index % 8)));
    arena_->put(kKeyDone, done_);
    return arena_->commit();
}

} // namespace inc::runner
