/**
 * @file
 * PersistenceBackend: where a simulator's "nonvolatile" byte buffers
 * live.
 *
 * The NVM-state owners (nvp::DataMemory's data memory + RAC version
 * store, sim/active_checkpoint's image slots) allocate their backing
 * stores through this interface instead of owning vectors directly.
 * Two implementations:
 *
 *   - HeapBackend: plain heap buffers. The default everywhere (and
 *     what a null backend pointer means), chosen for tier-1 speed —
 *     behaviour is identical to the pre-arena vectors.
 *
 *   - ArenaBackend: buffers carved out of an arena::Arena's mmap'd
 *     data heap. Contents survive process death, so a re-created
 *     owner that acquires the same names warm-restarts with the bytes
 *     it had when the previous process was killed — the simulated NVM
 *     finally behaves like the NVM it models.
 *
 * acquire() is a get-or-create: *existed reports whether persisted
 * content was found (callers use it to distinguish cold boot from warm
 * restart). Returned pointers stay valid for the backend's lifetime.
 */

#ifndef INC_ARENA_BACKEND_H
#define INC_ARENA_BACKEND_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arena/arena.h"

namespace inc::arena
{

class PersistenceBackend
{
  public:
    virtual ~PersistenceBackend() = default;

    /**
     * Get-or-create the named buffer. A fresh buffer is zero-filled;
     * an existing one (same name, same size) returns its persisted
     * bytes and sets *existed. A size mismatch discards the old
     * buffer and creates fresh.
     */
    virtual std::uint8_t *acquire(const std::string &name,
                                  std::size_t bytes,
                                  bool *existed = nullptr) = 0;

    /** Drop the named buffer (no-op when absent). */
    virtual void release(const std::string &name) = 0;
};

/** Transient heap storage — bit-compatible with the pre-arena vectors. */
class HeapBackend final : public PersistenceBackend
{
  public:
    std::uint8_t *acquire(const std::string &name, std::size_t bytes,
                          bool *existed = nullptr) override;
    void release(const std::string &name) override;

  private:
    std::map<std::string, std::vector<std::uint8_t>> buffers_;
};

/** File-resident storage in an arena's mmap'd data heap. Allocations
 *  are committed immediately so the block index survives a crash even
 *  when the owner never reaches an explicit arena commit. */
class ArenaBackend final : public PersistenceBackend
{
  public:
    explicit ArenaBackend(Arena *arena) : arena_(arena) {}

    std::uint8_t *acquire(const std::string &name, std::size_t bytes,
                          bool *existed = nullptr) override;
    void release(const std::string &name) override;

    Arena *arena() { return arena_; }

  private:
    Arena *arena_;
};

} // namespace inc::arena

#endif // INC_ARENA_BACKEND_H
