#include "arena/backend.h"

namespace inc::arena
{

std::uint8_t *
HeapBackend::acquire(const std::string &name, std::size_t bytes,
                     bool *existed)
{
    auto it = buffers_.find(name);
    const bool found = it != buffers_.end() && it->second.size() == bytes;
    if (existed != nullptr)
        *existed = found;
    if (!found) {
        buffers_[name].assign(bytes, 0);
        it = buffers_.find(name);
    }
    return it->second.data();
}

void
HeapBackend::release(const std::string &name)
{
    buffers_.erase(name);
}

std::uint8_t *
ArenaBackend::acquire(const std::string &name, std::size_t bytes,
                      bool *existed)
{
    const bool was_new =
        !arena_->hasBlock(name) || arena_->blockSize(name) != bytes;
    std::uint8_t *data = arena_->alloc(name, bytes, existed);
    if (was_new)
        arena_->commit();
    return data;
}

void
ArenaBackend::release(const std::string &name)
{
    if (arena_->hasBlock(name)) {
        arena_->freeBlock(name);
        arena_->commit();
    }
}

} // namespace inc::arena
