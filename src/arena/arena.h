/**
 * @file
 * The persistence arena: an mmap-backed, file-resident store for the
 * simulator's "nonvolatile" state (DESIGN.md §12).
 *
 * Everything the stack previously kept in transient heap arrays — data
 * memory images, the RAC version store, active-checkpoint images,
 * sweep-campaign progress — can live here instead, so a killed process
 * (or a whole fleet campaign) survives exactly the way the paper's NVM
 * premise says it should. An arena is a directory with two files:
 *
 *   arena.dat  sparse, mmap'd data heap. Named blocks are carved out
 *              of it by a bump allocator; callers read and write the
 *              returned pointers directly, and those bytes persist
 *              across SIGKILL because they live in a shared file
 *              mapping (only power loss additionally needs syncData()).
 *
 *   arena.log  append-only, log-structured record index. Every
 *              mutation of the arena's *index* — block allocations and
 *              frees, key/value puts and erases — is appended as a
 *              CRC32-guarded record stamped with the epoch it will
 *              commit into; commit() seals the open epoch with a
 *              CRC32-guarded commit record and fsyncs.
 *
 * Recovery (open() on an existing directory) replays the log to the
 * last consistent epoch: records are validated (magic, header CRC,
 * body CRC, length bounds, epoch monotonicity) and staged; each valid
 * commit record folds the staged operations into the committed state.
 * The first invalid or truncated record — a torn tail — ends the
 * replay, and everything after the last commit record is discarded
 * and physically truncated. Index mutations made after the last
 * commit() therefore roll back on crash, while raw block *contents*
 * behave like NVM: whatever bytes were stored last survive.
 *
 * Fault injection (Options::fail_after_log_bytes) makes the log stop
 * persisting after N appended bytes — a record straddling the limit is
 * written only up to it, leaving a genuinely torn tail — so tests and
 * the check/ fuzzer can exercise every crash point deterministically
 * without forking processes.
 *
 * Not thread-safe; wrap with a mutex (runner::SweepJournal does).
 */

#ifndef INC_ARENA_ARENA_H
#define INC_ARENA_ARENA_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace inc::obs
{
class MetricsRegistry;
}

namespace inc::arena
{

/** Session statistics (exported via obs::publishArenaStats). */
struct ArenaStats
{
    std::uint64_t log_bytes = 0;    ///< log bytes appended this session
    std::uint64_t log_records = 0;  ///< records appended this session
    std::uint64_t commits = 0;      ///< commit records appended
    std::uint64_t replayed_records = 0; ///< records replayed at open
    std::uint64_t replayed_commits = 0; ///< commits replayed at open
    /** Torn/uncommitted tail bytes discarded by recovery. */
    std::uint64_t discarded_tail_bytes = 0;
    double recovery_ms = 0.0; ///< wall time of the open-replay pass
    bool recovered = false;   ///< opened an existing arena
};

class Arena
{
  public:
    struct Options
    {
        /** Virtual reservation for arena.dat. The file is sparse, so
         *  untouched pages cost nothing. */
        std::size_t data_capacity = 64u << 20;

        /**
         * Fault injection: stop persisting log bytes after this many
         * have been appended this session (0 = off). The record that
         * crosses the limit is written only up to it — a torn tail —
         * and every later append is dropped; commit() returns false
         * from then on.
         */
        std::uint64_t fail_after_log_bytes = 0;
    };

    /**
     * Create @p dir as a fresh arena, or recover the one already
     * there. Throws std::runtime_error on I/O or corruption the
     * recovery path cannot skip (bad file headers).
     */
    static std::unique_ptr<Arena> open(const std::string &dir,
                                       const Options &options);
    static std::unique_ptr<Arena> open(const std::string &dir)
    {
        return open(dir, Options{});
    }

    ~Arena();
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    const std::string &dir() const { return dir_; }

    /** Last committed (sealed) epoch; 0 on a fresh arena. */
    std::uint64_t epoch() const { return epoch_; }

    /** True once the log is dead — the injected fault tripped, or a
     *  real fsync failure made durability unknowable — and nothing
     *  appended since persists. */
    bool failed() const { return failed_; }

    const ArenaStats &stats() const { return stats_; }

    // ---- data heap (named blocks) ---------------------------------------

    /**
     * Allocate (or reopen) the named block. When a committed block of
     * this name and size already exists its persisted bytes are
     * returned and *existed is set; a size mismatch discards the old
     * block and allocates fresh (explicitly zero-filled — the extent
     * may reuse file pages behind blocks discarded by recovery).
     * The allocation is logged but, like every index mutation, only
     * survives a crash once commit() seals it. Pointers stay valid for
     * the arena's lifetime (the mapping never moves).
     */
    std::uint8_t *alloc(const std::string &name, std::size_t bytes,
                        bool *existed = nullptr);

    bool hasBlock(const std::string &name) const;
    std::size_t blockSize(const std::string &name) const;
    std::uint8_t *blockData(const std::string &name);

    /**
     * Grow the named block to @p bytes, copying the old contents into
     * the front of a fresh allocation (log-structured: the old extent
     * is abandoned, not reused). Returns the new pointer.
     */
    std::uint8_t *grow(const std::string &name, std::size_t bytes);

    /** Drop the block from the index (space reclaimed only by a future
     *  compaction — the log is append-only). */
    void freeBlock(const std::string &name);

    // ---- log-structured key/value index ----------------------------------

    /** Stage key := value. Visible to get() immediately; survives a
     *  crash only after the next commit(). */
    void put(const std::string &key, const std::string &value);

    void erase(const std::string &key);

    /** Current (staged + committed) view. */
    bool get(const std::string &key, std::string *value) const;

    /** Keys with @p prefix, sorted. */
    std::vector<std::string> keys(const std::string &prefix = "") const;

    // ---- durability -------------------------------------------------------

    /**
     * Seal the open epoch: append a commit record and fsync the log.
     * Returns false — and marks the arena failed() — when the injected
     * fault has tripped or the fsync itself fails; either way the
     * epoch is not durable and a reopen may roll back to the last
     * sealed one.
     */
    bool commit();

    /** msync the data heap (needed against power loss, not SIGKILL). */
    void syncData();

  private:
    Arena() = default;

    void createFiles(const Options &options);
    void recover(const Options &options);
    void mapData(std::size_t capacity);
    bool appendRecord(std::uint16_t type, const std::string &key,
                      const std::string &payload);

    struct Block
    {
        std::uint64_t offset = 0;
        std::uint64_t size = 0;
    };

    std::string dir_;
    int log_fd_ = -1;
    std::uint64_t log_end_ = 0; ///< append position in arena.log

    std::uint8_t *data_ = nullptr; ///< arena.dat mapping
    std::size_t data_capacity_ = 0;
    std::uint64_t bump_ = 0; ///< next free arena.dat offset

    std::map<std::string, Block> blocks_;
    std::map<std::string, std::string> kv_;

    std::uint64_t epoch_ = 0;
    bool failed_ = false;
    std::uint64_t fail_after_ = 0; ///< 0 = fault injection off

    ArenaStats stats_;
};

/** Fold @p stats into @p registry under the arena.* schema names. */
void publishArenaStats(const ArenaStats &stats,
                       obs::MetricsRegistry &registry);

} // namespace inc::arena

#endif // INC_ARENA_ARENA_H
