#include "arena/arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/schema.h"
#include "util/crc32.h"
#include "util/fs.h"
#include "util/logging.h"

namespace inc::arena
{

namespace
{

constexpr std::uint64_t kDataMagic = 0x31544144414e4952ULL; // "RINADAT1"
constexpr std::uint64_t kLogMagic = 0x31474f4c414e4952ULL;  // "RINALOG1"
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kRecordMagic = 0x43455249; // "IREC"
constexpr std::uint64_t kBlockAlign = 64;

enum RecordType : std::uint16_t
{
    kRecPut = 1,
    kRecErase = 2,
    kRecCommit = 3,
    kRecAlloc = 4,
    kRecFree = 5,
};

/** Fixed-size file header shared by arena.dat and arena.log. The CRC
 *  covers every preceding field; capacity is meaningful only for the
 *  data file. */
struct FileHeader
{
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    std::uint32_t reserved = 0;
    std::uint64_t capacity = 0;
    std::uint32_t pad = 0;
    std::uint32_t crc = 0;
};
static_assert(sizeof(FileHeader) == 32);

/** One log record header; key and payload bytes follow. body_crc
 *  covers key + payload, header_crc the preceding header fields. */
struct RecordHeader
{
    std::uint32_t magic = kRecordMagic;
    std::uint16_t type = 0;
    std::uint16_t reserved = 0;
    std::uint64_t epoch = 0;
    std::uint32_t key_len = 0;
    std::uint32_t payload_len = 0;
    std::uint32_t body_crc = 0;
    std::uint32_t header_crc = 0;
};
static_assert(sizeof(RecordHeader) == 32);

std::uint32_t
headerCrc(const FileHeader &h)
{
    return util::crc32(&h, offsetof(FileHeader, crc));
}

std::uint32_t
recordHeaderCrc(const RecordHeader &h)
{
    return util::crc32(&h, offsetof(RecordHeader, header_crc));
}

void
writeAll(int fd, const void *data, std::size_t size, std::uint64_t at,
         const char *what)
{
    const auto *p = static_cast<const char *>(data);
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::pwrite(fd, p + done, size - done,
                                   static_cast<off_t>(at + done));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(std::string("arena: write of ") +
                                     what + " failed: " +
                                     std::strerror(errno));
        }
        done += static_cast<std::size_t>(n);
    }
}

std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) / align * align;
}

std::string
packAlloc(std::uint64_t offset, std::uint64_t size)
{
    std::string payload(16, '\0');
    std::memcpy(payload.data(), &offset, 8);
    std::memcpy(payload.data() + 8, &size, 8);
    return payload;
}

} // namespace

std::unique_ptr<Arena>
Arena::open(const std::string &dir, const Options &options)
{
    if (!util::ensureDir(dir))
        throw std::runtime_error("arena: cannot create directory '" +
                                 dir + "'");
    std::unique_ptr<Arena> arena(new Arena());
    arena->dir_ = dir;
    arena->fail_after_ = options.fail_after_log_bytes;

    struct stat st;
    const std::string log_path = dir + "/arena.log";
    if (::stat(log_path.c_str(), &st) == 0)
        arena->recover(options);
    else
        arena->createFiles(options);
    return arena;
}

Arena::~Arena()
{
    // A crash-consistent store must be correct with *no* shutdown path
    // at all (that is the whole point), so the destructor only releases
    // resources.
    if (data_ != nullptr)
        ::munmap(data_, data_capacity_);
    if (log_fd_ >= 0)
        ::close(log_fd_);
}

void
Arena::mapData(std::size_t capacity)
{
    const std::string path = dir_ + "/arena.dat";
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0)
        throw std::runtime_error("arena: cannot open '" + path +
                                 "': " + std::strerror(errno));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("arena: cannot stat '" + path +
                                 "': " + std::strerror(err));
    }
    // Only ever extend: truncating an existing file downward would
    // destroy committed block contents when a reopen passes a smaller
    // data_capacity than a prior session used.
    if (static_cast<std::uint64_t>(st.st_size) < capacity &&
        ::ftruncate(fd, static_cast<off_t>(capacity)) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("arena: cannot size '" + path +
                                 "': " + std::strerror(err));
    }
    void *map = ::mmap(nullptr, capacity, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd); // the mapping keeps the file alive
    if (map == MAP_FAILED)
        throw std::runtime_error("arena: mmap of '" + path +
                                 "' failed: " + std::strerror(errno));
    data_ = static_cast<std::uint8_t *>(map);
    data_capacity_ = capacity;
}

void
Arena::createFiles(const Options &options)
{
    const std::size_t capacity =
        alignUp(std::max<std::size_t>(options.data_capacity, 4096),
                4096);
    mapData(capacity);

    FileHeader data_header;
    data_header.magic = kDataMagic;
    data_header.version = kFormatVersion;
    data_header.capacity = capacity;
    data_header.crc = headerCrc(data_header);
    std::memcpy(data_, &data_header, sizeof data_header);
    bump_ = alignUp(sizeof data_header, kBlockAlign);

    const std::string log_path = dir_ + "/arena.log";
    log_fd_ = ::open(log_path.c_str(),
                     O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (log_fd_ < 0)
        throw std::runtime_error("arena: cannot create '" + log_path +
                                 "': " + std::strerror(errno));
    FileHeader log_header;
    log_header.magic = kLogMagic;
    log_header.version = kFormatVersion;
    log_header.crc = headerCrc(log_header);
    writeAll(log_fd_, &log_header, sizeof log_header, 0, "log header");
    log_end_ = sizeof log_header;
    if (::fsync(log_fd_) != 0)
        util::warn("arena: fsync of fresh log failed: %s",
                   std::strerror(errno));
}

void
Arena::recover(const Options &options)
{
    const auto t0 = std::chrono::steady_clock::now();

    // ---- data heap: validate the header, map the stored capacity -----
    const std::string dat_path = dir_ + "/arena.dat";
    FileHeader data_header;
    {
        const int fd = ::open(dat_path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd < 0)
            throw std::runtime_error("arena: cannot open '" + dat_path +
                                     "': " + std::strerror(errno));
        const ssize_t n =
            ::pread(fd, &data_header, sizeof data_header, 0);
        ::close(fd);
        if (n != static_cast<ssize_t>(sizeof data_header) ||
            data_header.magic != kDataMagic ||
            data_header.version != kFormatVersion ||
            data_header.crc != headerCrc(data_header))
            throw std::runtime_error("arena: '" + dat_path +
                                     "' has a corrupt header");
    }
    mapData(static_cast<std::size_t>(
        std::max<std::uint64_t>(data_header.capacity,
                                options.data_capacity)));
    if (data_capacity_ > data_header.capacity) {
        // Keep the stored capacity in step with the file, so a later
        // reopen with a smaller Options::data_capacity still maps (and
        // never shrinks past) everything this session may bump into.
        data_header.capacity = data_capacity_;
        data_header.crc = headerCrc(data_header);
        std::memcpy(data_, &data_header, sizeof data_header);
    }

    // ---- log: read fully, then replay to the last consistent epoch ---
    const std::string log_path = dir_ + "/arena.log";
    log_fd_ = ::open(log_path.c_str(), O_RDWR | O_CLOEXEC);
    if (log_fd_ < 0)
        throw std::runtime_error("arena: cannot open '" + log_path +
                                 "': " + std::strerror(errno));
    struct stat st;
    if (::fstat(log_fd_, &st) != 0)
        throw std::runtime_error("arena: cannot stat '" + log_path +
                                 "': " + std::strerror(errno));
    std::vector<char> log(static_cast<std::size_t>(st.st_size));
    std::size_t got = 0;
    while (got < log.size()) {
        const ssize_t n = ::pread(log_fd_, log.data() + got,
                                  log.size() - got,
                                  static_cast<off_t>(got));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error("arena: cannot read '" + log_path +
                                     "': " + std::strerror(errno));
        }
        if (n == 0)
            break;
        got += static_cast<std::size_t>(n);
    }
    log.resize(got);

    FileHeader log_header;
    if (log.size() < sizeof log_header)
        throw std::runtime_error("arena: '" + log_path +
                                 "' is truncated below its header");
    std::memcpy(&log_header, log.data(), sizeof log_header);
    if (log_header.magic != kLogMagic ||
        log_header.version != kFormatVersion ||
        log_header.crc != headerCrc(log_header))
        throw std::runtime_error("arena: '" + log_path +
                                 "' has a corrupt header");

    // Staged view: operations of the epoch currently being replayed.
    // A commit record folds them in; a torn or invalid record (or EOF)
    // discards them — the log is consistent only up to the last commit.
    std::map<std::string, Block> staged_blocks = blocks_;
    std::map<std::string, std::string> staged_kv = kv_;
    std::uint64_t offset = sizeof log_header;
    std::uint64_t committed_end = offset;
    std::uint64_t replayed_at_commit = 0;
    bool replay_ok = true;

    while (replay_ok && offset + sizeof(RecordHeader) <= log.size()) {
        RecordHeader rec;
        std::memcpy(&rec, log.data() + offset, sizeof rec);
        if (rec.magic != kRecordMagic ||
            rec.header_crc != recordHeaderCrc(rec))
            break;
        const std::uint64_t body_len =
            static_cast<std::uint64_t>(rec.key_len) + rec.payload_len;
        if (offset + sizeof rec + body_len > log.size())
            break; // torn tail: record body never fully landed
        const char *key_ptr = log.data() + offset + sizeof rec;
        if (util::crc32(key_ptr, static_cast<std::size_t>(body_len)) !=
            rec.body_crc)
            break;
        if (rec.epoch != epoch_ + 1)
            break; // stale or corrupt epoch stamp
        const std::string key(key_ptr, rec.key_len);
        const std::string payload(key_ptr + rec.key_len,
                                  rec.payload_len);
        ++stats_.replayed_records;
        switch (rec.type) {
          case kRecPut:
            staged_kv[key] = payload;
            break;
          case kRecErase:
            staged_kv.erase(key);
            break;
          case kRecAlloc: {
            if (payload.size() != 16)
                break;
            Block block;
            std::memcpy(&block.offset, payload.data(), 8);
            std::memcpy(&block.size, payload.data() + 8, 8);
            // An extent outside the mapping would make blockData()
            // hand out pointers past it (SIGBUS). The header capacity
            // tracks every extension, so this only trips on corrupt
            // records — stop replay at the last sealed epoch, exactly
            // as for a failed CRC.
            if (block.offset < sizeof(FileHeader) ||
                block.size > data_capacity_ ||
                block.offset > data_capacity_ - block.size) {
                replay_ok = false;
                break;
            }
            staged_blocks[key] = block;
            break;
          }
          case kRecFree:
            staged_blocks.erase(key);
            break;
          case kRecCommit:
            blocks_ = staged_blocks;
            kv_ = staged_kv;
            ++epoch_;
            ++stats_.replayed_commits;
            committed_end = offset + sizeof rec + body_len;
            replayed_at_commit = stats_.replayed_records;
            break;
          default:
            break; // unknown types are skipped, not fatal
        }
        offset += sizeof rec + body_len;
    }

    // Only records that made it into a sealed epoch count as replayed.
    stats_.replayed_records = replayed_at_commit;
    stats_.discarded_tail_bytes = log.size() - committed_end;
    if (stats_.discarded_tail_bytes > 0) {
        if (::ftruncate(log_fd_,
                        static_cast<off_t>(committed_end)) != 0)
            util::warn("arena: could not truncate torn log tail: %s",
                       std::strerror(errno));
    }
    log_end_ = committed_end;

    bump_ = alignUp(sizeof(FileHeader), kBlockAlign);
    for (const auto &[name, block] : blocks_)
        bump_ = std::max(bump_, alignUp(block.offset + block.size,
                                        kBlockAlign));

    stats_.recovered = true;
    stats_.recovery_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
}

bool
Arena::appendRecord(std::uint16_t type, const std::string &key,
                    const std::string &payload)
{
    if (failed_)
        return false;

    RecordHeader rec;
    rec.type = type;
    rec.epoch = epoch_ + 1;
    rec.key_len = static_cast<std::uint32_t>(key.size());
    rec.payload_len = static_cast<std::uint32_t>(payload.size());
    std::uint32_t crc = util::crc32(key.data(), key.size());
    crc = util::crc32(crc, payload.data(), payload.size());
    rec.body_crc = crc;
    rec.header_crc = recordHeaderCrc(rec);

    std::string buf;
    buf.reserve(sizeof rec + key.size() + payload.size());
    buf.append(reinterpret_cast<const char *>(&rec), sizeof rec);
    buf += key;
    buf += payload;

    if (fail_after_ > 0) {
        const std::uint64_t room = fail_after_ > stats_.log_bytes
                                       ? fail_after_ - stats_.log_bytes
                                       : 0;
        if (buf.size() > room) {
            // The injected crash point lands inside this record: the
            // prefix reaches the file (a genuinely torn tail for the
            // recovery path to detect), the rest of the session writes
            // nothing.
            if (room > 0)
                writeAll(log_fd_, buf.data(), room, log_end_,
                         "torn record");
            stats_.log_bytes += room;
            failed_ = true;
            return false;
        }
    }

    writeAll(log_fd_, buf.data(), buf.size(), log_end_, "log record");
    log_end_ += buf.size();
    stats_.log_bytes += buf.size();
    ++stats_.log_records;
    return true;
}

std::uint8_t *
Arena::alloc(const std::string &name, std::size_t bytes, bool *existed)
{
    if (existed != nullptr)
        *existed = false;
    if (name.empty())
        throw std::runtime_error("arena: block name must be non-empty");
    const auto it = blocks_.find(name);
    if (it != blocks_.end()) {
        if (it->second.size == bytes) {
            if (existed != nullptr)
                *existed = true;
            return data_ + it->second.offset;
        }
        freeBlock(name);
    }
    const std::uint64_t offset = bump_;
    if (offset + bytes > data_capacity_)
        throw std::runtime_error(
            "arena: data heap exhausted allocating '" + name + "' (" +
            std::to_string(bytes) + " B; capacity " +
            std::to_string(data_capacity_) + " B)");
    bump_ = alignUp(offset + bytes, kBlockAlign);
    // Fresh blocks are contractually zero-filled, and the sparse file
    // alone does not guarantee it: recovery recomputes bump_ from
    // committed blocks only, so this extent may overlay pages written
    // through a block that was freed or never committed.
    std::memset(data_ + offset, 0, bytes);
    blocks_[name] = Block{offset, bytes};
    appendRecord(kRecAlloc, name, packAlloc(offset, bytes));
    return data_ + offset;
}

bool
Arena::hasBlock(const std::string &name) const
{
    return blocks_.count(name) > 0;
}

std::size_t
Arena::blockSize(const std::string &name) const
{
    const auto it = blocks_.find(name);
    return it == blocks_.end()
               ? 0
               : static_cast<std::size_t>(it->second.size);
}

std::uint8_t *
Arena::blockData(const std::string &name)
{
    const auto it = blocks_.find(name);
    if (it == blocks_.end())
        throw std::runtime_error("arena: no block named '" + name + "'");
    return data_ + it->second.offset;
}

std::uint8_t *
Arena::grow(const std::string &name, std::size_t bytes)
{
    const auto it = blocks_.find(name);
    if (it == blocks_.end())
        return alloc(name, bytes);
    const Block old = it->second;
    if (bytes <= old.size)
        return data_ + old.offset;
    const std::uint64_t offset = bump_;
    if (offset + bytes > data_capacity_)
        throw std::runtime_error("arena: data heap exhausted growing '" +
                                 name + "'");
    bump_ = alignUp(offset + bytes, kBlockAlign);
    std::memcpy(data_ + offset, data_ + old.offset,
                static_cast<std::size_t>(old.size));
    // The grown tail is fresh space and must honor the zero-fill
    // contract (see alloc()).
    std::memset(data_ + offset + old.size, 0,
                bytes - static_cast<std::size_t>(old.size));
    blocks_[name] = Block{offset, bytes};
    appendRecord(kRecAlloc, name, packAlloc(offset, bytes));
    return data_ + offset;
}

void
Arena::freeBlock(const std::string &name)
{
    if (blocks_.erase(name) > 0)
        appendRecord(kRecFree, name, "");
}

void
Arena::put(const std::string &key, const std::string &value)
{
    kv_[key] = value;
    appendRecord(kRecPut, key, value);
}

void
Arena::erase(const std::string &key)
{
    if (kv_.erase(key) > 0)
        appendRecord(kRecErase, key, "");
}

bool
Arena::get(const std::string &key, std::string *value) const
{
    const auto it = kv_.find(key);
    if (it == kv_.end())
        return false;
    if (value != nullptr)
        *value = it->second;
    return true;
}

std::vector<std::string>
Arena::keys(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (const auto &[key, value] : kv_) {
        if (key.rfind(prefix, 0) == 0)
            out.push_back(key);
    }
    return out;
}

bool
Arena::commit()
{
    if (!appendRecord(kRecCommit, "", ""))
        return false;
    if (::fsync(log_fd_) != 0) {
        // The commit record may never reach disk; reporting the epoch
        // as sealed would let callers (SweepJournal::record) treat a
        // possibly-lost commit as durable. Kill the log like an
        // injected fault: nothing appended from here on persists.
        util::warn("arena: fsync failed, log is no longer durable: %s",
                   std::strerror(errno));
        failed_ = true;
        return false;
    }
    ++epoch_;
    ++stats_.commits;
    return true;
}

void
Arena::syncData()
{
    if (data_ != nullptr &&
        ::msync(data_, data_capacity_, MS_SYNC) != 0)
        util::warn("arena: msync failed: %s", std::strerror(errno));
}

void
publishArenaStats(const ArenaStats &stats, obs::MetricsRegistry &registry)
{
    registry.counter(obs::kArenaLogBytes).inc(stats.log_bytes);
    registry.counter(obs::kArenaLogRecords).inc(stats.log_records);
    registry.counter(obs::kArenaCommits).inc(stats.commits);
    registry.counter(obs::kArenaReplayedRecords)
        .inc(stats.replayed_records);
    registry.counter(obs::kArenaDiscardedTailBytes)
        .inc(stats.discarded_tail_bytes);
    registry.counter(obs::kArenaRecoveries).inc(stats.recovered ? 1 : 0);
    registry.gauge(obs::kArenaRecoveryMs).add(stats.recovery_ms);
}

} // namespace inc::arena
