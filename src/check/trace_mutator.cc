#include "check/trace_mutator.h"

#include <algorithm>
#include <sstream>

namespace inc::check
{

std::vector<MutationOp>
TraceMutator::randomOps(util::Rng &rng, std::size_t samples, int count)
{
    std::vector<MutationOp> ops;
    if (samples < 16 || count <= 0)
        return ops;
    ops.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        MutationOp op;
        op.kind = static_cast<MutationOp::Kind>(rng.nextBounded(5));
        switch (op.kind) {
          case MutationOp::Kind::outage:
            // Sub-ms to tens-of-ms blackout (the paper's Fig. 3 range).
            op.len = static_cast<std::size_t>(rng.nextRange(4, 400));
            break;
          case MutationOp::Kind::micro_outage:
            // Shorter than the restore sequence fits in.
            op.len = static_cast<std::size_t>(rng.nextRange(1, 3));
            break;
          case MutationOp::Kind::double_outage:
            // Two blackouts with a 1-2 sample breather: the second hits
            // while the system is mid-restore or barely restarted.
            op.len = static_cast<std::size_t>(rng.nextRange(8, 120));
            op.amount = static_cast<double>(rng.nextRange(1, 2));
            break;
          case MutationOp::Kind::charge_cliff:
            // A generous ramp parks the capacitor right at the backup
            // threshold, then power vanishes on a single sample edge.
            op.len = static_cast<std::size_t>(rng.nextRange(20, 200));
            op.amount = static_cast<double>(rng.nextRange(300, 1800));
            break;
          case MutationOp::Kind::scale_segment:
            op.len = static_cast<std::size_t>(rng.nextRange(50, 500));
            op.amount = 0.25 + rng.nextDouble() * 2.0;
            break;
        }
        op.len = std::min(op.len, samples / 2);
        op.pos = static_cast<std::size_t>(
            rng.nextBounded(samples - op.len));
        ops.push_back(op);
    }
    return ops;
}

trace::PowerTrace
TraceMutator::apply(const trace::PowerTrace &base,
                    const std::vector<MutationOp> &ops)
{
    std::vector<double> s = base.samples();
    for (const MutationOp &op : ops) {
        if (op.pos >= s.size())
            continue;
        const std::size_t end = std::min(op.pos + op.len, s.size());
        switch (op.kind) {
          case MutationOp::Kind::outage:
          case MutationOp::Kind::micro_outage:
            std::fill(s.begin() + static_cast<std::ptrdiff_t>(op.pos),
                      s.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
            break;
          case MutationOp::Kind::double_outage: {
            const auto gap = static_cast<std::size_t>(
                std::max(1.0, op.amount));
            const std::size_t half = (end - op.pos) / 2;
            const std::size_t first_end =
                std::min(op.pos + half, s.size());
            const std::size_t second_start =
                std::min(first_end + gap, s.size());
            std::fill(s.begin() + static_cast<std::ptrdiff_t>(op.pos),
                      s.begin() + static_cast<std::ptrdiff_t>(first_end),
                      0.0);
            std::fill(
                s.begin() + static_cast<std::ptrdiff_t>(second_start),
                s.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
            break;
          }
          case MutationOp::Kind::charge_cliff: {
            // Linear ramp up to `amount` uW across the window, then a
            // hard zero edge for a quarter of the window.
            const std::size_t ramp_len = end - op.pos;
            for (std::size_t i = op.pos; i < end; ++i) {
                const double f = static_cast<double>(i - op.pos + 1) /
                                 static_cast<double>(ramp_len);
                s[i] = op.amount * f;
            }
            const std::size_t zero_end =
                std::min(end + ramp_len / 4 + 1, s.size());
            std::fill(s.begin() + static_cast<std::ptrdiff_t>(end),
                      s.begin() + static_cast<std::ptrdiff_t>(zero_end),
                      0.0);
            break;
          }
          case MutationOp::Kind::scale_segment:
            for (std::size_t i = op.pos; i < end; ++i)
                s[i] *= op.amount;
            break;
        }
    }
    return trace::PowerTrace(std::move(s), base.name() + "+mut");
}

std::string
TraceMutator::serialize(const std::vector<MutationOp> &ops)
{
    std::ostringstream out;
    out.precision(17); // amounts must round-trip bit-exactly for replay
    for (const MutationOp &op : ops) {
        out << static_cast<int>(op.kind) << " " << op.pos << " "
            << op.len << " " << op.amount << "\n";
    }
    return out.str();
}

std::vector<MutationOp>
TraceMutator::deserialize(const std::string &text)
{
    std::vector<MutationOp> ops;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        int kind = 0;
        MutationOp op;
        if (fields >> kind >> op.pos >> op.len >> op.amount) {
            op.kind = static_cast<MutationOp::Kind>(kind);
            ops.push_back(op);
        }
    }
    return ops;
}

} // namespace inc::check
