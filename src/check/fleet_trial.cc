#include "check/fleet_trial.h"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "arena/arena.h"
#include "fleet/folder.h"
#include "fleet/protocol.h"
#include "runner/journal.h"
#include "runner/shard.h"
#include "runner/sweep.h"
#include "sim/result_io.h"
#include "trace/trace_generator.h"
#include "util/rng.h"

namespace inc::check
{

namespace
{

namespace fs = std::filesystem;

Divergence
fleetDivergence(const std::string &invariant, const std::string &detail)
{
    Divergence d;
    d.violated = true;
    d.invariant = invariant;
    d.detail = detail;
    return d;
}

std::size_t
firstDiff(const std::string &a, const std::string &b)
{
    std::size_t byte = 0;
    while (byte < std::min(a.size(), b.size()) && a[byte] == b[byte])
        ++byte;
    return byte;
}

/** Scratch directory unique to this (process, trial). */
std::string
trialDir(const TrialSpec &spec)
{
    std::ostringstream name;
    name << "inc-fleet-fuzz-" << ::getpid() << "-" << spec.seed << "-"
         << spec.index;
    return (fs::temp_directory_path() / name.str()).string();
}

/** The fuzzed mini-campaign: grid shape, metrics collection and the
 *  optional injected failure are all drawn from the trial stream. */
struct MiniCampaign
{
    runner::SweepSpec sweep;
    bool inject_failure = false;
    std::size_t victim = 0;
};

MiniCampaign
buildCampaign(const TrialSpec &spec, util::Rng &t)
{
    MiniCampaign c;
    runner::SweepSpec &sw = c.sweep;
    sw.kernels = t.nextBounded(2) == 0
                     ? std::vector<std::string>{"sobel"}
                     : std::vector<std::string>{"sobel", "median"};
    trace::TraceGenerator gen(trace::paperProfile(spec.profile),
                              spec.seed);
    sw.traces = {gen.generate(1200)};
    const std::uint64_t seed = spec.program_seed | 1;
    sw.variants = {
        runner::ConfigVariant{"base",
                              [seed](const std::string &) {
                                  sim::SimConfig cfg;
                                  cfg.seed = seed;
                                  return cfg;
                              }},
    };
    if (t.nextBounded(2) == 0) {
        sw.variants.push_back(runner::ConfigVariant{
            "alt", [seed](const std::string &) {
                sim::SimConfig cfg;
                cfg.seed = seed + 1;
                cfg.bits.mode = approx::ApproxMode::dynamic;
                cfg.bits.min_bits = 4;
                return cfg;
            }});
    }
    sw.master_seed = spec.seed;
    sw.jobs = 1;
    sw.collect_metrics = t.nextBounded(4) != 0;

    const std::size_t num_jobs =
        sw.kernels.size() * sw.traces.size() * sw.variants.size();
    c.inject_failure = t.nextBounded(4) == 0;
    c.victim = t.nextBounded(num_jobs);
    return c;
}

std::unique_ptr<runner::SweepRunner>
makeRunner(const MiniCampaign &campaign)
{
    if (!campaign.inject_failure)
        return std::make_unique<runner::SweepRunner>(campaign.sweep);
    const std::size_t victim = campaign.victim;
    runner::SweepRunner::JobFn body =
        [victim](const runner::JobSpec &job,
                 const trace::PowerTrace &trace,
                 util::Rng &rng) -> sim::SimResult {
        if (job.index == victim)
            throw std::runtime_error("injected fleet failure");
        return runner::SweepRunner::simJob(job, trace, rng);
    };
    return std::make_unique<runner::SweepRunner>(campaign.sweep, body);
}

/** Run jobs [begin, end) and return one encoded RESULT frame per job,
 *  in delivery order. */
std::vector<std::string>
runShardFrames(const MiniCampaign &campaign, std::size_t begin,
               std::size_t end, runner::SweepJournal *journal)
{
    std::vector<std::string> frames;
    std::unique_ptr<runner::SweepRunner> runner = makeRunner(campaign);
    runner->setJobRange(begin, end);
    if (journal)
        runner->setJournal(journal);
    runner->setDeliveryHook([&frames](const runner::JobResult &jr) {
        frames.push_back(fleet::encodeResult(jr));
    });
    (void)runner->run();
    return frames;
}

/** The coordinator's merge path, minus the sockets: interleave the
 *  shards' frame streams in a fuzzed order, re-fragment into fuzzed
 *  chunk sizes through a MessageReader, decode, fold. */
Divergence
foldFrames(const std::vector<std::vector<std::string>> &shard_frames,
           const std::vector<runner::JobSpec> &jobs, util::Rng &t,
           runner::SweepReport *out)
{
    std::string stream;
    std::vector<std::size_t> cursor(shard_frames.size(), 0);
    while (true) {
        std::vector<std::size_t> live;
        for (std::size_t s = 0; s < shard_frames.size(); ++s) {
            if (cursor[s] < shard_frames[s].size())
                live.push_back(s);
        }
        if (live.empty())
            break;
        const std::size_t s = live[t.nextBounded(live.size())];
        stream += shard_frames[s][cursor[s]++];
    }

    fleet::ResultFolder folder(jobs);
    fleet::MessageReader reader;
    std::size_t offset = 0;
    while (true) {
        while (true) {
            fleet::Message message;
            std::string error;
            if (!reader.next(&message, &error)) {
                if (!error.empty())
                    return fleetDivergence("fleet_frame", error);
                break;
            }
            fleet::DecodedResult decoded;
            std::string error2;
            if (!fleet::decodeResult(message, &decoded, &error2) ||
                !folder.fold(decoded, &error2))
                return fleetDivergence("fleet_fold", error2);
        }
        if (offset >= stream.size())
            break;
        const std::size_t chunk = std::min(
            stream.size() - offset,
            static_cast<std::size_t>(1 + t.nextBounded(97)));
        reader.feed(stream.data() + offset, chunk);
        offset += chunk;
    }

    if (!folder.complete())
        return fleetDivergence(
            "fleet_fold", "only " +
                              std::to_string(folder.filledCount()) +
                              " of " + std::to_string(jobs.size()) +
                              " jobs folded");
    *out = folder.takeReport(0.0, 1);
    return {};
}

/** Byte-compare the folded report against the un-sharded oracle on
 *  the fleet determinism surface. */
Divergence
compareToOracle(const runner::SweepReport &golden,
                const runner::SweepReport &folded)
{
    if (golden.results.size() != folded.results.size())
        return fleetDivergence("fleet_result",
                               "folded report has " +
                                   std::to_string(folded.results.size()) +
                                   " jobs, oracle has " +
                                   std::to_string(golden.results.size()));
    for (std::size_t i = 0; i < golden.results.size(); ++i) {
        const runner::JobResult &want = golden.results[i];
        const runner::JobResult &got = folded.results[i];
        if (want.ok != got.ok || want.attempts != got.attempts ||
            want.error != got.error)
            return fleetDivergence(
                "fleet_result",
                "job " + std::to_string(i) +
                    " status differs from oracle (ok " +
                    std::to_string(want.ok) + "/" +
                    std::to_string(got.ok) + ", attempts " +
                    std::to_string(want.attempts) + "/" +
                    std::to_string(got.attempts) + ")");
        if (!want.ok)
            continue;
        const std::string want_text =
            sim::serializeResult(want.result);
        const std::string got_text = sim::serializeResult(got.result);
        if (want_text != got_text) {
            Divergence d = fleetDivergence(
                "fleet_result",
                "job " + std::to_string(i) +
                    " result differs from oracle at byte " +
                    std::to_string(firstDiff(want_text, got_text)));
            d.byte = firstDiff(want_text, got_text);
            return d;
        }
    }
    const std::string want_merged = golden.mergedMetrics().toJson();
    const std::string got_merged = folded.mergedMetrics().toJson();
    if (want_merged != got_merged) {
        Divergence d = fleetDivergence(
            "fleet_metrics",
            "folded merged metrics differ from oracle at byte " +
                std::to_string(firstDiff(want_merged, got_merged)));
        d.byte = firstDiff(want_merged, got_merged);
        return d;
    }
    return {};
}

} // namespace

Divergence
runFleetMergeTrial(const TrialSpec &spec)
{
    const std::string dir = trialDir(spec);
    std::error_code ec;
    fs::remove_all(dir, ec);

    Divergence result;
    try {
        util::Rng t(spec.seed ^ 0xf1ee7ULL);
        const MiniCampaign campaign = buildCampaign(spec, t);

        const runner::SweepReport golden =
            makeRunner(campaign)->run();

        const std::vector<runner::JobSpec> jobs =
            runner::expandSweep(campaign.sweep);
        const std::vector<runner::ShardRange> plan =
            runner::planShards(jobs.size(), 2);

        std::vector<std::vector<std::string>> shard_frames;
        const bool journal_shard0 = spec.index % 3 == 0;
        for (const runner::ShardRange &shard : plan) {
            if (shard.id == 0 && journal_shard0) {
                // The reassigned-shard warm restart: journal the shard,
                // reopen the arena, replay it purely from the journal.
                const std::string fp =
                    runner::SweepJournal::fingerprint(
                        campaign.sweep, jobs, "fleet-fuzz");
                std::vector<std::string> fresh;
                {
                    std::unique_ptr<arena::Arena> a =
                        arena::Arena::open(dir);
                    runner::SweepJournal journal(a.get());
                    journal.bind(fp, jobs.size());
                    fresh = runShardFrames(campaign, shard.begin,
                                           shard.end, &journal);
                }
                std::unique_ptr<arena::Arena> a =
                    arena::Arena::open(dir);
                runner::SweepJournal journal(a.get());
                if (!journal.bound() ||
                    journal.boundFingerprint() != fp) {
                    result = fleetDivergence(
                        "fleet_replay",
                        "shard journal lost its campaign binding "
                        "across recovery");
                    break;
                }
                const std::vector<std::string> replayed =
                    runShardFrames(campaign, shard.begin, shard.end,
                                   &journal);
                if (replayed != fresh) {
                    result = fleetDivergence(
                        "fleet_replay",
                        "journal-replayed shard frames differ from "
                        "the fresh run's");
                    break;
                }
                shard_frames.push_back(replayed);
            } else {
                shard_frames.push_back(runShardFrames(
                    campaign, shard.begin, shard.end, nullptr));
            }
        }

        if (!result.violated) {
            runner::SweepReport folded;
            result = foldFrames(shard_frames, jobs, t, &folded);
            if (!result.violated)
                result = compareToOracle(golden, folded);
        }
    } catch (const std::exception &e) {
        result = fleetDivergence("fleet_exception", e.what());
    }

    fs::remove_all(dir, ec);
    return result;
}

} // namespace inc::check
