#include "check/recovery_trial.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "arena/arena.h"
#include "runner/journal.h"
#include "runner/sweep.h"
#include "sim/result_io.h"
#include "trace/trace_generator.h"
#include "util/rng.h"

namespace inc::check
{

namespace
{

namespace fs = std::filesystem;

constexpr int kNumBlocks = 5;
constexpr int kNumKeys = 7;
constexpr int kScriptOps = 90;

std::string
blockName(int i)
{
    char buf[8];
    std::snprintf(buf, sizeof buf, "b%d", i);
    return buf;
}

std::string
keyName(int i)
{
    char buf[8];
    std::snprintf(buf, sizeof buf, "k%d", i);
    return buf;
}

/**
 * Crash-free oracle of the arena, mirrored op-by-op alongside the real
 * one. Block contents are tracked per *generation* (a fresh extent from
 * an alloc or grow starts a new generation): the recovered content of a
 * committed block must equal its committed generation's mirror as it
 * stands at the crash instant — later data writes only ever target the
 * newest generation, so a superseded extent is frozen, while writes
 * into the still-current extent persist (NVM semantics) even though the
 * index mutations around them roll back.
 */
struct Shadow
{
    struct State
    {
        std::map<std::string, std::string> kv;
        std::map<std::string, int> block_gen;
        std::map<std::string, std::size_t> block_size;
    };

    State live;
    State committed;
    /** name -> generation -> content mirror */
    std::map<std::string, std::map<int, std::vector<std::uint8_t>>>
        content;
    std::uint64_t commits_ok = 0;
    int next_gen = 1;
};

/**
 * Run the deterministic op script. The rng draw sequence is identical
 * in the dry and faulted runs (no draw depends on arena outcomes); the
 * faulted run simply stops at the crash instant — the first op after
 * which the injected fault has tripped — exactly as a killed process
 * would.
 */
void
runScript(arena::Arena *a, util::Rng rng, Shadow *sh)
{
    for (int i = 0; i < kScriptOps; ++i) {
        const std::uint64_t op = rng.nextBounded(100);
        const int bi = static_cast<int>(rng.nextBounded(kNumBlocks));
        const int ki = static_cast<int>(rng.nextBounded(kNumKeys));
        const std::uint64_t aux = rng.next();
        const std::string bname = blockName(bi);
        const std::string kname = keyName(ki);

        if (op < 25) { // put
            std::string value;
            const std::size_t len = 1 + aux % 24;
            for (std::size_t j = 0; j < len; ++j)
                value.push_back(static_cast<char>(
                    'a' + (aux >> (j % 48)) % 26));
            a->put(kname, value);
            sh->live.kv[kname] = value;
        } else if (op < 35) { // erase
            a->erase(kname);
            sh->live.kv.erase(kname);
        } else if (op < 55) { // alloc (get-or-create / size change)
            const std::size_t size = 64 * (1 + aux % 6);
            a->alloc(bname, size);
            const auto it = sh->live.block_gen.find(bname);
            if (it == sh->live.block_gen.end() ||
                sh->live.block_size[bname] != size) {
                const int gen = sh->next_gen++;
                sh->live.block_gen[bname] = gen;
                sh->live.block_size[bname] = size;
                sh->content[bname][gen].assign(size, 0);
            }
        } else if (op < 63) { // grow
            if (sh->live.block_gen.count(bname)) {
                const std::size_t old_size =
                    sh->live.block_size[bname];
                const std::size_t size = old_size + 64 * (1 + aux % 4);
                a->grow(bname, size);
                const int old_gen = sh->live.block_gen[bname];
                const int gen = sh->next_gen++;
                std::vector<std::uint8_t> copy =
                    sh->content[bname][old_gen];
                copy.resize(size, 0);
                sh->live.block_gen[bname] = gen;
                sh->live.block_size[bname] = size;
                sh->content[bname][gen] = std::move(copy);
            }
        } else if (op < 70) { // free
            if (sh->live.block_gen.count(bname)) {
                a->freeBlock(bname);
                sh->live.block_gen.erase(bname);
                sh->live.block_size.erase(bname);
            }
        } else if (op < 88) { // data write into the live extent
            if (sh->live.block_gen.count(bname)) {
                const std::size_t size = sh->live.block_size[bname];
                std::uint8_t *p = a->blockData(bname);
                std::vector<std::uint8_t> &mirror =
                    sh->content[bname][sh->live.block_gen[bname]];
                const std::size_t off = aux % size;
                const std::size_t len =
                    std::min(size - off,
                             static_cast<std::size_t>(
                                 1 + (aux >> 8) % 32));
                const auto pat = static_cast<std::uint8_t>(aux >> 16);
                for (std::size_t j = 0; j < len; ++j) {
                    p[off + j] = static_cast<std::uint8_t>(pat + j);
                    mirror[off + j] =
                        static_cast<std::uint8_t>(pat + j);
                }
            }
        } else { // commit
            if (a->commit()) {
                sh->committed = sh->live;
                ++sh->commits_ok;
            }
        }

        if (a->failed())
            return; // the simulated crash instant: the process is dead
    }
}

Divergence
arenaDivergence(const std::string &invariant, const std::string &detail)
{
    Divergence d;
    d.violated = true;
    d.invariant = invariant;
    d.detail = detail;
    return d;
}

/** Verify a reopened arena against the shadow's committed state. */
Divergence
verifyRecovered(arena::Arena &a, const Shadow &sh,
                std::uint64_t fault_at)
{
    std::ostringstream ctx;
    ctx << " (fault_at=" << fault_at
        << " commits_ok=" << sh.commits_ok << ")";

    if (a.epoch() != sh.commits_ok)
        return arenaDivergence(
            "arena_epoch",
            "recovered epoch " + std::to_string(a.epoch()) +
                " != successful commits " +
                std::to_string(sh.commits_ok) + ctx.str());
    if (a.stats().replayed_commits != sh.commits_ok)
        return arenaDivergence(
            "arena_replay",
            "replayed_commits " +
                std::to_string(a.stats().replayed_commits) +
                " != successful commits " +
                std::to_string(sh.commits_ok) + ctx.str());

    for (int i = 0; i < kNumKeys; ++i) {
        const std::string k = keyName(i);
        const auto want = sh.committed.kv.find(k);
        std::string got;
        const bool have = a.get(k, &got);
        if (want == sh.committed.kv.end()) {
            if (have)
                return arenaDivergence(
                    "arena_kv", "key '" + k +
                                    "' should have rolled back" +
                                    ctx.str());
        } else if (!have || got != want->second) {
            return arenaDivergence(
                "arena_kv",
                "key '" + k + "' recovered to '" +
                    (have ? got : std::string("<absent>")) +
                    "' expected '" + want->second + "'" + ctx.str());
        }
    }

    for (int i = 0; i < kNumBlocks; ++i) {
        const std::string b = blockName(i);
        const auto want = sh.committed.block_gen.find(b);
        if (want == sh.committed.block_gen.end()) {
            if (a.hasBlock(b))
                return arenaDivergence(
                    "arena_block",
                    "block '" + b + "' should have rolled back" +
                        ctx.str());
            continue;
        }
        const std::size_t want_size = sh.committed.block_size.at(b);
        if (!a.hasBlock(b) || a.blockSize(b) != want_size)
            return arenaDivergence(
                "arena_block",
                "block '" + b + "' recovered size " +
                    std::to_string(a.blockSize(b)) + " expected " +
                    std::to_string(want_size) + ctx.str());
        const std::vector<std::uint8_t> &mirror =
            sh.content.at(b).at(want->second);
        if (std::memcmp(a.blockData(b), mirror.data(), want_size) != 0) {
            std::size_t byte = 0;
            while (byte < want_size &&
                   a.blockData(b)[byte] == mirror[byte])
                ++byte;
            Divergence d = arenaDivergence(
                "arena_content",
                "block '" + b + "' content differs at byte " +
                    std::to_string(byte) + ctx.str());
            d.byte = byte;
            d.expected = mirror[byte];
            d.actual = a.blockData(b)[byte];
            return d;
        }
    }
    return {};
}

/** Scratch directory unique to this (process, trial). */
std::string
trialDir(const TrialSpec &spec, const char *which)
{
    std::ostringstream name;
    name << "inc-arena-fuzz-" << ::getpid() << "-" << spec.seed << "-"
         << spec.index << "-" << which;
    return (fs::temp_directory_path() / name.str()).string();
}

/**
 * Warm-restart byte-identity: an uninterrupted mini-sweep (golden) vs
 * the same campaign journaled one job deep, recovered from disk, and
 * resumed. Per-job serialized results and the merged metrics JSON must
 * match byte-for-byte.
 */
Divergence
runSweepResumeCheck(const TrialSpec &spec, const std::string &dir)
{
    runner::SweepSpec sw;
    sw.kernels = {"sobel"};
    trace::TraceGenerator gen(
        trace::paperProfile(spec.profile), spec.seed);
    sw.traces = {gen.generate(1200)};
    const std::uint64_t seed = spec.program_seed | 1;
    sw.variants = {
        runner::ConfigVariant{"base",
                              [seed](const std::string &) {
                                  sim::SimConfig cfg;
                                  cfg.seed = seed;
                                  return cfg;
                              }},
        runner::ConfigVariant{"alt",
                              [seed](const std::string &) {
                                  sim::SimConfig cfg;
                                  cfg.seed = seed + 1;
                                  cfg.bits.mode =
                                      approx::ApproxMode::dynamic;
                                  cfg.bits.min_bits = 4;
                                  return cfg;
                              }},
    };
    sw.master_seed = spec.seed;
    sw.jobs = 1;
    sw.collect_metrics = true;

    runner::SweepReport golden = runner::SweepRunner(sw).run();
    if (!golden.allOk())
        return arenaDivergence("arena_sweep",
                               "golden mini-sweep failed: " +
                                   golden.failureReport());
    const std::string golden_merged =
        golden.mergedMetrics().toJson();

    const std::vector<runner::JobSpec> jobs = runner::expandSweep(sw);
    const std::string fp =
        runner::SweepJournal::fingerprint(sw, jobs, "fuzz");

    // Partial campaign: one job journaled, then the process "dies"
    // (the arena is closed with no shutdown path and reopened through
    // recovery).
    {
        std::unique_ptr<arena::Arena> a = arena::Arena::open(dir);
        runner::SweepJournal journal(a.get());
        journal.bind(fp, jobs.size());
        if (!journal.record(golden.results[0]))
            return arenaDivergence("arena_sweep",
                                   "journal record failed");
    }

    std::unique_ptr<arena::Arena> a = arena::Arena::open(dir);
    runner::SweepJournal journal(a.get());
    if (!journal.bound() || journal.boundFingerprint() != fp)
        return arenaDivergence("arena_sweep",
                               "journal lost its campaign binding "
                               "across recovery");
    if (!journal.completed(0) || journal.completed(1))
        return arenaDivergence("arena_sweep",
                               "journal completion bitmap wrong after "
                               "recovery");

    runner::SweepRunner resumed_runner(sw);
    resumed_runner.setJournal(&journal);
    runner::SweepReport resumed = resumed_runner.run();
    if (!resumed.allOk())
        return arenaDivergence("arena_sweep",
                               "resumed mini-sweep failed: " +
                                   resumed.failureReport());

    for (std::size_t i = 0; i < golden.results.size(); ++i) {
        const std::string want =
            sim::serializeResult(golden.results[i].result);
        const std::string got =
            sim::serializeResult(resumed.results[i].result);
        if (want != got) {
            std::size_t byte = 0;
            while (byte < std::min(want.size(), got.size()) &&
                   want[byte] == got[byte])
                ++byte;
            Divergence d = arenaDivergence(
                "arena_sweep_result",
                "resumed job " + std::to_string(i) +
                    " result differs from golden at byte " +
                    std::to_string(byte));
            d.byte = byte;
            return d;
        }
    }
    const std::string resumed_merged =
        resumed.mergedMetrics().toJson();
    if (resumed_merged != golden_merged) {
        std::size_t byte = 0;
        while (byte <
                   std::min(resumed_merged.size(), golden_merged.size()) &&
               resumed_merged[byte] == golden_merged[byte])
            ++byte;
        Divergence d = arenaDivergence(
            "arena_sweep_metrics",
            "resumed merged metrics differ from golden at byte " +
                std::to_string(byte));
        d.byte = byte;
        return d;
    }
    return {};
}

} // namespace

Divergence
runArenaTrial(const TrialSpec &spec)
{
    const std::string dry_dir = trialDir(spec, "dry");
    const std::string crash_dir = trialDir(spec, "crash");
    const std::string sweep_dir = trialDir(spec, "sweep");
    std::error_code ec;
    fs::remove_all(dry_dir, ec);
    fs::remove_all(crash_dir, ec);
    fs::remove_all(sweep_dir, ec);

    Divergence result;
    try {
        // Dry run: measure the script's full log so the fault point can
        // be sampled anywhere in it (including past the end — a crash
        // after the final record).
        std::uint64_t total_log = 0;
        {
            Shadow dry;
            std::unique_ptr<arena::Arena> a =
                arena::Arena::open(dry_dir);
            runScript(a.get(), util::Rng(spec.program_seed), &dry);
            total_log = a->stats().log_bytes;
        }

        util::Rng fault_rng(spec.seed ^ 0xa12ea5eedULL);
        const std::uint64_t fault_at =
            1 + fault_rng.nextBounded(total_log + 20);

        Shadow sh;
        {
            arena::Arena::Options options;
            options.fail_after_log_bytes = fault_at;
            std::unique_ptr<arena::Arena> a =
                arena::Arena::open(crash_dir, options);
            runScript(a.get(), util::Rng(spec.program_seed), &sh);
        } // no shutdown path: the destructor persists nothing extra

        {
            std::unique_ptr<arena::Arena> recovered =
                arena::Arena::open(crash_dir);
            result = verifyRecovered(*recovered, sh, fault_at);
        }

        // Every third trial also proves the end-to-end warm-restart
        // byte-identity through the sweep journal.
        if (!result.violated && spec.index % 3 == 0)
            result = runSweepResumeCheck(spec, sweep_dir);
    } catch (const std::exception &e) {
        result = arenaDivergence("arena_exception", e.what());
    }

    fs::remove_all(dry_dir, ec);
    fs::remove_all(crash_dir, ec);
    fs::remove_all(sweep_dir, ec);
    return result;
}

} // namespace inc::check
