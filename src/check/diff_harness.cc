#include "check/diff_harness.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "check/fleet_trial.h"
#include "check/oracle.h"
#include "check/program_fuzzer.h"
#include "check/recovery_trial.h"
#include "check/strategy_trial.h"
#include "isa/batch/batch_core.h"
#include "isa/disassembler.h"
#include "nvp/core.h"
#include "nvp/memory.h"
#include "obs/observer.h"
#include "obs/report/report.h"
#include "obs/schema.h"
#include "runner/thread_pool.h"
#include "sim/functional.h"
#include "sim/result_io.h"
#include "sim/system_sim.h"
#include "trace/trace_generator.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/rng.h"

namespace inc::check
{

namespace
{

Divergence
byteMismatch(const std::string &invariant, std::uint32_t frame,
             std::size_t byte, int expected, int actual,
             const std::string &detail)
{
    Divergence d;
    d.violated = true;
    d.invariant = invariant;
    d.frame = frame;
    d.byte = byte;
    d.expected = expected;
    d.actual = actual;
    d.detail = detail;
    return d;
}

/**
 * The cross-cutting metrics invariant: a co-simulator trial replays
 * with an attached observer whose registry must satisfy the
 * cross-metric identities of obs/schema.h. Returns the first identity
 * violation as a Divergence (none when the registry is consistent).
 *
 * The same registry is then pushed through the report builder: the
 * energy-attribution rows of a RunReport must re-sum to
 * energy.consumed_nj within 1e-9 relative. That exercises the analysis
 * layer (obs/report) against every fuzzed workload, not just the
 * curated ones the unit tests cover. The split gauges only accumulate
 * when the obs counter sites are compiled in, so the check is gated
 * like the ledger identities in obs/schema.cc.
 */
Divergence
metricsDivergence(const obs::Observer &observer)
{
    const std::vector<std::string> problems =
        obs::verifySimMetricIdentities(observer.registry);
    if (!problems.empty()) {
        Divergence d;
        d.violated = true;
        d.invariant = "metrics";
        std::ostringstream detail;
        detail << problems.size() << " metric identit"
               << (problems.size() == 1 ? "y" : "ies")
               << " violated; first: " << problems.front();
        d.detail = detail.str();
        return d;
    }
#if INC_OBS_ENABLED
    const obs::RunReport report =
        obs::buildRunReport(observer.registry);
    double attributed = 0.0;
    for (const obs::AttributionRow &row : report.attribution)
        attributed += row.nj;
    const double tolerance =
        1e-9 * std::max(1.0, std::fabs(report.consumed_nj));
    if (std::fabs(attributed - report.consumed_nj) > tolerance ||
        !report.split_exact) {
        Divergence d;
        d.violated = true;
        d.invariant = "report";
        std::ostringstream detail;
        detail << "energy attribution rows sum to " << attributed
               << " nJ but energy.consumed_nj is " << report.consumed_nj
               << " nJ (split_exact="
               << (report.split_exact ? "true" : "false") << ")";
        d.detail = detail.str();
        return d;
    }
#endif
    return {};
}

/**
 * The engine-equivalence invariant: re-run @p spec's co-simulation
 * under every registered engine other than the one that produced
 * @p fast_result (the predecoded fast path) and compare each run's
 * serialized SimResult + metrics JSON against it. Any byte of
 * difference is a divergence (the first differing line is reported).
 */
Divergence
engineDiffDivergence(const kernels::Kernel &kernel,
                     const trace::PowerTrace &power,
                     const sim::SimConfig &fast_cfg,
                     const std::string &fast_result,
                     const obs::Observer &fast_obs)
{
    const std::string fast_json = fast_obs.registry.toJson();
    for (const nvp::ExecEngine engine : nvp::allExecEngines()) {
        if (engine == fast_cfg.exec_engine)
            continue;
        sim::SimConfig other_cfg = fast_cfg;
        other_cfg.exec_engine = engine;
        obs::Observer other_obs;
        other_cfg.obs = &other_obs;
        sim::SystemSimulator other_sim(kernel, &power, other_cfg);
        const std::string other_result =
            sim::serializeResult(other_sim.run());

        if (other_result != fast_result) {
            std::istringstream other_lines(other_result);
            std::istringstream fast_lines(fast_result);
            std::string other_line, fast_line;
            while (std::getline(other_lines, other_line) &&
                   std::getline(fast_lines, fast_line)) {
                if (other_line != fast_line)
                    break;
            }
            Divergence d;
            d.violated = true;
            d.invariant = "engine";
            d.detail = std::string("SimResult diverged between "
                                   "engines: ") +
                       nvp::execEngineName(engine) + " '" + other_line +
                       "' vs " +
                       nvp::execEngineName(fast_cfg.exec_engine) +
                       " '" + fast_line + "'";
            return d;
        }
        if (other_obs.registry.toJson() != fast_json) {
            Divergence d;
            d.violated = true;
            d.invariant = "engine_metrics";
            d.detail =
                std::string("metrics JSON diverged between engines "
                            "(results agree): ") +
                nvp::execEngineName(engine) + " vs " +
                nvp::execEngineName(fast_cfg.exec_engine);
            return d;
        }
    }
    return {};
}

/** Baseline controller: plain suspend/resume, exactly one lane. */
void
configureBaseline(sim::SimConfig &cfg)
{
    cfg.controller.roll_forward = false;
    cfg.controller.simd_adoption = false;
    cfg.controller.history_spawn = false;
    cfg.controller.force_full_simd = false;
    cfg.controller.process_newest_first = false;
    cfg.controller.auto_recompute_times = 0;
}

// ---- exact_recovery ---------------------------------------------------

Divergence
runExactTrial(const TrialSpec &spec)
{
    ProgramFuzzer fuzzer;
    FuzzedProgram fp = fuzzer.generate(spec.program_seed, 0, false,
                                       spec.body_ops);
    const core::FrameLayout layout = fp.kernel.layout;
    const trace::PowerTrace power = buildTrace(spec);

    sim::SimConfig cfg;
    cfg.bits.mode = approx::ApproxMode::fixed;
    cfg.bits.fixed_bits = spec.bits;
    configureBaseline(cfg);
    cfg.controller.backup_policy = spec.bug == BugKind::leaky_backup
                                       ? nvm::RetentionPolicy::log
                                       : nvm::RetentionPolicy::full;
    // Truncation at fixed bits is deterministic; ALU noise is not, and
    // would make bit-exact comparison meaningless.
    cfg.core.approx_alu = false;
    cfg.core.approx_mem = true;
    cfg.score_quality = false;
    cfg.frame_period_tenth_ms = spec.frame_period;
    cfg.seed = spec.seed;
    obs::Observer observer;
    cfg.obs = &observer; // non-perturbing; checked after the run

    const int max_frames =
        static_cast<int>(static_cast<double>(spec.samples) /
                         spec.frame_period) +
        4;
    Oracle oracle(fp.kernel, spec.bits, max_frames, spec.seed);
    util::SceneGenerator scene(fp.kernel.width, fp.kernel.height,
                               fp.kernel.scene, spec.seed);

    sim::SystemSimulator sim(fp.kernel, &power, cfg);
    Divergence div;
    sim.controller().setCompletionCallback(
        [&](const core::FrameCompletion &c) {
            if (div.violated)
                return;
            nvp::DataMemory &mem = sim.memory();
            const auto out =
                mem.snapshot(layout.outSlotAddr(c.frame), layout.out_bytes);
            const auto in_now =
                mem.snapshot(layout.inSlotAddr(c.frame), layout.in_bytes);

            // Primary invariant: the completed frame must equal a
            // crash-free exact execution over the input bytes the lane
            // actually locked in its ring slot.
            const auto expected =
                exactFrameOutput(fp.kernel, in_now, spec.bits);
            for (std::size_t i = 0; i < out.size(); ++i) {
                if (out[i] != expected[i]) {
                    std::ostringstream why;
                    why << "recovery diverged from crash-free replay "
                           "(lane "
                        << c.lane << ", bits " << c.bits << ")";
                    div = byteMismatch("exact", c.frame, i, expected[i],
                                       out[i], why.str());
                    return;
                }
            }

            // Cross-check against the precomputed functional oracle
            // whenever the slot still holds the pristine sensor frame.
            if (c.frame >= oracle.frames())
                return;
            if (in_now !=
                fp.kernel.make_input(scene, static_cast<int>(c.frame)))
                return;
            const auto &ref = oracle.exact(c.frame);
            for (std::size_t i = 0; i < out.size(); ++i) {
                if (out[i] != ref[i]) {
                    div = byteMismatch(
                        "exact_oracle", c.frame, i, ref[i], out[i],
                        "completed frame disagrees with sim::Functional");
                    return;
                }
            }
        });
    const sim::SimResult result = sim.run();
    if (!div.violated)
        div = metricsDivergence(observer);
    if (!div.violated && spec.engine_diff) {
        div = engineDiffDivergence(fp.kernel, power, cfg,
                                   sim::serializeResult(result),
                                   observer);
    }
    return div;
}

// ---- bounded_error ----------------------------------------------------

Divergence
runBoundedTrial(const TrialSpec &spec)
{
    const int unit_error = (1 << (8 - spec.bits)) - 1;
    ProgramFuzzer fuzzer;
    FuzzedProgram fp = fuzzer.generate(spec.program_seed, unit_error,
                                       false, spec.body_ops);
    // Pin the sensor to a static frame: lanes that resume across input
    // ring overwrites then still compute over the same bytes, which is
    // what makes the per-byte bound sound under adoption and history
    // spawning (see diff_harness.h).
    fp.kernel.make_input = [](const util::SceneGenerator &s, int) {
        return s.frame(0).data();
    };
    const core::FrameLayout layout = fp.kernel.layout;
    const trace::PowerTrace power = buildTrace(spec);

    sim::SimConfig cfg;
    cfg.bits.mode = approx::ApproxMode::dynamic;
    cfg.bits.min_bits = spec.bits;
    cfg.bits.max_bits = 8;
    // Full incidental machinery (the ControllerConfig defaults).
    cfg.controller.backup_policy = nvm::RetentionPolicy::full;
    cfg.core.approx_alu = true;
    cfg.core.approx_mem = true;
    cfg.score_quality = false;
    cfg.frame_period_tenth_ms = spec.frame_period;
    cfg.seed = spec.seed;
    obs::Observer observer;
    cfg.obs = &observer; // non-perturbing; checked after the run

    Oracle oracle(fp.kernel, 8, 1, spec.seed);
    const std::vector<std::uint8_t> &golden = oracle.golden(0);
    const int bound = fp.error_units * unit_error;

    sim::SystemSimulator sim(fp.kernel, &power, cfg);
    Divergence div;
    sim.controller().setCompletionCallback(
        [&](const core::FrameCompletion &c) {
            if (div.violated)
                return;
            nvp::DataMemory &mem = sim.memory();
            const std::uint32_t addr = layout.outSlotAddr(c.frame);
            const auto out = mem.snapshot(addr, layout.out_bytes);
            const auto mask = mem.precisionMask(addr, layout.out_bytes);
            for (std::size_t i = 0; i < out.size(); ++i) {
                if (!mask[i])
                    continue;
                const int err = std::abs(static_cast<int>(out[i]) -
                                         static_cast<int>(golden[i]));
                if (err > bound) {
                    std::ostringstream why;
                    why << "|out-golden|=" << err << " > "
                        << fp.error_units << " units x " << unit_error
                        << " (minbits " << spec.bits << ", lane "
                        << c.lane << ", bits " << c.bits << ")";
                    div = byteMismatch("bounded", c.frame, i, golden[i],
                                       out[i], why.str());
                    return;
                }
            }
        });
    const sim::SimResult result = sim.run();
    if (!div.violated)
        div = metricsDivergence(observer);
    if (!div.violated && spec.engine_diff) {
        div = engineDiffDivergence(fp.kernel, power, cfg,
                                   sim::serializeResult(result),
                                   observer);
    }
    return div;
}

// ---- monotone_bits ----------------------------------------------------

Divergence
runMonotoneTrial(const TrialSpec &spec)
{
    ProgramFuzzer fuzzer;
    const FuzzedProgram fp = fuzzer.generate(spec.program_seed, 0, true,
                                             spec.body_ops);
    constexpr int kFrames = 3;

    std::vector<std::vector<std::uint8_t>> prev_outputs;
    double prev_mse = 0.0;
    for (int b = 2; b <= 8; ++b) {
        sim::FunctionalConfig fc;
        fc.frames = kFrames;
        fc.bits = b;
        fc.approx_alu = false; // truncation-only, by construction
        fc.approx_mem = true;
        fc.seed = spec.seed;
        const sim::FunctionalResult res =
            sim::runFunctional(fp.kernel, fc);

        double mse_sum = 0.0;
        for (std::size_t f = 0; f < res.outputs.size(); ++f) {
            const auto &out = res.outputs[f];
            const auto &gold = res.golden[f];
            for (std::size_t i = 0; i < out.size(); ++i) {
                if (out[i] > gold[i]) {
                    std::ostringstream why;
                    why << "monotone body exceeded golden at bits " << b;
                    return byteMismatch("monotone",
                                        static_cast<std::uint32_t>(f), i,
                                        gold[i], out[i], why.str());
                }
                if (b == 8 && out[i] != gold[i]) {
                    return byteMismatch(
                        "monotone", static_cast<std::uint32_t>(f), i,
                        gold[i], out[i],
                        "8-bit run must be bit-exact to golden");
                }
                if (!prev_outputs.empty() &&
                    prev_outputs[f][i] > out[i]) {
                    std::ostringstream why;
                    why << "output fell from bits " << b - 1 << " to "
                        << b;
                    return byteMismatch("monotone",
                                        static_cast<std::uint32_t>(f), i,
                                        prev_outputs[f][i], out[i],
                                        why.str());
                }
                const double d = static_cast<double>(gold[i]) -
                                 static_cast<double>(out[i]);
                mse_sum += d * d;
            }
        }
        // Per-byte ordering implies this, but the quality form is the
        // invariant the issue states: MSE non-increasing in minbits.
        if (!prev_outputs.empty() && mse_sum > prev_mse + 1e-9) {
            std::ostringstream why;
            why << "MSE rose from " << prev_mse << " to " << mse_sum
                << " between bits " << b - 1 << " and " << b;
            return byteMismatch("monotone", 0, 0, 0, 0, why.str());
        }
        prev_outputs = res.outputs;
        prev_mse = mse_sum;
    }
    return {};
}

// ---- rac_merge --------------------------------------------------------

/** Reference model of DataMemory's versioned cells + assemble(). */
struct RacModel
{
    struct Cell
    {
        int main = 0;
        int main_prec = 0;
        std::array<int, nvp::DataMemory::kMaxVersions> value{};
        std::array<int, nvp::DataMemory::kMaxVersions> prec{};
        std::array<int, nvp::DataMemory::kMaxVersions> merged_value{};
        std::uint8_t written = 0;
        std::uint8_t merged = 0;
    };

    std::vector<Cell> cells;
    bool write_through = false;

    explicit RacModel(std::uint32_t len, bool wt)
        : cells(len), write_through(wt)
    {
    }

    void store(int lane, std::uint32_t off, int value, int bits)
    {
        Cell &c = cells[off];
        if (lane == 0) {
            c.main = value;
            c.main_prec = bits;
            return;
        }
        c.value[static_cast<std::size_t>(lane)] = value;
        c.prec[static_cast<std::size_t>(lane)] = bits;
        c.written |= static_cast<std::uint8_t>(1u << lane);
        if (write_through && bits >= c.main_prec) {
            c.main = value;
            c.main_prec = bits;
        }
    }

    void assemble(isa::AssembleMode mode)
    {
        for (Cell &c : cells) {
            int value = c.main;
            int prec = c.main_prec;
            for (int lane = 1; lane < nvp::DataMemory::kMaxVersions;
                 ++lane) {
                const auto bit =
                    static_cast<std::uint8_t>(1u << lane);
                if (!(c.written & bit))
                    continue;
                const int lv = c.value[static_cast<std::size_t>(lane)];
                const int lp = c.prec[static_cast<std::size_t>(lane)];
                switch (mode) {
                  case isa::AssembleMode::higherbits:
                    if (lp > prec) {
                        value = lv;
                        prec = lp;
                    }
                    break;
                  case isa::AssembleMode::sum: {
                    // Delta-merge: replace this lane's previously
                    // merged contribution instead of re-adding it, so
                    // re-merging an identical frame is idempotent.
                    const int before =
                        (c.merged & bit)
                            ? c.merged_value[static_cast<std::size_t>(
                                  lane)]
                            : 0;
                    value = std::clamp(value + lv - before, 0, 255);
                    c.merged_value[static_cast<std::size_t>(lane)] = lv;
                    c.merged |= bit;
                    prec = std::max(prec, lp);
                    break;
                  }
                  case isa::AssembleMode::max:
                    value = std::max(value, lv);
                    prec = std::max(prec, lp);
                    break;
                  case isa::AssembleMode::min:
                    value = std::min(value, lv);
                    prec = std::max(prec, lp);
                    break;
                }
            }
            c.written = 0;
            c.main = value;
            c.main_prec = prec;
        }
    }
};

Divergence
runRacTrial(const TrialSpec &spec)
{
    util::Rng rng(spec.seed);
    nvp::DataMemory mem(rng.split());

    const bool write_through = rng.nextBounded(2) != 0;
    const std::uint32_t base =
        256 + static_cast<std::uint32_t>(rng.nextBounded(512));
    const std::uint32_t len =
        16 + static_cast<std::uint32_t>(rng.nextBounded(48));
    mem.addVersionedRegion(base, len, write_through);
    RacModel model(len, write_through);

    const auto mode = static_cast<isa::AssembleMode>(rng.nextBounded(4));
    std::ostringstream ctx;
    ctx << "mode " << static_cast<int>(mode) << ", write_through "
        << write_through << ", len " << len;

    struct StoreOp
    {
        int lane;
        std::uint32_t off;
        int value;
        int bits;
    };
    std::vector<StoreOp> lane_stores;
    const int n_stores = 40 + static_cast<int>(rng.nextBounded(80));
    for (int i = 0; i < n_stores; ++i) {
        StoreOp op;
        op.lane = static_cast<int>(rng.nextBounded(4));
        op.off = static_cast<std::uint32_t>(rng.nextBounded(len));
        op.value = static_cast<int>(rng.nextBounded(256));
        op.bits = 1 + static_cast<int>(rng.nextBounded(8));
        mem.store8(op.lane, base + op.off,
                   static_cast<std::uint8_t>(op.value), op.bits, false);
        model.store(op.lane, op.off, op.value, op.bits);
        if (op.lane > 0)
            lane_stores.push_back(op);
    }

    auto compare = [&](const char *phase) -> Divergence {
        const auto snap = mem.snapshot(base, len);
        for (std::uint32_t i = 0; i < len; ++i) {
            if (snap[i] != model.cells[i].main ||
                mem.precisionAt(base + i) != model.cells[i].main_prec) {
                std::ostringstream why;
                why << "assemble diverged from reference model ("
                    << phase << "; " << ctx.str() << "; prec "
                    << mem.precisionAt(base + i) << " vs model "
                    << model.cells[i].main_prec << ")";
                return byteMismatch("rac", 0, i, model.cells[i].main,
                                    snap[i], why.str());
            }
        }
        return {};
    };

    mem.assemble(base, len, mode);
    model.assemble(mode);
    Divergence div = compare("first merge");
    if (div.violated)
        return div;
    const auto merged_once = mem.snapshot(base, len);

    // Re-adoption: the same lanes re-produce the same values (a
    // recompute pass re-running an identical frame), then merge again.
    for (const StoreOp &op : lane_stores) {
        mem.store8(op.lane, base + op.off,
                   static_cast<std::uint8_t>(op.value), op.bits, false);
        model.store(op.lane, op.off, op.value, op.bits);
    }
    mem.assemble(base, len, mode);
    model.assemble(mode);
    div = compare("re-merge");
    if (div.violated)
        return div;

    // Idempotence proper: without write-through replacement in between,
    // merging identical contributions must leave main untouched.
    if (!write_through) {
        const auto merged_twice = mem.snapshot(base, len);
        for (std::uint32_t i = 0; i < len; ++i) {
            if (merged_twice[i] != merged_once[i]) {
                std::ostringstream why;
                why << "re-merging identical lane values changed main ("
                    << ctx.str() << ")";
                return byteMismatch("rac", 0, i, merged_once[i],
                                    merged_twice[i], why.str());
            }
        }
    }

    // Fresh contributions after the re-merge stay mode-consistent.
    for (int i = 0; i < 16; ++i) {
        StoreOp op;
        op.lane = 1 + static_cast<int>(rng.nextBounded(3));
        op.off = static_cast<std::uint32_t>(rng.nextBounded(len));
        op.value = static_cast<int>(rng.nextBounded(256));
        op.bits = 1 + static_cast<int>(rng.nextBounded(8));
        mem.store8(op.lane, base + op.off,
                   static_cast<std::uint8_t>(op.value), op.bits, false);
        model.store(op.lane, op.off, op.value, op.bits);
    }
    mem.assemble(base, len, mode);
    model.assemble(mode);
    return compare("fresh contributions");
}

// ---- batch_lanes -------------------------------------------------------

/**
 * The batch engine's lane-isolation contract: W fuzzed trials stepped
 * in SoA lockstep through one nvp::BatchCore must each be bit-identical
 * to the same seed run solo through nvp::Core — registers, PC, halt
 * state, instret, cycles and the full data-memory image — and the
 * architectural state a trial halts with must stay byte-frozen while
 * the rest of the batch keeps stepping (the divergence-mask invariant).
 */
Divergence
runBatchLanesTrial(const TrialSpec &spec)
{
    ProgramFuzzer fuzzer;
    const FuzzedProgram fp =
        fuzzer.generate(spec.program_seed, 0, false, spec.body_ops);

    // All trial parameters are drawn from the spec's own stream so the
    // trial replays bit-exactly from its repro bundle.
    util::Rng t(spec.seed);
    const int width = 2 + static_cast<int>(t.nextBounded(8)); // 2..9
    constexpr std::uint64_t kMaxSteps = 100000;

    nvp::CoreConfig cfg;
    cfg.approx_alu = true;
    cfg.approx_mem = true;
    cfg.max_lanes = 1;

    struct SoloState
    {
        std::unique_ptr<nvp::DataMemory> mem;
        std::unique_ptr<nvp::Core> core;
        std::uint64_t steps = 0;
        std::uint64_t cycles = 0;
    };
    std::vector<SoloState> solo(static_cast<std::size_t>(width));
    std::vector<std::unique_ptr<nvp::DataMemory>> batch_mems;
    nvp::BatchCore batch(&fp.kernel.program, cfg);
    for (int i = 0; i < width; ++i) {
        const std::uint64_t mem_seed = t.next();
        const std::uint64_t core_seed = t.next();
        const int bits = 2 + static_cast<int>(t.nextBounded(7)); // 2..8
        auto &s = solo[static_cast<std::size_t>(i)];
        s.mem = std::make_unique<nvp::DataMemory>(util::Rng(mem_seed));
        s.core = std::make_unique<nvp::Core>(&fp.kernel.program,
                                             s.mem.get(), cfg,
                                             util::Rng(core_seed));
        s.core->setMainBits(bits);
        batch_mems.push_back(
            std::make_unique<nvp::DataMemory>(util::Rng(mem_seed)));
        const int idx =
            batch.addTrial(batch_mems.back().get(),
                           util::Rng(core_seed));
        batch.setBits(idx, bits);
    }

    // Solo trajectories: each core alone, exactly as nvp::Core runs.
    for (auto &s : solo) {
        while (!s.core->halted() && s.steps < kMaxSteps) {
            s.cycles += static_cast<std::uint64_t>(
                s.core->step().cycles);
            ++s.steps;
        }
    }

    // Batch trajectory, capturing each trial's architectural state the
    // moment it retires so the divergence-mask invariant is checked
    // against continued stepping of the surviving lanes.
    struct RetiredState
    {
        bool captured = false;
        std::uint16_t pc = 0;
        nvp::RegSnapshot regs{};
        std::uint64_t instret = 0;
        std::uint64_t cycles = 0;
    };
    std::vector<RetiredState> at_halt(
        static_cast<std::size_t>(width));
    std::uint64_t batch_steps = 0;
    auto capture = [&] {
        for (int i = 0; i < width; ++i) {
            auto &r = at_halt[static_cast<std::size_t>(i)];
            if (r.captured || !batch.halted(i))
                continue;
            r.captured = true;
            r.pc = batch.pc(i);
            r.regs = batch.regSnapshot(i);
            r.instret = batch.instret(i);
            r.cycles = batch.cycles(i);
        }
    };
    capture();
    while (batch_steps < kMaxSteps && batch.stepAll()) {
        ++batch_steps;
        capture();
    }

    auto fail = [&](int trial, const std::string &invariant,
                    const std::string &what, long long expected,
                    long long actual) {
        std::ostringstream why;
        why << "trial " << trial << "/" << width << ": " << what
            << " (batch engine vs solo core)";
        Divergence d = byteMismatch(
            invariant, static_cast<std::uint32_t>(trial), 0,
            static_cast<int>(expected), static_cast<int>(actual),
            why.str());
        return d;
    };

    for (int i = 0; i < width; ++i) {
        const auto &s = solo[static_cast<std::size_t>(i)];
        if (batch.halted(i) != s.core->halted())
            return fail(i, "batch_lanes", "halt state diverged",
                        s.core->halted() ? 1 : 0,
                        batch.halted(i) ? 1 : 0);
        if (batch.pc(i) != s.core->pc())
            return fail(i, "batch_lanes", "pc diverged", s.core->pc(),
                        batch.pc(i));
        if (batch.instret(i) != s.core->lane(0).instret)
            return fail(i, "batch_lanes", "instret diverged",
                        static_cast<long long>(s.core->lane(0).instret),
                        static_cast<long long>(batch.instret(i)));
        if (batch.cycles(i) != s.cycles)
            return fail(i, "batch_lanes", "cycle count diverged",
                        static_cast<long long>(s.cycles),
                        static_cast<long long>(batch.cycles(i)));
        for (int r = 0; r < isa::kNumRegs; ++r) {
            if (batch.reg(i, r) != s.core->regs().readFast(0, r))
                return fail(i, "batch_lanes",
                            "register r" + std::to_string(r) +
                                " diverged",
                            s.core->regs().readFast(0, r),
                            batch.reg(i, r));
        }
        const auto solo_img = s.mem->snapshot(0, isa::kDataMemBytes);
        const auto batch_img =
            batch.memory(i).snapshot(0, isa::kDataMemBytes);
        for (std::size_t b = 0; b < solo_img.size(); ++b) {
            if (solo_img[b] != batch_img[b])
                return fail(i, "batch_lanes",
                            "memory byte " + std::to_string(b) +
                                " diverged",
                            solo_img[b], batch_img[b]);
        }

        // Divergence-mask invariant: the state captured at retirement
        // must equal the final state — masked lanes are never written.
        const auto &r = at_halt[static_cast<std::size_t>(i)];
        if (!r.captured)
            continue; // trial never halted within the step budget
        if (r.pc != batch.pc(i) || r.instret != batch.instret(i) ||
            r.cycles != batch.cycles(i))
            return fail(i, "batch_mask",
                        "retired trial's pc/instret/cycles changed "
                        "after halt",
                        r.pc, batch.pc(i));
        const nvp::RegSnapshot now = batch.regSnapshot(i);
        for (int reg = 0; reg < isa::kNumRegs; ++reg) {
            if (r.regs[static_cast<std::size_t>(reg)] !=
                now[static_cast<std::size_t>(reg)])
                return fail(i, "batch_mask",
                            "retired trial's register r" +
                                std::to_string(reg) +
                                " changed after halt",
                            r.regs[static_cast<std::size_t>(reg)],
                            now[static_cast<std::size_t>(reg)]);
        }
    }
    return {};
}

} // namespace

// ---- public API -------------------------------------------------------

const char *
modeName(TrialMode mode)
{
    switch (mode) {
      case TrialMode::exact_recovery: return "exact_recovery";
      case TrialMode::bounded_error: return "bounded_error";
      case TrialMode::monotone_bits: return "monotone_bits";
      case TrialMode::rac_merge: return "rac_merge";
      case TrialMode::arena_recovery: return "arena_recovery";
      case TrialMode::batch_lanes: return "batch_lanes";
      case TrialMode::strategy_diff: return "strategy_diff";
      case TrialMode::fleet_merge: return "fleet_merge";
    }
    return "unknown";
}

const char *
bugName(BugKind bug)
{
    switch (bug) {
      case BugKind::none: return "none";
      case BugKind::leaky_backup: return "leaky_backup";
    }
    return "unknown";
}

namespace
{

/** Parse CheckConfig::mode_filter into a per-mode allow mask; fatal on
 *  an unknown mode name. Empty filter allows everything. */
std::array<bool, kNumTrialModes>
parseModeFilter(const std::string &filter)
{
    std::array<bool, kNumTrialModes> allowed{};
    if (filter.empty()) {
        allowed.fill(true);
        return allowed;
    }
    std::size_t pos = 0;
    while (pos <= filter.size()) {
        std::size_t comma = filter.find(',', pos);
        if (comma == std::string::npos)
            comma = filter.size();
        const std::string name = filter.substr(pos, comma - pos);
        bool matched = false;
        for (int m = 0; m < kNumTrialModes; ++m) {
            if (name == modeName(static_cast<TrialMode>(m))) {
                allowed[static_cast<std::size_t>(m)] = true;
                matched = true;
                break;
            }
        }
        if (!matched)
            util::fatal("unknown trial mode '%s' in --modes (valid: "
                        "exact_recovery, bounded_error, monotone_bits, "
                        "rac_merge, arena_recovery, batch_lanes, "
                        "strategy_diff, fleet_merge)",
                        name.c_str());
        pos = comma + 1;
    }
    return allowed;
}

} // namespace

std::vector<TrialSpec>
expandTrials(const CheckConfig &config)
{
    const std::array<bool, kNumTrialModes> allowed =
        parseModeFilter(config.mode_filter);

    util::Rng master(config.master_seed);
    std::vector<TrialSpec> specs;
    specs.reserve(static_cast<std::size_t>(std::max(0, config.trials)));
    // Candidates come off the unfiltered stream; a mode filter keeps
    // the first `trials` allowed ones, so a filtered run executes
    // byte-identical specs to the matching subset of an unfiltered run
    // with the same seed. Every mode has >= 8% mass, so the candidate
    // cap is unreachable with a non-empty allow mask.
    const long long max_candidates =
        static_cast<long long>(std::max(0, config.trials)) * 200 + 200;
    for (long long i = 0;
         static_cast<int>(specs.size()) < config.trials &&
         i < max_candidates;
         ++i) {
        TrialSpec s;
        s.index = static_cast<std::size_t>(i);
        s.seed = master.next();
        // Everything below must draw in a fixed order from the trial's
        // own stream so specs are independent of each other.
        util::Rng t(s.seed);
        const std::uint64_t u = t.nextBounded(100);
        if (u < 34)
            s.mode = TrialMode::exact_recovery;
        else if (u < 51)
            s.mode = TrialMode::bounded_error;
        else if (u < 62)
            s.mode = TrialMode::monotone_bits;
        else if (u < 70)
            s.mode = TrialMode::rac_merge;
        else if (u < 78)
            s.mode = TrialMode::arena_recovery;
        else if (u < 86)
            s.mode = TrialMode::batch_lanes;
        else if (u < 93)
            s.mode = TrialMode::strategy_diff;
        else
            s.mode = TrialMode::fleet_merge;
        s.program_seed = t.next();
        s.profile = 1 + static_cast<int>(t.nextBounded(5));
        s.samples = config.trace_samples;
        s.frame_period = static_cast<double>(t.nextRange(30, 90));
        if (s.mode == TrialMode::exact_recovery) {
            constexpr int kBitChoices[] = {8, 8, 6, 4, 2};
            s.bits = kBitChoices[t.nextBounded(5)];
        } else if (s.mode == TrialMode::bounded_error) {
            s.bits = 4 + static_cast<int>(t.nextBounded(3));
        }
        const int n_mut = 1 + static_cast<int>(t.nextBounded(6));
        s.mutations = TraceMutator::randomOps(t, s.samples, n_mut);
        if (s.mode == TrialMode::exact_recovery)
            s.bug = config.inject;
        s.engine_diff = config.engine_diff;
        if (!allowed[static_cast<std::size_t>(s.mode)])
            continue;
        specs.push_back(std::move(s));
    }
    return specs;
}

trace::PowerTrace
buildTrace(const TrialSpec &spec)
{
    trace::TraceGenerator gen(trace::paperProfile(spec.profile),
                              spec.seed);
    return TraceMutator::apply(gen.generate(spec.samples),
                               spec.mutations);
}

Divergence
runTrial(const TrialSpec &spec)
{
    switch (spec.mode) {
      case TrialMode::exact_recovery: return runExactTrial(spec);
      case TrialMode::bounded_error: return runBoundedTrial(spec);
      case TrialMode::monotone_bits: return runMonotoneTrial(spec);
      case TrialMode::rac_merge: return runRacTrial(spec);
      case TrialMode::arena_recovery: return runArenaTrial(spec);
      case TrialMode::batch_lanes: return runBatchLanesTrial(spec);
      case TrialMode::strategy_diff: return runStrategyTrial(spec);
      case TrialMode::fleet_merge: return runFleetMergeTrial(spec);
    }
    Divergence d;
    d.violated = true;
    d.invariant = "harness";
    d.detail = "unknown trial mode";
    return d;
}

std::string
writeBundle(const std::string &dir, const TrialSpec &spec,
            const Divergence &divergence)
{
    if (!util::ensureDir(dir))
        return "";

    {
        std::ofstream repro(dir + "/repro.txt");
        if (!repro)
            return "";
        repro.precision(17);
        repro << "index=" << spec.index << "\n"
              << "seed=" << spec.seed << "\n"
              << "mode=" << static_cast<int>(spec.mode) << "\n"
              << "mode_name=" << modeName(spec.mode) << "\n"
              << "bits=" << spec.bits << "\n"
              << "program_seed=" << spec.program_seed << "\n"
              << "body_ops=" << spec.body_ops << "\n"
              << "profile=" << spec.profile << "\n"
              << "samples=" << spec.samples << "\n"
              << "frame_period=" << spec.frame_period << "\n"
              << "bug=" << static_cast<int>(spec.bug) << "\n"
              << "bug_name=" << bugName(spec.bug) << "\n"
              << "engine_diff=" << (spec.engine_diff ? 1 : 0) << "\n"
              << "violated=" << (divergence.violated ? 1 : 0) << "\n"
              << "invariant=" << divergence.invariant << "\n"
              << "frame=" << divergence.frame << "\n"
              << "byte=" << divergence.byte << "\n"
              << "expected=" << divergence.expected << "\n"
              << "actual=" << divergence.actual << "\n"
              << "detail=" << divergence.detail << "\n";
    }
    {
        std::ofstream muts(dir + "/mutations.txt");
        muts << TraceMutator::serialize(spec.mutations);
    }
    {
        ProgramFuzzer fuzzer;
        const FuzzedProgram fp = fuzzer.generate(
            spec.program_seed,
            spec.mode == TrialMode::bounded_error
                ? (1 << (8 - spec.bits)) - 1
                : 0,
            spec.mode == TrialMode::monotone_bits, spec.body_ops);
        std::ofstream listing(dir + "/program.s");
        listing << "; " << fp.kernel.name << "  " << fp.kernel.width
                << "x" << fp.kernel.height << "  error_units "
                << fp.error_units << "\n"
                << isa::disassemble(fp.kernel.program);
    }
    if (spec.mode == TrialMode::exact_recovery ||
        spec.mode == TrialMode::bounded_error) {
        buildTrace(spec).saveCsv(dir + "/trace.csv");
    }
    return dir;
}

bool
loadBundle(const std::string &dir, TrialSpec *out)
{
    std::ifstream repro(dir + "/repro.txt");
    if (!repro)
        return false;
    TrialSpec s;
    std::map<std::string, std::string> kv;
    std::string line;
    while (std::getline(repro, line)) {
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        kv[line.substr(0, eq)] = line.substr(eq + 1);
    }
    auto u64 = [&](const char *key, std::uint64_t fallback) {
        auto it = kv.find(key);
        return it == kv.end() ? fallback
                              : std::strtoull(it->second.c_str(),
                                              nullptr, 10);
    };
    auto i32 = [&](const char *key, int fallback) {
        auto it = kv.find(key);
        return it == kv.end()
                   ? fallback
                   : static_cast<int>(
                         std::strtol(it->second.c_str(), nullptr, 10));
    };
    s.index = static_cast<std::size_t>(u64("index", 0));
    s.seed = u64("seed", 0);
    s.mode = static_cast<TrialMode>(i32("mode", 0));
    s.bits = i32("bits", 8);
    s.program_seed = u64("program_seed", 0);
    s.body_ops = i32("body_ops", -1);
    s.profile = i32("profile", 1);
    s.samples = static_cast<std::size_t>(u64("samples", 6000));
    if (auto it = kv.find("frame_period"); it != kv.end())
        s.frame_period = std::strtod(it->second.c_str(), nullptr);
    s.bug = static_cast<BugKind>(i32("bug", 0));
    s.engine_diff = i32("engine_diff", 0) != 0;

    std::ifstream muts(dir + "/mutations.txt");
    if (muts) {
        std::ostringstream text;
        text << muts.rdbuf();
        s.mutations = TraceMutator::deserialize(text.str());
    }
    *out = s;
    return true;
}

TrialSpec
minimizeTrial(const TrialSpec &spec)
{
    TrialSpec best = spec;
    if (!runTrial(best).violated)
        return best; // not reproducible here; nothing to shrink against

    // ddmin over the mutation list: try dropping large chunks first,
    // restarting whenever anything was removed successfully.
    bool progress = true;
    while (progress && !best.mutations.empty()) {
        progress = false;
        const std::size_t n = best.mutations.size();
        for (std::size_t chunk = n; chunk >= 1 && !progress;
             chunk /= 2) {
            for (std::size_t start = 0;
                 start < best.mutations.size() && !progress;
                 start += chunk) {
                TrialSpec candidate = best;
                const auto first =
                    candidate.mutations.begin() +
                    static_cast<std::ptrdiff_t>(start);
                const auto last =
                    candidate.mutations.begin() +
                    static_cast<std::ptrdiff_t>(
                        std::min(start + chunk,
                                 candidate.mutations.size()));
                candidate.mutations.erase(first, last);
                if (runTrial(candidate).violated) {
                    best = std::move(candidate);
                    progress = true;
                }
            }
        }
    }

    // Shortest failing genome prefix (shrink-by-truncation).
    int full = best.body_ops;
    if (full < 0)
        full = ProgramFuzzer().generate(best.program_seed).body_ops;
    for (int ops = 0; ops < full; ++ops) {
        TrialSpec candidate = best;
        candidate.body_ops = ops;
        if (runTrial(candidate).violated) {
            best = std::move(candidate);
            break;
        }
    }
    if (best.body_ops < 0)
        best.body_ops = full;
    return best;
}

CheckReport
runCheck(const CheckConfig &config)
{
    const std::vector<TrialSpec> specs = expandTrials(config);
    std::vector<Divergence> divs(specs.size());

    {
        runner::ThreadPool pool(config.jobs);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            pool.submit([&specs, &divs, i] {
                // Each task owns slot i exclusively; pool tasks must
                // not throw.
                try {
                    divs[i] = runTrial(specs[i]);
                } catch (const std::exception &e) {
                    divs[i].violated = true;
                    divs[i].invariant = "exception";
                    divs[i].detail = e.what();
                } catch (...) {
                    divs[i].violated = true;
                    divs[i].invariant = "exception";
                    divs[i].detail = "unknown exception";
                }
            });
        }
        pool.wait();
    }

    CheckReport report;
    report.trials = static_cast<int>(specs.size());
    for (const TrialSpec &s : specs)
        ++report.mode_counts[static_cast<std::size_t>(s.mode)];

    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!divs[i].violated)
            continue;
        TrialFailure failure;
        failure.spec = specs[i];
        failure.divergence = divs[i];
        if (!config.repro_dir.empty()) {
            util::ensureDir(config.repro_dir);
            failure.bundle_dir = writeBundle(
                config.repro_dir + "/trial_" + std::to_string(i),
                specs[i], divs[i]);
        }
        if (config.minimize) {
            failure.minimized = minimizeTrial(specs[i]);
            failure.minimized_valid = true;
            if (!failure.bundle_dir.empty()) {
                writeBundle(failure.bundle_dir + "/minimized",
                            failure.minimized,
                            runTrial(failure.minimized));
            }
        }
        report.failures.push_back(std::move(failure));
    }
    return report;
}

std::string
CheckReport::summary() const
{
    std::ostringstream out;
    out << trials << " trials (exact=" << mode_counts[0]
        << " bounded=" << mode_counts[1]
        << " monotone=" << mode_counts[2] << " rac=" << mode_counts[3]
        << " arena=" << mode_counts[4] << " batch=" << mode_counts[5]
        << " strategy=" << mode_counts[6]
        << " fleet=" << mode_counts[7]
        << "), " << failures.size() << " violation"
        << (failures.size() == 1 ? "" : "s");
    for (const TrialFailure &f : failures) {
        out << "\n  trial " << f.spec.index << " seed=" << f.spec.seed
            << " mode=" << modeName(f.spec.mode)
            << " invariant=" << f.divergence.invariant << " frame="
            << f.divergence.frame << " byte=" << f.divergence.byte
            << ": " << f.divergence.detail;
        if (f.minimized_valid) {
            out << "\n    minimized: mutations="
                << f.minimized.mutations.size()
                << " body_ops=" << f.minimized.body_ops;
        }
    }
    return out.str();
}

} // namespace inc::check
