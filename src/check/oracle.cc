#include "check/oracle.h"

#include "nvp/core.h"
#include "nvp/memory.h"
#include "util/logging.h"

namespace inc::check
{

Oracle::Oracle(const kernels::Kernel &kernel, int bits, int frames,
               std::uint64_t seed)
    : kernel_(&kernel), seed_(seed),
      scene_(kernel.width, kernel.height, kernel.scene, seed)
{
    sim::FunctionalConfig cfg;
    cfg.frames = frames;
    cfg.bits = bits;
    // Noise off: at fixed bits, truncation alone is deterministic, so
    // the reference is unique and bit-exact comparison is meaningful.
    cfg.approx_alu = false;
    cfg.approx_mem = true;
    cfg.seed = seed;
    exact_ = sim::runFunctional(kernel, cfg);
}

const std::vector<std::uint8_t> &
Oracle::exact(std::uint32_t frame) const
{
    if (frame >= exact_.outputs.size())
        util::fatal("Oracle: frame %u beyond the %zu reference frames",
                    frame, exact_.outputs.size());
    return exact_.outputs[frame];
}

const std::vector<std::uint8_t> &
Oracle::golden(std::uint32_t frame)
{
    auto it = golden_cache_.find(frame);
    if (it == golden_cache_.end()) {
        it = golden_cache_
                 .emplace(frame,
                          kernel_->golden(kernel_->make_input(
                              scene_, static_cast<int>(frame))))
                 .first;
    }
    return it->second;
}

std::vector<std::uint8_t>
exactFrameOutput(const kernels::Kernel &kernel,
                 const std::vector<std::uint8_t> &input, int bits)
{
    util::Rng rng(1);
    nvp::DataMemory mem(rng.split());
    for (const auto &[addr, data] : kernel.init_blocks)
        mem.hostWriteBlock(addr, data);
    const core::FrameLayout &layout = kernel.layout;
    mem.addAcRegion({layout.in_base,
                     layout.in_bytes *
                         static_cast<std::uint32_t>(layout.in_slots),
                     nvm::RetentionPolicy::full});
    mem.addVersionedRegion(layout.out_base,
                           layout.out_bytes *
                               static_cast<std::uint32_t>(
                                   layout.out_slots));
    if (kernel.scratch_bytes > 0)
        mem.addVersionedRegion(kernel.scratch_base, kernel.scratch_bytes,
                               /*write_through=*/false);

    nvp::CoreConfig cfg;
    cfg.approx_alu = false;
    cfg.approx_mem = true;
    nvp::Core core(&kernel.program, &mem, cfg, rng.split());
    core.setMainBits(bits);
    mem.hostWriteBlock(layout.inSlotAddr(0), input);

    const std::uint64_t guard =
        2000 + 64ull * layout.in_bytes * kernel.program.size();
    for (std::uint64_t i = 0; i < guard; ++i) {
        const nvp::StepResult step = core.step();
        core.setMainBits(bits); // acen may have reset lane state
        if (step.halted ||
            (step.mark_resume && step.resume_frame_value >= 1))
            break;
    }
    return mem.snapshot(layout.outSlotAddr(0), layout.out_bytes);
}

} // namespace inc::check
