#include "check/strategy_trial.h"

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arena/arena.h"
#include "arena/backend.h"
#include "check/program_fuzzer.h"
#include "obs/observer.h"
#include "obs/schema.h"
#include "sim/result_io.h"
#include "sim/strategy/image_store.h"
#include "sim/strategy/strategy.h"
#include "sim/system_sim.h"

namespace inc::check
{

namespace
{

namespace fs = std::filesystem;

Divergence
strategyDivergence(const std::string &invariant,
                   const std::string &detail)
{
    Divergence d;
    d.violated = true;
    d.invariant = invariant;
    d.detail = detail;
    return d;
}

/** Everything one strategy run leaves behind for the cross-checks. */
struct StrategyRun
{
    std::string result;          ///< serialized SimResult
    sim::StrategyStats stats;
    std::string metrics_problem; ///< first identity violation, "" = ok
    bool image_ok = false;
    std::string image_why;
    bool has_committed = false;
    std::uint64_t committed_seq = 0;
    std::size_t state_bytes = 0;
};

/**
 * The shared trial config: full incidental machinery at dynamic bits
 * (the richest trajectory — adoption, history spawning and the ALU
 * noise model are all seeded from the spec, so every re-run over the
 * same config is bit-identical; only the strategy overlay varies).
 */
sim::SimConfig
trialConfig(const TrialSpec &spec)
{
    sim::SimConfig cfg;
    cfg.bits.mode = approx::ApproxMode::dynamic;
    cfg.bits.min_bits = spec.bits;
    cfg.bits.max_bits = 8;
    cfg.controller.backup_policy = nvm::RetentionPolicy::full;
    cfg.core.approx_alu = true;
    cfg.core.approx_mem = true;
    cfg.score_quality = false;
    cfg.frame_period_tenth_ms = spec.frame_period;
    cfg.seed = spec.seed;
    return cfg;
}

StrategyRun
runOne(const kernels::Kernel &kernel, const trace::PowerTrace &power,
       const sim::SimConfig &base, sim::StrategyKind kind,
       arena::PersistenceBackend *persistence)
{
    sim::SimConfig cfg = base;
    cfg.strategy = kind;
    cfg.persistence = persistence;
    obs::Observer observer;
    cfg.obs = &observer;

    sim::SystemSimulator sim(kernel, &power, cfg);
    StrategyRun run;
    run.result = sim::serializeResult(sim.run());
    run.stats = sim.strategy().stats();
    const std::vector<std::string> problems =
        obs::verifySimMetricIdentities(observer.registry);
    if (!problems.empty())
        run.metrics_problem = problems.front();
    run.image_ok = sim.strategy().verifyImage(&run.image_why);
    run.has_committed = sim.strategy().image().hasCommitted();
    run.committed_seq = sim.strategy().image().committedSeq();
    run.state_bytes = sim.strategy().image().stateBytes();
    return run;
}

/** First differing line of two serialized results (for the report). */
std::string
firstDiffLine(const std::string &want, const std::string &got)
{
    std::istringstream want_lines(want);
    std::istringstream got_lines(got);
    std::string want_line, got_line;
    while (std::getline(want_lines, want_line) &&
           std::getline(got_lines, got_line)) {
        if (want_line != got_line)
            return "'" + got_line + "' vs baseline '" + want_line + "'";
    }
    return "(length mismatch)";
}

/** Scratch directory unique to this (process, trial, strategy). */
std::string
trialDir(const TrialSpec &spec, const char *which)
{
    std::ostringstream name;
    name << "inc-strategy-fuzz-" << ::getpid() << "-" << spec.seed
         << "-" << spec.index << "-" << which;
    return (fs::temp_directory_path() / name.str()).string();
}

/**
 * The persistence leg: run @p kind arena-backed, require the result to
 * still match the heap baseline, then close and reopen the arena and
 * require the committed "ckpt" image to have survived — same sequence
 * number, matching CRC.
 */
Divergence
runArenaLeg(const kernels::Kernel &kernel,
            const trace::PowerTrace &power, const sim::SimConfig &base,
            sim::StrategyKind kind, const std::string &baseline,
            const std::string &dir)
{
    StrategyRun run;
    {
        std::unique_ptr<arena::Arena> store = arena::Arena::open(dir);
        arena::ArenaBackend backend(store.get());
        run = runOne(kernel, power, base, kind, &backend);
    } // no shutdown path: recovery must find the committed image

    const char *name = sim::strategyName(kind);
    if (run.result != baseline)
        return strategyDivergence(
            "strategy_arena_result",
            std::string("arena-backed ") + name +
                " diverged from the heap baseline: " +
                firstDiffLine(baseline, run.result));
    if (!run.image_ok)
        return strategyDivergence("strategy_arena_image",
                                  std::string(name) + ": " +
                                      run.image_why);

    std::unique_ptr<arena::Arena> store = arena::Arena::open(dir);
    arena::ArenaBackend backend(store.get());
    sim::ImageStore image(&backend, "ckpt", run.state_bytes,
                          sim::ImageStore::kMetaBytesCrc);
    if (image.warmStart() != run.has_committed)
        return strategyDivergence(
            "strategy_arena_reopen",
            std::string(name) + ": reopened warmStart=" +
                (image.warmStart() ? "true" : "false") +
                " but the run " +
                (run.has_committed ? "committed" : "never committed"));
    if (image.committedSeq() != run.committed_seq)
        return strategyDivergence(
            "strategy_arena_reopen",
            std::string(name) + ": reopened committed seq " +
                std::to_string(image.committedSeq()) + " != " +
                std::to_string(run.committed_seq));
    std::string why;
    if (!image.verifyCommitted(&why))
        return strategyDivergence("strategy_arena_crc",
                                  std::string(name) + ": " + why);
    return {};
}

} // namespace

Divergence
runStrategyTrial(const TrialSpec &spec)
{
    ProgramFuzzer fuzzer;
    FuzzedProgram fp =
        fuzzer.generate(spec.program_seed, 0, false, spec.body_ops);
    const trace::PowerTrace power = buildTrace(spec);
    const sim::SimConfig base = trialConfig(spec);

    // Heap legs: active first (the baseline), then every other
    // registered strategy over the identical spec.
    std::vector<StrategyRun> runs;
    for (const sim::StrategyKind kind : sim::allStrategies())
        runs.push_back(runOne(fp.kernel, power, base, kind, nullptr));
    const StrategyRun &active = runs.front();

    for (std::size_t i = 0; i < runs.size(); ++i) {
        const sim::StrategyKind kind = sim::allStrategies()[i];
        const char *name = sim::strategyName(kind);
        const StrategyRun &run = runs[i];
        if (run.result != active.result)
            return strategyDivergence(
                "strategy_result",
                std::string("SimResult diverged between strategies: ") +
                    name + " " +
                    firstDiffLine(active.result, run.result));
        if (!run.metrics_problem.empty())
            return strategyDivergence("strategy_metrics",
                                      std::string(name) + ": " +
                                          run.metrics_problem);
        if (!run.image_ok)
            return strategyDivergence("strategy_image",
                                      std::string(name) + ": " +
                                          run.image_why);
        // Any strategy's image either never committed or committed as
        // often as the shared trajectory backed up (plus snapshots).
        if (run.has_committed !=
            (run.stats.backups + run.stats.snapshots > 0))
            return strategyDivergence(
                "strategy_commits",
                std::string(name) + ": hasCommitted=" +
                    (run.has_committed ? "true" : "false") + " with " +
                    std::to_string(run.stats.backups) + " backups + " +
                    std::to_string(run.stats.snapshots) + " snapshots");
    }

    // The freezer backs up a subset of the words the baseline copies
    // wholesale; for the identical trajectory it can never write more.
    const StrategyRun &freezer =
        runs[static_cast<int>(sim::StrategyKind::freezer)];
    if (freezer.stats.backup_bytes > active.stats.backup_bytes)
        return strategyDivergence(
            "strategy_bytes",
            "freezer wrote " +
                std::to_string(freezer.stats.backup_bytes) +
                " backup bytes > active's full-image " +
                std::to_string(active.stats.backup_bytes));

    // Every third trial also proves the arena round-trip for the
    // full-image and dirty-word strategies.
    Divergence result;
    if (spec.index % 3 == 0) {
        const std::string active_dir = trialDir(spec, "active");
        const std::string freezer_dir = trialDir(spec, "freezer");
        std::error_code ec;
        fs::remove_all(active_dir, ec);
        fs::remove_all(freezer_dir, ec);
        try {
            result = runArenaLeg(fp.kernel, power, base,
                                 sim::StrategyKind::active,
                                 active.result, active_dir);
            if (!result.violated)
                result = runArenaLeg(fp.kernel, power, base,
                                     sim::StrategyKind::freezer,
                                     active.result, freezer_dir);
        } catch (const std::exception &e) {
            result = strategyDivergence("strategy_exception", e.what());
        }
        fs::remove_all(active_dir, ec);
        fs::remove_all(freezer_dir, ec);
    }
    return result;
}

} // namespace inc::check
