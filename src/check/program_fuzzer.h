/**
 * @file
 * Randomized-but-valid kernel generation for differential testing.
 *
 * The fuzzer composes programs through isa::ProgramBuilder following the
 * same conventions as the hand-written testbenches (src/kernels): the
 * standard frame loop opened by markrp, ring-slot base computation from
 * the frame induction register, and a branchless per-pixel body so
 * incidental SIMD lanes never diverge. The per-pixel body is driven by a
 * seeded genome of small dataflow "genes"; truncating the genome yields
 * a smaller program that is valid by construction (shrinking).
 *
 * Alongside the program the fuzzer derives, by interval arithmetic over
 * the genome, a static error certificate: every approximation event in
 * the body (AC-region load truncation, approximate-ALU noise on an
 * AC-flagged destination) perturbs its value by at most
 * E = 2^(8-bits)-1, and the certificate counts how many such unit
 * errors can reach the stored output byte. The DiffHarness checks
 * |output - golden| <= error_units * E on every completed frame. The
 * generator also keeps all intermediate values clear of 16-bit
 * wraparound and the final store within [0, 255] under the worst-case
 * slack, because modular aliasing would void the bound.
 */

#ifndef INC_CHECK_PROGRAM_FUZZER_H
#define INC_CHECK_PROGRAM_FUZZER_H

#include <cstdint>

#include "kernels/kernel.h"

namespace inc::check
{

/** Program-generation knobs. */
struct FuzzerConfig
{
    int min_body_ops = 2;  ///< genome length lower bound
    int max_body_ops = 10; ///< genome length upper bound
    int min_dim = 8;       ///< frame width/height lower bound (pow2)
    int max_dim = 16;      ///< frame width/height upper bound (pow2)
};

/** A generated kernel plus its static error certificate. */
struct FuzzedProgram
{
    std::uint64_t seed = 0;
    kernels::Kernel kernel;

    /** Genome length actually emitted (for shrink-by-truncation). */
    int body_ops = 0;

    /**
     * Unit-error count of the stored byte: for any run where every
     * approximation event errs by at most E, the output byte differs
     * from golden by at most error_units * E.
     */
    int error_units = 0;

    /**
     * True when the body is monotone non-decreasing in every input
     * byte under truncation-only approximation (no ALU noise), so
     * outputs at bits b are <= outputs at bits b+1 <= golden, byte for
     * byte — the basis of the quality-monotonicity invariant.
     */
    bool monotone = false;
};

/** Seeded generator of valid frame-loop kernels. */
class ProgramFuzzer
{
  public:
    explicit ProgramFuzzer(FuzzerConfig config = {});

    /**
     * Generate the kernel for @p seed. @p unit_error is the worst-case
     * per-event error amplitude E the harness will test with (0 for
     * purely differential trials); the generator budgets genes so the
     * certificate never allows aliasing at that amplitude.
     *
     * @p monotone_only restricts the gene pool to order-preserving ops.
     * @p body_ops, when >= 0, truncates the genome (shrinking); the
     * result is the same program the full genome would have produced,
     * minus its tail.
     */
    FuzzedProgram generate(std::uint64_t seed, int unit_error = 0,
                           bool monotone_only = false,
                           int body_ops = -1) const;

  private:
    FuzzerConfig config_;
};

} // namespace inc::check

#endif // INC_CHECK_PROGRAM_FUZZER_H
