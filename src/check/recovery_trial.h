/**
 * @file
 * The arena-recovery fuzzer invariant (TrialMode::arena_recovery).
 *
 * Two layers, both pure in the TrialSpec:
 *
 *  1. Crash-point sweep over the arena's log: a deterministic op script
 *     (puts/erases/allocs/grows/frees/data writes/commits drawn from
 *     spec.program_seed) is dry-run in a scratch arena to measure its
 *     total log length; a fault byte is then sampled and the same
 *     script re-run with Options::fail_after_log_bytes at that byte.
 *     Reopening the faulted arena must recover exactly the crash-free
 *     oracle's state at the last successful commit: epoch, the
 *     key/value index, the block index, and block contents under NVM
 *     semantics (data writes into a still-live extent persist even when
 *     the index mutations around them roll back).
 *
 *  2. Warm-restart byte-identity (every third trial): a mini 2-job
 *     sweep is run uninterrupted (golden), then replayed as a partially
 *     journaled campaign — one job recorded through a SweepJournal, the
 *     arena closed and recovered, the campaign resumed — and the
 *     resumed run's per-job serialized results and merged metrics JSON
 *     must equal the golden run byte-for-byte.
 */

#ifndef INC_CHECK_RECOVERY_TRIAL_H
#define INC_CHECK_RECOVERY_TRIAL_H

#include "check/diff_harness.h"

namespace inc::check
{

/** Execute one arena_recovery trial; pure in the spec. */
Divergence runArenaTrial(const TrialSpec &spec);

} // namespace inc::check

#endif // INC_CHECK_RECOVERY_TRIAL_H
