/**
 * @file
 * The reference side of the differential harness: the same program the
 * co-simulator runs, executed on sim::Functional with no outages.
 *
 * At a fixed bitwidth with the ALU noise model off, truncation is
 * deterministic, so for a crash-free execution the functional outputs
 * are THE unique correct answer: any deviation by SystemSimulator on
 * the same program, inputs and bitwidth is a recovery bug. The oracle
 * also serves the precise golden outputs (for the bounded-error and
 * monotonicity invariants), keyed by frame index with the same scene
 * seed the co-simulator uses.
 */

#ifndef INC_CHECK_ORACLE_H
#define INC_CHECK_ORACLE_H

#include <cstdint>
#include <map>
#include <vector>

#include "kernels/kernel.h"
#include "sim/functional.h"

namespace inc::check
{

/** Outage-free reference outputs for one kernel + bits + seed. */
class Oracle
{
  public:
    /**
     * Precompute @p frames exact-truncation reference frames of
     * @p kernel at fixed @p bits (noise off), with scene seed @p seed —
     * the seed must equal the co-simulated SimConfig::seed so both
     * sides consume identical sensor frames.
     */
    Oracle(const kernels::Kernel &kernel, int bits, int frames,
           std::uint64_t seed);

    /** Frames available from the reference run. */
    std::size_t frames() const { return exact_.outputs.size(); }

    /** Exact-truncation output of @p frame (fatal if out of range). */
    const std::vector<std::uint8_t> &exact(std::uint32_t frame) const;

    /** Precise golden output of @p frame (computed on demand). */
    const std::vector<std::uint8_t> &golden(std::uint32_t frame);

  private:
    const kernels::Kernel *kernel_;
    std::uint64_t seed_;
    sim::FunctionalResult exact_;
    util::SceneGenerator scene_;
    std::map<std::uint32_t, std::vector<std::uint8_t>> golden_cache_;
};

/**
 * Single-frame exact reference: run @p kernel 's program precisely
 * (truncation at @p bits on AC loads, no ALU noise) over @p input on a
 * private crash-free core and return the output-slot bytes. Unlike
 * Oracle::exact() this takes the input bytes directly, so callers can
 * feed it the input ring content a lane *actually* saw — which may
 * legitimately differ from the pristine sensor frame when the DMA
 * overwrote a ring slot the lane had not locked yet.
 */
std::vector<std::uint8_t> exactFrameOutput(
    const kernels::Kernel &kernel, const std::vector<std::uint8_t> &input,
    int bits);

} // namespace inc::check

#endif // INC_CHECK_ORACLE_H
