/**
 * @file
 * Seeded perturbation of power traces toward outage edge cases.
 *
 * The recovery bugs this subsystem hunts hide in rarely-taken
 * checkpoint/restore interleavings, so the mutator biases traces toward
 * the shapes that trigger them: an abrupt power cliff right after a
 * charge ramp (outage landing exactly at the backup boundary),
 * back-to-back outages separated by barely enough charge to restore,
 * micro-outages shorter than the restore sequence, and long blackouts
 * that outlive shaped retention. A mutation list is plain data — it can
 * be serialized into a repro bundle, re-applied deterministically, and
 * bisected down to a minimal failing subset.
 */

#ifndef INC_CHECK_TRACE_MUTATOR_H
#define INC_CHECK_TRACE_MUTATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/power_trace.h"
#include "util/rng.h"

namespace inc::check
{

/** One trace perturbation. Length-preserving by construction. */
struct MutationOp
{
    enum class Kind : int
    {
        outage = 0,     ///< zero power over [pos, pos+len)
        micro_outage,   ///< 1-3 sample blackout (shorter than restore)
        double_outage,  ///< two outages separated by a 1-2 sample gap
        charge_cliff,   ///< strong charge ramp, then a hard zero edge
        scale_segment,  ///< multiply a window by a factor
    };

    Kind kind = Kind::outage;
    std::size_t pos = 0;  ///< first affected sample
    std::size_t len = 0;  ///< affected window length in samples
    double amount = 0.0;  ///< kind-specific magnitude (uW or factor)
};

/** Generates and applies mutation lists. */
class TraceMutator
{
  public:
    /** Draw @p count seeded mutations for a trace of @p samples. */
    static std::vector<MutationOp> randomOps(util::Rng &rng,
                                             std::size_t samples,
                                             int count);

    /** Apply @p ops to @p base in order (deterministic, pure). */
    static trace::PowerTrace apply(const trace::PowerTrace &base,
                                   const std::vector<MutationOp> &ops);

    /** One "kind pos len amount" line per op. */
    static std::string serialize(const std::vector<MutationOp> &ops);

    /** Inverse of serialize(); ignores blank lines. */
    static std::vector<MutationOp> deserialize(const std::string &text);
};

} // namespace inc::check

#endif // INC_CHECK_TRACE_MUTATOR_H
