/**
 * @file
 * The fleet shard/merge fuzzer invariant (TrialMode::fleet_merge).
 *
 * One fuzzed mini-sweep (kernel subset, variant count, metrics
 * collection, and an optional injected job failure all drawn from the
 * trial stream) is executed two ways, both pure in the TrialSpec:
 *
 *   1. Un-sharded oracle: a plain SweepRunner over the full grid.
 *
 *   2. Fleet path: the grid is split by runner::planShards() across 2
 *      shards, each shard runs through a range-restricted SweepRunner
 *      whose delivery hook encodes every JobResult into a RESULT wire
 *      frame (fleet/protocol.h). The shards' frame streams are then
 *      interleaved in a fuzzed order, re-fragmented into fuzzed chunk
 *      sizes through a MessageReader, decoded, and folded by a
 *      ResultFolder — exactly the coordinator's merge path, minus the
 *      sockets.
 *
 * The folded report must match the oracle byte-for-byte on the fleet
 * determinism surface: per-job serialized SimResults (hexfloat,
 * sim/result_io.h), ok/attempts/error fields, and the merged metrics
 * JSON. Every third trial additionally routes shard 0 through a
 * per-shard arena SweepJournal, reopens the arena, and replays the
 * shard from the journal (the reassigned-shard warm restart): the
 * replayed wire frames must equal the fresh run's frames byte-for-byte
 * and are the ones fed to the merge.
 */

#ifndef INC_CHECK_FLEET_TRIAL_H
#define INC_CHECK_FLEET_TRIAL_H

#include "check/diff_harness.h"

namespace inc::check
{

/** Execute one fleet_merge trial; pure in the spec. */
Divergence runFleetMergeTrial(const TrialSpec &spec);

} // namespace inc::check

#endif // INC_CHECK_FLEET_TRIAL_H
