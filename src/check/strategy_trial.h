/**
 * @file
 * The backup-strategy conformance fuzzer invariant
 * (TrialMode::strategy_diff).
 *
 * One fuzzed co-simulator trial is run once per registered checkpoint
 * strategy (sim::allStrategies()) over the identical spec, under the
 * full incidental machinery at dynamic bits. The checks, all pure in
 * the TrialSpec:
 *
 *  1. Overlay byte-identity: every strategy's serialized SimResult
 *     (sim/result_io.h) must equal the `active` baseline's
 *     byte-for-byte — a strategy is a persistence + accounting
 *     overlay and may never feed back into the simulated trajectory.
 *
 *  2. Accounting consistency: each run's metrics registry must satisfy
 *     the full cross-metric identities of obs/schema.h, including the
 *     guarded ckpt.* block (commits == in-situ backups, restores +
 *     cold boots == sim restores, dirty words written <= tracked).
 *
 *  3. Dirty-tracking bound: the freezer's cumulative backup bytes must
 *     never exceed the full-image baseline's for the same trajectory.
 *
 *  4. Image integrity: every strategy's committed image slot must
 *     CRC-verify after the run.
 *
 *  5. Persistence round-trip (every third trial): the active/freezer
 *     pair re-runs against a file-resident arena; the result must
 *     still equal the heap baseline, and after closing and reopening
 *     the arena the committed "ckpt" image must survive with the same
 *     sequence number and a matching CRC.
 */

#ifndef INC_CHECK_STRATEGY_TRIAL_H
#define INC_CHECK_STRATEGY_TRIAL_H

#include "check/diff_harness.h"

namespace inc::check
{

/** Execute one strategy_diff trial; pure in the spec. */
Divergence runStrategyTrial(const TrialSpec &spec);

} // namespace inc::check

#endif // INC_CHECK_STRATEGY_TRIAL_H
