#include "check/program_fuzzer.h"

#include <memory>
#include <string>
#include <vector>

#include "kernels/common.h"
#include "nvp/core.h"
#include "util/logging.h"

namespace inc::check
{

namespace
{

using isa::Reg;

/** Gene kinds; the order is part of the seed contract (shrinking
 *  truncates the genome, it never re-draws earlier genes). */
enum GeneKind : int
{
    kAddB = 0,   ///< A += B
    kAddImm,     ///< A += imm
    kMinuB,      ///< A = minu(A, B)
    kMaxuB,      ///< A = maxu(A, B)
    kSrli,       ///< A >>= sh
    kMulC,       ///< A *= small constant
    kDouble,     ///< A += A
    kOffsetSub,  ///< A = maxu(A, C) - C
    kMonotoneKinds,
    kRevSub = kMonotoneKinds, ///< A = C - A (order-reversing)
    kNumKinds
};

/** Accumulator registers; address/induction registers follow the
 *  kernel convention in kernels/common.h. */
constexpr Reg kAccA = isa::r1;  // AC-flagged accumulator
constexpr Reg kAccB = isa::r2;  // AC-flagged second input byte
constexpr Reg kConst = isa::r7; // exact constants (never AC)
constexpr Reg kBound = isa::r9; // pixel-loop bound
constexpr Reg kAddr = isa::r10; // address scratch

/** Interval + unit-error state of the accumulator during generation. */
struct ValueCert
{
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    int units = 0;
};

/** Intermediate values must stay clear of 16-bit wraparound even after
 *  worst-case perturbation. */
constexpr std::uint32_t kRangeCeiling = 60000;

/** Build the golden closure: run the program itself, precisely, for one
 *  frame on a private core (oracle and golden agree by construction). */
std::function<std::vector<std::uint8_t>(const std::vector<std::uint8_t> &)>
makeGolden(std::shared_ptr<const isa::Program> program,
           core::FrameLayout layout)
{
    return [program, layout](const std::vector<std::uint8_t> &input) {
        util::Rng rng(1);
        nvp::DataMemory mem(rng.split());
        nvp::CoreConfig cfg;
        cfg.approx_alu = false;
        cfg.approx_mem = false;
        nvp::Core core(program.get(), &mem, cfg, rng.split());
        mem.hostWriteBlock(layout.inSlotAddr(0), input);

        // Run frame 0 to its closing markrp (frame register == 1).
        const std::uint64_t guard =
            2000 + 64ull * layout.in_bytes * program->size();
        for (std::uint64_t i = 0; i < guard; ++i) {
            const nvp::StepResult step = core.step();
            if (step.halted ||
                (step.mark_resume && step.resume_frame_value >= 1))
                break;
        }
        return mem.snapshot(layout.outSlotAddr(0), layout.out_bytes);
    };
}

} // namespace

ProgramFuzzer::ProgramFuzzer(FuzzerConfig config) : config_(config)
{
    if (config_.min_body_ops < 0 ||
        config_.max_body_ops < config_.min_body_ops)
        util::fatal("FuzzerConfig body-op bounds are inconsistent");
}

FuzzedProgram
ProgramFuzzer::generate(std::uint64_t seed, int unit_error,
                        bool monotone_only, int body_ops) const
{
    using namespace isa;
    util::Rng rng(seed);

    // Frame geometry: square power-of-two frames within the configured
    // bounds (the slot-base computation requires power-of-two sizes).
    std::vector<int> dims;
    for (int d = 4; d <= config_.max_dim; d *= 2) {
        if (d >= config_.min_dim)
            dims.push_back(d);
    }
    if (dims.empty())
        util::fatal("FuzzerConfig dim bounds admit no power of two");
    const int dim = dims[static_cast<size_t>(
        rng.nextBounded(dims.size()))];
    const auto pixels =
        static_cast<std::uint32_t>(dim) * static_cast<std::uint32_t>(dim);

    FuzzedProgram out;
    out.seed = seed;
    out.monotone = monotone_only;

    kernels::Kernel &k = out.kernel;
    k.name = "fuzz_" + std::to_string(seed);
    k.width = dim;
    k.height = dim;
    k.scene = util::SceneKind::scene;
    k.ac_reg_mask = kernels::regMask({kAccA, kAccB});
    k.match_mask = kernels::regMask({kernels::kColReg});

    const kernels::MemoryPlan plan = kernels::planMemory(pixels, pixels);
    k.layout = plan.layout();

    ProgramBuilder b;
    const Label frame_loop = kernels::emitFrameLoopHead(
        b, plan, k.ac_reg_mask, k.match_mask);

    // Pixel loop: load the pixel byte into A and a second byte (fixed
    // rotation of the linear index) into B, run the genome, store.
    b.ldi(kernels::kColReg, 0);
    b.ldi(kBound, static_cast<std::uint16_t>(pixels));
    const Label px_loop = b.here("px_loop");
    b.add(kAddr, kernels::kInBase, kernels::kColReg);
    b.ld8(kAccA, kAddr, 0);
    const auto delta = static_cast<std::int16_t>(
        rng.nextRange(1, static_cast<std::int64_t>(pixels) - 1));
    b.addi(kAddr, kernels::kColReg, delta);
    b.andi(kAddr, kAddr, static_cast<std::uint16_t>(pixels - 1));
    b.add(kAddr, kAddr, kernels::kInBase);
    b.ld8(kAccB, kAddr, 0);

    // Certificates: each load of AC-region input costs one truncation
    // unit; every subsequent op writing an AC register costs one noise
    // unit and propagates its operands' units per interval arithmetic.
    ValueCert a{0, 255, 1};
    const ValueCert bval{0, 255, 1};
    const int slack = unit_error > 0 ? unit_error : 0;
    const int unit_budget = slack > 0 ? std::max(2, 160 / slack) : 64;

    const int genome_len = static_cast<int>(rng.nextRange(
        config_.min_body_ops, config_.max_body_ops));
    const int emit_limit =
        body_ops >= 0 ? std::min(body_ops, genome_len) : genome_len;
    const int kind_pool = monotone_only ? kMonotoneKinds : kNumKinds;

    for (int i = 0; i < emit_limit; ++i) {
        // Draw kind and operand unconditionally so a truncated genome
        // is a strict prefix of the full one.
        const int kind = static_cast<int>(rng.nextBounded(
            static_cast<std::uint64_t>(kind_pool)));
        const auto operand = static_cast<int>(rng.nextRange(1, 64));

        ValueCert n = a; // tentative post-gene certificate
        switch (kind) {
          case kAddB:
            n.lo += bval.lo;
            n.hi += bval.hi;
            n.units = a.units + bval.units + 1;
            break;
          case kAddImm:
            n.lo += static_cast<std::uint32_t>(operand);
            n.hi += static_cast<std::uint32_t>(operand);
            n.units = a.units + 1;
            break;
          case kMinuB:
            n.lo = std::min(a.lo, bval.lo);
            n.hi = std::min(a.hi, bval.hi);
            n.units = std::max(a.units, bval.units) + 1;
            break;
          case kMaxuB:
            n.lo = std::max(a.lo, bval.lo);
            n.hi = std::max(a.hi, bval.hi);
            n.units = std::max(a.units, bval.units) + 1;
            break;
          case kSrli: {
            const int sh = 1 + operand % 3;
            n.lo >>= sh;
            n.hi >>= sh;
            n.units = a.units + 1;
            break;
          }
          case kMulC: {
            const std::uint32_t c = operand % 2 ? 3 : 2;
            n.lo *= c;
            n.hi *= c;
            n.units = a.units * static_cast<int>(c) + 1;
            break;
          }
          case kDouble:
            n.lo *= 2;
            n.hi *= 2;
            n.units = 2 * a.units + 1;
            break;
          case kOffsetSub: {
            // The maxu guard must sit `slack` above the subtrahend:
            // ALU noise lands on the maxu *result*, so a guard at C
            // exactly would let a noised value dip below C and make
            // the sub wrap through zero.
            const auto c = static_cast<std::uint32_t>(operand);
            const auto guard = c + static_cast<std::uint32_t>(slack);
            n.lo = std::max(a.lo, guard) - c;
            n.hi = std::max(a.hi, guard) - c;
            n.units = a.units + 2;
            break;
          }
          case kRevSub: {
            // C - A with C chosen above A's worst-case reach, so the
            // result never wraps below zero.
            const std::uint32_t c =
                a.hi + static_cast<std::uint32_t>(a.units * slack);
            if (c > 65535)
                continue;
            n.lo = c - a.hi;
            n.hi = c - a.lo;
            n.units = a.units + 1;
            break;
          }
          default:
            continue;
        }
        if (n.units > unit_budget ||
            n.hi + static_cast<std::uint32_t>(n.units * slack) >=
                kRangeCeiling)
            continue; // gene would void the certificate; skip it

        switch (kind) {
          case kAddB: b.add(kAccA, kAccA, kAccB); break;
          case kAddImm:
            b.addi(kAccA, kAccA, static_cast<std::int16_t>(operand));
            break;
          case kMinuB: b.minu(kAccA, kAccA, kAccB); break;
          case kMaxuB: b.maxu(kAccA, kAccA, kAccB); break;
          case kSrli:
            b.srli(kAccA, kAccA,
                   static_cast<std::uint16_t>(1 + operand % 3));
            break;
          case kMulC:
            b.ldi(kConst, operand % 2 ? 3 : 2);
            b.mul(kAccA, kAccA, kConst);
            break;
          case kDouble: b.add(kAccA, kAccA, kAccA); break;
          case kOffsetSub:
            b.ldi(kConst, static_cast<std::uint16_t>(operand + slack));
            b.maxu(kAccA, kAccA, kConst);
            b.ldi(kConst, static_cast<std::uint16_t>(operand));
            b.sub(kAccA, kAccA, kConst);
            break;
          case kRevSub: {
            const std::uint32_t c =
                a.hi + static_cast<std::uint32_t>(a.units * slack);
            b.ldi(kConst, static_cast<std::uint16_t>(c));
            b.sub(kAccA, kConst, kAccA);
            break;
          }
          default: break;
        }
        a = n;
    }

    // Normalize into byte range: shift right until the worst-case value
    // (interval top plus full perturbation slack) fits in [0, 255], so
    // the stored byte never aliases modulo 256.
    std::uint32_t target = 255;
    const auto shift_slack =
        static_cast<std::uint32_t>((a.units + 1) * slack);
    target = shift_slack < target ? target - shift_slack : 8;
    int shift = 0;
    while ((a.hi >> shift) > target)
        ++shift;
    if (shift > 0) {
        b.srli(kAccA, kAccA, static_cast<std::uint16_t>(shift));
        a.lo >>= shift;
        a.hi >>= shift;
        a.units += 1;
    }

    b.add(kAddr, kernels::kOutBase, kernels::kColReg);
    b.st8(kAccA, kAddr, 0);
    b.addi(kernels::kColReg, kernels::kColReg, 1);
    b.bltu(kernels::kColReg, kBound, px_loop);
    kernels::emitFrameLoopTail(b, frame_loop);

    auto program = std::make_shared<const isa::Program>(b.finish());
    k.program = *program;
    k.golden = makeGolden(program, k.layout);
    k.make_input = [](const util::SceneGenerator &scene, int frame) {
        return scene.frame(frame).data();
    };

    out.body_ops = emit_limit;
    out.error_units = a.units;
    return out;
}

} // namespace inc::check
