/**
 * @file
 * The differential fuzzing harness: N seeded trials through the full
 * co-simulator, each checked against the outage-free functional
 * reference and the structural invariants of incidental computing.
 *
 * Invariants checked per trial mode:
 *
 *   exact_recovery — with the noise model off and full-retention
 *     backups, a baseline (no roll-forward, no adoption) run at fixed
 *     bits must produce every completed frame bit-identical to a
 *     crash-free execution over the same input bytes. The primary check
 *     recomputes each completed frame from the input-ring content the
 *     lane actually observed; when that content still equals the
 *     pristine sensor frame, the output is additionally required to
 *     match the precomputed sim::Functional oracle frame.
 *
 *   bounded_error — under the full incidental machinery (roll-forward,
 *     SIMD adoption, history spawning) at dynamic bits in [minbits, 8],
 *     every produced output byte must stay within the program's static
 *     unit-error certificate: |out - golden| <= error_units *
 *     (2^(8-minbits) - 1). Trials pin the sensor input to a static
 *     frame so the bound is sound for lanes that resume across ring
 *     overwrites.
 *
 *   monotone_bits — order-preserving programs run crash-free at
 *     b = 2..8 must satisfy out_b <= out_{b+1} <= golden per byte
 *     (truncation only lowers inputs), with MSE non-increasing in b and
 *     bit-exact equality at b = 8.
 *
 *   rac_merge — DataMemory versioned-cell merges, replayed against a
 *     reference model: assemble() must match the model for each
 *     AssembleMode, re-merging an identical lane contribution must be
 *     idempotent, and write-through arbitration must agree with the
 *     model.
 *
 *   metrics (cross-cutting) — every trial that drives the co-simulator
 *     (exact_recovery, bounded_error) runs with an attached
 *     obs::Observer and, after its primary invariant passes, validates
 *     the cross-metric identities of obs/schema.h (backup/restore
 *     accounting, energy conservation, hot-counter cross-checks).
 *     Observation is non-perturbing by contract, so this rides along
 *     without changing the trial distribution or any result.
 *
 *   arena_recovery — the persistence arena's crash-consistency
 *     contract (src/arena, DESIGN.md §12): a deterministic op script is
 *     first dry-run to measure its log; a fault point is then sampled
 *     at byte granularity and the same script re-run with the arena's
 *     log dying at that byte. Reopening the faulted arena must recover
 *     exactly the state of the crash-free oracle at the last successful
 *     commit — epoch, key/value index, block index, and block contents
 *     under NVM semantics (data writes to a surviving extent persist
 *     even when uncommitted index changes roll back). Every third trial
 *     additionally runs a mini 2-job sweep through a SweepJournal and
 *     requires the partially-journaled, recovered, resumed campaign to
 *     reproduce the uninterrupted campaign's per-job results and merged
 *     metrics byte-for-byte.
 *
 *   batch_lanes — the batch engine's lane-isolation contract
 *     (isa/batch): W fuzzed trials run through one nvp::BatchCore in
 *     SoA lockstep must each be bit-identical — registers, PC, halt
 *     state, instret, cycles and the full data-memory image — to the
 *     same seed run solo through nvp::Core, for a W and per-trial
 *     bits/seeds drawn from the trial stream. Additionally the
 *     divergence-mask invariant: the architectural state a trial
 *     retires (halts) with is byte-frozen for the rest of the batch —
 *     masked lanes are never written.
 *
 *   strategy_diff — the backup-strategy zoo's conformance contract
 *     (sim/strategy, DESIGN.md §14): a fuzzed co-simulator trial runs
 *     once per registered strategy (sim::allStrategies()) over the
 *     same spec, and every strategy's serialized SimResult must equal
 *     the `active` baseline byte-for-byte — strategies are an
 *     observation overlay and may never perturb the simulated
 *     trajectory. The overlay itself is then checked: the ckpt.*
 *     identities of obs/schema.h hold per strategy, the freezer's
 *     dirty-word backup never writes more bytes than the full-image
 *     baseline, and every committed image CRC-verifies. Every third
 *     trial re-runs the active/freezer pair against an arena-backed
 *     store and requires the committed image to survive reopen.
 *
 *   fleet_merge — the fleet campaign service's shard/merge contract
 *     (src/fleet, DESIGN.md §15): a fuzzed mini-sweep is run un-sharded
 *     as the oracle, then split across 2 shards whose results travel
 *     the RESULT wire encoding (fuzzed delivery interleaving, fuzzed
 *     stream fragmentation) into a ResultFolder. The folded per-job
 *     serialized results, status fields and merged metrics JSON must
 *     equal the oracle's byte-for-byte. Every third trial replays
 *     shard 0 from a reopened arena journal (the reassigned-shard warm
 *     restart) and requires the replayed wire frames to be
 *     byte-identical to the fresh run's.
 *
 *   engine_diff (cross-cutting, opt-in via `fuzz --engine-diff`) — a
 *     co-simulator trial whose primary invariant passed re-runs under
 *     every other registered engine (nvp::allExecEngines(): the
 *     reference interpreter and the batch engine) and each run's
 *     serialized SimResult plus metrics JSON must equal the predecoded
 *     run byte-for-byte: no engine may ever drift from the semantic
 *     baseline, on any fuzzed program or mutated trace.
 *
 * A TrialSpec is plain data: everything a trial does is derived from it
 * deterministically, so any failure can be serialized into a repro
 * bundle, replayed bit-exactly, and minimized by bisection over its
 * trace mutations and program genome.
 */

#ifndef INC_CHECK_DIFF_HARNESS_H
#define INC_CHECK_DIFF_HARNESS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "check/trace_mutator.h"
#include "trace/power_trace.h"

namespace inc::check
{

enum class TrialMode : int
{
    exact_recovery = 0,
    bounded_error,
    monotone_bits,
    rac_merge,
    arena_recovery,
    batch_lanes,
    strategy_diff,
    fleet_merge,
};

constexpr int kNumTrialModes = 8;

/** Test-only fault injection; proves the harness catches real bugs. */
enum class BugKind : int
{
    none = 0,
    /** Back up with log-shaped retention while the oracle assumes full
     *  retention: long outages decay AC state the exact-recovery
     *  invariant relies on. */
    leaky_backup,
};

/** Everything one trial does, as plain replayable data. */
struct TrialSpec
{
    std::size_t index = 0;
    std::uint64_t seed = 0; ///< trial master seed (also the trace seed)
    TrialMode mode = TrialMode::exact_recovery;
    int bits = 8;           ///< fixed bits (exact) or minbits (bounded)
    std::uint64_t program_seed = 0;
    int body_ops = -1;      ///< genome prefix length; -1 = full genome
    int profile = 1;        ///< trace::paperProfile index
    std::size_t samples = 6000;
    double frame_period = 50.0; ///< sensor period, 0.1 ms units
    std::vector<MutationOp> mutations;
    BugKind bug = BugKind::none;

    /**
     * Engine-equivalence invariant: after the primary invariant
     * passes, co-simulator trials re-run the same spec under every
     * other registered engine (reference and batch) and require each
     * run's serialized SimResult and metrics JSON to match the
     * predecoded run byte-for-byte (sim/result_io.h).
     */
    bool engine_diff = false;
};

/** First observed invariant violation of a trial (none if !violated). */
struct Divergence
{
    bool violated = false;
    std::string invariant; ///< "exact", "exact_oracle", "bounded", ...
    std::uint32_t frame = 0;
    std::size_t byte = 0;
    int expected = 0;
    int actual = 0;
    std::string detail;
};

/** One failing trial with its artifacts. */
struct TrialFailure
{
    TrialSpec spec;
    Divergence divergence;
    std::string bundle_dir;  ///< empty when no repro dir configured
    TrialSpec minimized;     ///< valid only when minimized_valid
    bool minimized_valid = false;
};

/** Harness configuration (the nvpsim `fuzz` flag surface). */
struct CheckConfig
{
    int trials = 100;
    std::uint64_t master_seed = 1;
    unsigned jobs = 0;          ///< worker threads; 0 = hardware default
    std::size_t trace_samples = 6000;
    std::string repro_dir;      ///< bundle output root; empty = no bundles
    bool minimize = false;
    BugKind inject = BugKind::none;
    bool engine_diff = false;   ///< enable TrialSpec::engine_diff on all trials

    /**
     * Comma-separated mode names (e.g. "arena_recovery" or
     * "exact_recovery,rac_merge"); empty = all modes. Expansion draws
     * candidate specs from the unfiltered stream and keeps the first
     * `trials` whose mode is allowed, so a filtered run executes
     * byte-identical specs to the ones an unfiltered run of the same
     * seed would produce (`fuzz --modes` on a repro seed is exact).
     */
    std::string mode_filter;
};

/** Aggregate outcome of a fuzzing run. */
struct CheckReport
{
    int trials = 0;
    std::array<int, kNumTrialModes> mode_counts{};
    std::vector<TrialFailure> failures;

    bool allOk() const { return failures.empty(); }
    std::string summary() const;
};

const char *modeName(TrialMode mode);
const char *bugName(BugKind bug);

/** Deterministic trial expansion: spec i depends only on master_seed,
 *  trace_samples and i, never on other trials or thread schedule. */
std::vector<TrialSpec> expandTrials(const CheckConfig &config);

/** The mutated power trace a trial runs on (pure in the spec). */
trace::PowerTrace buildTrace(const TrialSpec &spec);

/** Execute one trial; pure in the spec, safe to call concurrently. */
Divergence runTrial(const TrialSpec &spec);

/**
 * Write a self-contained repro bundle under @p dir: repro.txt
 * (key=value spec + divergence), program.s (disassembly), trace.csv
 * (the mutated trace) and mutations.txt. Returns @p dir, or "" on I/O
 * failure.
 */
std::string writeBundle(const std::string &dir, const TrialSpec &spec,
                        const Divergence &divergence);

/** Parse a bundle's repro.txt + mutations.txt back into a spec. */
bool loadBundle(const std::string &dir, TrialSpec *out);

/**
 * Shrink a failing spec: ddmin-style bisection over the mutation list,
 * then the shortest failing genome prefix. Returns the smallest spec
 * observed to still fail (the input spec itself in the worst case).
 */
TrialSpec minimizeTrial(const TrialSpec &spec);

/** Expand, execute in parallel, bundle and optionally minimize. */
CheckReport runCheck(const CheckConfig &config);

} // namespace inc::check

#endif // INC_CHECK_DIFF_HARNESS_H
