#include "trace/trace_generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace inc::trace
{

HarvesterProfile
paperProfile(int index)
{
    HarvesterProfile p;
    p.name = util::format("Power Profile %d", index);
    // Profiles 1 and 4 model higher-average-power days (brisk activity);
    // 2, 3 and 5 model low-power days, matching the paper's Sec. 8.6
    // guidance ("linear backup when average power is expected to be higher
    // (profiles 1, 4), parabola when low (profiles 2, 3, 5)").
    switch (index) {
      case 1:
        p.activity = 0.68;
        p.burst_mean_sec = 0.35;
        p.rest_mean_sec = 0.17;
        p.pulse_period_sec = 4.5e-3;
        p.pulse_width_sec = 1.2e-3;
        p.pulse_amp_uw = 250.0;
        break;
      case 2:
        p.activity = 0.46;
        p.burst_mean_sec = 0.23;
        p.rest_mean_sec = 0.27;
        p.pulse_period_sec = 4.5e-3;
        p.pulse_width_sec = 1.0e-3;
        p.pulse_amp_uw = 200.0;
        break;
      case 3:
        p.activity = 0.40;
        p.burst_mean_sec = 0.20;
        p.rest_mean_sec = 0.30;
        p.pulse_period_sec = 4.5e-3;
        p.pulse_width_sec = 1.0e-3;
        p.pulse_amp_uw = 180.0;
        break;
      case 4:
        p.activity = 0.62;
        p.burst_mean_sec = 0.30;
        p.rest_mean_sec = 0.19;
        p.pulse_period_sec = 4.5e-3;
        p.pulse_width_sec = 1.2e-3;
        p.pulse_amp_uw = 230.0;
        break;
      case 5:
        p.activity = 0.42;
        p.burst_mean_sec = 0.21;
        p.rest_mean_sec = 0.29;
        p.pulse_period_sec = 4.0e-3;
        p.pulse_width_sec = 1.0e-3;
        p.pulse_amp_uw = 130.0;
        p.active_floor_uw = 8.0;
        break;
      default:
        util::fatal("paperProfile index must be 1..5, got %d", index);
    }
    return p;
}

TraceGenerator::TraceGenerator(HarvesterProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), rng_(seed)
{
    if (profile_.pulse_period_sec <= 0 || profile_.pulse_width_sec <= 0 ||
        profile_.burst_mean_sec <= 0 || profile_.rest_mean_sec <= 0) {
        util::fatal("HarvesterProfile durations must be positive");
    }
}

PowerTrace
TraceGenerator::generate(std::size_t num_samples)
{
    std::vector<double> samples(num_samples, 0.0);

    const double dt = kSamplePeriodSec;
    bool active = rng_.nextBool(
        profile_.burst_mean_sec /
        (profile_.burst_mean_sec + profile_.rest_mean_sec));
    double mode_left = rng_.nextExponential(
        active ? profile_.burst_mean_sec : profile_.rest_mean_sec);

    // Current pulse: time since pulse start (sec), width, amplitude.
    double pulse_t = -1.0; // negative: no pulse in flight
    double pulse_width = 0.0;
    double pulse_amp = 0.0;
    double next_pulse_in = 0.0;

    for (std::size_t i = 0; i < num_samples; ++i) {
        // Activity state machine.
        mode_left -= dt;
        if (mode_left <= 0.0) {
            active = !active;
            mode_left = rng_.nextExponential(
                active ? profile_.burst_mean_sec : profile_.rest_mean_sec);
            if (active)
                next_pulse_in =
                    rng_.nextExponential(profile_.pulse_period_sec * 0.5);
        }

        double p = active ? profile_.active_floor_uw
                          : profile_.idle_floor_uw;
        // Small multiplicative jitter on the floor.
        p *= 0.8 + 0.4 * rng_.nextDouble();

        if (active) {
            if (pulse_t < 0.0) {
                next_pulse_in -= dt;
                if (next_pulse_in <= 0.0) {
                    pulse_t = 0.0;
                    pulse_width = std::max(
                        2.0 * dt,
                        profile_.pulse_width_sec *
                            (0.6 + 0.8 * rng_.nextDouble()));
                    pulse_amp = std::min(
                        profile_.peak_clamp_uw,
                        rng_.nextExponential(profile_.pulse_amp_uw));
                }
            }
            if (pulse_t >= 0.0) {
                // Half-sine pulse shape, one per magnet pass.
                p += pulse_amp * std::sin(M_PI * pulse_t / pulse_width);
                pulse_t += dt;
                if (pulse_t >= pulse_width) {
                    pulse_t = -1.0;
                    // Gap until next pulse (heavy-ish jitter around the
                    // nominal plucking period).
                    const double gap =
                        profile_.pulse_period_sec - pulse_width;
                    next_pulse_in = std::max(
                        dt, rng_.nextExponential(std::max(dt, gap)));
                }
            }
        }

        samples[i] = std::clamp(p, 0.0, profile_.peak_clamp_uw);
    }

    return PowerTrace(std::move(samples), profile_.name);
}

PowerTrace
composeSchedule(const std::vector<ScheduleSegment> &segments,
                std::uint64_t seed, const std::string &name)
{
    util::Rng master(seed);
    std::vector<double> samples;
    for (const ScheduleSegment &segment : segments) {
        if (segment.seconds <= 0)
            util::fatal("schedule segment '%s' has no duration",
                        segment.activity.c_str());
        TraceGenerator gen(paperProfile(segment.profile), master.next());
        const PowerTrace part = gen.generate(
            static_cast<std::size_t>(segment.seconds / kSamplePeriodSec));
        samples.insert(samples.end(), part.samples().begin(),
                       part.samples().end());
    }
    return PowerTrace(std::move(samples), name);
}

std::vector<ScheduleSegment>
typicalDay(double total_seconds)
{
    // Weights sum to 1; profiles per the Sec. 8.6 activity mapping
    // (1 and 4 are high-activity periods, 2/3/5 low).
    const ScheduleSegment day[] = {
        {1, 0.10, "morning bustle"}, {4, 0.15, "commute walk"},
        {5, 0.25, "desk, morning"},  {1, 0.10, "lunch walk"},
        {3, 0.25, "desk, afternoon"}, {4, 0.10, "errands"},
        {2, 0.05, "evening wind-down"}};
    std::vector<ScheduleSegment> segments;
    for (const ScheduleSegment &s : day) {
        segments.push_back(
            {s.profile, s.seconds * total_seconds, s.activity});
    }
    return segments;
}

std::vector<PowerTrace>
standardProfiles(std::size_t num_samples, std::uint64_t master_seed)
{
    util::Rng master(master_seed);
    std::vector<PowerTrace> traces;
    traces.reserve(5);
    for (int i = 1; i <= 5; ++i) {
        TraceGenerator gen(paperProfile(i), master.next());
        traces.push_back(gen.generate(num_samples));
    }
    return traces;
}

} // namespace inc::trace
