/**
 * @file
 * Synthesis of "watch" harvested-power traces.
 *
 * The paper evaluates on five measured traces from a wrist-worn unbalanced-
 * ring rotational harvester (Fig. 2). We do not have those captures, so the
 * generator synthesizes traces calibrated to the paper's published
 * statistics:
 *
 *  - average power 10-40 uW over daily activity (Sec. 2.2),
 *  - instantaneous spikes up to ~2000 uW (Fig. 2),
 *  - 1000-2000 power emergencies per 10 s window at a 33 uW operating
 *    threshold (Sec. 2.2),
 *  - outage durations from sub-ms to ~300 ms with a rapidly decaying
 *    frequency distribution (Fig. 3).
 *
 * The model is a two-level process: an activity state machine alternates
 * arm-swing bursts with idle rests; within a burst, harvested power is a
 * train of half-sine pulses (one per magnet pass / plucking event) whose
 * amplitude is heavy-tailed. All draws come from a seeded Rng.
 */

#ifndef INC_TRACE_TRACE_GENERATOR_H
#define INC_TRACE_TRACE_GENERATOR_H

#include <cstdint>

#include "trace/power_trace.h"
#include "util/rng.h"

namespace inc::trace
{

/** Tunable parameters of the synthetic harvester model. */
struct HarvesterProfile
{
    /** Display name ("Power Profile 1" ...). */
    std::string name;

    /**
     * Target fraction of time in the active (swinging) state, [0,1].
     * Informational: the realized fraction follows from
     * burst_mean_sec / (burst_mean_sec + rest_mean_sec); paperProfile()
     * keeps the two consistent and tests verify the realized value.
     */
    double activity = 0.5;

    /** Mean duration of an active burst, seconds. */
    double burst_mean_sec = 1.0;

    /** Mean duration of an idle rest, seconds. */
    double rest_mean_sec = 1.0;

    /** Mean pulse period while active, seconds (one pulse per pass). */
    double pulse_period_sec = 5e-3;

    /** Mean pulse width, seconds. */
    double pulse_width_sec = 1.2e-3;

    /** Mean pulse peak amplitude, uW (exponential tail). */
    double pulse_amp_uw = 450.0;

    /** Hard clamp on instantaneous power, uW. */
    double peak_clamp_uw = 2000.0;

    /** Baseline trickle while active (parasitic vibration), uW. */
    double active_floor_uw = 12.0;

    /** Baseline trickle while idle, uW. */
    double idle_floor_uw = 2.0;
};

/**
 * Returns the parameterization for one of the five paper-like profiles
 * (1-based @p index, matching Fig. 2's numbering). Profiles 1 and 4 are
 * higher-average-power days; 2, 3 and 5 are low-power days, as the paper's
 * policy guidance in Sec. 8.6 implies.
 */
HarvesterProfile paperProfile(int index);

/** Synthesizes PowerTrace instances from a HarvesterProfile. */
class TraceGenerator
{
  public:
    TraceGenerator(HarvesterProfile profile, std::uint64_t seed);

    /** Generate @p num_samples 0.1 ms samples. */
    PowerTrace generate(std::size_t num_samples);

    const HarvesterProfile &profile() const { return profile_; }

  private:
    HarvesterProfile profile_;
    util::Rng rng_;
};

/**
 * Convenience: the standard evaluation trace set — five 10 s profiles
 * (100,000 samples each) with a fixed master seed, or fewer samples for
 * quick runs.
 */
std::vector<PowerTrace> standardProfiles(
    std::size_t num_samples = 100000, std::uint64_t master_seed = 2017);

/** One segment of a wearer's day. */
struct ScheduleSegment
{
    int profile = 1;        ///< paperProfile index for this activity
    double seconds = 10.0;  ///< segment duration
    std::string activity;   ///< display label ("commute", "desk", ...)
};

/**
 * Compose a day-in-the-life trace by concatenating activity segments,
 * each synthesized from its profile ("daily life use", Fig. 2's
 * framing). Segments are seeded independently from @p seed.
 */
PowerTrace composeSchedule(const std::vector<ScheduleSegment> &segments,
                           std::uint64_t seed,
                           const std::string &name = "daily schedule");

/**
 * A representative default day: wake-up bustle, commute walk, desk
 * stillness, lunch walk, afternoon desk, evening exercise — scaled so
 * the whole schedule lasts @p total_seconds.
 */
std::vector<ScheduleSegment> typicalDay(double total_seconds = 60.0);

} // namespace inc::trace

#endif // INC_TRACE_TRACE_GENERATOR_H
