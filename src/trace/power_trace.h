/**
 * @file
 * Harvested-power traces.
 *
 * A PowerTrace is a sequence of instantaneous harvested power samples in
 * microwatts, sampled every 0.1 ms — the same representation the paper's
 * system-level simulator consumes (Sec. 7). Traces can be synthesized
 * (trace_generator.h) or loaded from CSV captures.
 */

#ifndef INC_TRACE_POWER_TRACE_H
#define INC_TRACE_POWER_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace inc::trace
{

/** Duration of one trace sample in seconds (0.1 ms). */
constexpr double kSamplePeriodSec = 1e-4;

/** Same, in the paper's "0.1ms" display unit. */
constexpr double kSamplePeriodTenthMs = 1.0;

/** A harvested-power trace: microwatt samples every 0.1 ms. */
class PowerTrace
{
  public:
    PowerTrace() = default;
    explicit PowerTrace(std::vector<double> samples_uw,
                        std::string name = "");

    /** Number of 0.1 ms samples. */
    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Power in uW at sample @p i (clamped to the last sample). */
    double at(std::size_t i) const;

    /** Total trace duration in seconds. */
    double durationSec() const;

    /** Mean power in uW. */
    double meanPower() const;

    /** Peak power in uW. */
    double peakPower() const;

    /** Total harvestable energy over the trace in microjoules. */
    double totalEnergyUj() const;

    const std::vector<double> &samples() const { return samples_; }
    const std::string &name() const { return name_; }

    /** Copy with every sample multiplied by @p factor (harvester
     *  strength calibration). */
    PowerTrace scaled(double factor) const;

    /**
     * Copy resampled from a capture period of @p src_period_sec to the
     * library's 0.1 ms grid (linear interpolation). Use when loading
     * external captures taken at other rates.
     */
    PowerTrace resampled(double src_period_sec) const;

    /** Save as a one-column CSV ("power_uw" header). */
    bool saveCsv(const std::string &path) const;

    /** Load from a one-column CSV; returns empty trace on error. */
    static PowerTrace loadCsv(const std::string &path,
                              const std::string &name = "");

  private:
    std::vector<double> samples_;
    std::string name_;
};

} // namespace inc::trace

#endif // INC_TRACE_POWER_TRACE_H
