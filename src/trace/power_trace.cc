#include "trace/power_trace.h"

#include <algorithm>
#include <numeric>

#include "util/csv.h"
#include "util/logging.h"

namespace inc::trace
{

PowerTrace::PowerTrace(std::vector<double> samples_uw, std::string name)
    : samples_(std::move(samples_uw)), name_(std::move(name))
{
    for (double &s : samples_)
        s = std::max(0.0, s);
}

double
PowerTrace::at(std::size_t i) const
{
    if (samples_.empty())
        return 0.0;
    if (i >= samples_.size())
        i = samples_.size() - 1;
    return samples_[i];
}

double
PowerTrace::durationSec() const
{
    return static_cast<double>(samples_.size()) * kSamplePeriodSec;
}

double
PowerTrace::meanPower() const
{
    if (samples_.empty())
        return 0.0;
    const double sum =
        std::accumulate(samples_.begin(), samples_.end(), 0.0);
    return sum / static_cast<double>(samples_.size());
}

double
PowerTrace::peakPower() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
PowerTrace::totalEnergyUj() const
{
    // uW * s = uJ
    double e = 0.0;
    for (double s : samples_)
        e += s * kSamplePeriodSec;
    return e;
}

PowerTrace
PowerTrace::scaled(double factor) const
{
    if (factor < 0)
        util::fatal("PowerTrace::scaled factor must be non-negative");
    std::vector<double> samples = samples_;
    for (double &s : samples)
        s *= factor;
    return PowerTrace(std::move(samples), name_);
}

PowerTrace
PowerTrace::resampled(double src_period_sec) const
{
    if (src_period_sec <= 0)
        util::fatal("PowerTrace::resampled needs a positive period");
    if (samples_.empty())
        return {};
    const double duration =
        static_cast<double>(samples_.size()) * src_period_sec;
    const auto out_len =
        static_cast<std::size_t>(duration / kSamplePeriodSec);
    std::vector<double> out;
    out.reserve(out_len);
    for (std::size_t i = 0; i < out_len; ++i) {
        const double t =
            static_cast<double>(i) * kSamplePeriodSec / src_period_sec;
        const auto lo = static_cast<std::size_t>(t);
        const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
        const double frac = t - static_cast<double>(lo);
        out.push_back(samples_[std::min(lo, samples_.size() - 1)] *
                          (1.0 - frac) +
                      samples_[hi] * frac);
    }
    return PowerTrace(std::move(out), name_);
}

bool
PowerTrace::saveCsv(const std::string &path) const
{
    util::CsvWriter w;
    w.setHeader({"power_uw"});
    for (double s : samples_)
        w.addRow({util::format("%.3f", s)});
    return w.write(path);
}

PowerTrace
PowerTrace::loadCsv(const std::string &path, const std::string &name)
{
    const auto rows = util::readCsv(path);
    if (rows.empty())
        return {};
    std::vector<double> samples;
    samples.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        if (rows[i].empty())
            continue;
        // Skip a non-numeric header row.
        char *end = nullptr;
        const double v = std::strtod(rows[i][0].c_str(), &end);
        if (end == rows[i][0].c_str()) {
            if (i == 0)
                continue;
            util::warn("non-numeric cell in %s row %zu", path.c_str(), i);
            continue;
        }
        samples.push_back(v);
    }
    return PowerTrace(std::move(samples), name);
}

} // namespace inc::trace
