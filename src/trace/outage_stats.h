/**
 * @file
 * Power-outage extraction and statistics (paper Figs. 2 and 3).
 *
 * An "outage" (power emergency) is a maximal run of samples whose power is
 * below the processor operation threshold (33 uW in the paper). Outage
 * durations drive the retention-time-shaping analysis: a backup survives an
 * outage only if every needed bit's shaped retention exceeds the outage
 * duration.
 */

#ifndef INC_TRACE_OUTAGE_STATS_H
#define INC_TRACE_OUTAGE_STATS_H

#include <cstdint>
#include <vector>

#include "trace/power_trace.h"
#include "util/stats.h"

namespace inc::trace
{

/** Processor operation threshold from the paper, uW. */
constexpr double kOperationThresholdUw = 33.0;

/** One below-threshold run. */
struct Outage
{
    std::size_t start_sample;   ///< first below-threshold sample
    std::size_t length_samples; ///< run length (0.1 ms units)

    double durationTenthMs() const
    {
        return static_cast<double>(length_samples);
    }
};

/** Summary of a trace's outage behaviour. */
struct OutageStats
{
    std::vector<Outage> outages;
    double threshold_uw = kOperationThresholdUw;
    std::size_t trace_samples = 0;

    /** Number of power emergencies. */
    std::size_t count() const { return outages.size(); }

    /** Emergencies per 10 s window. */
    double emergenciesPer10s() const;

    /** Fraction of samples at or above threshold. */
    double aboveThresholdFraction() const;

    /** Longest outage in 0.1 ms units. */
    double maxDurationTenthMs() const;

    /** Mean outage duration in 0.1 ms units. */
    double meanDurationTenthMs() const;

    /**
     * Histogram of outage durations (0.1 ms bins grouped into @p bins
     * equal-width bins over [0, max]); reproduces Fig. 3 right.
     */
    util::Histogram durationHistogram(int bins = 30) const;

    /**
     * Fraction of outages with duration <= @p tenth_ms: the probability a
     * backup with uniform retention @p tenth_ms survives a random outage.
     */
    double survivalFraction(double tenth_ms) const;
};

/** Extract outages from @p trace at the given threshold. */
OutageStats analyzeOutages(const PowerTrace &trace,
                           double threshold_uw = kOperationThresholdUw);

} // namespace inc::trace

#endif // INC_TRACE_OUTAGE_STATS_H
