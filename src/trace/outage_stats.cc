#include "trace/outage_stats.h"

#include <algorithm>

namespace inc::trace
{

double
OutageStats::emergenciesPer10s() const
{
    if (trace_samples == 0)
        return 0.0;
    const double windows =
        static_cast<double>(trace_samples) * kSamplePeriodSec / 10.0;
    return windows > 0.0 ? static_cast<double>(outages.size()) / windows
                         : 0.0;
}

double
OutageStats::aboveThresholdFraction() const
{
    if (trace_samples == 0)
        return 0.0;
    std::size_t below = 0;
    for (const Outage &o : outages)
        below += o.length_samples;
    return 1.0 - static_cast<double>(below) /
                     static_cast<double>(trace_samples);
}

double
OutageStats::maxDurationTenthMs() const
{
    double m = 0.0;
    for (const Outage &o : outages)
        m = std::max(m, o.durationTenthMs());
    return m;
}

double
OutageStats::meanDurationTenthMs() const
{
    if (outages.empty())
        return 0.0;
    double sum = 0.0;
    for (const Outage &o : outages)
        sum += o.durationTenthMs();
    return sum / static_cast<double>(outages.size());
}

util::Histogram
OutageStats::durationHistogram(int bins) const
{
    const double hi = std::max(1.0, maxDurationTenthMs());
    util::Histogram h(0.0, hi, bins);
    for (const Outage &o : outages)
        h.add(o.durationTenthMs());
    return h;
}

double
OutageStats::survivalFraction(double tenth_ms) const
{
    if (outages.empty())
        return 1.0;
    std::size_t covered = 0;
    for (const Outage &o : outages) {
        if (o.durationTenthMs() <= tenth_ms)
            ++covered;
    }
    return static_cast<double>(covered) /
           static_cast<double>(outages.size());
}

OutageStats
analyzeOutages(const PowerTrace &trace, double threshold_uw)
{
    OutageStats stats;
    stats.threshold_uw = threshold_uw;
    stats.trace_samples = trace.size();

    bool in_outage = false;
    std::size_t start = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const bool below = trace.at(i) < threshold_uw;
        if (below && !in_outage) {
            in_outage = true;
            start = i;
        } else if (!below && in_outage) {
            in_outage = false;
            stats.outages.push_back({start, i - start});
        }
    }
    if (in_outage)
        stats.outages.push_back({start, trace.size() - start});
    return stats;
}

} // namespace inc::trace
