/**
 * @file
 * Retention-time-shaping policies (paper Sec. 3.2, Eq. 1-3, Fig. 5).
 *
 * Approximate backup writes each bit of an 8-bit datum with a retention
 * time that grows from the least significant bit (index 1) to the most
 * significant bit (index 8):
 *
 *   linear   : T(B) = 427*B - 426
 *   log      : T(B) = 4^(B-1) + 9
 *   parabola : T(B) = 61*B^2 + 976*B - 905
 *
 * with T in 0.1 ms units. The log policy frees the most write energy (and
 * suits noise-tolerant kernels); parabola is the most conservative for
 * kernels that degrade sharply below 4 bits; linear suits most kernels
 * (paper Sec. 3.2 and Sec. 8.6).
 */

#ifndef INC_NVM_RETENTION_POLICY_H
#define INC_NVM_RETENTION_POLICY_H

#include <array>
#include <string>

#include "nvm/stt_model.h"

namespace inc::nvm
{

/** Retention-shaping policy selector. */
enum class RetentionPolicy
{
    full,     ///< all bits at the 1-day baseline (precise NVP backup)
    linear,   ///< Eq. 1
    log,      ///< Eq. 2
    parabola  ///< Eq. 3
};

/** Human-readable policy name. */
std::string policyName(RetentionPolicy policy);

/** Parse a policy name ("full", "linear", "log", "parabola"). */
RetentionPolicy policyFromName(const std::string &name);

/**
 * Retention time in 0.1 ms units for bit @p bit_index (1 = LSB .. 8 = MSB)
 * under @p policy.
 */
double retentionTenthMs(RetentionPolicy policy, int bit_index);

/** Same, in seconds. */
double retentionSec(RetentionPolicy policy, int bit_index);

/**
 * Precomputed per-policy write-energy table: energy to write one 8-bit
 * word (all eight bits at their shaped retentions) and per-bit energies,
 * derived from an SttModel. Used by the backup-energy accounting.
 */
class RetentionEnergyTable
{
  public:
    explicit RetentionEnergyTable(const SttModel &model = SttModel());

    /** Energy in fJ to write bit @p bit_index (1..8) under @p policy. */
    double bitEnergyFj(RetentionPolicy policy, int bit_index) const;

    /** Energy in fJ to write a full 8-bit word under @p policy. */
    double wordEnergyFj(RetentionPolicy policy) const;

    /** Word-energy saving of @p policy relative to the full baseline. */
    double wordSaving(RetentionPolicy policy) const;

  private:
    static constexpr int kNumPolicies = 4;
    std::array<std::array<double, 8>, kNumPolicies> bit_energy_fj_;
};

} // namespace inc::nvm

#endif // INC_NVM_RETENTION_POLICY_H
