/**
 * @file
 * STT-RAM write-current / retention-time device model (paper Fig. 4).
 *
 * The paper exploits the STT-RAM property that retention time is
 * exponential in the thermal stability factor Delta, while the write
 * current needed to switch a cell grows with Delta and shrinks with pulse
 * width. Relaxing retention from 1 day to 10 ms therefore saves ~77 % of
 * write energy (Sec. 3.2).
 *
 * We model both switching regimes (refs [12, 58, 63] of the paper):
 *
 *  - precessional (ns pulses):  I(tw) = Ic0(Delta) * (1 + tau_c / tw)
 *  - thermal activation (long): I(tw) = Ic0(Delta) * (1 - ln(tw/tau0)/Delta)
 *
 * with Delta(T_ret) = ln(T_ret / tau0), tau0 = 1 ns, and
 * Ic0(Delta) = I_ref * (Delta / Delta_ref)^gamma. gamma is calibrated so
 * that the 1 day -> 10 ms relaxation saves exactly the paper's 77 % of
 * write energy at the nominal pulse width.
 */

#ifndef INC_NVM_STT_MODEL_H
#define INC_NVM_STT_MODEL_H

namespace inc::nvm
{

/** Named retention durations used in the paper's Fig. 4, in seconds. */
constexpr double kRetention10ms = 10e-3;
constexpr double kRetention1s = 1.0;
constexpr double kRetention1min = 60.0;
constexpr double kRetention1day = 86400.0;

/** Parameters of the STT-RAM cell model. */
struct SttParams
{
    double tau0_sec = 1e-9;      ///< attempt period (1 ns)
    double i_ref_ua = 120.0;     ///< critical current at Delta_ref, uA
    double delta_ref = 32.0;     ///< reference thermal stability (~1 day)
    double gamma = 1.0672;       ///< Ic0 ~ Delta^gamma (calibrated)
    double tau_c_ns = 1.0;       ///< precessional constant, ns
    double cell_resistance_ohm = 2000.0;
    double nominal_pulse_ns = 3.0; ///< operating pulse width
};

/**
 * Device presets. The paper notes the same retention/write-energy
 * trade-off exists in ReRAM, PCRAM and FeRAM (Sec. 4, refs [42, 56, 72])
 * and that its dynamic retention control extends to them; these presets
 * re-parameterize the same two-regime model for those device classes.
 * STT-RAM remains the default ("chosen mainly for endurance concerns
 * for the backup rate associated with this specific energy harvester",
 * footnote 1).
 */
SttParams sttDefaultParams();
/** ReRAM: higher cell resistance, slower but lower-current switching. */
SttParams reramParams();
/** FeRAM: polarization switching — fast, low current, weaker
 *  retention/current coupling. */
SttParams feramParams();
/** PCRAM: high programming current, strongly retention-coupled. */
SttParams pcramParams();

/** Analytic STT-RAM write model. */
class SttModel
{
  public:
    explicit SttModel(SttParams params = {});

    const SttParams &params() const { return params_; }

    /** Thermal stability factor for a retention target in seconds. */
    double thermalStability(double retention_sec) const;

    /** Critical current Ic0 in uA for a retention target. */
    double criticalCurrentUa(double retention_sec) const;

    /**
     * Write current in uA required to switch within @p pulse_ns for a cell
     * provisioned for @p retention_sec. Combines both regimes by taking
     * the max (the binding constraint).
     */
    double writeCurrentUa(double pulse_ns, double retention_sec) const;

    /** Per-bit write energy in femtojoules: I^2 * R * tw. */
    double writeEnergyFj(double pulse_ns, double retention_sec) const;

    /** Write energy at the nominal pulse width. */
    double writeEnergyFj(double retention_sec) const;

    /**
     * Energy-saving fraction of writing at @p retention_sec relative to
     * the 1-day baseline (0.77 for 10 ms with default calibration).
     */
    double savingVsBaseline(double retention_sec) const;

  private:
    SttParams params_;
};

} // namespace inc::nvm

#endif // INC_NVM_STT_MODEL_H
