/**
 * @file
 * Retention-tracked nonvolatile byte array.
 *
 * Backs both the NVP's backup store and the approximable ("incidental")
 * data regions. Every byte carries the retention policy it was written
 * under and its write timestamp; when a byte is read, any bit whose shaped
 * retention has been outlived since the write settles into a random state
 * (Bernoulli 1/2), exactly once. Per-bit-index violation counters feed the
 * Fig. 22 analysis.
 *
 * Retention for a policy is monotonically increasing in bit index, so
 * "which bits expired" is a single cutoff index per (policy, age).
 */

#ifndef INC_NVM_NVM_ARRAY_H
#define INC_NVM_NVM_ARRAY_H

#include <array>
#include <cstdint>
#include <vector>

#include "nvm/retention_policy.h"
#include "util/rng.h"

namespace inc::nvm
{

/** Per-bit retention-violation counters (index 0 -> bit 1 = LSB). */
struct RetentionFailureCounts
{
    std::array<std::uint64_t, 8> violations{}; ///< expired bit events
    std::array<std::uint64_t, 8> flips{};      ///< of those, value changed

    void reset();
    std::uint64_t totalViolations() const;
};

/** Retention-tracked NVM byte array with lazy decay. */
class NvmArray
{
  public:
    /**
     * @param size  array size in bytes
     * @param rng   seeded generator for decay randomization
     */
    NvmArray(std::size_t size, util::Rng rng);

    std::size_t size() const { return bytes_.size(); }

    /**
     * Declare the retention policy used for writes into
     * [@p addr, @p addr + @p len). Default everywhere: full retention.
     */
    void setRegionPolicy(std::size_t addr, std::size_t len,
                         RetentionPolicy policy);

    /** Policy governing writes to @p addr. */
    RetentionPolicy regionPolicy(std::size_t addr) const;

    /**
     * Write @p value at @p addr at time @p now (0.1 ms units). Returns the
     * write energy in fJ under the region's policy.
     */
    double write(std::size_t addr, std::uint8_t value, double now);

    /**
     * Read @p addr at time @p now, settling any newly expired bits first.
     */
    std::uint8_t read(std::size_t addr, double now);

    /** Read without decay (debug / golden checks only). */
    std::uint8_t peek(std::size_t addr) const;

    /** Decay statistics accumulated so far. */
    const RetentionFailureCounts &failures() const { return failures_; }
    void resetFailures() { failures_.reset(); }

    /** Total write energy charged so far, fJ. */
    double totalWriteEnergyFj() const { return write_energy_fj_; }
    void resetEnergy() { write_energy_fj_ = 0.0; }

    /**
     * Highest bit index (1..8) whose shaped retention under @p policy is
     * below @p age_tenth_ms; 0 if none expired.
     */
    static int expiredCutoff(RetentionPolicy policy, double age_tenth_ms);

  private:
    struct Meta
    {
        double write_time = 0.0;     ///< 0.1 ms units
        std::uint8_t policy = 0;     ///< RetentionPolicy
        std::uint8_t expired_upto = 0; ///< bits 1..N already settled
    };

    void settle(std::size_t addr, double now);

    std::vector<std::uint8_t> bytes_;
    std::vector<Meta> meta_;
    std::vector<std::uint8_t> region_policy_;
    util::Rng rng_;
    RetentionFailureCounts failures_;
    RetentionEnergyTable energy_table_;
    double write_energy_fj_ = 0.0;
};

} // namespace inc::nvm

#endif // INC_NVM_NVM_ARRAY_H
