#include "nvm/write_driver.h"

#include <cmath>

#include "util/logging.h"

namespace inc::nvm
{

WriteDriver::WriteDriver(SttModel model, double clock_ns)
    : model_(std::move(model)), clock_ns_(clock_ns)
{
    if (clock_ns_ <= 0)
        util::fatal("WriteDriver counter clock must be positive");

    // Provision the mirror taps geometrically between the currents needed
    // for the shortest (10 ms) and longest (1 day) retentions at the
    // extremes of the timed-pulse range. The paper notes the total current
    // variation from 1 day to 10 ms is < 3x, so 8 taps give fine steps.
    const double longest_pulse = clock_ns_ * maxCount();
    const double i_lo =
        model_.writeCurrentUa(longest_pulse, kRetention10ms);
    const double i_hi = model_.writeCurrentUa(clock_ns_, kRetention1day);
    const double ratio = std::pow(i_hi / i_lo, 1.0 / (numTaps() - 1));
    double current = i_lo;
    for (auto &tap : taps_ua_) {
        tap = current;
        current *= ratio;
    }
}

double
WriteDriver::tapCurrentUa(int index) const
{
    if (index < 0 || index >= numTaps())
        util::panic("tap index out of range: %d", index);
    return taps_ua_[static_cast<size_t>(index)];
}

WritePoint
WriteDriver::selectOperatingPoint(double retention_sec) const
{
    WritePoint best;
    double best_energy = 0.0;
    for (int tap = 0; tap < numTaps(); ++tap) {
        const double i_ua = taps_ua_[static_cast<size_t>(tap)];
        for (int count = 1; count <= maxCount(); ++count) {
            const double pulse_ns = clock_ns_ * count;
            const double needed =
                model_.writeCurrentUa(pulse_ns, retention_sec);
            if (i_ua + 1e-9 < needed)
                continue;
            const double i_amp = i_ua * 1e-6;
            const double energy_fj =
                i_amp * i_amp * model_.params().cell_resistance_ohm *
                pulse_ns * 1e-9 * 1e15;
            if (!best.feasible || energy_fj < best_energy) {
                best = {tap, count, i_ua, pulse_ns, energy_fj, true};
                best_energy = energy_fj;
            }
        }
    }
    return best;
}

int
WriteDriver::overheadTransistors() const
{
    // Current mirror: reference branch + 8 output branches, ~3 devices
    // each accounting for the 2-3x area factor the paper cites.
    const int mirror = 3 * (numTaps() + 1);
    // MUX array: two 8:1 muxes (Bit / BitB steering), ~2 devices per leg.
    const int muxes = 2 * 2 * numTaps();
    // 4-bit counter: 4 flip-flops at ~8 devices plus increment logic.
    const int counter = 4 * 8 + 12;
    // 8 per-column comparators, ~12 devices each.
    const int comparators = 8 * 12;
    return mirror + muxes + counter + comparators;
}

} // namespace inc::nvm
