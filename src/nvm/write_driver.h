/**
 * @file
 * Behavioural model of the dynamic-retention write circuit (paper Fig. 7).
 *
 * The proposed circuit controls retention through two knobs:
 *
 *  - write current, selected from a small bank of current-mirror taps
 *    (I1..I8, distinct PMOS W/L ratios) through a MUX array driven by the
 *    "Write Current Configuration";
 *  - write pulse width, terminated by comparing a high-frequency 4-bit
 *    counter against a per-column threshold in the nonvolatile "Write Time
 *    Configuration" (once the counter reaches the threshold the GND
 *    connection is broken).
 *
 * Given a target retention, the driver picks the (tap, counter) pair with
 * the lowest write energy whose current suffices to switch the cell within
 * the timed pulse. The paper bounds the overhead at < 200 transistors per
 * STT-RAM sub-array; overheadTransistors() reports our model's estimate.
 */

#ifndef INC_NVM_WRITE_DRIVER_H
#define INC_NVM_WRITE_DRIVER_H

#include <array>

#include "nvm/stt_model.h"

namespace inc::nvm
{

/** A chosen write operating point. */
struct WritePoint
{
    int tap_index = 0;      ///< current-mirror tap, 0..7 (I1..I8)
    int counter_value = 0;  ///< 4-bit pulse-termination count, 1..15
    double current_ua = 0.0;
    double pulse_ns = 0.0;
    double energy_fj = 0.0;
    bool feasible = false;  ///< false if no (tap, counter) pair suffices
};

/** Behavioural Fig. 7 write-driver model. */
class WriteDriver
{
  public:
    /**
     * @param model     device model used for switching constraints
     * @param clock_ns  period of the high-frequency pulse counter clock
     */
    explicit WriteDriver(SttModel model = SttModel(),
                         double clock_ns = 0.7);

    /** Current of mirror tap @p index (0..7), uA. */
    double tapCurrentUa(int index) const;

    /** Number of mirror taps (I1..I8). */
    static constexpr int numTaps() { return 8; }

    /** Maximum counter value (4-bit). */
    static constexpr int maxCount() { return 15; }

    /**
     * Choose the minimum-energy feasible operating point for a retention
     * target in seconds.
     */
    WritePoint selectOperatingPoint(double retention_sec) const;

    /**
     * Estimated transistor overhead per STT-RAM sub-array: mirror taps,
     * MUX array, counter and comparators. The paper claims < 200.
     */
    int overheadTransistors() const;

    const SttModel &model() const { return model_; }

  private:
    SttModel model_;
    double clock_ns_;
    std::array<double, 8> taps_ua_;
};

} // namespace inc::nvm

#endif // INC_NVM_WRITE_DRIVER_H
