#include "nvm/nvm_array.h"

#include <algorithm>

#include "util/bit_ops.h"
#include "util/logging.h"

namespace inc::nvm
{

void
RetentionFailureCounts::reset()
{
    violations.fill(0);
    flips.fill(0);
}

std::uint64_t
RetentionFailureCounts::totalViolations() const
{
    std::uint64_t sum = 0;
    for (auto v : violations)
        sum += v;
    return sum;
}

NvmArray::NvmArray(std::size_t size, util::Rng rng)
    : bytes_(size, 0), meta_(size),
      region_policy_(size, static_cast<std::uint8_t>(RetentionPolicy::full)),
      rng_(rng)
{
}

void
NvmArray::setRegionPolicy(std::size_t addr, std::size_t len,
                          RetentionPolicy policy)
{
    if (addr + len > bytes_.size())
        util::panic("setRegionPolicy out of range: %zu+%zu", addr, len);
    std::fill(region_policy_.begin() + static_cast<long>(addr),
              region_policy_.begin() + static_cast<long>(addr + len),
              static_cast<std::uint8_t>(policy));
}

RetentionPolicy
NvmArray::regionPolicy(std::size_t addr) const
{
    if (addr >= bytes_.size())
        util::panic("regionPolicy out of range: %zu", addr);
    return static_cast<RetentionPolicy>(region_policy_[addr]);
}

double
NvmArray::write(std::size_t addr, std::uint8_t value, double now)
{
    if (addr >= bytes_.size())
        util::panic("NvmArray::write out of range: %zu", addr);
    bytes_[addr] = value;
    Meta &m = meta_[addr];
    m.write_time = now;
    m.policy = region_policy_[addr];
    m.expired_upto = 0;
    const double energy = energy_table_.wordEnergyFj(
        static_cast<RetentionPolicy>(m.policy));
    write_energy_fj_ += energy;
    return energy;
}

int
NvmArray::expiredCutoff(RetentionPolicy policy, double age_tenth_ms)
{
    if (policy == RetentionPolicy::full)
        return age_tenth_ms >= retentionTenthMs(policy, 1) ? 8 : 0;
    int cutoff = 0;
    for (int b = 1; b <= 8; ++b) {
        if (retentionTenthMs(policy, b) < age_tenth_ms)
            cutoff = b;
        else
            break; // retention is monotone in bit index
    }
    return cutoff;
}

void
NvmArray::settle(std::size_t addr, double now)
{
    Meta &m = meta_[addr];
    const auto policy = static_cast<RetentionPolicy>(m.policy);
    if (policy == RetentionPolicy::full)
        return;
    const double age = now - m.write_time;
    const int cutoff = expiredCutoff(policy, age);
    if (cutoff <= m.expired_upto)
        return;
    std::uint8_t v = bytes_[addr];
    for (int b = m.expired_upto + 1; b <= cutoff; ++b) {
        const unsigned idx = static_cast<unsigned>(b - 1);
        const bool old_bit = util::bit(v, idx);
        const bool new_bit = rng_.nextBool();
        v = static_cast<std::uint8_t>(util::setBit(v, idx, new_bit));
        ++failures_.violations[idx];
        if (new_bit != old_bit)
            ++failures_.flips[idx];
    }
    bytes_[addr] = v;
    m.expired_upto = static_cast<std::uint8_t>(cutoff);
}

std::uint8_t
NvmArray::read(std::size_t addr, double now)
{
    if (addr >= bytes_.size())
        util::panic("NvmArray::read out of range: %zu", addr);
    settle(addr, now);
    return bytes_[addr];
}

std::uint8_t
NvmArray::peek(std::size_t addr) const
{
    if (addr >= bytes_.size())
        util::panic("NvmArray::peek out of range: %zu", addr);
    return bytes_[addr];
}

} // namespace inc::nvm
