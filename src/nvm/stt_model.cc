#include "nvm/stt_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace inc::nvm
{

SttParams
sttDefaultParams()
{
    return SttParams{};
}

SttParams
reramParams()
{
    SttParams p;
    p.i_ref_ua = 45.0;              // filamentary set/reset currents
    p.cell_resistance_ohm = 12000.0;
    p.tau_c_ns = 4.0;               // slower filament formation
    p.gamma = 0.9;                  // weaker retention/current coupling
    p.nominal_pulse_ns = 8.0;
    return p;
}

SttParams
feramParams()
{
    SttParams p;
    p.i_ref_ua = 20.0;              // polarization switching
    p.cell_resistance_ohm = 5000.0;
    p.tau_c_ns = 0.3;               // fast domain switching
    p.gamma = 0.55;                 // retention barely moves the current
    p.nominal_pulse_ns = 2.0;
    return p;
}

SttParams
pcramParams()
{
    SttParams p;
    p.i_ref_ua = 300.0;             // melt/quench programming
    p.cell_resistance_ohm = 3000.0;
    p.tau_c_ns = 10.0;
    p.gamma = 1.2;                  // strongly retention-coupled
    p.nominal_pulse_ns = 20.0;
    return p;
}

SttModel::SttModel(SttParams params) : params_(params)
{
    if (params_.tau0_sec <= 0 || params_.i_ref_ua <= 0 ||
        params_.delta_ref <= 0) {
        util::fatal("SttParams must be positive");
    }
}

double
SttModel::thermalStability(double retention_sec) const
{
    if (retention_sec <= params_.tau0_sec) {
        // Shorter than the attempt period: no barrier at all. Clamp to a
        // tiny positive Delta to keep downstream math finite.
        return 1.0;
    }
    return std::log(retention_sec / params_.tau0_sec);
}

double
SttModel::criticalCurrentUa(double retention_sec) const
{
    const double delta = thermalStability(retention_sec);
    return params_.i_ref_ua *
           std::pow(delta / params_.delta_ref, params_.gamma);
}

double
SttModel::writeCurrentUa(double pulse_ns, double retention_sec) const
{
    if (pulse_ns <= 0)
        util::panic("writeCurrentUa: pulse width must be positive");
    const double ic0 = criticalCurrentUa(retention_sec);
    const double delta = thermalStability(retention_sec);

    // Precessional regime: steep 1/tw growth for very short pulses.
    const double precessional = ic0 * (1.0 + params_.tau_c_ns / pulse_ns);

    // Thermal-activation regime: mild logarithmic relief for long pulses.
    const double tw_sec = pulse_ns * 1e-9;
    const double relief = std::log(tw_sec / params_.tau0_sec) / delta;
    const double thermal = ic0 * std::max(0.1, 1.0 - std::max(0.0, relief));

    return std::max(precessional, thermal);
}

double
SttModel::writeEnergyFj(double pulse_ns, double retention_sec) const
{
    const double i_amp = writeCurrentUa(pulse_ns, retention_sec) * 1e-6;
    const double e_joule = i_amp * i_amp * params_.cell_resistance_ohm *
                           pulse_ns * 1e-9;
    return e_joule * 1e15;
}

double
SttModel::writeEnergyFj(double retention_sec) const
{
    return writeEnergyFj(params_.nominal_pulse_ns, retention_sec);
}

double
SttModel::savingVsBaseline(double retention_sec) const
{
    const double base = writeEnergyFj(kRetention1day);
    return 1.0 - writeEnergyFj(retention_sec) / base;
}

} // namespace inc::nvm
