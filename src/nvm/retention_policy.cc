#include "nvm/retention_policy.h"

#include <cmath>

#include "util/logging.h"

namespace inc::nvm
{

namespace
{
/** 1 day in 0.1 ms units: the full-retention baseline. */
constexpr double kFullRetentionTenthMs = 86400.0 * 1e4;
} // namespace

std::string
policyName(RetentionPolicy policy)
{
    switch (policy) {
      case RetentionPolicy::full: return "full";
      case RetentionPolicy::linear: return "linear";
      case RetentionPolicy::log: return "log";
      case RetentionPolicy::parabola: return "parabola";
    }
    return "unknown";
}

RetentionPolicy
policyFromName(const std::string &name)
{
    if (name == "full")
        return RetentionPolicy::full;
    if (name == "linear")
        return RetentionPolicy::linear;
    if (name == "log")
        return RetentionPolicy::log;
    if (name == "parabola")
        return RetentionPolicy::parabola;
    util::fatal("unknown retention policy '%s'", name.c_str());
}

double
retentionTenthMs(RetentionPolicy policy, int bit_index)
{
    if (bit_index < 1 || bit_index > 8)
        util::panic("retention bit index must be 1..8, got %d", bit_index);
    const double b = static_cast<double>(bit_index);
    switch (policy) {
      case RetentionPolicy::full:
        return kFullRetentionTenthMs;
      case RetentionPolicy::linear:
        return 427.0 * b - 426.0;                      // Eq. 1
      case RetentionPolicy::log:
        return std::pow(4.0, b - 1.0) + 9.0;           // Eq. 2
      case RetentionPolicy::parabola:
        return 61.0 * b * b + 976.0 * b - 905.0;       // Eq. 3
    }
    util::panic("unhandled retention policy");
}

double
retentionSec(RetentionPolicy policy, int bit_index)
{
    return retentionTenthMs(policy, bit_index) * 1e-4;
}

RetentionEnergyTable::RetentionEnergyTable(const SttModel &model)
{
    const RetentionPolicy policies[kNumPolicies] = {
        RetentionPolicy::full, RetentionPolicy::linear,
        RetentionPolicy::log, RetentionPolicy::parabola};
    for (int p = 0; p < kNumPolicies; ++p) {
        for (int b = 1; b <= 8; ++b) {
            bit_energy_fj_[p][b - 1] =
                model.writeEnergyFj(retentionSec(policies[p], b));
        }
    }
}

double
RetentionEnergyTable::bitEnergyFj(RetentionPolicy policy,
                                  int bit_index) const
{
    if (bit_index < 1 || bit_index > 8)
        util::panic("bit index must be 1..8, got %d", bit_index);
    return bit_energy_fj_[static_cast<int>(policy)][bit_index - 1];
}

double
RetentionEnergyTable::wordEnergyFj(RetentionPolicy policy) const
{
    double sum = 0.0;
    for (int b = 1; b <= 8; ++b)
        sum += bitEnergyFj(policy, b);
    return sum;
}

double
RetentionEnergyTable::wordSaving(RetentionPolicy policy) const
{
    const double base = wordEnergyFj(RetentionPolicy::full);
    return 1.0 - wordEnergyFj(policy) / base;
}

} // namespace inc::nvm
