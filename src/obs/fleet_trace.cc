#include "obs/fleet_trace.h"

#include <fstream>

#include <time.h>

#include "obs/json.h"

namespace inc::obs
{

namespace
{

/** One event rendered to the shared wire/output object form. */
JsonValue
eventToJson(const FleetSpanEvent &e)
{
    JsonValue ev = JsonValue::object();
    ev.set("name", JsonValue::of(e.name));
    ev.set("ph", JsonValue::of(std::string(1, e.phase)));
    ev.set("ts", JsonValue::of(e.ts_us));
    ev.set("pid", JsonValue::of(static_cast<double>(e.pid)));
    ev.set("tid", JsonValue::of(static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(e.tid))));
    switch (e.phase) {
      case 'X':
        ev.set("dur", JsonValue::of(e.dur_us));
        break;
      case 'i':
        ev.set("s", JsonValue::of(std::string("t")));
        break;
      case 'C': {
        JsonValue args = JsonValue::object();
        args.set("value", JsonValue::of(e.value));
        ev.set("args", std::move(args));
        break;
      }
      default:
        break;
    }
    return ev;
}

bool
eventFromJson(const JsonValue &ev, FleetSpanEvent *out,
              std::string *error)
{
    if (!ev.isObject()) {
        *error = "span event is not an object";
        return false;
    }
    const JsonValue *name = ev.find("name");
    const JsonValue *ph = ev.find("ph");
    const JsonValue *ts = ev.find("ts");
    const JsonValue *pid = ev.find("pid");
    const JsonValue *tid = ev.find("tid");
    if (!name || !name->isString() || !ph || !ph->isString() ||
        ph->string().size() != 1 || !ts || !ts->isNumber() || !pid ||
        !pid->isNumber() || !tid || !tid->isNumber()) {
        *error = "span event is missing name/ph/ts/pid/tid";
        return false;
    }
    out->name = name->string();
    out->phase = ph->string()[0];
    if (out->phase != 'X' && out->phase != 'i' && out->phase != 'C') {
        *error = "span event has unknown phase '" + ph->string() + "'";
        return false;
    }
    out->ts_us = ts->number();
    out->pid = static_cast<long>(pid->number());
    out->tid = static_cast<int>(tid->number());
    out->dur_us = 0.0;
    out->value = 0.0;
    if (out->phase == 'X') {
        const JsonValue *dur = ev.find("dur");
        if (!dur || !dur->isNumber()) {
            *error = "span event '" + out->name + "' has no duration";
            return false;
        }
        out->dur_us = dur->number();
    }
    if (out->phase == 'C') {
        const JsonValue *args = ev.find("args");
        const JsonValue *value =
            args && args->isObject() ? args->find("value") : nullptr;
        if (!value || !value->isNumber()) {
            *error = "counter event '" + out->name + "' has no value";
            return false;
        }
        out->value = value->number();
    }
    return true;
}

} // namespace

double
wallClockUs()
{
    timespec ts{};
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
}

SpanBatch::SpanBatch(std::size_t capacity) : capacity_(capacity) {}

void
SpanBatch::add(FleetSpanEvent event)
{
    if (capacity_ > 0 && events_.size() >= capacity_) {
        // Ring semantics on the pending set: drop the oldest event so
        // a slow/unsent batch stays bounded, and keep the loss
        // counted like EventTracer does.
        events_.erase(events_.begin());
        ++dropped_;
    }
    events_.push_back(std::move(event));
}

std::vector<FleetSpanEvent>
SpanBatch::take()
{
    std::vector<FleetSpanEvent> out;
    out.swap(events_);
    return out;
}

std::string
SpanBatch::toJson() const
{
    JsonValue arr = JsonValue::array();
    for (const FleetSpanEvent &e : events_)
        arr.push(eventToJson(e));
    return arr.dump();
}

bool
SpanBatch::fromJson(const std::string &text, SpanBatch *out,
                    std::string *error)
{
    JsonValue doc;
    if (!parseJson(text, &doc, error))
        return false;
    if (!doc.isArray()) {
        *error = "span batch is not a JSON array";
        return false;
    }
    for (const JsonValue &ev : doc.items()) {
        FleetSpanEvent e;
        if (!eventFromJson(ev, &e, error))
            return false;
        out->add(std::move(e));
    }
    return true;
}

void
FleetTraceMerger::setProcessName(long pid, const std::string &name)
{
    process_names_[pid] = name;
}

void
FleetTraceMerger::add(FleetSpanEvent event)
{
    events_.push_back(std::move(event));
}

void
FleetTraceMerger::add(const SpanBatch &batch)
{
    for (const FleetSpanEvent &e : batch.events())
        events_.push_back(e);
}

std::string
FleetTraceMerger::toChromeTraceJson(double base_ts_us) const
{
    JsonValue trace_events = JsonValue::array();

    for (const auto &[pid, name] : process_names_) {
        JsonValue meta = JsonValue::object();
        meta.set("name", JsonValue::of(std::string("process_name")));
        meta.set("ph", JsonValue::of(std::string("M")));
        meta.set("pid", JsonValue::of(static_cast<double>(pid)));
        meta.set("tid", JsonValue::of(std::uint64_t{0}));
        JsonValue args = JsonValue::object();
        args.set("name", JsonValue::of(name));
        meta.set("args", std::move(args));
        trace_events.push(std::move(meta));
    }

    for (const FleetSpanEvent &e : events_) {
        FleetSpanEvent shifted = e;
        shifted.ts_us =
            e.ts_us > base_ts_us ? e.ts_us - base_ts_us : 0.0;
        trace_events.push(eventToJson(shifted));
    }

    JsonValue doc = JsonValue::object();
    doc.set("traceEvents", std::move(trace_events));
    doc.set("displayTimeUnit", JsonValue::of(std::string("ms")));
    return doc.dump() + "\n";
}

bool
FleetTraceMerger::writeChromeTraceJson(const std::string &path,
                                       double base_ts_us) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << toChromeTraceJson(base_ts_us);
    return static_cast<bool>(out);
}

} // namespace inc::obs
