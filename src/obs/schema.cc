#include "obs/schema.h"

#include <cmath>

#include "obs/json.h"
#include "obs/obs.h"

namespace inc::obs
{

namespace
{

/** Collect "name: expected vs actual" style violation lines. */
class Checker
{
  public:
    explicit Checker(const MetricsRegistry &m) : m_(m) {}

    std::uint64_t c(const char *name) const
    {
        return m_.counterValue(name);
    }
    double g(const char *name) const { return m_.gaugeValue(name); }

    void equal(const std::string &what, std::uint64_t lhs,
               std::uint64_t rhs)
    {
        if (lhs != rhs)
            problems_.push_back(what + ": " + std::to_string(lhs) +
                                " != " + std::to_string(rhs));
    }

    void atMost(const std::string &what, std::uint64_t lhs,
                std::uint64_t rhs)
    {
        if (lhs > rhs)
            problems_.push_back(what + ": " + std::to_string(lhs) +
                                " > " + std::to_string(rhs));
    }

    void close(const std::string &what, double lhs, double rhs,
               double rel_tol, double scale)
    {
        const double tol =
            rel_tol * std::max(1.0, std::fabs(scale));
        if (std::fabs(lhs - rhs) > tol)
            problems_.push_back(what + ": " + formatJsonNumber(lhs) +
                                " != " + formatJsonNumber(rhs) +
                                " (tol " + formatJsonNumber(tol) + ")");
    }

    std::vector<std::string> take() { return std::move(problems_); }

  private:
    const MetricsRegistry &m_;
    std::vector<std::string> problems_;
};

} // namespace

std::vector<std::string>
verifySimMetricIdentities(const MetricsRegistry &m, double rel_tol)
{
    Checker ck(m);
    if (!m.has(kSimSamples)) {
        std::vector<std::string> p;
        p.push_back("registry has no sim.samples — not a system-sim "
                    "metrics registry");
        return p;
    }

    // Backups: every attempt either committed or tore.
    ck.equal("sim.backup.attempts == committed + torn",
             ck.c(kSimBackupAttempts),
             ck.c(kSimBackupsCommitted) + ck.c(kSimBackupsTorn));

    // Restores: each restore follows a committed backup, except the
    // per-run cold boot(s).
    ck.atMost("sim.restore.successes <= backup.committed + cold_boots",
              ck.c(kSimRestores),
              ck.c(kSimBackupsCommitted) + ck.c(kSimColdBoots));

    // Adopted-lane cycles are a subset of all executed cycles.
    ck.atMost("sim.adopted_lane_cycles <= sim.cycles",
              ck.c(kSimAdoptedLaneCycles), ck.c(kSimCycles));
    ck.atMost("sim.instructions <= sim.forward_progress",
              ck.c(kSimInstructions), ck.c(kSimForwardProgress));
    ck.atMost("sim.on_samples <= sim.samples", ck.c(kSimOnSamples),
              ck.c(kSimSamples));

    // The bitwidth controller ticks exactly once per processed sample
    // (0 = off), so occupancy partitions the timeline.
    std::uint64_t tick_sum = 0;
    for (int b = 0; b <= 8; ++b)
        tick_sum += ck.c((std::string(kBitTicksPrefix) +
                          std::to_string(b))
                             .c_str());
    ck.equal("sum(bits.ticks.*) == sim.samples", tick_sum,
             ck.c(kSimSamples));

    // Sensor DMA: every capture attempt either lands or is dropped by
    // the slot interlock.
    ck.equal("frames captured + dma_dropped == capture_attempts",
             ck.c(kSimFramesCaptured) + ck.c(kSimFramesDmaDropped),
             ck.c(kSimFrameAttempts));

    // Checkpoint-strategy overlay (src/sim/strategy). Guarded on the
    // schema being present: pre-strategy registries (older golden
    // files, non-sim producers) simply skip the block.
    if (m.has(kCkptBackups)) {
        // A strategy commits exactly once per committed in-situ backup.
        ck.equal("ckpt.backup.events == sim.backup.committed",
                 ck.c(kCkptBackups), ck.c(kSimBackupsCommitted));
        // Wake-up restores plus cold boots partition sim restores
        // (sim.restore.successes counts cold boots; the strategy's
        // restore hook runs only on the performRestore path).
        ck.equal("ckpt.restore.events + cold_boots == sim restores",
                 ck.c(kCkptRestores) + ck.c(kSimColdBoots),
                 ck.c(kSimRestores));
        // A dirty-tracking strategy may only UNDER-write, never
        // over-write, the words it claims to cover.
        ck.atMost("ckpt.dirty.words_written <= words_tracked",
                  ck.c(kCkptWordsWritten), ck.c(kCkptWordsTracked));
        // Every serviced restore needs some committed image behind it.
        ck.atMost("ckpt.restore.events <= backups + snapshots",
                  ck.c(kCkptRestores),
                  ck.c(kCkptBackups) + ck.c(kCkptSnapshots));
    }

#if INC_OBS_ENABLED
    // The ledger split and the unfunded-demand tracking accumulate on
    // the hot path, so — like the raw hot counters below — they are
    // only cross-checked when the increments were compiled in.
    const double consumed = ck.g(kEnergyConsumed);
    ck.close("fetch + datapath + idle + assemble == consumed",
             ck.g(kEnergyFetch) + ck.g(kEnergyDatapath) +
                 ck.g(kEnergyIdle) + ck.g(kEnergyAssemble),
             consumed, rel_tol, consumed);

    // Conservation closes the books: everything that entered the
    // capacitor either was drained by compute/backup/restore, leaked,
    // or is still stored. Unfunded drain demand (clamped at an empty
    // capacitor) is credited back.
    const double in_total =
        ck.g(kEnergyInitial) + ck.g(kEnergyIncome);
    ck.close("income + initial == drains + leak + stored - unfunded",
             in_total,
             consumed + ck.g(kEnergyBackup) + ck.g(kEnergyRestore) +
                 ck.g(kEnergyLeak) + ck.g(kEnergyStoredFinal) -
                 ck.g(kEnergyUnfunded),
             rel_tol, in_total);

    // Hot-path counters (compiled out with INCIDENTAL_OBS=OFF, so only
    // cross-checked when the macros were live).
    ck.equal("core.steps == sim.instructions", ck.c(kCoreSteps),
             ck.c(kSimInstructions));
    ck.equal("core.lane_commits == sim.forward_progress",
             ck.c(kCoreLaneCommits), ck.c(kSimForwardProgress));
    ck.equal("core.steps == sum of instruction classes",
             ck.c(kCoreSteps),
             ck.c(kCoreInstrAlu) + ck.c(kCoreInstrLoad) +
                 ck.c(kCoreInstrStore) + ck.c(kCoreInstrBranch) +
                 ck.c(kCoreInstrJump) + ck.c(kCoreInstrIncidental) +
                 ck.c(kCoreInstrSystem));
    ck.atMost("core.branch_taken <= core.instr.branch",
              ck.c(kCoreBranchTaken), ck.c(kCoreInstrBranch));
    ck.equal("mem.assemble_bytes == core.assemble_bytes",
             ck.c(kMemAssembleBytes), ck.c(kCoreAssembleBytes));
    ck.atMost("mem.ac_truncated_loads <= mem.loads",
              ck.c(kMemAcTruncatedLoads), ck.c(kMemLoads));
    ck.atMost("mem.ac_truncated_stores <= mem.stores",
              ck.c(kMemAcTruncatedStores), ck.c(kMemStores));
    ck.atMost("queue.dropped <= queue.requests", ck.c(kQueueDropped),
              ck.c(kQueueRequests));
#endif

    return ck.take();
}

std::vector<std::string>
verifyCheckpointMetricIdentities(const MetricsRegistry &m)
{
    Checker ck(m);
    if (!m.has(kAcAttempts)) {
        std::vector<std::string> p;
        p.push_back("registry has no ac.checkpoint.attempts — not an "
                    "active-checkpoint metrics registry");
        return p;
    }

    ck.equal("ac attempts == committed + torn + in_flight_at_end",
             ck.c(kAcAttempts),
             ck.c(kAcCommitted) + ck.c(kAcTorn) +
                 ck.c(kAcInFlightAtEnd));
    ck.atMost("ac.restore.successes <= ac.checkpoint.committed",
              ck.c(kAcRestores), ck.c(kAcCommitted));
    ck.atMost("ac.forward_progress <= ac.instructions.executed",
              ck.c(kAcForwardProgress), ck.c(kAcInstrExecuted));
    return ck.take();
}

} // namespace inc::obs
