#include "obs/event_tracer.h"

#include <fstream>

#include "obs/json.h"

namespace inc::obs
{

EventTracer::EventTracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    events_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void
EventTracer::record(const Event &e)
{
    if (events_.size() < capacity_) {
        events_.push_back(e);
        return;
    }
    // Ring is full: overwrite the oldest event, keep the loss counted.
    events_[next_] = e;
    next_ = (next_ + 1) % capacity_;
    wrapped_ = true;
    ++dropped_;
}

void
EventTracer::span(Track track, const char *name, double ts_us,
                  double dur_us)
{
    record(Event{Phase::complete, track, name, ts_us, dur_us, 0.0});
}

void
EventTracer::instant(Track track, const char *name, double ts_us)
{
    record(Event{Phase::instant, track, name, ts_us, 0.0, 0.0});
}

void
EventTracer::counter(const char *name, double ts_us, double value)
{
    record(Event{Phase::counter, Track::counters, name, ts_us, 0.0,
                 value});
}

std::string
EventTracer::toChromeTraceJson() const
{
    JsonValue doc = JsonValue::object();
    JsonValue trace_events = JsonValue::array();

    const std::size_t n = events_.size();
    for (std::size_t i = 0; i < n; ++i) {
        // Oldest first: after a wrap the ring cursor points at the
        // oldest surviving record.
        const Event &e = events_[wrapped_ ? (next_ + i) % n : i];
        JsonValue ev = JsonValue::object();
        ev.set("name", JsonValue::of(std::string(e.name)));
        ev.set("ph", JsonValue::of(std::string(
                         1, static_cast<char>(e.phase))));
        ev.set("ts", JsonValue::of(e.ts_us));
        ev.set("pid", JsonValue::of(std::uint64_t{0}));
        ev.set("tid", JsonValue::of(static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(e.track))));
        switch (e.phase) {
          case Phase::complete:
            ev.set("dur", JsonValue::of(e.dur_us));
            break;
          case Phase::instant:
            ev.set("s", JsonValue::of(std::string("t")));
            break;
          case Phase::counter: {
            JsonValue args = JsonValue::object();
            args.set("value", JsonValue::of(e.value));
            ev.set("args", std::move(args));
            break;
          }
        }
        trace_events.push(std::move(ev));
    }

    doc.set("traceEvents", std::move(trace_events));
    doc.set("displayTimeUnit", JsonValue::of(std::string("ms")));
    if (dropped_ > 0) {
        JsonValue meta = JsonValue::object();
        meta.set("droppedEvents", JsonValue::of(dropped_));
        doc.set("metadata", std::move(meta));
    }
    return doc.dump() + "\n";
}

bool
EventTracer::writeChromeTraceJson(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << toChromeTraceJson();
    return static_cast<bool>(out);
}

} // namespace inc::obs
