#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "obs/json.h"

namespace inc::obs
{

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds(std::move(upper_bounds)), counts(bounds.size() + 1, 0)
{
}

void
Histogram::record(double sample)
{
    std::size_t bucket = bounds.size();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        if (sample <= bounds[i]) {
            bucket = i;
            break;
        }
    }
    ++counts[bucket];
    ++total;
    sum += sample;
}

double
Histogram::percentile(double q) const
{
    if (total == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double rank = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const std::uint64_t next = seen + counts[i];
        if (static_cast<double>(next) >= rank) {
            if (i == bounds.size()) {
                // Overflow bucket: no upper edge to interpolate
                // toward. With no bounds at all, the mean is the only
                // estimate available.
                return bounds.empty()
                           ? sum / static_cast<double>(total)
                           : bounds.back();
            }
            const double lo = i == 0 ? 0.0 : bounds[i - 1];
            const double hi = bounds[i];
            const double into = rank - static_cast<double>(seen);
            return lo +
                   (hi - lo) * into / static_cast<double>(counts[i]);
        }
        seen = next;
    }
    return bounds.empty() ? sum / static_cast<double>(total)
                          : bounds.back();
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return gauges_[name];
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(std::move(bounds)))
                 .first;
    return it->second;
}

bool
MetricsRegistry::empty() const
{
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value;
}

double
MetricsRegistry::gaugeValue(const std::string &name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second.value;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    return counters_.count(name) != 0 || gauges_.count(name) != 0 ||
           histograms_.count(name) != 0;
}

bool
MetricsRegistry::merge(const MetricsRegistry &other)
{
    bool clean = true;
    for (const auto &[name, c] : other.counters_)
        counters_[name].value += c.value;
    for (const auto &[name, g] : other.gauges_)
        gauges_[name].value += g.value;
    for (const auto &[name, h] : other.histograms_) {
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            histograms_.emplace(name, h);
            continue;
        }
        Histogram &mine = it->second;
        if (mine.bounds == h.bounds) {
            for (std::size_t i = 0; i < mine.counts.size(); ++i)
                mine.counts[i] += h.counts[i];
        } else {
            // Bucket layouts disagree (shouldn't happen between jobs of
            // one sweep); keep total/sum correct and report the loss.
            clean = false;
        }
        mine.total += h.total;
        mine.sum += h.sum;
    }
    return clean;
}

std::string
MetricsRegistry::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::of(std::string("inc-metrics-v1")));

    JsonValue counters = JsonValue::object();
    for (const auto &[name, c] : counters_)
        counters.set(name, JsonValue::of(c.value));
    doc.set("counters", std::move(counters));

    JsonValue gauges = JsonValue::object();
    for (const auto &[name, g] : gauges_)
        gauges.set(name, JsonValue::of(g.value));
    doc.set("gauges", std::move(gauges));

    JsonValue histograms = JsonValue::object();
    for (const auto &[name, h] : histograms_) {
        JsonValue hist = JsonValue::object();
        JsonValue bounds = JsonValue::array();
        for (const double b : h.bounds)
            bounds.push(JsonValue::of(b));
        hist.set("bounds", std::move(bounds));
        JsonValue counts = JsonValue::array();
        for (const std::uint64_t c : h.counts)
            counts.push(JsonValue::of(c));
        hist.set("counts", std::move(counts));
        hist.set("total", JsonValue::of(h.total));
        hist.set("sum", JsonValue::of(h.sum));
        // Derived summary fields, recomputed from the buckets on
        // every dump (never stored): fromJson() ignores them, so a
        // parse -> dump round trip stays byte-identical.
        hist.set("p50", JsonValue::of(h.percentile(0.50)));
        hist.set("p95", JsonValue::of(h.percentile(0.95)));
        hist.set("p99", JsonValue::of(h.percentile(0.99)));
        histograms.set(name, std::move(hist));
    }
    doc.set("histograms", std::move(histograms));

    return doc.dump() + "\n";
}

bool
MetricsRegistry::writeJson(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

bool
MetricsRegistry::fromJson(const std::string &text, MetricsRegistry *out,
                          std::string *error)
{
    JsonValue doc;
    if (!parseJson(text, &doc, error))
        return false;
    if (!doc.isObject()) {
        if (error)
            *error = "metrics document is not an object";
        return false;
    }
    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->string() != "inc-metrics-v1") {
        if (error)
            *error = "missing or unknown metrics schema tag";
        return false;
    }

    MetricsRegistry reg;
    if (const JsonValue *counters = doc.find("counters")) {
        if (!counters->isObject()) {
            if (error)
                *error = "\"counters\" is not an object";
            return false;
        }
        for (const auto &[name, v] : counters->members()) {
            if (!v.isNumber()) {
                if (error)
                    *error = "counter \"" + name + "\" is not a number";
                return false;
            }
            reg.counter(name).value =
                static_cast<std::uint64_t>(v.number());
        }
    }
    if (const JsonValue *gauges = doc.find("gauges")) {
        if (!gauges->isObject()) {
            if (error)
                *error = "\"gauges\" is not an object";
            return false;
        }
        for (const auto &[name, v] : gauges->members()) {
            if (!v.isNumber()) {
                if (error)
                    *error = "gauge \"" + name + "\" is not a number";
                return false;
            }
            reg.gauge(name).value = v.number();
        }
    }
    if (const JsonValue *histograms = doc.find("histograms")) {
        if (!histograms->isObject()) {
            if (error)
                *error = "\"histograms\" is not an object";
            return false;
        }
        for (const auto &[name, v] : histograms->members()) {
            const JsonValue *bounds = v.find("bounds");
            const JsonValue *counts = v.find("counts");
            const JsonValue *total = v.find("total");
            const JsonValue *sum = v.find("sum");
            if (!v.isObject() || !bounds || !bounds->isArray() ||
                !counts || !counts->isArray() || !total ||
                !total->isNumber() || !sum || !sum->isNumber()) {
                if (error)
                    *error = "histogram \"" + name + "\" is malformed";
                return false;
            }
            std::vector<double> b;
            for (const JsonValue &item : bounds->items()) {
                if (!item.isNumber()) {
                    if (error)
                        *error = "histogram \"" + name +
                                 "\" has a non-numeric bound";
                    return false;
                }
                b.push_back(item.number());
            }
            Histogram h(std::move(b));
            if (counts->items().size() != h.counts.size()) {
                if (error)
                    *error = "histogram \"" + name +
                             "\" bucket count mismatch";
                return false;
            }
            for (std::size_t i = 0; i < h.counts.size(); ++i) {
                const JsonValue &item = counts->items()[i];
                if (!item.isNumber()) {
                    if (error)
                        *error = "histogram \"" + name +
                                 "\" has a non-numeric count";
                    return false;
                }
                h.counts[i] =
                    static_cast<std::uint64_t>(item.number());
            }
            h.total = static_cast<std::uint64_t>(total->number());
            h.sum = sum->number();
            reg.histograms_.emplace(name, std::move(h));
        }
    }
    if (out)
        *out = std::move(reg);
    return true;
}

namespace
{

bool
withinTolerance(double expected, double actual, double rel_tol,
                double abs_tol)
{
    const double diff = std::fabs(expected - actual);
    return diff <=
           std::max(abs_tol, rel_tol * std::fabs(expected));
}

template <typename Map, typename Fn>
void
compareKeyed(const Map &expected, const Map &actual,
             const std::string &kind, Fn &&compare_values,
             std::vector<std::string> *diffs)
{
    for (const auto &[name, e] : expected) {
        const auto it = actual.find(name);
        if (it == actual.end()) {
            diffs->push_back(kind + " \"" + name +
                             "\" missing from actual");
            continue;
        }
        compare_values(name, e, it->second);
    }
    for (const auto &[name, a] : actual) {
        (void)a;
        if (!expected.count(name))
            diffs->push_back(kind + " \"" + name +
                             "\" unexpected in actual");
    }
}

} // namespace

std::vector<std::string>
compareMetricsJson(const std::string &expected, const std::string &actual,
                   double rel_tol, double abs_tol)
{
    std::vector<std::string> diffs;
    MetricsRegistry e, a;
    std::string error;
    if (!MetricsRegistry::fromJson(expected, &e, &error)) {
        diffs.push_back("expected document unparseable: " + error);
        return diffs;
    }
    if (!MetricsRegistry::fromJson(actual, &a, &error)) {
        diffs.push_back("actual document unparseable: " + error);
        return diffs;
    }

    compareKeyed(e.counters(), a.counters(), "counter",
                 [&](const std::string &name, const Counter &ec,
                     const Counter &ac) {
                     if (ec.value != ac.value)
                         diffs.push_back(
                             "counter \"" + name + "\": expected " +
                             std::to_string(ec.value) + ", got " +
                             std::to_string(ac.value));
                 },
                 &diffs);
    compareKeyed(e.gauges(), a.gauges(), "gauge",
                 [&](const std::string &name, const Gauge &eg,
                     const Gauge &ag) {
                     if (!withinTolerance(eg.value, ag.value, rel_tol,
                                          abs_tol))
                         diffs.push_back(
                             "gauge \"" + name + "\": expected " +
                             formatJsonNumber(eg.value) + ", got " +
                             formatJsonNumber(ag.value));
                 },
                 &diffs);
    compareKeyed(
        e.histograms(), a.histograms(), "histogram",
        [&](const std::string &name, const Histogram &eh,
            const Histogram &ah) {
            if (eh.bounds != ah.bounds || eh.counts != ah.counts ||
                eh.total != ah.total)
                diffs.push_back("histogram \"" + name +
                                "\": bucket contents differ");
            else if (!withinTolerance(eh.sum, ah.sum, rel_tol, abs_tol))
                diffs.push_back("histogram \"" + name +
                                "\": expected sum " +
                                formatJsonNumber(eh.sum) + ", got " +
                                formatJsonNumber(ah.sum));
        },
        &diffs);
    return diffs;
}

} // namespace inc::obs
