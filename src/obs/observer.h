/**
 * @file
 * The Observer bundles everything a single simulation run publishes
 * into: a metrics registry, optional event tracer, and the plain-struct
 * hot counters the interpreter core / data memory / recompute queue
 * write through raw pointers (see obs/obs.h for the macro contract).
 *
 * Ownership: whoever drives a run (nvpsim, a sweep job, a test, a fuzz
 * trial) stack-allocates one Observer, points `SimConfig::obs` (or the
 * active-checkpoint config) at it, and reads/merges/serializes it after
 * the run returns. The simulator folds the hot-counter structs into
 * named registry metrics at publish time; nothing here is touched from
 * more than one thread.
 */

#ifndef INC_OBS_OBSERVER_H
#define INC_OBS_OBSERVER_H

#include "obs/event_tracer.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace inc::obs
{

class FlightRecorder;

struct Observer
{
    MetricsRegistry registry;

    /** Optional: attach to also capture a Chrome trace. Metrics-only
     *  runs (the fuzzer, sweeps) leave this null and skip all span
     *  bookkeeping. */
    EventTracer *tracer = nullptr;

    /** Optional: attach to also capture per-outage / per-frame flight
     *  records (obs/report/flight_recorder.h). All recorder hooks sit
     *  on cold paths (backup, restore, frame score) behind this null
     *  check. */
    FlightRecorder *flight = nullptr;

    CoreCounters core;
    MemCounters mem;
    QueueCounters queue;
};

} // namespace inc::obs

#endif // INC_OBS_OBSERVER_H
