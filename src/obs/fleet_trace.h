/**
 * @file
 * Cross-process trace spans for the fleet's live telemetry plane
 * (DESIGN.md §16).
 *
 * EventTracer (obs/event_tracer.h) is the single-process tracer: it
 * stores `const char *` literal names and renders everything under
 * pid 0 on the simulated-time axis. A fleet campaign needs the
 * opposite trade-offs — spans created in worker processes must carry
 * owned name strings and the worker's real pid, travel over the wire
 * inside PROGRESS frames, and land on one shared wall-clock axis so
 * the coordinator can interleave them with its own scheduling events.
 *
 * FleetSpanEvent is that record; SpanBatch is its wire form (a
 * canonical-JSON array, so the fleet protocol's length-prefixed
 * payload framing applies unchanged); FleetTraceMerger folds batches
 * from every process into one Chrome-trace/Perfetto document with a
 * `process_name` metadata record per pid.
 *
 * Time base: producers stamp events with CLOCK_REALTIME microseconds
 * (wallClockUs()) — the only clock all processes of a fleet share —
 * and the merger subtracts the campaign-start timestamp at render
 * time, so the merged timeline starts near zero. This is the
 * *scheduling* timeline (when jobs ran on the host), deliberately
 * distinct from the simulated-time timeline of `nvpsim run
 * --trace-out`.
 */

#ifndef INC_OBS_FLEET_TRACE_H
#define INC_OBS_FLEET_TRACE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace inc::obs
{

/** One cross-process trace event (Chrome-trace phases X / i / C). */
struct FleetSpanEvent
{
    char phase = 'X'; ///< 'X' span, 'i' instant, 'C' counter
    long pid = 0;     ///< real process id of the producer
    int tid = 0;      ///< track within the process (0 = scheduling)
    std::string name;
    double ts_us = 0.0;  ///< CLOCK_REALTIME microseconds
    double dur_us = 0.0; ///< spans only
    double value = 0.0;  ///< counters only
};

/** CLOCK_REALTIME now, in microseconds (shared across processes). */
double wallClockUs();

/**
 * A batch of completed events, serializable for the wire. Producers
 * append between PROGRESS frames and take() the batch into the frame;
 * the capacity bound makes the pending set a ring — when full the
 * oldest pending event is dropped and counted, so a stalled
 * connection cannot grow memory without bound.
 */
class SpanBatch
{
  public:
    /** @p capacity bounds pending events (0 = unbounded). */
    explicit SpanBatch(std::size_t capacity = 0);

    void add(FleetSpanEvent event);
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    std::uint64_t dropped() const { return dropped_; }
    const std::vector<FleetSpanEvent> &events() const
    {
        return events_;
    }

    /** Move the pending events out, leaving the batch empty. */
    std::vector<FleetSpanEvent> take();

    /** Canonical-JSON array of event objects (Chrome-trace keys). */
    std::string toJson() const;

    /** Parse a toJson() payload back (appends to @p out->events_). */
    static bool fromJson(const std::string &text, SpanBatch *out,
                         std::string *error);

  private:
    std::size_t capacity_;
    std::uint64_t dropped_ = 0;
    std::vector<FleetSpanEvent> events_;
};

/**
 * Folds span batches from every fleet process into one Chrome-trace
 * document. Not thread-safe; the coordinator owns one and feeds it
 * from its single-threaded event loop.
 */
class FleetTraceMerger
{
  public:
    /** Name rendered for @p pid's process row in Perfetto. */
    void setProcessName(long pid, const std::string &name);

    void add(FleetSpanEvent event);
    void add(const SpanBatch &batch);

    std::size_t eventCount() const { return events_.size(); }

    /**
     * Chrome-trace JSON: one `process_name` metadata record per
     * registered pid, then every event with @p base_ts_us subtracted
     * from its timestamp (clamped at zero for stragglers stamped
     * before the base).
     */
    std::string toChromeTraceJson(double base_ts_us) const;

    /** Write toChromeTraceJson() to @p path. False on I/O failure. */
    bool writeChromeTraceJson(const std::string &path,
                              double base_ts_us) const;

  private:
    std::map<long, std::string> process_names_;
    std::vector<FleetSpanEvent> events_;
};

} // namespace inc::obs

#endif // INC_OBS_FLEET_TRACE_H
