/**
 * @file
 * Ring-buffered event tracer with Chrome-trace (Perfetto) JSON export.
 *
 * Producers record fixed-size Event records into a bounded ring; when
 * the ring is full the oldest events are overwritten and a dropped
 * counter keeps the loss visible. Export renders the surviving events
 * as a `{"traceEvents":[...]}` document that chrome://tracing and
 * https://ui.perfetto.dev load directly:
 *
 *  - spans      -> phase "X" (complete events with ts + dur)
 *  - instants   -> phase "i" (scope "t")
 *  - counters   -> phase "C" (one numeric series per name)
 *
 * Timestamps are microseconds. The system simulator runs at 0.1 ms per
 * power-trace sample, so `ts_us = sample_index * 100` puts the trace on
 * the real experiment timeline. pid is always 0; tid encodes the
 * source track (see Track).
 */

#ifndef INC_OBS_EVENT_TRACER_H
#define INC_OBS_EVENT_TRACER_H

#include <cstdint>
#include <string>
#include <vector>

namespace inc::obs
{

/** Trace rows, rendered as Chrome-trace thread ids. */
enum class Track : std::uint32_t
{
    power = 0,     ///< on/off phases of the capacitor
    checkpoint = 1,///< backups, restores, active-checkpoint copies
    frames = 2,    ///< frame lifetimes (capture -> score)
    rac = 3,       ///< recompute-and-combine merges / assembles
    counters = 4,  ///< numeric series (energy, bits)
};

class EventTracer
{
  public:
    /** @p capacity bounds the ring (default ~64Ki events). */
    explicit EventTracer(std::size_t capacity = 1 << 16);

    /** Span with explicit duration, both in microseconds. */
    void span(Track track, const char *name, double ts_us,
              double dur_us);
    /** Zero-duration marker. */
    void instant(Track track, const char *name, double ts_us);
    /** Sample of a numeric series (phase "C"). */
    void counter(const char *name, double ts_us, double value);

    std::size_t size() const { return events_.size(); }
    std::uint64_t dropped() const { return dropped_; }

    /** Chrome-trace JSON document (oldest surviving event first). */
    std::string toChromeTraceJson() const;

    /** Write toChromeTraceJson() to @p path. False on I/O failure. */
    bool writeChromeTraceJson(const std::string &path) const;

  private:
    enum class Phase : char
    {
        complete = 'X',
        instant = 'i',
        counter = 'C',
    };

    struct Event
    {
        Phase phase;
        Track track;
        const char *name; ///< producers pass string literals
        double ts_us;
        double dur_us;  ///< complete events
        double value;   ///< counter events
    };

    void record(const Event &e);

    std::size_t capacity_;
    std::size_t next_ = 0; ///< ring write cursor once full
    bool wrapped_ = false;
    std::uint64_t dropped_ = 0;
    std::vector<Event> events_;
};

} // namespace inc::obs

#endif // INC_OBS_EVENT_TRACER_H
