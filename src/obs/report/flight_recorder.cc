#include "obs/report/flight_recorder.h"

#include "obs/metrics.h"
#include "obs/schema.h"

namespace inc::obs
{

void
publishFlightDrops(const FlightRecorder &flight,
                   MetricsRegistry &registry)
{
    registry.counter(kFlightDroppedOutages)
        .inc(flight.droppedOutages());
    registry.counter(kFlightDroppedFrames).inc(flight.droppedFrames());
}

const char *
resumeKindName(ResumeKind kind)
{
    switch (kind) {
    case ResumeKind::cold_boot:
        return "cold_boot";
    case ResumeKind::plain_resume:
        return "plain_resume";
    case ResumeKind::roll_forward:
        return "roll_forward";
    }
    return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t max_outages,
                               std::size_t max_frames)
    : max_outages_(max_outages), max_frames_(max_frames)
{
    outages_.reserve(max_outages_ < 64 ? max_outages_ : 64);
    frames_.reserve(max_frames_ < 64 ? max_frames_ : 64);
}

OutageRecord *
FlightRecorder::appendOutage()
{
    if (outages_.size() >= max_outages_) {
        ++dropped_outages_;
        return nullptr;
    }
    outages_.emplace_back();
    return &outages_.back();
}

OutageRecord *
FlightRecorder::openOutage()
{
    if (outages_.empty() || outages_.back().resumed)
        return nullptr;
    return &outages_.back();
}

FrameRecord *
FlightRecorder::appendFrame()
{
    if (frames_.size() >= max_frames_) {
        ++dropped_frames_;
        return nullptr;
    }
    frames_.emplace_back();
    return &frames_.back();
}

void
FlightRecorder::clear()
{
    outages_.clear();
    frames_.clear();
    dropped_outages_ = 0;
    dropped_frames_ = 0;
}

JsonValue
outageToJson(const OutageRecord &o)
{
    JsonValue rec = JsonValue::object();
    rec.set("fail_sample", JsonValue::of(o.fail_sample));
    rec.set("pc", JsonValue::of(std::uint64_t(o.pc)));
    rec.set("frame", JsonValue::of(std::uint64_t(o.frame)));
    rec.set("stored_nj", JsonValue::of(o.stored_nj));
    rec.set("lanes", JsonValue::of(std::uint64_t(o.lanes)));
    rec.set("bits_written", JsonValue::of(std::uint64_t(o.bits_written)));
    rec.set("torn", JsonValue::of(o.torn));
    rec.set("resumed", JsonValue::of(o.resumed));
    if (o.resumed) {
        rec.set("outage_samples", JsonValue::of(o.outage_samples));
        rec.set("resume",
                JsonValue::of(std::string(resumeKindName(o.resume))));
        rec.set("resume_bits",
                JsonValue::of(std::uint64_t(o.resume_bits)));
        rec.set("retention_decays", JsonValue::of(o.retention_decays));
    }
    return rec;
}

JsonValue
frameToJson(const FrameRecord &f)
{
    JsonValue rec = JsonValue::object();
    rec.set("frame", JsonValue::of(std::uint64_t(f.frame)));
    rec.set("capture_sample", JsonValue::of(f.capture_sample));
    rec.set("age_samples", JsonValue::of(f.age_samples));
    rec.set("mse", JsonValue::of(f.mse));
    rec.set("psnr", JsonValue::of(f.psnr));
    rec.set("coverage", JsonValue::of(f.coverage));
    rec.set("bits", JsonValue::of(std::uint64_t(f.bits)));
    return rec;
}

JsonValue
FlightRecorder::toJsonValue() const
{
    JsonValue doc = JsonValue::object();

    JsonValue outages = JsonValue::array();
    for (const OutageRecord &o : outages_)
        outages.push(outageToJson(o));
    doc.set("outages", std::move(outages));
    doc.set("outages_dropped", JsonValue::of(dropped_outages_));

    JsonValue frames = JsonValue::array();
    for (const FrameRecord &f : frames_)
        frames.push(frameToJson(f));
    doc.set("frames", std::move(frames));
    doc.set("frames_dropped", JsonValue::of(dropped_frames_));

    return doc;
}

} // namespace inc::obs
