#include "obs/report/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.h"
#include "obs/schema.h"
#include "util/table.h"

namespace inc::obs
{

namespace
{

double
pct(double part, double whole)
{
    return whole > 0.0 ? 100.0 * part / whole : 0.0;
}

DurationSummary
summarizeHistogram(const MetricsRegistry &m, const char *name)
{
    DurationSummary s;
    const auto it = m.histograms().find(name);
    if (it == m.histograms().end() || it->second.total == 0)
        return s;
    const Histogram &h = it->second;
    s.count = h.total;
    s.mean = h.sum / static_cast<double>(h.total);
    s.p50 = h.percentile(0.50);
    s.p95 = h.percentile(0.95);
    s.p99 = h.percentile(0.99);
    return s;
}

JsonValue
rowsToJson(const std::vector<AttributionRow> &rows)
{
    JsonValue arr = JsonValue::array();
    for (const AttributionRow &row : rows) {
        JsonValue r = JsonValue::object();
        r.set("category", JsonValue::of(row.category));
        r.set("nj", JsonValue::of(row.nj));
        r.set("percent", JsonValue::of(row.percent));
        arr.push(std::move(r));
    }
    return arr;
}

JsonValue
durationToJson(const DurationSummary &s)
{
    JsonValue d = JsonValue::object();
    d.set("count", JsonValue::of(s.count));
    d.set("mean", JsonValue::of(s.mean));
    d.set("p50", JsonValue::of(s.p50));
    d.set("p95", JsonValue::of(s.p95));
    d.set("p99", JsonValue::of(s.p99));
    return d;
}

} // namespace

RunReport
buildRunReport(const MetricsRegistry &m, const FlightRecorder *flight,
               std::vector<KernelEfficiency> kernels)
{
    RunReport r;

    r.samples = m.counterValue(kSimSamples);
    r.on_samples = m.counterValue(kSimOnSamples);
    r.cold_boots = m.counterValue(kSimColdBoots);
    r.backups = m.counterValue(kSimBackupAttempts);
    r.restores = m.counterValue(kSimRestores);
    r.instructions = m.counterValue(kSimInstructions);
    r.forward_progress = m.counterValue(kSimForwardProgress);

    // Attribution over the compute-side ledger split. These four
    // accumulators sum to energy.consumed_nj by construction (the
    // identity verifySimMetricIdentities enforces); split_exact records
    // whether that held here, so consumers can tell a real report from
    // one built on an OBS=OFF registry whose split gauges are all zero.
    r.consumed_nj = m.gaugeValue(kEnergyConsumed);
    const struct
    {
        const char *label;
        const char *name;
    } split[] = {
        {"fetch", kEnergyFetch},
        {"datapath", kEnergyDatapath},
        {"idle", kEnergyIdle},
        {"assemble", kEnergyAssemble},
    };
    for (const auto &entry : split) {
        AttributionRow row;
        row.category = entry.label;
        row.nj = m.gaugeValue(entry.name);
        row.percent = pct(row.nj, r.consumed_nj);
        r.attribution_sum_nj += row.nj;
        r.attribution.push_back(std::move(row));
    }
    r.split_exact =
        std::fabs(r.attribution_sum_nj - r.consumed_nj) <=
        1e-9 * std::max(1.0, std::fabs(r.consumed_nj));

    // Conservation ledger: income + initial == drains + leak + stored
    // - unfunded. The unfunded credit is listed as a negative row so
    // the column still sums to ledger_in_nj.
    r.ledger_in_nj =
        m.gaugeValue(kEnergyInitial) + m.gaugeValue(kEnergyIncome);
    const struct
    {
        const char *label;
        const char *name;
        double sign;
    } ledger[] = {
        {"compute", kEnergyConsumed, 1.0},
        {"backup", kEnergyBackup, 1.0},
        {"restore", kEnergyRestore, 1.0},
        {"leak", kEnergyLeak, 1.0},
        {"stored (end)", kEnergyStoredFinal, 1.0},
        {"unfunded credit", kEnergyUnfunded, -1.0},
    };
    for (const auto &entry : ledger) {
        AttributionRow row;
        row.category = entry.label;
        row.nj = entry.sign * m.gaugeValue(entry.name);
        row.percent = pct(row.nj, r.ledger_in_nj);
        r.ledger.push_back(std::move(row));
    }

    r.identity_violations = verifySimMetricIdentities(m);

    r.outage = summarizeHistogram(m, kHistOutageSamples);
    r.on_period = summarizeHistogram(m, kHistOnPeriodSamples);

    for (KernelEfficiency &k : kernels) {
        k.progress_per_uj =
            k.consumed_nj > 0.0
                ? static_cast<double>(k.forward_progress) /
                      (k.consumed_nj * 1e-3)
                : 0.0;
    }
    r.kernels = std::move(kernels);

    if (flight) {
        r.has_flight = true;
        r.outage_log = flight->outages();
        r.outage_log_dropped = flight->droppedOutages();
        r.frame_log = flight->frames();
        r.frame_log_dropped = flight->droppedFrames();
    } else {
        // Offline / sweep path: the flight log itself is gone, but the
        // published drop counters (publishFlightDrops) still reveal
        // whether any recorder overflowed.
        r.outage_log_dropped = m.counterValue(kFlightDroppedOutages);
        r.frame_log_dropped = m.counterValue(kFlightDroppedFrames);
    }
    return r;
}

std::string
RunReport::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::of(std::string("inc-run-report-v1")));

    JsonValue counters = JsonValue::object();
    counters.set("samples", JsonValue::of(samples));
    counters.set("on_samples", JsonValue::of(on_samples));
    counters.set("cold_boots", JsonValue::of(cold_boots));
    counters.set("backups", JsonValue::of(backups));
    counters.set("restores", JsonValue::of(restores));
    counters.set("instructions", JsonValue::of(instructions));
    counters.set("forward_progress", JsonValue::of(forward_progress));
    doc.set("counters", std::move(counters));

    JsonValue attr = JsonValue::object();
    attr.set("rows", rowsToJson(attribution));
    attr.set("sum_nj", JsonValue::of(attribution_sum_nj));
    attr.set("consumed_nj", JsonValue::of(consumed_nj));
    attr.set("split_exact", JsonValue::of(split_exact));
    doc.set("attribution", std::move(attr));

    JsonValue led = JsonValue::object();
    led.set("rows", rowsToJson(ledger));
    led.set("in_nj", JsonValue::of(ledger_in_nj));
    doc.set("ledger", std::move(led));

    JsonValue violations = JsonValue::array();
    for (const std::string &v : identity_violations)
        violations.push(JsonValue::of(v));
    doc.set("identity_violations", std::move(violations));

    JsonValue durations = JsonValue::object();
    durations.set("outage", durationToJson(outage));
    durations.set("on_period", durationToJson(on_period));
    doc.set("durations", std::move(durations));

    JsonValue kern = JsonValue::array();
    for (const KernelEfficiency &k : kernels) {
        JsonValue row = JsonValue::object();
        row.set("kernel", JsonValue::of(k.kernel));
        row.set("forward_progress", JsonValue::of(k.forward_progress));
        row.set("instructions", JsonValue::of(k.instructions));
        row.set("frames_completed", JsonValue::of(k.frames_completed));
        row.set("consumed_nj", JsonValue::of(k.consumed_nj));
        row.set("progress_per_uj", JsonValue::of(k.progress_per_uj));
        kern.push(std::move(row));
    }
    doc.set("kernels", std::move(kern));

    if (has_flight) {
        JsonValue flight = JsonValue::object();
        JsonValue outages = JsonValue::array();
        for (const OutageRecord &o : outage_log)
            outages.push(outageToJson(o));
        flight.set("outages", std::move(outages));
        flight.set("outages_dropped", JsonValue::of(outage_log_dropped));
        JsonValue frames = JsonValue::array();
        for (const FrameRecord &f : frame_log)
            frames.push(frameToJson(f));
        flight.set("frames", std::move(frames));
        flight.set("frames_dropped", JsonValue::of(frame_log_dropped));
        doc.set("flight", std::move(flight));
    } else if (outage_log_dropped > 0 || frame_log_dropped > 0) {
        // No log travelled with the registry, but the drop counters
        // did: surface them so overflow is never silent.
        JsonValue flight = JsonValue::object();
        flight.set("outages_dropped", JsonValue::of(outage_log_dropped));
        flight.set("frames_dropped", JsonValue::of(frame_log_dropped));
        doc.set("flight", std::move(flight));
    }

    return doc.dump() + "\n";
}

std::string
RunReport::renderText() const
{
    std::string out;

    {
        util::Table t("run report");
        t.setHeader({"metric", "value"});
        t.addRow({"samples",
                  util::Table::integer(static_cast<long long>(samples))});
        t.addRow({"on samples",
                  util::Table::integer(
                      static_cast<long long>(on_samples)) +
                      " (" +
                      util::Table::num(pct(static_cast<double>(on_samples),
                                           static_cast<double>(samples)),
                                       1) +
                      " %)"});
        t.addRow({"cold boots", util::Table::integer(
                                    static_cast<long long>(cold_boots))});
        t.addRow({"backups", util::Table::integer(
                                 static_cast<long long>(backups))});
        t.addRow({"restores", util::Table::integer(
                                  static_cast<long long>(restores))});
        t.addRow({"instructions",
                  util::Table::integer(
                      static_cast<long long>(instructions))});
        t.addRow({"forward progress",
                  util::Table::integer(
                      static_cast<long long>(forward_progress))});
        out += t.render();
    }

    {
        util::Table t("energy attribution (of energy.consumed_nj)");
        t.setHeader({"category", "nJ", "%"});
        for (const AttributionRow &row : attribution) {
            t.addRow({row.category, util::Table::num(row.nj, 3),
                      util::Table::num(row.percent, 2)});
        }
        t.addRow({"total", util::Table::num(attribution_sum_nj, 3),
                  util::Table::num(pct(attribution_sum_nj, consumed_nj),
                                   2)});
        out += "\n" + t.render();
        out += split_exact
                   ? "split: exact (rows re-sum to energy.consumed_nj "
                     "within 1e-9 relative)\n"
                   : "split: unavailable (ledger accumulators compiled "
                     "out or inconsistent)\n";
    }

    {
        util::Table t("conservation ledger (of initial + income)");
        t.setHeader({"category", "nJ", "%"});
        for (const AttributionRow &row : ledger) {
            t.addRow({row.category, util::Table::num(row.nj, 3),
                      util::Table::num(row.percent, 2)});
        }
        t.addRow({"income + initial", util::Table::num(ledger_in_nj, 3),
                  util::Table::num(100.0, 2)});
        out += "\n" + t.render();
    }

    if (identity_violations.empty()) {
        out += "identities: ok\n";
    } else {
        out += "identities: " +
               std::to_string(identity_violations.size()) +
               " violation(s)\n";
        for (const std::string &v : identity_violations)
            out += "  ! " + v + "\n";
    }

    {
        util::Table t("durations (0.1 ms samples)");
        t.setHeader({"window", "count", "mean", "p50", "p95", "p99"});
        const auto add = [&t](const char *label,
                              const DurationSummary &s) {
            t.addRow({label,
                      util::Table::integer(
                          static_cast<long long>(s.count)),
                      util::Table::num(s.mean, 1),
                      util::Table::num(s.p50, 1),
                      util::Table::num(s.p95, 1),
                      util::Table::num(s.p99, 1)});
        };
        add("outage", outage);
        add("on period", on_period);
        out += "\n" + t.render();
    }

    if (!kernels.empty()) {
        util::Table t("per-kernel forward-progress efficiency");
        t.setHeader({"kernel", "progress", "instructions", "frames",
                     "consumed uJ", "progress/uJ"});
        for (const KernelEfficiency &k : kernels) {
            t.addRow({k.kernel,
                      util::Table::integer(
                          static_cast<long long>(k.forward_progress)),
                      util::Table::integer(
                          static_cast<long long>(k.instructions)),
                      util::Table::integer(
                          static_cast<long long>(k.frames_completed)),
                      util::Table::num(k.consumed_nj * 1e-3, 3),
                      util::Table::num(k.progress_per_uj, 1)});
        }
        out += "\n" + t.render();
    }

    if (has_flight) {
        // Keep terminals usable on outage-heavy runs; the JSON form
        // carries every record.
        constexpr std::size_t kMaxTextOutages = 64;
        util::Table t("outages (flight recorder)");
        t.setHeader({"#", "fail@", "dark", "stored nJ", "pc", "frame",
                     "lanes", "bits", "resume", "rbits", "decays"});
        std::size_t shown = 0;
        for (std::size_t i = 0;
             i < outage_log.size() && shown < kMaxTextOutages; ++i) {
            const OutageRecord &o = outage_log[i];
            t.addRow({std::to_string(i),
                      std::to_string(o.fail_sample),
                      o.resumed ? std::to_string(o.outage_samples) : "-",
                      util::Table::num(o.stored_nj, 2),
                      std::to_string(o.pc), std::to_string(o.frame),
                      std::to_string(o.lanes),
                      std::string(o.torn ? "torn/" : "") +
                          std::to_string(o.bits_written),
                      o.resumed ? resumeKindName(o.resume) : "open",
                      o.resumed ? std::to_string(o.resume_bits) : "-",
                      o.resumed ? std::to_string(o.retention_decays)
                                : "-"});
            ++shown;
        }
        out += "\n" + t.render();
        if (outage_log.size() > kMaxTextOutages) {
            out += "(" +
                   std::to_string(outage_log.size() - kMaxTextOutages) +
                   " more outage record(s) in the JSON report)\n";
        }
        if (outage_log_dropped > 0) {
            out += "(" + std::to_string(outage_log_dropped) +
                   " outage record(s) dropped at recorder capacity)\n";
        }

        double age_sum = 0.0;
        double psnr_sum = 0.0;
        for (const FrameRecord &f : frame_log) {
            age_sum += f.age_samples;
            psnr_sum += f.psnr;
        }
        const double n = static_cast<double>(frame_log.size());
        out += "frames: " + std::to_string(frame_log.size()) +
               " first completions";
        if (frame_log_dropped > 0)
            out += " (+" + std::to_string(frame_log_dropped) +
                   " dropped)";
        if (!frame_log.empty()) {
            out += ", mean age " + util::Table::num(age_sum / n, 1) +
                   " samples, mean psnr " +
                   util::Table::num(psnr_sum / n, 2) + " dB";
        }
        out += "\n";
    } else if (outage_log_dropped > 0 || frame_log_dropped > 0) {
        out += "flight recorder overflow: " +
               std::to_string(outage_log_dropped) +
               " outage record(s), " +
               std::to_string(frame_log_dropped) +
               " frame record(s) dropped at capacity\n";
    }

    return out;
}

std::string
reportDigest(const std::string &text)
{
    std::uint64_t hash = 14695981039346656037ull; // FNV offset basis
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull; // FNV prime
    }
    char buf[24];
    std::snprintf(buf, sizeof(buf), "fnv1a:%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

} // namespace inc::obs
