/**
 * @file
 * The run report: the forensic summary derived from one run's (or one
 * merged sweep's) metrics registry plus, when available, its flight
 * recorder.
 *
 * This is the analysis layer on top of the instrumentation layer — it
 * answers the paper's evaluation questions directly: where did each
 * nanojoule go (attribution table over the energy.* ledger split,
 * cross-checked against verifySimMetricIdentities), how long were the
 * outages and on-periods (p50/p95/p99 from the registry histograms),
 * how efficiently did each kernel turn energy into forward progress,
 * and what happened at each individual power failure (flight-recorder
 * log).
 *
 * Determinism contract: a report is a pure function of its inputs.
 * Building from the merged registry of a sharded sweep therefore
 * yields byte-identical JSON and text at any --jobs value — the same
 * guarantee the registry itself carries, extended one layer up. No
 * wall-clock times, hostnames or scheduling artifacts appear in the
 * output.
 */

#ifndef INC_OBS_REPORT_REPORT_H
#define INC_OBS_REPORT_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/report/flight_recorder.h"

namespace inc::obs
{

/** One row of an energy table: a ledger category, its total, and its
 *  share of the table's reference total. */
struct AttributionRow
{
    std::string category;
    double nj = 0.0;
    double percent = 0.0;
};

/** Percentile summary of a registry histogram (0.1 ms sample units
 *  for the duration histograms). */
struct DurationSummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Forward-progress efficiency of one kernel within the run/sweep. */
struct KernelEfficiency
{
    std::string kernel;
    std::uint64_t forward_progress = 0;
    std::uint64_t instructions = 0;
    std::uint64_t frames_completed = 0;
    double consumed_nj = 0.0;
    /** Committed lane-instructions per microjoule consumed. */
    double progress_per_uj = 0.0;
};

struct RunReport
{
    // ---- headline counters ---------------------------------------------
    std::uint64_t samples = 0;
    std::uint64_t on_samples = 0;
    std::uint64_t cold_boots = 0;
    std::uint64_t backups = 0;
    std::uint64_t restores = 0;
    std::uint64_t instructions = 0;
    std::uint64_t forward_progress = 0;

    // ---- energy attribution (the compute-side ledger split) ------------
    /** fetch / datapath / idle / assemble rows; percents are of
     *  consumed_nj. */
    std::vector<AttributionRow> attribution;
    double attribution_sum_nj = 0.0;
    double consumed_nj = 0.0;
    /** True when the rows re-sum to energy.consumed_nj within 1e-9
     *  relative — the same identity verifySimMetricIdentities checks.
     *  False when the split accumulators were compiled out
     *  (INCIDENTAL_OBS=OFF publishes zero gauges). */
    bool split_exact = false;

    // ---- conservation ledger (where income + initial charge went) ------
    /** compute / backup / restore / leak / stored rows minus the
     *  unfunded credit; percents are of ledger_in_nj. */
    std::vector<AttributionRow> ledger;
    double ledger_in_nj = 0.0; ///< energy.initial_nj + energy.income_nj

    /** verifySimMetricIdentities output (empty = registry consistent). */
    std::vector<std::string> identity_violations;

    // ---- durations -------------------------------------------------------
    DurationSummary outage;    ///< hist.outage_samples
    DurationSummary on_period; ///< hist.on_period_samples

    // ---- per-kernel efficiency ------------------------------------------
    std::vector<KernelEfficiency> kernels;

    // ---- flight-recorder detail (absent offline / in sweeps) ------------
    bool has_flight = false;
    std::vector<OutageRecord> outage_log;
    std::uint64_t outage_log_dropped = 0;
    std::vector<FrameRecord> frame_log;
    std::uint64_t frame_log_dropped = 0;

    /** Canonical JSON document (schema "inc-run-report-v1"). */
    std::string toJson() const;

    /** Aligned text tables for terminals. */
    std::string renderText() const;
};

/**
 * Derive a report from @p m (a system-sim registry, possibly the merge
 * of many sweep jobs). @p flight adds the per-outage/per-frame log;
 * @p kernels adds the efficiency section (callers aggregate rows in a
 * deterministic order — nvpsim uses sweep expansion order).
 * progress_per_uj is (re)derived here, so callers only fill the raw
 * fields.
 */
RunReport buildRunReport(const MetricsRegistry &m,
                         const FlightRecorder *flight = nullptr,
                         std::vector<KernelEfficiency> kernels = {});

/** FNV-1a 64-bit digest, "fnv1a:" + 16 hex digits — the stable
 *  fingerprint bench/snapshot stores for report drift detection. */
std::string reportDigest(const std::string &text);

} // namespace inc::obs

#endif // INC_OBS_REPORT_REPORT_H
