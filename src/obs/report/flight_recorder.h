/**
 * @file
 * The outage flight recorder: a bounded, structured log of what
 * happened at every power failure and every frame completion.
 *
 * The metrics registry answers "how many" and "how much"; the flight
 * recorder answers "what happened at outage #17". The simulators
 * append one OutageRecord per power cycle (opened at backup, completed
 * at the matching restore) and one FrameRecord per first frame
 * completion. All hooks are cold-path (a backup, a restore, a frame
 * score) and guarded by a null check on Observer::flight, so the
 * per-instruction hot path never sees the recorder — the
 * check_obs_overhead.sh ≤3 % gate is unaffected.
 *
 * Bounding follows the EventTracer pattern: capacity is fixed at
 * construction, appends beyond it are counted in dropped counters
 * instead of growing without bound. The first N records are kept (not
 * a ring) so an open record can never be evicted before its restore
 * completes it; reports summarize the tail through the registry's
 * histograms, which see every event.
 *
 * Not thread-safe; one recorder per run, like the rest of Observer.
 */

#ifndef INC_OBS_REPORT_FLIGHT_RECORDER_H
#define INC_OBS_REPORT_FLIGHT_RECORDER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/json.h"

namespace inc::obs
{

class MetricsRegistry;

/** How execution came back after the power failure. */
enum class ResumeKind : std::uint8_t
{
    cold_boot,    ///< no checkpoint image existed; fresh start
    plain_resume, ///< restored the image and continued in place
    roll_forward, ///< restored, then adopted newer incidental state
};

const char *resumeKindName(ResumeKind kind);

struct OutageRecord;
struct FrameRecord;

/** Canonical JSON form of one record (shared by the recorder dump and
 *  the run report). */
JsonValue outageToJson(const OutageRecord &record);
JsonValue frameToJson(const FrameRecord &record);

/** One power cycle: the failure-time snapshot taken at backup plus
 *  the outcome filled in at the matching restore. */
struct OutageRecord
{
    // ---- failure side (valid from append) ------------------------------
    std::uint64_t fail_sample = 0; ///< trace sample of the backup
    std::uint32_t pc = 0;          ///< interrupted main-lane PC
    std::uint32_t frame = 0;       ///< frame the main lane was serving
    double stored_nj = 0.0;        ///< capacitor energy entering backup
    std::uint32_t lanes = 0;       ///< lanes captured in the image
    std::uint32_t bits_written = 0; ///< checkpoint bits/byte written
    bool torn = false;             ///< copy interrupted mid-flight

    // ---- restore side (valid once `resumed`) ---------------------------
    bool resumed = false;
    std::uint64_t outage_samples = 0; ///< dark time, 0.1 ms units
    ResumeKind resume = ResumeKind::plain_resume;
    std::uint32_t resume_bits = 0; ///< adopted main-lane bitwidth
    /** Shaped-retention expiries applied while restoring (register
     *  decay events or expired NVM bit planes, per simulator). */
    std::uint64_t retention_decays = 0;
};

/** One frame lifetime, recorded at first completion. */
struct FrameRecord
{
    std::uint32_t frame = 0;
    std::uint64_t capture_sample = 0;
    double age_samples = 0.0; ///< capture -> first completion latency
    double mse = 0.0;
    double psnr = 0.0;
    double coverage = 0.0;
    int bits = 8; ///< lane precision at completion
};

class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t max_outages = 1024,
                            std::size_t max_frames = 1024);

    /** Append an empty outage record and return it for filling, or
     *  nullptr when at capacity (the drop is counted). */
    OutageRecord *appendOutage();

    /** The most recent record still awaiting its restore, or nullptr
     *  (none open, or the open one was dropped at append). */
    OutageRecord *openOutage();

    /** Append an empty frame record, or nullptr at capacity. */
    FrameRecord *appendFrame();

    const std::vector<OutageRecord> &outages() const
    {
        return outages_;
    }
    const std::vector<FrameRecord> &frames() const { return frames_; }
    std::uint64_t droppedOutages() const { return dropped_outages_; }
    std::uint64_t droppedFrames() const { return dropped_frames_; }

    void clear();

    /** Canonical JSON object (embedded in the run report). */
    JsonValue toJsonValue() const;

  private:
    std::size_t max_outages_;
    std::size_t max_frames_;
    std::vector<OutageRecord> outages_;
    std::vector<FrameRecord> frames_;
    std::uint64_t dropped_outages_ = 0;
    std::uint64_t dropped_frames_ = 0;
};

/**
 * Publish the recorder's drop counters into @p registry
 * (obs/schema.h: flight.dropped_outages / flight.dropped_frames), so
 * capacity overflow stays visible in metrics JSON and in reports
 * re-derived offline from it — the flight log itself never travels
 * through the registry. Counters are published even at zero: an
 * explicit zero distinguishes "nothing dropped" from "no recorder
 * attached".
 */
void publishFlightDrops(const FlightRecorder &flight,
                        MetricsRegistry &registry);

} // namespace inc::obs

#endif // INC_OBS_REPORT_FLIGHT_RECORDER_H
