/**
 * @file
 * A minimal JSON document model for the observability sinks.
 *
 * Scope is deliberately narrow: parse/serialize the metrics and
 * Chrome-trace files the obs layer itself writes, and give tests a
 * structural validity check. Objects keep their members in sorted key
 * order (std::map), which is exactly the canonical-form property the
 * byte-identical aggregation guarantee rests on. Numbers are doubles;
 * values that are whole numbers within 2^53 serialize without a
 * decimal point, everything else with %.17g (round-trip exact).
 */

#ifndef INC_OBS_JSON_H
#define INC_OBS_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace inc::obs
{

/** One JSON value (null / bool / number / string / array / object). */
class JsonValue
{
  public:
    enum class Kind
    {
        null,
        boolean,
        number,
        string,
        array,
        object
    };

    JsonValue() = default;
    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue of(bool b);
    static JsonValue of(double n);
    static JsonValue of(std::uint64_t n);
    static JsonValue of(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::object; }
    bool isArray() const { return kind_ == Kind::array; }
    bool isNumber() const { return kind_ == Kind::number; }
    bool isString() const { return kind_ == Kind::string; }

    bool boolean() const { return bool_; }
    double number() const { return number_; }
    const std::string &string() const { return string_; }
    const std::vector<JsonValue> &items() const { return items_; }
    const std::map<std::string, JsonValue> &members() const
    {
        return members_;
    }

    /** Object member by key, or nullptr. */
    const JsonValue *find(const std::string &key) const;

    void push(JsonValue v) { items_.push_back(std::move(v)); }
    void set(const std::string &key, JsonValue v)
    {
        members_[key] = std::move(v);
    }

    /** Canonical serialization (sorted object keys, %.17g doubles). */
    std::string dump() const;

  private:
    Kind kind_ = Kind::null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::map<std::string, JsonValue> members_;
};

/** Canonical number formatting shared by every obs sink. */
std::string formatJsonNumber(double value);

/**
 * Parse @p text into a document. Returns false (and sets @p error with
 * an offset-tagged message) on malformed input; @p out is untouched
 * then. Accepts exactly the JSON value grammar — no comments, no
 * trailing commas.
 */
bool parseJson(const std::string &text, JsonValue *out,
               std::string *error);

/** Structural validity only (the golden tests' "loads in Perfetto"
 *  gate starts here). */
bool jsonIsValid(const std::string &text);

} // namespace inc::obs

#endif // INC_OBS_JSON_H
