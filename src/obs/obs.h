/**
 * @file
 * Hot-path instrumentation primitives of the observability layer.
 *
 * Design contract (DESIGN.md §9): observation must never perturb the
 * simulation (no RNG draws, no control-flow changes) and must cost
 * nothing when switched off. Two tiers of "off":
 *
 *  - compiled out: building with -DINCIDENTAL_OBS=OFF (which defines
 *    INC_OBS_ENABLED=0) removes every hot-path increment from the
 *    interpreter entirely — the macros below expand to nothing. The
 *    setter/pointer plumbing stays so callers need no #ifdefs.
 *
 *  - enabled but idle: the default build keeps the increments behind a
 *    raw-pointer null check (no virtual calls, no map lookups on the
 *    hot path — counters are plain struct fields, materialized into
 *    named registry metrics only at publish time). The idle cost is a
 *    predictable never-taken branch per site; bench/obs_overhead
 *    guards it at <= 3 % of the interpreter step.
 */

#ifndef INC_OBS_OBS_H
#define INC_OBS_OBS_H

#include <cstdint>

#ifndef INC_OBS_ENABLED
#define INC_OBS_ENABLED 1
#endif

/** Branch hint: sinks are detached in production runs, so the null
 *  check is predicted-false and the increment is moved off the
 *  straight-line path (this is what keeps the idle overhead inside the
 *  3 % gate). */
#if defined(__GNUC__) || defined(__clang__)
#define INC_OBS_UNLIKELY(cond) __builtin_expect(!!(cond), 0)
#else
#define INC_OBS_UNLIKELY(cond) (cond)
#endif

#if INC_OBS_ENABLED
/** Increment a hot-counter field iff a sink struct is attached. */
#define INC_OBS_COUNT(ptr, field)                                       \
    do {                                                                \
        if (INC_OBS_UNLIKELY(ptr))                                      \
            ++(ptr)->field;                                             \
    } while (0)
/** Add @p amount to a hot-counter field iff a sink is attached. */
#define INC_OBS_ADD(ptr, field, amount)                                 \
    do {                                                                \
        if (INC_OBS_UNLIKELY(ptr))                                      \
            (ptr)->field +=                                             \
                static_cast<std::uint64_t>(amount);                     \
    } while (0)
/** Arbitrary statement executed only when observability is compiled
 *  in; callers still guard on their own sink pointer. */
#define INC_OBS_ONLY(statement)                                         \
    do {                                                                \
        statement;                                                      \
    } while (0)
#else
#define INC_OBS_COUNT(ptr, field)                                       \
    do {                                                                \
    } while (0)
#define INC_OBS_ADD(ptr, field, amount)                                 \
    do {                                                                \
    } while (0)
#define INC_OBS_ONLY(statement)                                         \
    do {                                                                \
    } while (0)
#endif

namespace inc::obs
{

/** Interpreter-core event counters (attached via Core::setObsCounters).
 *  Identities: steps == sum of the instr_* classes; lane_commits is
 *  the forward-progress the simulator reports. */
struct CoreCounters
{
    std::uint64_t steps = 0;          ///< step() calls (incl. halted)
    std::uint64_t instr_alu = 0;      ///< alu + mul + div classes
    std::uint64_t instr_load = 0;
    std::uint64_t instr_store = 0;
    std::uint64_t instr_branch = 0;
    std::uint64_t branch_taken = 0;
    std::uint64_t instr_jump = 0;
    std::uint64_t instr_incidental = 0;
    std::uint64_t instr_system = 0;   ///< halt/nop + halted re-entries
    std::uint64_t assembles = 0;      ///< assem instructions executed
    std::uint64_t assemble_bytes = 0; ///< bytes through the merge FSM
    std::uint64_t lane_commits = 0;   ///< per-step lanes_committed sum
};

/** Data-memory event counters (DataMemory::setObsCounters). */
struct MemCounters
{
    std::uint64_t loads = 0;            ///< lane load8 calls
    std::uint64_t stores = 0;           ///< lane store8 calls
    std::uint64_t ac_truncated_loads = 0;
    std::uint64_t ac_truncated_stores = 0;
    std::uint64_t wt_commits = 0;  ///< write-throughs that won arbitration
    std::uint64_t wt_rejects = 0;  ///< write-throughs that lost
    std::uint64_t assemble_bytes = 0;
    std::uint64_t version_resets = 0; ///< resetVersionedRange bytes
    std::uint64_t lane_clears = 0;    ///< clearLaneVersions calls
    std::uint64_t decay_passes = 0;   ///< applyOutageDecay calls
};

/** Recompute-and-combine queue counters (RecomputeQueue). */
struct QueueCounters
{
    std::uint64_t requests = 0;  ///< request() calls
    std::uint64_t passes = 0;    ///< takePass() calls
    std::uint64_t dropped = 0;   ///< stale requests dropped
};

} // namespace inc::obs

#endif // INC_OBS_OBS_H
