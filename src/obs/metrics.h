/**
 * @file
 * The metrics registry: named counters, gauges and histograms with a
 * canonical JSON sink and a deterministic merge.
 *
 * Determinism contract (the property tests/test_obs.cc pins): a
 * registry's JSON form depends only on its contents — names are kept
 * sorted, numbers use one canonical formatting — and merge() is
 * performed by the runner in job-index order, so a sharded sweep's
 * aggregated metrics file is byte-identical at any --jobs value.
 *
 * The registry is the *cold* side of the obs layer: lookups walk a
 * map and are meant for publish-time and rare events (a backup, a
 * restore). Per-instruction hot counters live in the plain structs of
 * obs/obs.h and are folded into the registry once, at publish.
 *
 * Not thread-safe; every simulator run / sweep job owns its own
 * registry and the runner merges after the pool has drained.
 */

#ifndef INC_OBS_METRICS_H
#define INC_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace inc::obs
{

/** Monotone event count. */
struct Counter
{
    std::uint64_t value = 0;

    void inc(std::uint64_t by = 1) { value += by; }
};

/** Double-valued total (energy ledgers, fractions). Merging sums, so
 *  gauges published into aggregated registries should be additive
 *  quantities (totals, not instantaneous readings). */
struct Gauge
{
    double value = 0.0;

    void set(double v) { value = v; }
    void add(double v) { value += v; }
};

/** Fixed-bound histogram: counts[i] holds samples <= bounds[i], the
 *  final implicit bucket is overflow. */
struct Histogram
{
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 buckets
    std::uint64_t total = 0;
    double sum = 0.0;

    explicit Histogram(std::vector<double> upper_bounds = {});
    void record(double sample);

    /**
     * Percentile estimate from the bucket layout, @p q in [0, 1]
     * (clamped). Linear interpolation inside the containing bucket:
     * the first bucket interpolates up from 0, the overflow bucket is
     * clamped to the highest bound (its upper edge is unknown). 0 when
     * the histogram is empty. Depends only on bounds/counts, so the
     * estimate survives a merge or a JSON round-trip unchanged —
     * tests/test_report.cc pins the interpolation.
     */
    double percentile(double q) const;
};

/** Name -> metric store. */
class MetricsRegistry
{
  public:
    /** Get-or-create. Names are free-form; the schema constants in
     *  obs/schema.h are the ones the identity checker understands. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** @p bounds is used only on first creation. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);

    bool empty() const;

    /** Value lookups (0 when absent) — convenience for tests and the
     *  identity checker. */
    std::uint64_t counterValue(const std::string &name) const;
    double gaugeValue(const std::string &name) const;
    bool has(const std::string &name) const;

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge> &gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /**
     * Fold @p other into this registry: counters and gauges add,
     * histograms add bucket-wise (bounds must match; mismatched
     * histograms are summed into total/sum only and flagged via the
     * returned false). Used by the runner in job-index order.
     */
    bool merge(const MetricsRegistry &other);

    /** Canonical JSON document (schema "inc-metrics-v1"). */
    std::string toJson() const;

    /** Write toJson() to @p path. False on I/O failure. */
    bool writeJson(const std::string &path) const;

    /** Parse a toJson() document back. */
    static bool fromJson(const std::string &text, MetricsRegistry *out,
                         std::string *error);

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * Compare two metrics JSON documents with a float tolerance: every
 * metric present in either must be present in both, counters must be
 * exactly equal, gauges/histogram sums within max(abs_tol, rel_tol *
 * |expected|). Returns human-readable difference lines (empty =>
 * match). The golden regression test is built on this.
 */
std::vector<std::string> compareMetricsJson(const std::string &expected,
                                            const std::string &actual,
                                            double rel_tol = 1e-9,
                                            double abs_tol = 1e-9);

} // namespace inc::obs

#endif // INC_OBS_METRICS_H
