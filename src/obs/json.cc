#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace inc::obs
{

JsonValue
JsonValue::of(bool b)
{
    JsonValue v;
    v.kind_ = Kind::boolean;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::of(double n)
{
    JsonValue v;
    v.kind_ = Kind::number;
    v.number_ = n;
    return v;
}

JsonValue
JsonValue::of(std::uint64_t n)
{
    return of(static_cast<double>(n));
}

JsonValue
JsonValue::of(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::string;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::object;
    return v;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::object)
        return nullptr;
    const auto it = members_.find(key);
    return it == members_.end() ? nullptr : &it->second;
}

std::string
formatJsonNumber(double value)
{
    // Whole numbers up to 2^53 print without an exponent or decimal
    // point so counters stay readable and byte-stable.
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", value);
        return buf;
    }
    if (!std::isfinite(value))
        return "0"; // JSON has no inf/nan; sinks must not emit them
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
dumpValue(const JsonValue &v, std::string &out)
{
    switch (v.kind()) {
      case JsonValue::Kind::null:
        out += "null";
        break;
      case JsonValue::Kind::boolean:
        out += v.boolean() ? "true" : "false";
        break;
      case JsonValue::Kind::number:
        out += formatJsonNumber(v.number());
        break;
      case JsonValue::Kind::string:
        appendEscaped(out, v.string());
        break;
      case JsonValue::Kind::array: {
        out += '[';
        bool first = true;
        for (const JsonValue &item : v.items()) {
            if (!first)
                out += ',';
            first = false;
            dumpValue(item, out);
        }
        out += ']';
        break;
      }
      case JsonValue::Kind::object: {
        out += '{';
        bool first = true;
        for (const auto &[key, member] : v.members()) {
            if (!first)
                out += ',';
            first = false;
            appendEscaped(out, key);
            out += ':';
            dumpValue(member, out);
        }
        out += '}';
        break;
      }
    }
}

/** Recursive-descent parser over the plain value grammar. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool parse(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool fail(const std::string &why)
    {
        if (error_)
            *error_ = why + " (offset " + std::to_string(pos_) + ")";
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(const char *word, JsonValue value, JsonValue *out)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        *out = std::move(value);
        return true;
    }

    bool parseString(std::string *out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        std::string s;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') {
                *out = std::move(s);
                return true;
            }
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("dangling escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/': s += '/'; break;
                  case 'b': s += '\b'; break;
                  case 'f': s += '\f'; break;
                  case 'n': s += '\n'; break;
                  case 'r': s += '\r'; break;
                  case 't': s += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    const std::string hex = text_.substr(pos_, 4);
                    char *end = nullptr;
                    const long code = std::strtol(hex.c_str(), &end, 16);
                    if (end != hex.c_str() + 4)
                        return fail("bad \\u escape");
                    pos_ += 4;
                    // The sinks only emit control-character escapes;
                    // fold anything else to UTF-8 best effort.
                    if (code < 0x80) {
                        s += static_cast<char>(code);
                    } else if (code < 0x800) {
                        s += static_cast<char>(0xC0 | (code >> 6));
                        s += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        s += static_cast<char>(0xE0 | (code >> 12));
                        s += static_cast<char>(0x80 |
                                               ((code >> 6) & 0x3F));
                        s += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                s += c;
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue *out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double value = std::strtod(start, &end);
        if (end == start)
            return fail("expected number");
        pos_ += static_cast<std::size_t>(end - start);
        *out = JsonValue::of(value);
        return true;
    }

    bool parseValue(JsonValue *out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        switch (text_[pos_]) {
          case 'n': return literal("null", JsonValue::makeNull(), out);
          case 't': return literal("true", JsonValue::of(true), out);
          case 'f': return literal("false", JsonValue::of(false), out);
          case '"': {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = JsonValue::of(std::move(s));
            return true;
          }
          case '[': {
            ++pos_;
            JsonValue arr = JsonValue::array();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                *out = std::move(arr);
                return true;
            }
            while (true) {
                JsonValue item;
                skipWs();
                if (!parseValue(&item))
                    return false;
                arr.push(std::move(item));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    *out = std::move(arr);
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '{': {
            ++pos_;
            JsonValue obj = JsonValue::object();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                *out = std::move(obj);
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                skipWs();
                JsonValue member;
                if (!parseValue(&member))
                    return false;
                obj.set(key, std::move(member));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    *out = std::move(obj);
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          default:
            return parseNumber(out);
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
JsonValue::dump() const
{
    std::string out;
    dumpValue(*this, out);
    return out;
}

bool
parseJson(const std::string &text, JsonValue *out, std::string *error)
{
    Parser parser(text, error);
    JsonValue v;
    if (!parser.parse(&v))
        return false;
    if (out)
        *out = std::move(v);
    return true;
}

bool
jsonIsValid(const std::string &text)
{
    return parseJson(text, nullptr, nullptr);
}

} // namespace inc::obs
