/**
 * @file
 * The metric-name schema published by the instrumented simulators, and
 * the cross-metric identity checker built on it.
 *
 * Names are dotted paths grouped by producer: `sim.*` and `energy.*`
 * from sim/system_sim, `ctrl.*` from the incidental controller's stats,
 * `bits.ticks.N` from the bitwidth controller, `core.*` / `mem.*` /
 * `queue.*` from the hot-path counter structs, `ac.*` from
 * sim/active_checkpoint, `runner.*` from runner-level aggregation.
 *
 * The identities verified here are the obs layer's test surface: they
 * are exact (or 1e-9-relative, for energy ledgers) consequences of the
 * simulator's bookkeeping, so any violation is an instrumentation or
 * simulator bug — the diff-harness fuzzer checks them on every trial.
 */

#ifndef INC_OBS_SCHEMA_H
#define INC_OBS_SCHEMA_H

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace inc::obs
{

// ---- system-simulator counters -----------------------------------------
inline constexpr char kSimSamples[] = "sim.samples";
inline constexpr char kSimOnSamples[] = "sim.on_samples";
inline constexpr char kSimColdBoots[] = "sim.cold_boots";
inline constexpr char kSimInstructions[] = "sim.instructions";
inline constexpr char kSimForwardProgress[] = "sim.forward_progress";
inline constexpr char kSimCycles[] = "sim.cycles";
inline constexpr char kSimAdoptedLaneCycles[] = "sim.adopted_lane_cycles";
inline constexpr char kSimBackupAttempts[] = "sim.backup.attempts";
inline constexpr char kSimBackupsCommitted[] = "sim.backup.committed";
inline constexpr char kSimBackupsTorn[] = "sim.backup.torn";
inline constexpr char kSimRestores[] = "sim.restore.successes";
inline constexpr char kSimFrameAttempts[] = "sim.frames.capture_attempts";
inline constexpr char kSimFramesCaptured[] = "sim.frames.captured";
inline constexpr char kSimFramesDmaDropped[] = "sim.frames.dma_dropped";
inline constexpr char kSimFramesScored[] = "sim.frames.scored";
inline constexpr char kSimRetentionViolations[] =
    "sim.retention.violations";
inline constexpr char kSimRetentionFlips[] = "sim.retention.flips";

/** Per-bitwidth occupancy: "bits.ticks.0" (off) .. "bits.ticks.8". */
inline constexpr char kBitTicksPrefix[] = "bits.ticks.";

// ---- energy ledger gauges (all nJ, additive across shards) -------------
inline constexpr char kEnergyInitial[] = "energy.initial_nj";
inline constexpr char kEnergyIncome[] = "energy.income_nj";
inline constexpr char kEnergyFetch[] = "energy.fetch_nj";
inline constexpr char kEnergyDatapath[] = "energy.datapath_nj";
inline constexpr char kEnergyIdle[] = "energy.idle_nj";
inline constexpr char kEnergyAssemble[] = "energy.assemble_nj";
inline constexpr char kEnergyConsumed[] = "energy.consumed_nj";
inline constexpr char kEnergyBackup[] = "energy.backup_nj";
inline constexpr char kEnergyRestore[] = "energy.restore_nj";
inline constexpr char kEnergyLeak[] = "energy.leak_nj";
inline constexpr char kEnergyStoredFinal[] = "energy.stored_final_nj";
/** Demanded-but-unavailable drain (capacitor clamped at zero). */
inline constexpr char kEnergyUnfunded[] = "energy.unfunded_nj";

// ---- histograms ---------------------------------------------------------
inline constexpr char kHistOutageSamples[] = "hist.outage_samples";
inline constexpr char kHistBackupLanes[] = "hist.backup_lanes";
/** Duration of each completed ON period (recorded at backup), 0.1 ms
 *  units — the complement of hist.outage_samples; the run report
 *  derives its p50/p95/p99 duration summaries from these two. */
inline constexpr char kHistOnPeriodSamples[] = "hist.on_period_samples";

// ---- hot-path counter groups (obs/obs.h structs, folded at publish) ----
inline constexpr char kCoreSteps[] = "core.steps";
inline constexpr char kCoreInstrAlu[] = "core.instr.alu";
inline constexpr char kCoreInstrLoad[] = "core.instr.load";
inline constexpr char kCoreInstrStore[] = "core.instr.store";
inline constexpr char kCoreInstrBranch[] = "core.instr.branch";
inline constexpr char kCoreBranchTaken[] = "core.branch_taken";
inline constexpr char kCoreInstrJump[] = "core.instr.jump";
inline constexpr char kCoreInstrIncidental[] = "core.instr.incidental";
inline constexpr char kCoreInstrSystem[] = "core.instr.system";
inline constexpr char kCoreAssembles[] = "core.assembles";
inline constexpr char kCoreAssembleBytes[] = "core.assemble_bytes";
inline constexpr char kCoreLaneCommits[] = "core.lane_commits";

inline constexpr char kMemLoads[] = "mem.loads";
inline constexpr char kMemStores[] = "mem.stores";
inline constexpr char kMemAcTruncatedLoads[] = "mem.ac_truncated_loads";
inline constexpr char kMemAcTruncatedStores[] = "mem.ac_truncated_stores";
inline constexpr char kMemWtCommits[] = "mem.wt_commits";
inline constexpr char kMemWtRejects[] = "mem.wt_rejects";
inline constexpr char kMemAssembleBytes[] = "mem.assemble_bytes";
inline constexpr char kMemVersionResets[] = "mem.version_resets";
inline constexpr char kMemLaneClears[] = "mem.lane_clears";
inline constexpr char kMemDecayPasses[] = "mem.decay_passes";

inline constexpr char kQueueRequests[] = "queue.requests";
inline constexpr char kQueuePasses[] = "queue.passes";
inline constexpr char kQueueDropped[] = "queue.dropped";

// ---- incidental-controller stats ---------------------------------------
inline constexpr char kCtrlPrefix[] = "ctrl.";

// ---- active-checkpoint baseline ----------------------------------------
inline constexpr char kAcAttempts[] = "ac.checkpoint.attempts";
inline constexpr char kAcCommitted[] = "ac.checkpoint.committed";
inline constexpr char kAcTorn[] = "ac.checkpoint.torn";
/** A copy still mid-flight when the trace ended (0 or 1 per run). */
inline constexpr char kAcInFlightAtEnd[] = "ac.checkpoint.in_flight_at_end";
inline constexpr char kAcRestores[] = "ac.restore.successes";
inline constexpr char kAcBitExpirations[] = "ac.restore.bit_expirations";
inline constexpr char kAcInstrExecuted[] = "ac.instructions.executed";
inline constexpr char kAcInstrLost[] = "ac.instructions.lost";
inline constexpr char kAcForwardProgress[] = "ac.forward_progress";
inline constexpr char kAcCheckpointEnergy[] = "ac.energy.checkpoint_nj";

// ---- checkpoint strategies (src/sim/strategy; DESIGN.md §14) ------------
/** Image commits at in-situ backup events (== sim.backup.committed). */
inline constexpr char kCkptBackups[] = "ckpt.backup.events";
/** Extra threshold-triggered commits (ondemand watermark crossings). */
inline constexpr char kCkptSnapshots[] = "ckpt.snapshot.events";
/** Bytes written into the image across all commits. */
inline constexpr char kCkptBackupBytes[] = "ckpt.backup.bytes";
/** Wake-up restores serviced (cold boots excluded; +sim.cold_boots ==
 *  sim.restore.successes). */
inline constexpr char kCkptRestores[] = "ckpt.restore.events";
inline constexpr char kCkptRestoreBytes[] = "ckpt.restore.bytes";
/** 4-byte words written vs covered per commit; their ratio is the
 *  strategy's dirty ratio (1.0 for full-image strategies). */
inline constexpr char kCkptWordsWritten[] = "ckpt.dirty.words_written";
inline constexpr char kCkptWordsTracked[] = "ckpt.dirty.words_tracked";
/** Modeled backup energy, nJ (ld8+st8 per byte; reported, not drained). */
inline constexpr char kCkptBackupEnergy[] = "ckpt.energy.backup_nj";
/** Modeled restore copy-loop latency, us. */
inline constexpr char kCkptRestoreLatency[] = "ckpt.restore.modeled_us";
/** Per-run strategy tag: "ckpt.strategy.<name>" += 1. */
inline constexpr char kCkptStrategyPrefix[] = "ckpt.strategy.";

// ---- runner aggregation -------------------------------------------------
inline constexpr char kRunnerJobsTotal[] = "runner.jobs_total";
inline constexpr char kRunnerJobsFailed[] = "runner.jobs_failed";

// ---- persistence arena (src/arena; published via publishArenaStats) -----
inline constexpr char kArenaLogBytes[] = "arena.log_bytes";
inline constexpr char kArenaLogRecords[] = "arena.log_records";
inline constexpr char kArenaCommits[] = "arena.commits";
inline constexpr char kArenaReplayedRecords[] = "arena.replayed_records";
inline constexpr char kArenaDiscardedTailBytes[] =
    "arena.discarded_tail_bytes";
inline constexpr char kArenaRecoveries[] = "arena.recoveries";
inline constexpr char kArenaRecoveryMs[] = "arena.recovery_ms";

// ---- flight recorder (bounded-log overflow accounting) ------------------
inline constexpr char kFlightDroppedOutages[] = "flight.dropped_outages";
inline constexpr char kFlightDroppedFrames[] = "flight.dropped_frames";

// ---- fleet coordinator (scheduling artifacts; kept in a separate
// registry — never merged into campaign metrics, whose bytes must be
// independent of worker count and crash history; DESIGN.md §15) ----------
inline constexpr char kFleetShardsPlanned[] = "fleet.shards.planned";
inline constexpr char kFleetShardsDispatched[] =
    "fleet.shards.dispatched";
inline constexpr char kFleetShardsCompleted[] =
    "fleet.shards.completed";
inline constexpr char kFleetShardsReassigned[] =
    "fleet.shards.reassigned";
inline constexpr char kFleetShardsRetried[] = "fleet.shards.retried";
inline constexpr char kFleetWorkersSpawned[] = "fleet.workers.spawned";
inline constexpr char kFleetWorkersLost[] = "fleet.workers.lost";
inline constexpr char kFleetWorkerWallMs[] = "fleet.worker.wall_ms";
inline constexpr char kFleetMergeBytes[] = "fleet.merge.bytes";

// ---- fleet live-telemetry plane (status socket + PROGRESS frames;
// DESIGN.md §16). Same separate-registry rule as the fleet.* block
// above: these count the observability side channel, never the
// campaign results. --------------------------------------------------------
/** Status snapshots served over the --status-socket endpoint. */
inline constexpr char kFleetStatusRequests[] = "fleet.status.requests";
/** PROGRESS frames folded into the live view. */
inline constexpr char kFleetStatusProgressFrames[] =
    "fleet.status.progress_frames";
/** PROGRESS payload bytes received. */
inline constexpr char kFleetStatusProgressBytes[] =
    "fleet.status.progress_bytes";
/** Worker span events merged into the fleet trace. */
inline constexpr char kFleetStatusSpansMerged[] =
    "fleet.status.spans_merged";

// ---- trace counter series (EventTracer phase-"C" names; declared
// here so the schema lint covers every emitted name literal) --------------
/** Capacitor charge series in the run trace, nJ. */
inline constexpr char kTraceCapSeries[] = "cap_nj";

/**
 * Check every cross-metric identity a system-simulator registry must
 * satisfy (counter identities exactly; energy ledgers within
 * @p rel_tol relative). Returns one line per violation; empty means
 * the registry is consistent. Registries that merged several runs
 * satisfy the same identities — every one is preserved under
 * addition.
 */
std::vector<std::string>
verifySimMetricIdentities(const MetricsRegistry &m,
                          double rel_tol = 1e-9);

/** Identity check for an active-checkpoint baseline registry. */
std::vector<std::string>
verifyCheckpointMetricIdentities(const MetricsRegistry &m);

} // namespace inc::obs

#endif // INC_OBS_SCHEMA_H
