#include "isa/builder.h"

#include "util/logging.h"

namespace inc::isa
{

Label
ProgramBuilder::makeLabel(const std::string &name)
{
    label_addrs_.push_back(-1);
    label_names_.push_back(name);
    return Label{static_cast<int>(label_addrs_.size()) - 1};
}

void
ProgramBuilder::bind(Label label)
{
    if (!label.valid() ||
        label.id >= static_cast<int>(label_addrs_.size()))
        util::panic("bind: invalid label");
    if (label_addrs_[static_cast<size_t>(label.id)] != -1)
        util::panic("bind: label already bound");
    pending_binds_.push_back(label.id);
}

Label
ProgramBuilder::here(const std::string &name)
{
    Label l = makeLabel(name);
    bind(l);
    return l;
}

void
ProgramBuilder::emit(Op op, std::uint8_t rd, std::uint8_t rs1,
                     std::uint8_t rs2, std::uint16_t imm)
{
    if (finished_)
        util::panic("ProgramBuilder reused after finish()");
    for (int id : pending_binds_)
        label_addrs_[static_cast<size_t>(id)] =
            static_cast<int>(code_.size());
    pending_binds_.clear();
    code_.push_back(Instruction{op, rd, rs1, rs2, imm});
}

void ProgramBuilder::nop() { emit(Op::nop, 0, 0, 0, 0); }
void ProgramBuilder::halt() { emit(Op::halt, 0, 0, 0, 0); }

void
ProgramBuilder::ldi(Reg rd, std::uint16_t imm)
{
    emit(Op::ldi, rd, 0, 0, imm);
}

void ProgramBuilder::mov(Reg rd, Reg rs) { emit(Op::mov, rd, rs, 0, 0); }

#define INC_RTYPE(fn, op)                                                 \
    void ProgramBuilder::fn(Reg rd, Reg a, Reg b)                         \
    {                                                                     \
        emit(Op::op, rd, a, b, 0);                                        \
    }

INC_RTYPE(add, add)
INC_RTYPE(sub, sub)
INC_RTYPE(mul, mul)
INC_RTYPE(divu, divu)
INC_RTYPE(remu, remu)
INC_RTYPE(and_, and_)
INC_RTYPE(or_, or_)
INC_RTYPE(xor_, xor_)
INC_RTYPE(sll, sll)
INC_RTYPE(srl, srl)
INC_RTYPE(sra, sra)
INC_RTYPE(slt, slt)
INC_RTYPE(sltu, sltu)
INC_RTYPE(min, min)
INC_RTYPE(max, max)
INC_RTYPE(minu, minu)
INC_RTYPE(maxu, maxu)
#undef INC_RTYPE

void
ProgramBuilder::addi(Reg rd, Reg a, std::int16_t imm)
{
    emit(Op::addi, rd, a, 0, static_cast<std::uint16_t>(imm));
}

#define INC_ITYPE(fn, op)                                                 \
    void ProgramBuilder::fn(Reg rd, Reg a, std::uint16_t imm)             \
    {                                                                     \
        emit(Op::op, rd, a, 0, imm);                                      \
    }

INC_ITYPE(andi, andi)
INC_ITYPE(ori, ori)
INC_ITYPE(xori, xori)
INC_ITYPE(slli, slli)
INC_ITYPE(srli, srli)
INC_ITYPE(srai, srai)
INC_ITYPE(sltiu, sltiu)
#undef INC_ITYPE

void
ProgramBuilder::slti(Reg rd, Reg a, std::int16_t imm)
{
    emit(Op::slti, rd, a, 0, static_cast<std::uint16_t>(imm));
}

void
ProgramBuilder::ld8(Reg rd, Reg base, std::int16_t offset)
{
    emit(Op::ld8, rd, base, 0, static_cast<std::uint16_t>(offset));
}

void
ProgramBuilder::ld8s(Reg rd, Reg base, std::int16_t offset)
{
    emit(Op::ld8s, rd, base, 0, static_cast<std::uint16_t>(offset));
}

void
ProgramBuilder::ld16(Reg rd, Reg base, std::int16_t offset)
{
    emit(Op::ld16, rd, base, 0, static_cast<std::uint16_t>(offset));
}

void
ProgramBuilder::st8(Reg value, Reg base, std::int16_t offset)
{
    emit(Op::st8, 0, base, value, static_cast<std::uint16_t>(offset));
}

void
ProgramBuilder::st16(Reg value, Reg base, std::int16_t offset)
{
    emit(Op::st16, 0, base, value, static_cast<std::uint16_t>(offset));
}

void
ProgramBuilder::emitBranch(Op op, Reg a, Reg b, Label target)
{
    if (!target.valid())
        util::panic("branch to invalid label");
    fixups_.push_back({code_.size(), target.id});
    emit(op, 0, a, b, 0);
}

void ProgramBuilder::beq(Reg a, Reg b, Label t) { emitBranch(Op::beq, a, b, t); }
void ProgramBuilder::bne(Reg a, Reg b, Label t) { emitBranch(Op::bne, a, b, t); }
void ProgramBuilder::blt(Reg a, Reg b, Label t) { emitBranch(Op::blt, a, b, t); }
void ProgramBuilder::bge(Reg a, Reg b, Label t) { emitBranch(Op::bge, a, b, t); }
void ProgramBuilder::bltu(Reg a, Reg b, Label t) { emitBranch(Op::bltu, a, b, t); }
void ProgramBuilder::bgeu(Reg a, Reg b, Label t) { emitBranch(Op::bgeu, a, b, t); }

void
ProgramBuilder::jmp(Label target)
{
    if (!target.valid())
        util::panic("jmp to invalid label");
    fixups_.push_back({code_.size(), target.id});
    emit(Op::jmp, 0, 0, 0, 0);
}

void
ProgramBuilder::jal(Reg rd, Label target)
{
    if (!target.valid())
        util::panic("jal to invalid label");
    fixups_.push_back({code_.size(), target.id});
    emit(Op::jal, rd, 0, 0, 0);
}

void ProgramBuilder::jr(Reg rs) { emit(Op::jr, 0, rs, 0, 0); }

void
ProgramBuilder::markResume(Reg frame_reg, std::uint16_t match_mask)
{
    emit(Op::markrp, 0, frame_reg, 0, match_mask);
}

void
ProgramBuilder::acSet(std::uint16_t reg_mask)
{
    emit(Op::acset, 0, 0, 0, reg_mask);
}

void
ProgramBuilder::acClear(std::uint16_t reg_mask)
{
    emit(Op::acclr, 0, 0, 0, reg_mask);
}

void
ProgramBuilder::acEnable(bool on)
{
    emit(Op::acen, 0, 0, 0, on ? 1 : 0);
}

void
ProgramBuilder::assemble(Reg base, Reg len, AssembleMode mode)
{
    emit(Op::assem, 0, base, len, static_cast<std::uint16_t>(mode));
}

void
ProgramBuilder::neg(Reg rd, Reg rs)
{
    sub(rd, r0, rs);
}

void
ProgramBuilder::abs_(Reg rd, Reg rs, Reg tmp)
{
    neg(tmp, rs);
    max(rd, rs, tmp);
}

Program
ProgramBuilder::finish()
{
    if (finished_)
        util::panic("ProgramBuilder::finish called twice");
    // Bind any labels pointing just past the last instruction.
    for (int id : pending_binds_)
        label_addrs_[static_cast<size_t>(id)] =
            static_cast<int>(code_.size());
    pending_binds_.clear();

    for (const Fixup &f : fixups_) {
        const int addr = label_addrs_[static_cast<size_t>(f.label_id)];
        if (addr < 0) {
            util::fatal("unbound label '%s' referenced",
                        label_names_[static_cast<size_t>(f.label_id)]
                            .c_str());
        }
        code_[f.inst_index].imm = static_cast<std::uint16_t>(addr);
    }

    std::map<std::string, std::uint16_t> labels;
    for (size_t i = 0; i < label_addrs_.size(); ++i) {
        if (!label_names_[i].empty() && label_addrs_[i] >= 0)
            labels[label_names_[i]] =
                static_cast<std::uint16_t>(label_addrs_[i]);
    }
    finished_ = true;
    return Program(std::move(code_), std::move(labels));
}

} // namespace inc::isa
