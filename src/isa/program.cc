#include "isa/program.h"

#include <algorithm>

#include "util/logging.h"

namespace inc::isa
{

namespace
{
const Instruction kHalt{Op::halt, 0, 0, 0, 0};
} // namespace

Program::Program(std::vector<Instruction> code,
                 std::map<std::string, std::uint16_t> labels)
    : code_(std::move(code)), labels_(std::move(labels))
{
    for (const auto &[name, addr] : labels_) {
        if (addr > code_.size()) {
            util::fatal("label '%s' at %u beyond program end (%zu)",
                        name.c_str(), addr, code_.size());
        }
    }
}

const Instruction &
Program::at(std::uint16_t pc) const
{
    if (pc >= code_.size())
        return kHalt;
    return code_[pc];
}

bool
Program::hasLabel(const std::string &name) const
{
    return labels_.count(name) > 0;
}

std::uint16_t
Program::labelAddress(const std::string &name) const
{
    const auto it = labels_.find(name);
    if (it == labels_.end())
        util::fatal("unknown label '%s'", name.c_str());
    return it->second;
}

std::string
Program::labelAt(std::uint16_t pc) const
{
    for (const auto &[name, addr] : labels_) {
        if (addr == pc)
            return name;
    }
    return "";
}

std::size_t
Program::countOp(Op op) const
{
    return static_cast<std::size_t>(
        std::count_if(code_.begin(), code_.end(),
                      [op](const Instruction &i) { return i.op == op; }));
}

} // namespace inc::isa
