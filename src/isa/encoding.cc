#include "isa/encoding.h"

namespace inc::isa
{

namespace
{

/** R-type ops use rs2; everything else carries imm16. */
bool
usesRs2Field(Op op)
{
    return readsRs2(op) && opClass(op) != OpClass::branch &&
           op != Op::st8 && op != Op::st16 && op != Op::assem;
}

} // namespace

std::uint32_t
encode(const Instruction &inst)
{
    std::uint32_t w = 0;
    w |= static_cast<std::uint32_t>(inst.op) << 24;
    w |= (static_cast<std::uint32_t>(inst.rd) & 0xF) << 20;
    w |= (static_cast<std::uint32_t>(inst.rs1) & 0xF) << 16;
    if (usesRs2Field(inst.op)) {
        w |= (static_cast<std::uint32_t>(inst.rs2) & 0xF) << 12;
    } else if (readsRs2(inst.op)) {
        // Branches, stores and assem need rs2 *and* imm16: pack rs2 into
        // the rd field (those ops never write a destination).
        w &= ~(0xFu << 20);
        w |= (static_cast<std::uint32_t>(inst.rs2) & 0xF) << 20;
        w |= inst.imm;
    } else {
        w |= inst.imm;
    }
    return w;
}

std::optional<Instruction>
decode(std::uint32_t word)
{
    const auto opcode = static_cast<std::uint8_t>(word >> 24);
    if (opcode >= static_cast<std::uint8_t>(Op::num_ops))
        return std::nullopt;
    Instruction inst;
    inst.op = static_cast<Op>(opcode);
    if (usesRs2Field(inst.op)) {
        inst.rd = static_cast<std::uint8_t>((word >> 20) & 0xF);
        inst.rs1 = static_cast<std::uint8_t>((word >> 16) & 0xF);
        inst.rs2 = static_cast<std::uint8_t>((word >> 12) & 0xF);
    } else if (readsRs2(inst.op)) {
        inst.rs2 = static_cast<std::uint8_t>((word >> 20) & 0xF);
        inst.rs1 = static_cast<std::uint8_t>((word >> 16) & 0xF);
        inst.imm = static_cast<std::uint16_t>(word & 0xFFFF);
    } else {
        inst.rd = static_cast<std::uint8_t>((word >> 20) & 0xF);
        inst.rs1 = static_cast<std::uint8_t>((word >> 16) & 0xF);
        inst.imm = static_cast<std::uint16_t>(word & 0xFFFF);
    }
    // Normalize fields the op does not use so decode(encode(x)) == x for
    // canonical instructions.
    if (!writesRd(inst.op) && !readsRs2(inst.op))
        inst.rd = 0;
    if (!readsRs1(inst.op))
        inst.rs1 = 0;
    return inst;
}

std::vector<std::uint32_t>
encodeAll(const std::vector<Instruction> &code)
{
    std::vector<std::uint32_t> words;
    words.reserve(code.size());
    for (const auto &inst : code)
        words.push_back(encode(inst));
    return words;
}

std::optional<std::vector<Instruction>>
decodeAll(const std::vector<std::uint32_t> &words)
{
    std::vector<Instruction> code;
    code.reserve(words.size());
    for (const auto w : words) {
        auto inst = decode(w);
        if (!inst)
            return std::nullopt;
        code.push_back(*inst);
    }
    return code;
}

std::optional<std::vector<std::uint32_t>>
imageToWords(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() % 4 != 0)
        return std::nullopt;
    std::vector<std::uint32_t> words;
    words.reserve(bytes.size() / 4);
    for (std::size_t i = 0; i < bytes.size(); i += 4) {
        words.push_back(static_cast<std::uint32_t>(bytes[i]) |
                        static_cast<std::uint32_t>(bytes[i + 1]) << 8 |
                        static_cast<std::uint32_t>(bytes[i + 2]) << 16 |
                        static_cast<std::uint32_t>(bytes[i + 3]) << 24);
    }
    return words;
}

std::optional<std::vector<Instruction>>
decodeImage(const std::vector<std::uint8_t> &bytes)
{
    const auto words = imageToWords(bytes);
    if (!words)
        return std::nullopt;
    return decodeAll(*words);
}

} // namespace inc::isa
