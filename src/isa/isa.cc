#include "isa/isa.h"

#include <array>
#include <unordered_map>

#include "util/logging.h"

namespace inc::isa
{

namespace
{

struct OpInfo
{
    std::string name;
    OpClass cls;
    int cycles;
    bool data_op;
    bool writes_rd;
    bool reads_rs1;
    bool reads_rs2;
};

const std::array<OpInfo, static_cast<size_t>(Op::num_ops)> &
table()
{
    static const std::array<OpInfo, static_cast<size_t>(Op::num_ops)> t = {{
        //  name      class              cyc data  wrd    rs1    rs2
        {"nop",    OpClass::system,      1, false, false, false, false},
        {"halt",   OpClass::system,      1, false, false, false, false},
        {"ldi",    OpClass::alu,         1, false, true,  false, false},
        {"mov",    OpClass::alu,         1, true,  true,  true,  false},
        {"add",    OpClass::alu,         1, true,  true,  true,  true},
        {"sub",    OpClass::alu,         1, true,  true,  true,  true},
        {"mul",    OpClass::mul,         4, true,  true,  true,  true},
        {"divu",   OpClass::div,         8, true,  true,  true,  true},
        {"remu",   OpClass::div,         8, true,  true,  true,  true},
        {"and",    OpClass::alu,         1, true,  true,  true,  true},
        {"or",     OpClass::alu,         1, true,  true,  true,  true},
        {"xor",    OpClass::alu,         1, true,  true,  true,  true},
        {"sll",    OpClass::alu,         1, true,  true,  true,  true},
        {"srl",    OpClass::alu,         1, true,  true,  true,  true},
        {"sra",    OpClass::alu,         1, true,  true,  true,  true},
        {"slt",    OpClass::alu,         1, true,  true,  true,  true},
        {"sltu",   OpClass::alu,         1, true,  true,  true,  true},
        {"min",    OpClass::alu,         1, true,  true,  true,  true},
        {"max",    OpClass::alu,         1, true,  true,  true,  true},
        {"minu",   OpClass::alu,         1, true,  true,  true,  true},
        {"maxu",   OpClass::alu,         1, true,  true,  true,  true},
        {"addi",   OpClass::alu,         1, true,  true,  true,  false},
        {"andi",   OpClass::alu,         1, true,  true,  true,  false},
        {"ori",    OpClass::alu,         1, true,  true,  true,  false},
        {"xori",   OpClass::alu,         1, true,  true,  true,  false},
        {"slli",   OpClass::alu,         1, true,  true,  true,  false},
        {"srli",   OpClass::alu,         1, true,  true,  true,  false},
        {"srai",   OpClass::alu,         1, true,  true,  true,  false},
        {"slti",   OpClass::alu,         1, true,  true,  true,  false},
        {"sltiu",  OpClass::alu,         1, true,  true,  true,  false},
        {"ld8",    OpClass::load,        2, true,  true,  true,  false},
        {"ld8s",   OpClass::load,        2, true,  true,  true,  false},
        {"ld16",   OpClass::load,        2, true,  true,  true,  false},
        {"st8",    OpClass::store,       2, false, false, true,  true},
        {"st16",   OpClass::store,       2, false, false, true,  true},
        {"beq",    OpClass::branch,      1, false, false, true,  true},
        {"bne",    OpClass::branch,      1, false, false, true,  true},
        {"blt",    OpClass::branch,      1, false, false, true,  true},
        {"bge",    OpClass::branch,      1, false, false, true,  true},
        {"bltu",   OpClass::branch,      1, false, false, true,  true},
        {"bgeu",   OpClass::branch,      1, false, false, true,  true},
        {"jmp",    OpClass::jump,        2, false, false, false, false},
        {"jal",    OpClass::jump,        2, false, true,  false, false},
        {"jr",     OpClass::jump,        2, false, false, true,  false},
        {"markrp", OpClass::incidental,  1, false, false, true,  false},
        {"acset",  OpClass::incidental,  1, false, false, false, false},
        {"acclr",  OpClass::incidental,  1, false, false, false, false},
        {"acen",   OpClass::incidental,  1, false, false, false, false},
        {"assem",  OpClass::incidental,  1, false, false, true,  true},
    }};
    return t;
}

const OpInfo &
info(Op op)
{
    const auto idx = static_cast<size_t>(op);
    if (idx >= table().size())
        util::panic("invalid opcode %zu", idx);
    return table()[idx];
}

} // namespace

const std::string &
opName(Op op)
{
    return info(op).name;
}

Op
opFromName(const std::string &name)
{
    static const std::unordered_map<std::string, Op> lookup = [] {
        std::unordered_map<std::string, Op> m;
        for (size_t i = 0; i < table().size(); ++i)
            m.emplace(table()[i].name, static_cast<Op>(i));
        return m;
    }();
    const auto it = lookup.find(name);
    return it == lookup.end() ? Op::num_ops : it->second;
}

OpClass
opClass(Op op)
{
    return info(op).cls;
}

int
opCycles(Op op)
{
    return info(op).cycles;
}

bool
isDataOp(Op op)
{
    return info(op).data_op;
}

bool
writesRd(Op op)
{
    return info(op).writes_rd;
}

bool
readsRs1(Op op)
{
    return info(op).reads_rs1;
}

bool
readsRs2(Op op)
{
    return info(op).reads_rs2;
}

bool
isControlFlow(Op op)
{
    const OpClass c = info(op).cls;
    return c == OpClass::branch || c == OpClass::jump;
}

} // namespace inc::isa
