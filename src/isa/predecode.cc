#include "isa/predecode.h"

#include "isa/encoding.h"
#include "util/logging.h"

namespace inc::isa
{

DecodedInst
predecode(const Instruction &inst)
{
    // The fast-path interpreter indexes the register file without bounds
    // checks, so reject out-of-range operands here (binary encodings are
    // 4-bit fields and can never trip this; only hand-built Instructions
    // can). The reference engine panics on the same instruction at
    // execution time.
    if (inst.rd >= kNumRegs || inst.rs1 >= kNumRegs ||
        inst.rs2 >= kNumRegs)
        util::panic("predecode: register operand out of range in '%s'",
                    opName(inst.op).c_str());
    DecodedInst d;
    d.op = inst.op;
    d.cls = opClass(inst.op);
    d.rd = inst.rd;
    d.rs1 = inst.rs1;
    d.rs2 = inst.rs2;
    d.imm = inst.imm;
    d.cycles = static_cast<std::uint8_t>(opCycles(inst.op));
    d.b_is_imm = !readsRs2(inst.op);
    d.noise_candidate = isDataOp(inst.op);
    return d;
}

std::optional<DecodedInst>
predecodeWord(std::uint32_t word)
{
    // Delegating to decode() makes "reject identically" true by
    // construction: the two decoders cannot drift apart on which words
    // are valid, only on resolved metadata — which the differential
    // tests pin.
    const std::optional<Instruction> inst = decode(word);
    if (!inst)
        return std::nullopt;
    return predecode(*inst);
}

PredecodedProgram::PredecodedProgram(const Program &program)
{
    code_.reserve(program.size());
    for (const Instruction &inst : program.code())
        code_.push_back(predecode(inst));
}

std::optional<PredecodedProgram>
PredecodedProgram::fromWords(const std::vector<std::uint32_t> &words)
{
    PredecodedProgram p;
    p.code_.reserve(words.size());
    for (const std::uint32_t w : words) {
        const auto d = predecodeWord(w);
        if (!d)
            return std::nullopt;
        p.code_.push_back(*d);
    }
    return p;
}

std::optional<PredecodedProgram>
PredecodedProgram::fromImage(const std::vector<std::uint8_t> &bytes)
{
    const auto words = imageToWords(bytes);
    if (!words)
        return std::nullopt;
    return fromWords(*words);
}

const DecodedInst &
PredecodedProgram::haltSentinel()
{
    static const DecodedInst halt = predecode({Op::halt, 0, 0, 0, 0});
    return halt;
}

} // namespace inc::isa
