#include "isa/assembler.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "util/logging.h"

namespace inc::isa
{

namespace
{

struct Token
{
    std::string text;
};

/** Strip comments and split a line into label / mnemonic / operands. */
struct ParsedLine
{
    std::string label;
    std::string mnemonic;
    std::vector<std::string> operands;
};

std::string
trim(const std::string &s)
{
    size_t a = 0, b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a])))
        ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])))
        --b;
    return s.substr(a, b - a);
}

bool
parseLine(const std::string &raw, ParsedLine &out, std::string &error)
{
    std::string line = raw;
    const size_t semi = line.find_first_of(";#");
    if (semi != std::string::npos)
        line = line.substr(0, semi);
    line = trim(line);
    out = {};
    if (line.empty())
        return true;

    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
        out.label = trim(line.substr(0, colon));
        if (out.label.empty()) {
            error = "empty label";
            return false;
        }
        for (char c : out.label) {
            if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
                error = "bad label character in '" + out.label + "'";
                return false;
            }
        }
        line = trim(line.substr(colon + 1));
        if (line.empty())
            return true;
    }

    std::istringstream in(line);
    in >> out.mnemonic;
    std::string rest;
    std::getline(in, rest);
    rest = trim(rest);
    if (!rest.empty()) {
        std::string cell;
        for (char c : rest) {
            if (c == ',') {
                out.operands.push_back(trim(cell));
                cell.clear();
            } else {
                cell.push_back(c);
            }
        }
        out.operands.push_back(trim(cell));
    }
    return true;
}

bool
parseReg(const std::string &tok, std::uint8_t &reg)
{
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
        return false;
    char *end = nullptr;
    const long v = std::strtol(tok.c_str() + 1, &end, 10);
    if (*end != '\0' || v < 0 || v >= kNumRegs)
        return false;
    reg = static_cast<std::uint8_t>(v);
    return true;
}

bool
parseImm(const std::string &tok, std::uint16_t &imm)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 0);
    if (*end != '\0' || v < -32768 || v > 65535)
        return false;
    imm = static_cast<std::uint16_t>(v);
    return true;
}

/** "offset(base)" memory operand. */
bool
parseMemOperand(const std::string &tok, std::uint8_t &base,
                std::uint16_t &offset)
{
    const size_t open = tok.find('(');
    const size_t close = tok.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
        return false;
    const std::string off = trim(tok.substr(0, open));
    const std::string reg = trim(tok.substr(open + 1, close - open - 1));
    if (!parseReg(reg, base))
        return false;
    if (off.empty()) {
        offset = 0;
        return true;
    }
    return parseImm(off, offset);
}

bool
parseAssembleMode(const std::string &tok, std::uint16_t &imm)
{
    if (tok == "higherbits") {
        imm = static_cast<std::uint16_t>(AssembleMode::higherbits);
        return true;
    }
    if (tok == "sum") {
        imm = static_cast<std::uint16_t>(AssembleMode::sum);
        return true;
    }
    if (tok == "max") {
        imm = static_cast<std::uint16_t>(AssembleMode::max);
        return true;
    }
    if (tok == "min") {
        imm = static_cast<std::uint16_t>(AssembleMode::min);
        return true;
    }
    return parseImm(tok, imm);
}

} // namespace

AssembleResult
assemble(const std::string &source)
{
    AssembleResult result;
    std::map<std::string, std::uint16_t> labels;

    // Pass 1: collect labels.
    {
        std::istringstream in(source);
        std::string raw;
        int lineno = 0;
        std::uint16_t pc = 0;
        while (std::getline(in, raw)) {
            ++lineno;
            ParsedLine pl;
            std::string err;
            if (!parseLine(raw, pl, err)) {
                result.error = util::format("line %d: %s", lineno,
                                            err.c_str());
                return result;
            }
            if (!pl.label.empty()) {
                if (labels.count(pl.label)) {
                    result.error = util::format(
                        "line %d: duplicate label '%s'", lineno,
                        pl.label.c_str());
                    return result;
                }
                labels[pl.label] = pc;
            }
            if (!pl.mnemonic.empty())
                ++pc;
        }
    }

    // Pass 2: encode instructions.
    std::vector<Instruction> code;
    std::istringstream in(source);
    std::string raw;
    int lineno = 0;

    auto fail = [&result, &lineno](const std::string &msg) {
        result.error = util::format("line %d: %s", lineno, msg.c_str());
        return result;
    };

    auto resolveTarget = [&labels](const std::string &tok,
                                   std::uint16_t &imm) {
        const auto it = labels.find(tok);
        if (it != labels.end()) {
            imm = it->second;
            return true;
        }
        return parseImm(tok, imm);
    };

    while (std::getline(in, raw)) {
        ++lineno;
        ParsedLine pl;
        std::string err;
        if (!parseLine(raw, pl, err))
            return fail(err);
        if (pl.mnemonic.empty())
            continue;

        const Op op = opFromName(pl.mnemonic);
        if (op == Op::num_ops)
            return fail("unknown mnemonic '" + pl.mnemonic + "'");

        Instruction inst;
        inst.op = op;
        const auto &ops = pl.operands;
        const OpClass cls = opClass(op);

        auto needOperands = [&ops](size_t n) { return ops.size() == n; };

        switch (op) {
          case Op::nop:
          case Op::halt:
            if (!needOperands(0))
                return fail("expected no operands");
            break;
          case Op::ldi:
            if (!needOperands(2) || !parseReg(ops[0], inst.rd) ||
                !parseImm(ops[1], inst.imm))
                return fail("expected: ldi rd, imm");
            break;
          case Op::mov:
            if (!needOperands(2) || !parseReg(ops[0], inst.rd) ||
                !parseReg(ops[1], inst.rs1))
                return fail("expected: mov rd, rs");
            break;
          case Op::jmp:
            if (!needOperands(1) || !resolveTarget(ops[0], inst.imm))
                return fail("expected: jmp label");
            break;
          case Op::jal:
            if (!needOperands(2) || !parseReg(ops[0], inst.rd) ||
                !resolveTarget(ops[1], inst.imm))
                return fail("expected: jal rd, label");
            break;
          case Op::jr:
            if (!needOperands(1) || !parseReg(ops[0], inst.rs1))
                return fail("expected: jr rs");
            break;
          case Op::ld8:
          case Op::ld8s:
          case Op::ld16:
            if (!needOperands(2) || !parseReg(ops[0], inst.rd) ||
                !parseMemOperand(ops[1], inst.rs1, inst.imm))
                return fail("expected: " + pl.mnemonic +
                            " rd, offset(base)");
            break;
          case Op::st8:
          case Op::st16:
            if (!needOperands(2) || !parseReg(ops[0], inst.rs2) ||
                !parseMemOperand(ops[1], inst.rs1, inst.imm))
                return fail("expected: " + pl.mnemonic +
                            " value, offset(base)");
            break;
          case Op::markrp:
            if (!needOperands(2) || !parseReg(ops[0], inst.rs1) ||
                !parseImm(ops[1], inst.imm))
                return fail("expected: markrp frame_reg, mask");
            break;
          case Op::acset:
          case Op::acclr:
          case Op::acen:
            if (!needOperands(1) || !parseImm(ops[0], inst.imm))
                return fail("expected: " + pl.mnemonic + " imm");
            break;
          case Op::assem:
            if (!needOperands(3) || !parseReg(ops[0], inst.rs1) ||
                !parseReg(ops[1], inst.rs2) ||
                !parseAssembleMode(ops[2], inst.imm))
                return fail("expected: assem base, len, mode");
            break;
          default:
            if (cls == OpClass::branch) {
                if (!needOperands(3) || !parseReg(ops[0], inst.rs1) ||
                    !parseReg(ops[1], inst.rs2) ||
                    !resolveTarget(ops[2], inst.imm))
                    return fail("expected: " + pl.mnemonic +
                                " rs1, rs2, label");
            } else if (readsRs2(op)) {
                // R-type
                if (!needOperands(3) || !parseReg(ops[0], inst.rd) ||
                    !parseReg(ops[1], inst.rs1) ||
                    !parseReg(ops[2], inst.rs2))
                    return fail("expected: " + pl.mnemonic +
                                " rd, rs1, rs2");
            } else {
                // I-type
                if (!needOperands(3) || !parseReg(ops[0], inst.rd) ||
                    !parseReg(ops[1], inst.rs1) ||
                    !parseImm(ops[2], inst.imm))
                    return fail("expected: " + pl.mnemonic +
                                " rd, rs1, imm");
            }
            break;
        }
        code.push_back(inst);
    }

    result.ok = true;
    result.program = Program(std::move(code), std::move(labels));
    return result;
}

Program
assembleOrDie(const std::string &source)
{
    AssembleResult r = assemble(source);
    if (!r.ok)
        util::fatal("assembly failed: %s", r.error.c_str());
    return std::move(r.program);
}

} // namespace inc::isa
