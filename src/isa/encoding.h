/**
 * @file
 * Binary instruction encoding.
 *
 * Instructions encode into 32-bit words:
 *
 *   [31:24] opcode
 *   [23:20] rd
 *   [19:16] rs1
 *   [15:12] rs2 (R-type) — overlaps imm[15:12] for I-type ops
 *   [15:0]  imm16 (I-type / branch targets / masks)
 *
 * R-type ops leave imm's low 12 bits zero; I-type ops leave rs2 zero at
 * decode. Decoding an unknown opcode returns std::nullopt.
 */

#ifndef INC_ISA_ENCODING_H
#define INC_ISA_ENCODING_H

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/isa.h"

namespace inc::isa
{

/** Encode one instruction into its 32-bit word. */
std::uint32_t encode(const Instruction &inst);

/** Decode a 32-bit word; nullopt if the opcode is invalid. */
std::optional<Instruction> decode(std::uint32_t word);

/** Encode a whole instruction sequence. */
std::vector<std::uint32_t> encodeAll(const std::vector<Instruction> &code);

/**
 * Decode a whole image; returns nullopt if any word is invalid.
 */
std::optional<std::vector<Instruction>>
decodeAll(const std::vector<std::uint32_t> &words);

/**
 * Reassemble a raw byte image into little-endian 32-bit words; nullopt
 * if the image is truncated (length not a multiple of 4).
 */
std::optional<std::vector<std::uint32_t>>
imageToWords(const std::vector<std::uint8_t> &bytes);

/**
 * Decode a raw byte image (little-endian words); nullopt on truncated
 * images or any invalid word.
 */
std::optional<std::vector<Instruction>>
decodeImage(const std::vector<std::uint8_t> &bytes);

} // namespace inc::isa

#endif // INC_ISA_ENCODING_H
