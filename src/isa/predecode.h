/**
 * @file
 * Predecoded program form for the fast-path interpreter.
 *
 * nvp::Core's reference engine re-derives instruction metadata on every
 * step: Program::at() is an out-of-line call, and opClass()/opCycles()/
 * readsRs2()/isDataOp() each walk the ISA info table again. That cost is
 * pure overhead — the metadata of a given instruction never changes —
 * and it bounds how many fuzz trials and sweep points the substrate can
 * afford (ROADMAP: "as fast as the hardware allows").
 *
 * A PredecodedProgram resolves each instruction ONCE at load time into a
 * dense DecodedInst: operand fields, execution class, cycle cost, the
 * operand-b source (register vs immediate) and ALU-noise candidacy are
 * all precomputed, so the predecoded engine's dispatch loop touches a
 * single cache-friendly array and never calls back into the metadata
 * tables.
 *
 * Validation contract: predecoding accepts a binary word if and only if
 * isa::decode() accepts it, and the decoded operand fields agree
 * exactly. Malformed or truncated images must never silently diverge
 * between the two decoders — tests/test_isa.cc sweeps the full opcode
 * space and truncated images to enforce this.
 */

#ifndef INC_ISA_PREDECODE_H
#define INC_ISA_PREDECODE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/isa.h"
#include "isa/program.h"

namespace inc::isa
{

/**
 * One instruction with every per-step metadata query precomputed.
 * 8 bytes; a whole kernel fits in a few cache lines.
 */
struct DecodedInst
{
    Op op = Op::nop;
    OpClass cls = OpClass::system; ///< opClass(op)
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint8_t cycles = 1;       ///< opCycles(op)
    std::uint16_t imm = 0;

    /** Data ops only: operand b comes from imm (I-type), not rs2. */
    bool b_is_imm = false;
    /** isDataOp(op): result subject to ALU noise when rd carries AC. */
    bool noise_candidate = false;

    bool operator==(const DecodedInst &other) const = default;
};

/** Resolve one (already decoded) instruction. */
DecodedInst predecode(const Instruction &inst);

/**
 * Predecode one binary word. Returns nullopt exactly when
 * isa::decode() returns nullopt (same acceptance set by contract).
 */
std::optional<DecodedInst> predecodeWord(std::uint32_t word);

/** A program resolved into the dense fast-path form. */
class PredecodedProgram
{
  public:
    PredecodedProgram() = default;
    explicit PredecodedProgram(const Program &program);

    std::size_t size() const { return code_.size(); }
    bool empty() const { return code_.empty(); }

    /** Instruction at @p pc; out-of-range PCs fetch a halt, exactly
     *  like Program::at(). Inline: this is the fast path's fetch. */
    const DecodedInst &at(std::uint16_t pc) const
    {
        if (pc >= code_.size())
            return haltSentinel();
        return code_[pc];
    }

    const std::vector<DecodedInst> &code() const { return code_; }

    /**
     * Predecode a whole binary image; nullopt if any word is invalid —
     * the same acceptance set as isa::decodeAll().
     */
    static std::optional<PredecodedProgram>
    fromWords(const std::vector<std::uint32_t> &words);

    /**
     * Predecode a raw byte image (little-endian 32-bit words); nullopt
     * on truncated images (length not a multiple of 4) or any invalid
     * word — the same acceptance set as isa::decodeImage().
     */
    static std::optional<PredecodedProgram>
    fromImage(const std::vector<std::uint8_t> &bytes);

  private:
    static const DecodedInst &haltSentinel();

    std::vector<DecodedInst> code_;
};

} // namespace inc::isa

#endif // INC_ISA_PREDECODE_H
