#include "isa/disassembler.h"

#include "util/logging.h"

namespace inc::isa
{

namespace
{

std::string
reg(std::uint8_t r)
{
    return util::format("r%u", r);
}

std::string
modeName(std::uint16_t imm)
{
    switch (static_cast<AssembleMode>(imm)) {
      case AssembleMode::higherbits: return "higherbits";
      case AssembleMode::sum: return "sum";
      case AssembleMode::max: return "max";
      case AssembleMode::min: return "min";
    }
    return util::format("%u", imm);
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    const std::string &m = opName(inst.op);
    const OpClass cls = opClass(inst.op);

    switch (inst.op) {
      case Op::nop:
      case Op::halt:
        return m;
      case Op::ldi:
        return m + " " + reg(inst.rd) + ", " +
               util::format("%u", inst.imm);
      case Op::mov:
        return m + " " + reg(inst.rd) + ", " + reg(inst.rs1);
      case Op::jmp:
        return m + " " + util::format("%u", inst.imm);
      case Op::jal:
        return m + " " + reg(inst.rd) + ", " +
               util::format("%u", inst.imm);
      case Op::jr:
        return m + " " + reg(inst.rs1);
      case Op::ld8:
      case Op::ld8s:
      case Op::ld16:
        return m + " " + reg(inst.rd) + ", " +
               util::format("%d", static_cast<std::int16_t>(inst.imm)) +
               "(" + reg(inst.rs1) + ")";
      case Op::st8:
      case Op::st16:
        return m + " " + reg(inst.rs2) + ", " +
               util::format("%d", static_cast<std::int16_t>(inst.imm)) +
               "(" + reg(inst.rs1) + ")";
      case Op::markrp:
        return m + " " + reg(inst.rs1) + ", " +
               util::format("0x%x", inst.imm);
      case Op::acset:
      case Op::acclr:
        return m + " " + util::format("0x%x", inst.imm);
      case Op::acen:
        return m + " " + util::format("%u", inst.imm);
      case Op::assem:
        return m + " " + reg(inst.rs1) + ", " + reg(inst.rs2) + ", " +
               modeName(inst.imm);
      default:
        break;
    }

    if (cls == OpClass::branch) {
        return m + " " + reg(inst.rs1) + ", " + reg(inst.rs2) + ", " +
               util::format("%u", inst.imm);
    }
    if (readsRs2(inst.op)) {
        return m + " " + reg(inst.rd) + ", " + reg(inst.rs1) + ", " +
               reg(inst.rs2);
    }
    return m + " " + reg(inst.rd) + ", " + reg(inst.rs1) + ", " +
           util::format("%d", static_cast<std::int16_t>(inst.imm));
}

std::string
disassemble(const Program &program)
{
    std::string out;
    for (std::uint16_t pc = 0; pc < program.size(); ++pc) {
        const std::string label = program.labelAt(pc);
        if (!label.empty())
            out += label + ":\n";
        out += "    " + disassemble(program.at(pc)) + "\n";
    }
    return out;
}

} // namespace inc::isa
