/**
 * @file
 * Disassembly back to the assembler's text syntax (round-trips through
 * assemble() for canonical programs; used by tests and debug dumps).
 */

#ifndef INC_ISA_DISASSEMBLER_H
#define INC_ISA_DISASSEMBLER_H

#include <string>

#include "isa/program.h"

namespace inc::isa
{

/** Render one instruction (no label prefix). */
std::string disassemble(const Instruction &inst);

/** Render a whole program, emitting known labels. */
std::string disassemble(const Program &program);

} // namespace inc::isa

#endif // INC_ISA_DISASSEMBLER_H
