#include "isa/batch/batch_core.h"

#include <algorithm>

#include "isa/batch/vec.h"
#include "util/bit_ops.h"
#include "util/logging.h"

namespace inc::nvp
{

namespace vec = inc::isa::batch;

namespace
{

std::size_t
roundUpToVec(std::size_t n)
{
    const std::size_t w = vec::kVecWidth;
    return (n + w - 1) / w * w;
}

} // namespace

BatchCore::BatchCore(const isa::Program *program, CoreConfig config)
    : program_(program), config_(config)
{
    if (!program_)
        util::panic("BatchCore requires a program");
    decoded_ = isa::PredecodedProgram(*program_);
}

int
BatchCore::addTrial(DataMemory *memory, util::Rng rng)
{
    if (!memory)
        util::panic("BatchCore::addTrial requires a data memory");
    const int t = width();
    mems_.push_back(memory);
    // Same consumption as nvp::Core's constructor (alu_(rng.split())):
    // a trial seeded like a solo core draws the same noise stream.
    alus_.emplace_back(rng.split());
    pc_.push_back(0);
    halted_.push_back(0);
    ac_en_.push_back(0);
    bits_.push_back(8);
    ac_mask_.push_back(0);
    has_resume_.push_back(0);
    resume_pc_.push_back(0);
    frame_reg_.push_back(0);
    match_mask_.push_back(0);
    instret_.push_back(0);
    cycles_.push_back(0);
    reshape();
    // The new trial may occupy a former padding lane that full-row ops
    // scribbled on; its registers must start at the power-up zeros.
    for (int r = 0; r < isa::kNumRegs; ++r)
        regs_[static_cast<std::size_t>(r) * padded_ +
              static_cast<std::size_t>(t)] = 0;
    scan_needed_ = true;
    return t;
}

void
BatchCore::reshape()
{
    const std::size_t new_padded =
        roundUpToVec(static_cast<std::size_t>(width()));
    if (new_padded == padded_)
        return;
    std::vector<std::uint16_t> grown(
        static_cast<std::size_t>(isa::kNumRegs) * new_padded, 0);
    const std::size_t old_width =
        static_cast<std::size_t>(width()) - 1; // trial being added is new
    for (int r = 0; r < isa::kNumRegs; ++r) {
        for (std::size_t t = 0; t < old_width && padded_ > 0; ++t)
            grown[static_cast<std::size_t>(r) * new_padded + t] =
                regs_[static_cast<std::size_t>(r) * padded_ + t];
    }
    regs_ = std::move(grown);
    padded_ = new_padded;
    scratch_b_.assign(padded_, 0);
    scratch_dst_.assign(padded_, 0);
}

std::size_t
BatchCore::check(int t) const
{
    if (t < 0 || t >= width())
        util::panic("BatchCore: trial index %d out of range (%d trials)",
                    t, width());
    return static_cast<std::size_t>(t);
}

void
BatchCore::setPc(int t, std::uint16_t pc)
{
    pc_[check(t)] = pc;
    scan_needed_ = true;
}

void
BatchCore::clearHalted(int t)
{
    const std::size_t i = check(t);
    if (halted_[i]) {
        halted_[i] = 0;
        --halted_count_;
    }
    scan_needed_ = true;
}

std::uint16_t
BatchCore::reg(int t, int r) const
{
    check(t);
    if (r < 0 || r >= isa::kNumRegs)
        util::panic("BatchCore: register %d out of range", r);
    return regRead(t, r);
}

void
BatchCore::setReg(int t, int r, std::uint16_t value)
{
    check(t);
    if (r < 0 || r >= isa::kNumRegs)
        util::panic("BatchCore: register %d out of range", r);
    regWrite(t, r, value);
}

RegSnapshot
BatchCore::regSnapshot(int t) const
{
    check(t);
    RegSnapshot snap{};
    for (int r = 0; r < isa::kNumRegs; ++r)
        snap[static_cast<std::size_t>(r)] = regRead(t, r);
    return snap;
}

void
BatchCore::setBits(int t, int bits)
{
    const std::size_t i = check(t);
    if (bits < 1 || bits > 8)
        util::panic("BatchCore::setBits: bits out of range %d", bits);
    const bool was_low = bits_[i] < 8;
    const bool is_low = bits < 8;
    bits_[i] = static_cast<std::uint8_t>(bits);
    low_bits_count_ += (is_low ? 1 : 0) - (was_low ? 1 : 0);
}

std::uint64_t
BatchCore::totalInstret() const
{
    std::uint64_t total = 0;
    for (std::uint64_t n : instret_)
        total += n;
    return total;
}

void
BatchCore::rescan()
{
    halted_count_ = 0;
    bool first = true;
    bool same = true;
    std::uint16_t common = 0;
    for (int t = 0; t < width(); ++t) {
        if (halted_[static_cast<std::size_t>(t)]) {
            ++halted_count_;
            continue;
        }
        if (first) {
            common = pc_[static_cast<std::size_t>(t)];
            first = false;
        } else if (pc_[static_cast<std::size_t>(t)] != common) {
            same = false;
        }
    }
    converged_ = same;
    pc0_ = common;
}

BatchCore::VecKind
BatchCore::vecKind(const isa::DecodedInst &d)
{
    using isa::Op;
    switch (d.op) {
      case Op::ldi:
        return VecKind::copy_b;
      case Op::mov:
        return VecKind::copy_a;
      case Op::add:
      case Op::addi:
        return VecKind::add;
      case Op::sub:
        return VecKind::sub;
      case Op::mul:
        return VecKind::mul;
      case Op::and_:
      case Op::andi:
        return VecKind::band;
      case Op::or_:
      case Op::ori:
        return VecKind::bor;
      case Op::xor_:
      case Op::xori:
        return VecKind::bxor;
      // Register-operand shifts have per-trial counts; AVX2 has no
      // 16-bit variable shift, so only the uniform immediate forms take
      // the vector path.
      case Op::sll:
      case Op::slli:
        return d.b_is_imm ? VecKind::shl : VecKind::none;
      case Op::srl:
      case Op::srli:
        return d.b_is_imm ? VecKind::shr : VecKind::none;
      case Op::sra:
      case Op::srai:
        return d.b_is_imm ? VecKind::sar : VecKind::none;
      case Op::slt:
      case Op::slti:
        return VecKind::slt_s;
      case Op::sltu:
      case Op::sltiu:
        return VecKind::slt_u;
      case Op::min:
        return VecKind::min_s;
      case Op::max:
        return VecKind::max_s;
      case Op::minu:
        return VecKind::min_u;
      case Op::maxu:
        return VecKind::max_u;
      // divu/remu have no vector integer division; everything else is
      // control flow, memory or incidental state — scalar by nature.
      default:
        return VecKind::none;
    }
}

void
BatchCore::rowOp(VecKind kind, const isa::DecodedInst &d,
                 std::uint16_t *dst, const std::uint16_t *a,
                 const std::uint16_t *b)
{
    switch (kind) {
      case VecKind::copy_a:
        vec::rowCopy(dst, a, padded_);
        break;
      case VecKind::copy_b:
        vec::rowCopy(dst, b, padded_);
        break;
      case VecKind::add:
        vec::rowAdd(dst, a, b, padded_);
        break;
      case VecKind::sub:
        vec::rowSub(dst, a, b, padded_);
        break;
      case VecKind::mul:
        vec::rowMul(dst, a, b, padded_);
        break;
      case VecKind::band:
        vec::rowAnd(dst, a, b, padded_);
        break;
      case VecKind::bor:
        vec::rowOr(dst, a, b, padded_);
        break;
      case VecKind::bxor:
        vec::rowXor(dst, a, b, padded_);
        break;
      case VecKind::shl:
        vec::rowShlImm(dst, a, d.imm & 15, padded_);
        break;
      case VecKind::shr:
        vec::rowShrImm(dst, a, d.imm & 15, padded_);
        break;
      case VecKind::sar:
        vec::rowSarImm(dst, a, d.imm & 15, padded_);
        break;
      case VecKind::slt_s:
        vec::rowSltS(dst, a, b, padded_);
        break;
      case VecKind::slt_u:
        vec::rowSltU(dst, a, b, padded_);
        break;
      case VecKind::min_s:
        vec::rowMinS(dst, a, b, padded_);
        break;
      case VecKind::max_s:
        vec::rowMaxS(dst, a, b, padded_);
        break;
      case VecKind::min_u:
        vec::rowMinU(dst, a, b, padded_);
        break;
      case VecKind::max_u:
        vec::rowMaxU(dst, a, b, padded_);
        break;
      case VecKind::none:
        util::panic("BatchCore::rowOp: scalar op on vector path");
    }
}

void
BatchCore::fullRowStep(const isa::DecodedInst &d, VecKind kind)
{
    // All trials live + convergent: unmasked full-row compute. Writes
    // into the padding lanes are fine (not architectural); writes to
    // r0 go to scratch so the r0-zero invariant holds, but the noise
    // fixup still runs there — the solo core draws the RNG even when
    // the write is discarded, and draw parity is the contract.
    std::uint16_t *dst = d.rd == 0 ? scratch_dst_.data() : row(d.rd);
    const std::uint16_t *a = row(d.rs1);
    const std::uint16_t *b;
    if (d.b_is_imm) {
        vec::rowSplat(scratch_b_.data(), d.imm, padded_);
        b = scratch_b_.data();
    } else {
        b = row(d.rs2);
    }
    rowOp(kind, d, dst, a, b);

    if (d.noise_candidate && config_.approx_alu && low_bits_count_ > 0) {
        for (int t = 0; t < width(); ++t) {
            const auto i = static_cast<std::size_t>(t);
            // Same predicate + draw order within a trial as nvp::Core;
            // each trial owns its RNG so cross-trial order is free.
            if (((ac_mask_[i] >> d.rd) & 1) && ac_en_[i] &&
                bits_[i] < 8)
                dst[i] = alus_[i].injectNoise(dst[i], bits_[i]);
        }
    }

    const std::uint16_t next = static_cast<std::uint16_t>(pc0_ + 1);
    for (int t = 0; t < width(); ++t) {
        const auto i = static_cast<std::size_t>(t);
        pc_[i] = next;
        ++instret_[i];
        cycles_[i] += d.cycles;
    }
    pc0_ = next;
}

void
BatchCore::maskedGroupStep(const isa::DecodedInst &d, VecKind kind)
{
    // Convergent group with retired trials present: compute the full
    // row into scratch (retired lanes' operands produce garbage that is
    // never written back), then write back live lanes only — a retired
    // trial's architectural state must not change (divergence-mask
    // invariant).
    const std::uint16_t *a = row(d.rs1);
    const std::uint16_t *b;
    if (d.b_is_imm) {
        vec::rowSplat(scratch_b_.data(), d.imm, padded_);
        b = scratch_b_.data();
    } else {
        b = row(d.rs2);
    }
    rowOp(kind, d, scratch_dst_.data(), a, b);

    const bool noise_possible = d.noise_candidate &&
                                config_.approx_alu &&
                                low_bits_count_ > 0;
    const std::uint16_t next = static_cast<std::uint16_t>(pc0_ + 1);
    for (int t = 0; t < width(); ++t) {
        const auto i = static_cast<std::size_t>(t);
        if (halted_[i])
            continue;
        std::uint16_t value = scratch_dst_[i];
        if (noise_possible && ((ac_mask_[i] >> d.rd) & 1) && ac_en_[i] &&
            bits_[i] < 8)
            value = alus_[i].injectNoise(value, bits_[i]);
        regWrite(t, d.rd, value);
        pc_[i] = next;
        ++instret_[i];
        cycles_[i] += d.cycles;
    }
    pc0_ = next;
}

template <typename ComputeFn>
inline void
BatchCore::dataOpTrial(int t, const isa::DecodedInst &d,
                       ComputeFn compute)
{
    const auto i = static_cast<std::size_t>(t);
    const std::uint16_t a = regRead(t, d.rs1);
    const std::uint16_t b = d.b_is_imm ? d.imm : regRead(t, d.rs2);
    std::uint16_t result = compute(a, b);
    // Identical noise predicate to nvp::Core for draw parity.
    if (d.noise_candidate && config_.approx_alu &&
        ((ac_mask_[i] >> d.rd) & 1)) {
        const int bits = ac_en_[i] ? bits_[i] : 8;
        if (bits < 8)
            result = alus_[i].injectNoise(result, bits);
    }
    regWrite(t, d.rd, result);
}

void
BatchCore::stepTrial(int t)
{
    // Scalar fallback: the predecoded engine's jump table specialized
    // to a single lane. Semantics per op are an exact twin of
    // nvp::Core::stepPredecoded with one active lane.
    const auto i = static_cast<std::size_t>(t);
    const isa::DecodedInst &d = decoded_.at(pc_[i]);
    std::uint16_t next_pc = static_cast<std::uint16_t>(pc_[i] + 1);
    std::uint64_t extra_cycles = 0;

    const bool approx = config_.approx_mem && ac_en_[i] != 0;
    const int mem_bits = ac_en_[i] ? bits_[i] : 8;

    using U = std::uint16_t;
    using S = std::int16_t;
    switch (d.op) {
      case isa::Op::nop:
        break;
      case isa::Op::halt:
        halted_[i] = 1;
        ++halted_count_;
        break;

      case isa::Op::ldi:
        dataOpTrial(t, d, [](U, U b) { return b; });
        break;
      case isa::Op::mov:
        dataOpTrial(t, d, [](U a, U) { return a; });
        break;
      case isa::Op::add:
      case isa::Op::addi:
        dataOpTrial(t, d,
                    [](U a, U b) { return static_cast<U>(a + b); });
        break;
      case isa::Op::sub:
        dataOpTrial(t, d,
                    [](U a, U b) { return static_cast<U>(a - b); });
        break;
      case isa::Op::mul:
        dataOpTrial(t, d, [](U a, U b) {
            return static_cast<U>(static_cast<std::uint32_t>(a) * b);
        });
        break;
      case isa::Op::divu:
        dataOpTrial(t, d, [](U a, U b) {
            return b == 0 ? static_cast<U>(0xFFFF)
                          : static_cast<U>(a / b);
        });
        break;
      case isa::Op::remu:
        dataOpTrial(t, d, [](U a, U b) {
            return b == 0 ? a : static_cast<U>(a % b);
        });
        break;
      case isa::Op::and_:
      case isa::Op::andi:
        dataOpTrial(t, d,
                    [](U a, U b) { return static_cast<U>(a & b); });
        break;
      case isa::Op::or_:
      case isa::Op::ori:
        dataOpTrial(t, d,
                    [](U a, U b) { return static_cast<U>(a | b); });
        break;
      case isa::Op::xor_:
      case isa::Op::xori:
        dataOpTrial(t, d,
                    [](U a, U b) { return static_cast<U>(a ^ b); });
        break;
      case isa::Op::sll:
      case isa::Op::slli:
        dataOpTrial(t, d, [](U a, U b) {
            return static_cast<U>(a << (b & 15));
        });
        break;
      case isa::Op::srl:
      case isa::Op::srli:
        dataOpTrial(t, d, [](U a, U b) {
            return static_cast<U>(a >> (b & 15));
        });
        break;
      case isa::Op::sra:
      case isa::Op::srai:
        dataOpTrial(t, d, [](U a, U b) {
            return static_cast<U>(static_cast<S>(a) >> (b & 15));
        });
        break;
      case isa::Op::slt:
      case isa::Op::slti:
        dataOpTrial(t, d, [](U a, U b) {
            return static_cast<U>(
                static_cast<S>(a) < static_cast<S>(b) ? 1 : 0);
        });
        break;
      case isa::Op::sltu:
      case isa::Op::sltiu:
        dataOpTrial(t, d, [](U a, U b) {
            return static_cast<U>(a < b ? 1 : 0);
        });
        break;
      case isa::Op::min:
        dataOpTrial(t, d, [](U a, U b) {
            return static_cast<U>(
                std::min(static_cast<S>(a), static_cast<S>(b)));
        });
        break;
      case isa::Op::max:
        dataOpTrial(t, d, [](U a, U b) {
            return static_cast<U>(
                std::max(static_cast<S>(a), static_cast<S>(b)));
        });
        break;
      case isa::Op::minu:
        dataOpTrial(t, d, [](U a, U b) { return std::min(a, b); });
        break;
      case isa::Op::maxu:
        dataOpTrial(t, d, [](U a, U b) { return std::max(a, b); });
        break;

      case isa::Op::ld8: {
        const std::uint32_t addr = static_cast<std::uint16_t>(
            regRead(t, d.rs1) + d.imm);
        regWrite(t, d.rd,
                 mems_[i]->load8(0, addr, mem_bits, approx));
        break;
      }
      case isa::Op::ld8s: {
        const std::uint32_t addr = static_cast<std::uint16_t>(
            regRead(t, d.rs1) + d.imm);
        regWrite(t, d.rd,
                 static_cast<U>(util::signExtend(
                     mems_[i]->load8(0, addr, mem_bits, approx), 8)));
        break;
      }
      case isa::Op::ld16: {
        const std::uint32_t addr = static_cast<std::uint16_t>(
            regRead(t, d.rs1) + d.imm);
        const std::uint8_t lo =
            mems_[i]->load8(0, addr, mem_bits, approx);
        const std::uint8_t hi = mems_[i]->load8(
            0, static_cast<std::uint16_t>(addr + 1), mem_bits, approx);
        regWrite(t, d.rd, static_cast<U>(lo | (hi << 8)));
        break;
      }

      case isa::Op::st8:
      case isa::Op::st16: {
        const std::uint32_t addr = static_cast<std::uint16_t>(
            regRead(t, d.rs1) + d.imm);
        const std::uint16_t value = regRead(t, d.rs2);
        mems_[i]->store8(0, addr, static_cast<std::uint8_t>(value),
                         mem_bits, approx);
        if (d.op == isa::Op::st16)
            mems_[i]->store8(0, static_cast<std::uint16_t>(addr + 1),
                             static_cast<std::uint8_t>(value >> 8),
                             mem_bits, approx);
        break;
      }

      case isa::Op::beq:
      case isa::Op::bne:
      case isa::Op::blt:
      case isa::Op::bge:
      case isa::Op::bltu:
      case isa::Op::bgeu: {
        const U a = regRead(t, d.rs1);
        const U b = regRead(t, d.rs2);
        const auto sa = static_cast<S>(a);
        const auto sb = static_cast<S>(b);
        bool taken = false;
        switch (d.op) {
          case isa::Op::beq: taken = a == b; break;
          case isa::Op::bne: taken = a != b; break;
          case isa::Op::blt: taken = sa < sb; break;
          case isa::Op::bge: taken = sa >= sb; break;
          case isa::Op::bltu: taken = a < b; break;
          default: taken = a >= b; break; // bgeu
        }
        if (taken) {
            next_pc = d.imm;
            ++extra_cycles; // taken-branch bubble
        }
        break;
      }

      case isa::Op::jmp:
        next_pc = d.imm;
        break;
      case isa::Op::jal:
        regWrite(t, d.rd, static_cast<std::uint16_t>(pc_[i] + 1));
        next_pc = d.imm;
        break;
      case isa::Op::jr:
        next_pc = regRead(t, d.rs1);
        break;

      case isa::Op::markrp:
        has_resume_[i] = 1;
        resume_pc_[i] = pc_[i];
        frame_reg_[i] = d.rs1;
        match_mask_[i] = d.imm;
        break;
      case isa::Op::acset:
        ac_mask_[i] |= d.imm;
        break;
      case isa::Op::acclr:
        ac_mask_[i] &= static_cast<std::uint16_t>(~d.imm);
        break;
      case isa::Op::acen:
        ac_en_[i] = d.imm != 0 ? 1 : 0;
        break;
      case isa::Op::assem: {
        const std::uint32_t base = regRead(t, d.rs1);
        const std::uint32_t len = regRead(t, d.rs2);
        const std::uint32_t bytes = mems_[i]->assemble(
            base, len, static_cast<isa::AssembleMode>(d.imm));
        extra_cycles += 2ULL * bytes;
        break;
      }

      case isa::Op::num_ops:
        util::panic("BatchCore::stepTrial: invalid opcode");
    }

    ++instret_[i];
    cycles_[i] += static_cast<std::uint64_t>(d.cycles) + extra_cycles;
    pc_[i] = next_pc;
}

bool
BatchCore::stepAll()
{
    if (scan_needed_) {
        rescan();
        scan_needed_ = false;
    }
    if (width() == 0 || halted_count_ == width())
        return false;

    if (converged_) {
        const isa::DecodedInst &d = decoded_.at(pc0_);
        const VecKind kind = vecKind(d);
        if (kind != VecKind::none) {
            if (halted_count_ == 0)
                fullRowStep(d, kind);
            else
                maskedGroupStep(d, kind);
            return true;
        }
    }

    // Scalar path: every live trial advances exactly one instruction,
    // in trial order; track whether the batch (re)converges so the next
    // step can take the vector path again.
    bool first = true;
    bool same = true;
    std::uint16_t common = 0;
    for (int t = 0; t < width(); ++t) {
        const auto i = static_cast<std::size_t>(t);
        if (halted_[i])
            continue;
        stepTrial(t);
        if (halted_[i])
            continue; // retired this step
        if (first) {
            common = pc_[i];
            first = false;
        } else if (pc_[i] != common) {
            same = false;
        }
    }
    converged_ = same;
    pc0_ = common;
    return true;
}

std::uint64_t
BatchCore::runToHalt(std::uint64_t max_steps)
{
    std::uint64_t steps = 0;
    while (steps < max_steps && stepAll())
        ++steps;
    return steps;
}

} // namespace inc::nvp
