/**
 * @file
 * BatchCore: engine #3 — W independent trials in SoA lockstep.
 *
 * Each trial is one single-SIMD-lane NVP core (its own registers, AC
 * flags, data memory and noise RNG) executing the shared program. The
 * register file is stored transposed — register r of trial t at
 * row[r][t] — so when every live trial sits at the same PC ("the
 * convergent group"), one data-class instruction becomes one vectorized
 * row operation (isa/batch/vec.h: explicit AVX2 or the portable
 * fallback) instead of W interpreter iterations.
 *
 * Divergence model: a trial leaves the convergent group when its
 * control flow departs from the group PC (data-dependent branch, jr) or
 * when it retires (halt). Divergent trials fall back to scalar
 * stepping — the same jump-table semantics the predecoded engine uses,
 * specialized to one lane — and rejoin the vector path automatically as
 * soon as all live PCs coincide again. Retired (masked) trials are
 * never stepped and never written: the divergence-mask invariant that
 * tests/test_batch_lanes.cc checks.
 *
 * Bit-identity contract (enforced by tests/test_batch_lanes.cc,
 * tests/test_engine_diff.cc and the fuzzer's batch_lanes mode): a
 * trial's architectural trajectory in a W-wide batch is identical to
 * the same seed run solo through nvp::Core, for any W and any
 * divergence pattern. This holds structurally because
 *
 *  - every live trial advances exactly one instruction per stepAll(),
 *    so its instruction sequence is the solo sequence regardless of how
 *    the batch groups or diverges;
 *  - trials share no mutable state — registers, memory and the noise
 *    RNG are per trial, so cross-trial interleaving cannot be observed;
 *  - the vectorized row ops are exact 16-bit integer semantics, and the
 *    ALU-noise predicate + draw order within a trial are evaluated
 *    per lane exactly as nvp::Core evaluates them.
 */

#ifndef INC_ISA_BATCH_BATCH_CORE_H
#define INC_ISA_BATCH_BATCH_CORE_H

#include <cstdint>
#include <vector>

#include "isa/predecode.h"
#include "isa/program.h"
#include "nvp/approx_alu.h"
#include "nvp/core.h"
#include "nvp/memory.h"
#include "util/rng.h"

namespace inc::nvp
{

/** W single-lane cores stepped in SoA lockstep. */
class BatchCore
{
  public:
    /**
     * @param config  approx_alu / approx_mem as for nvp::Core; the
     *     engine field is ignored (this IS the batch engine) and
     *     max_lanes is ignored (trials are single-SIMD-lane cores;
     *     incidental lane adoption is a controller concern and stays on
     *     the scalar engines).
     */
    BatchCore(const isa::Program *program, CoreConfig config);

    /**
     * Add one trial before stepping begins. @p rng is consumed exactly
     * as nvp::Core's constructor consumes it (the noise ALU forks from
     * it), so passing the same seed as a solo Core yields the same
     * draw stream. @p memory is not owned and must outlive this object.
     * Returns the trial index.
     */
    int addTrial(DataMemory *memory, util::Rng rng);

    int width() const { return static_cast<int>(mems_.size()); }

    // ---- lockstep execution -------------------------------------------

    /**
     * Advance every live (non-retired) trial exactly one instruction:
     * the convergent group via one vectorized row op when the fetched
     * instruction allows it, divergent trials scalar. Returns false —
     * without stepping — once every trial has retired.
     */
    bool stepAll();

    /** stepAll() until all trials retire or @p max_steps lockstep
     *  steps have run. Returns lockstep steps taken. */
    std::uint64_t runToHalt(std::uint64_t max_steps);

    /** True when all live trials sit at the same PC (vector path). */
    bool converged() const { return converged_; }

    int haltedCount() const { return halted_count_; }
    bool allHalted() const { return halted_count_ == width(); }

    // ---- per-trial architectural state --------------------------------

    std::uint16_t pc(int t) const { return pc_[check(t)]; }
    void setPc(int t, std::uint16_t pc);

    bool halted(int t) const { return halted_[check(t)] != 0; }
    void clearHalted(int t);

    std::uint16_t reg(int t, int r) const;
    void setReg(int t, int r, std::uint16_t value);
    RegSnapshot regSnapshot(int t) const;

    bool acEnabled(int t) const { return ac_en_[check(t)] != 0; }
    std::uint16_t acMask(int t) const { return ac_mask_[check(t)]; }

    int bits(int t) const { return bits_[check(t)]; }
    void setBits(int t, int bits);

    bool hasResumePoint(int t) const
    {
        return has_resume_[check(t)] != 0;
    }
    std::uint16_t resumePc(int t) const { return resume_pc_[check(t)]; }

    std::uint64_t instret(int t) const { return instret_[check(t)]; }
    std::uint64_t cycles(int t) const { return cycles_[check(t)]; }
    std::uint64_t totalInstret() const;

    DataMemory &memory(int t) { return *mems_[check(t)]; }

    const CoreConfig &config() const { return config_; }

  private:
    /** Enum of the vectorizable row operations (none = scalar path). */
    enum class VecKind : std::uint8_t
    {
        none,
        copy_a,
        copy_b,
        add,
        sub,
        mul,
        band,
        bor,
        bxor,
        shl,
        shr,
        sar,
        slt_s,
        slt_u,
        min_s,
        max_s,
        min_u,
        max_u,
    };

    static VecKind vecKind(const isa::DecodedInst &d);

    std::size_t check(int t) const;
    std::uint16_t *row(int r)
    {
        return regs_.data() + static_cast<std::size_t>(r) * padded_;
    }
    std::uint16_t regRead(int t, int r) const
    {
        return regs_[static_cast<std::size_t>(r) * padded_ +
                     static_cast<std::size_t>(t)];
    }
    void regWrite(int t, int r, std::uint16_t value)
    {
        if (r == 0)
            return; // r0 hardwired to zero, as in RegisterFile
        regs_[static_cast<std::size_t>(r) * padded_ +
              static_cast<std::size_t>(t)] = value;
    }

    /** Grow the SoA rows to cover width() trials. */
    void reshape();

    /** Dispatch one vectorized row op into @p dst. */
    void rowOp(VecKind kind, const isa::DecodedInst &d,
               std::uint16_t *dst, const std::uint16_t *a,
               const std::uint16_t *b);

    /** Vector path, all trials live and convergent: full-row compute. */
    void fullRowStep(const isa::DecodedInst &d, VecKind kind);

    /** Vector path with retired trials: compute into scratch, write
     *  back only the live lanes (masked writeback). */
    void maskedGroupStep(const isa::DecodedInst &d, VecKind kind);

    /** Scalar path: advance trial @p t one instruction (predecoded
     *  jump-table semantics specialized to a single lane). */
    void stepTrial(int t);

    template <typename ComputeFn>
    void dataOpTrial(int t, const isa::DecodedInst &d,
                     ComputeFn compute);

    /** Recompute converged_/pc0_ after external state mutation. */
    void rescan();

    const isa::Program *program_;
    CoreConfig config_;
    isa::PredecodedProgram decoded_;

    std::size_t padded_ = 0; ///< row width: width() rounded up to vec

    // SoA register file: isa::kNumRegs rows of padded_ u16 lanes.
    std::vector<std::uint16_t> regs_;
    std::vector<std::uint16_t> scratch_b_;   ///< immediate splat row
    std::vector<std::uint16_t> scratch_dst_; ///< masked-writeback row

    // Per-trial architectural state (index = trial).
    std::vector<std::uint16_t> pc_;
    std::vector<std::uint8_t> halted_;
    std::vector<std::uint8_t> ac_en_;
    std::vector<std::uint8_t> bits_;
    std::vector<std::uint16_t> ac_mask_;
    std::vector<std::uint8_t> has_resume_;
    std::vector<std::uint16_t> resume_pc_;
    std::vector<std::uint8_t> frame_reg_;
    std::vector<std::uint16_t> match_mask_;
    std::vector<std::uint64_t> instret_;
    std::vector<std::uint64_t> cycles_;

    std::vector<DataMemory *> mems_;
    std::vector<ApproxAlu> alus_;

    // Convergence tracking: when converged_, every live trial's PC is
    // pc0_ and stepAll() skips the per-lane scan entirely.
    bool converged_ = true;
    std::uint16_t pc0_ = 0;
    int halted_count_ = 0;
    /** Trials with bits < 8: guards the noise-fixup scan so precise
     *  batches never pay a per-lane predicate loop. */
    int low_bits_count_ = 0;
    bool scan_needed_ = false;
};

} // namespace inc::nvp

#endif // INC_ISA_BATCH_BATCH_CORE_H
