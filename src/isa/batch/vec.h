/**
 * @file
 * Row primitives for the batch engine's structure-of-arrays state.
 *
 * BatchCore (batch_core.h) lays the register file out transposed:
 * register r of trial t lives at row[r][t], so one architectural
 * instruction over W convergent trials becomes one loop over a
 * contiguous u16 row. These primitives are that loop, in two
 * build-time-selected flavours:
 *
 *  - explicit AVX2 (16 x u16 per __m256i) when the translation unit is
 *    compiled with -mavx2 (the default; see src/isa/batch/CMakeLists.txt
 *    and the INCIDENTAL_NO_AVX2 option), and
 *  - a portable scalar fallback written so the autovectorizer can do
 *    whatever the target allows (-mno-avx2 CI leg, non-x86 hosts).
 *
 * Both flavours compute bit-identical results — all ops are exact
 * 16-bit integer semantics, there is nothing rounding-dependent to
 * diverge — which tests/test_batch_lanes.cc and the no-AVX2 CI leg
 * enforce against the scalar engines.
 *
 * Rows are padded to a multiple of kVecWidth lanes; primitives may read
 * and write the padding (those lanes are not architectural).
 */

#ifndef INC_ISA_BATCH_VEC_H
#define INC_ISA_BATCH_VEC_H

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace inc::isa::batch
{

/** u16 lanes per vector op; rows are padded to a multiple of this. */
constexpr std::size_t kVecWidth = 16;

#if defined(__AVX2__)
constexpr bool kHaveAvx2 = true;
#else
constexpr bool kHaveAvx2 = false;
#endif

/** The flavour compiled into this binary (for bench/CI labels). */
inline const char *
vecBackendName()
{
    return kHaveAvx2 ? "avx2" : "portable";
}

#if defined(__AVX2__)

namespace detail
{
inline __m256i
loadRow(const std::uint16_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
storeRow(std::uint16_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}
} // namespace detail

inline void
rowSplat(std::uint16_t *dst, std::uint16_t value, std::size_t n)
{
    const __m256i v = _mm256_set1_epi16(static_cast<short>(value));
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i, v);
}

inline void
rowCopy(std::uint16_t *dst, const std::uint16_t *a, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i, detail::loadRow(a + i));
}

inline void
rowAdd(std::uint16_t *dst, const std::uint16_t *a,
       const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i, _mm256_add_epi16(detail::loadRow(a + i),
                                                   detail::loadRow(b + i)));
}

inline void
rowSub(std::uint16_t *dst, const std::uint16_t *a,
       const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i, _mm256_sub_epi16(detail::loadRow(a + i),
                                                   detail::loadRow(b + i)));
}

inline void
rowMul(std::uint16_t *dst, const std::uint16_t *a,
       const std::uint16_t *b, std::size_t n)
{
    // mullo == low 16 bits of the 32-bit product — exactly the scalar
    // engines' static_cast<u16>(u32(a) * b).
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i,
                         _mm256_mullo_epi16(detail::loadRow(a + i),
                                            detail::loadRow(b + i)));
}

inline void
rowAnd(std::uint16_t *dst, const std::uint16_t *a,
       const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i, _mm256_and_si256(detail::loadRow(a + i),
                                                   detail::loadRow(b + i)));
}

inline void
rowOr(std::uint16_t *dst, const std::uint16_t *a,
      const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i, _mm256_or_si256(detail::loadRow(a + i),
                                                  detail::loadRow(b + i)));
}

inline void
rowXor(std::uint16_t *dst, const std::uint16_t *a,
       const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i, _mm256_xor_si256(detail::loadRow(a + i),
                                                   detail::loadRow(b + i)));
}

inline void
rowShlImm(std::uint16_t *dst, const std::uint16_t *a, int count,
          std::size_t n)
{
    const __m128i c = _mm_cvtsi32_si128(count);
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i,
                         _mm256_sll_epi16(detail::loadRow(a + i), c));
}

inline void
rowShrImm(std::uint16_t *dst, const std::uint16_t *a, int count,
          std::size_t n)
{
    const __m128i c = _mm_cvtsi32_si128(count);
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i,
                         _mm256_srl_epi16(detail::loadRow(a + i), c));
}

inline void
rowSarImm(std::uint16_t *dst, const std::uint16_t *a, int count,
          std::size_t n)
{
    const __m128i c = _mm_cvtsi32_si128(count);
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i,
                         _mm256_sra_epi16(detail::loadRow(a + i), c));
}

inline void
rowSltS(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    const __m256i one = _mm256_set1_epi16(1);
    for (std::size_t i = 0; i < n; i += kVecWidth) {
        const __m256i lt = _mm256_cmpgt_epi16(detail::loadRow(b + i),
                                              detail::loadRow(a + i));
        detail::storeRow(dst + i, _mm256_and_si256(lt, one));
    }
}

inline void
rowSltU(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    // No unsigned 16-bit compare in AVX2: bias both operands by 0x8000
    // so the signed compare orders them as unsigned.
    const __m256i one = _mm256_set1_epi16(1);
    const __m256i bias = _mm256_set1_epi16(static_cast<short>(0x8000));
    for (std::size_t i = 0; i < n; i += kVecWidth) {
        const __m256i av =
            _mm256_xor_si256(detail::loadRow(a + i), bias);
        const __m256i bv =
            _mm256_xor_si256(detail::loadRow(b + i), bias);
        detail::storeRow(dst + i,
                         _mm256_and_si256(_mm256_cmpgt_epi16(bv, av),
                                          one));
    }
}

inline void
rowMinS(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i, _mm256_min_epi16(detail::loadRow(a + i),
                                                   detail::loadRow(b + i)));
}

inline void
rowMaxS(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i, _mm256_max_epi16(detail::loadRow(a + i),
                                                   detail::loadRow(b + i)));
}

inline void
rowMinU(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i, _mm256_min_epu16(detail::loadRow(a + i),
                                                   detail::loadRow(b + i)));
}

inline void
rowMaxU(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += kVecWidth)
        detail::storeRow(dst + i, _mm256_max_epu16(detail::loadRow(a + i),
                                                   detail::loadRow(b + i)));
}

#else // portable fallback: plain loops the autovectorizer can take

inline void
rowSplat(std::uint16_t *dst, std::uint16_t value, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = value;
}

inline void
rowCopy(std::uint16_t *dst, const std::uint16_t *a, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i];
}

inline void
rowAdd(std::uint16_t *dst, const std::uint16_t *a,
       const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint16_t>(a[i] + b[i]);
}

inline void
rowSub(std::uint16_t *dst, const std::uint16_t *a,
       const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint16_t>(a[i] - b[i]);
}

inline void
rowMul(std::uint16_t *dst, const std::uint16_t *a,
       const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint16_t>(
            static_cast<std::uint32_t>(a[i]) * b[i]);
}

inline void
rowAnd(std::uint16_t *dst, const std::uint16_t *a,
       const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint16_t>(a[i] & b[i]);
}

inline void
rowOr(std::uint16_t *dst, const std::uint16_t *a,
      const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint16_t>(a[i] | b[i]);
}

inline void
rowXor(std::uint16_t *dst, const std::uint16_t *a,
       const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint16_t>(a[i] ^ b[i]);
}

inline void
rowShlImm(std::uint16_t *dst, const std::uint16_t *a, int count,
          std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint16_t>(a[i] << count);
}

inline void
rowShrImm(std::uint16_t *dst, const std::uint16_t *a, int count,
          std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint16_t>(a[i] >> count);
}

inline void
rowSarImm(std::uint16_t *dst, const std::uint16_t *a, int count,
          std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint16_t>(
            static_cast<std::int16_t>(a[i]) >> count);
}

inline void
rowSltS(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint16_t>(
            static_cast<std::int16_t>(a[i]) <
                    static_cast<std::int16_t>(b[i])
                ? 1
                : 0);
}

inline void
rowSltU(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint16_t>(a[i] < b[i] ? 1 : 0);
}

inline void
rowMinS(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const auto sa = static_cast<std::int16_t>(a[i]);
        const auto sb = static_cast<std::int16_t>(b[i]);
        dst[i] = static_cast<std::uint16_t>(sa < sb ? sa : sb);
    }
}

inline void
rowMaxS(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const auto sa = static_cast<std::int16_t>(a[i]);
        const auto sb = static_cast<std::int16_t>(b[i]);
        dst[i] = static_cast<std::uint16_t>(sa < sb ? sb : sa);
    }
}

inline void
rowMinU(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i] < b[i] ? a[i] : b[i];
}

inline void
rowMaxU(std::uint16_t *dst, const std::uint16_t *a,
        const std::uint16_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i] < b[i] ? b[i] : a[i];
}

#endif // __AVX2__

} // namespace inc::isa::batch

#endif // INC_ISA_BATCH_VEC_H
