/**
 * @file
 * ProgramBuilder: an IRBuilder-style API for composing programs in C++.
 *
 * The kernel library (src/kernels) writes its testbenches through this
 * class; it provides one method per mnemonic, label handles with forward
 * references, and a handful of pseudo-instructions. finish() patches all
 * label references and returns an immutable Program.
 */

#ifndef INC_ISA_BUILDER_H
#define INC_ISA_BUILDER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.h"

namespace inc::isa
{

/** Register names. r0 is hardwired to zero. */
enum Reg : std::uint8_t
{
    r0 = 0, r1, r2, r3, r4, r5, r6, r7,
    r8, r9, r10, r11, r12, r13, r14, r15
};

/** Opaque label handle issued by ProgramBuilder. */
struct Label
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/** Fluent program constructor with label patching. */
class ProgramBuilder
{
  public:
    ProgramBuilder() = default;

    /** Create an unbound label (optionally named for disassembly). */
    Label makeLabel(const std::string &name = "");

    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);

    /** Create a label already bound to the next instruction. */
    Label here(const std::string &name = "");

    /** Number of instructions emitted so far. */
    std::uint16_t pc() const
    {
        return static_cast<std::uint16_t>(code_.size());
    }

    // System
    void nop();
    void halt();

    // Moves / immediates
    void ldi(Reg rd, std::uint16_t imm);
    void mov(Reg rd, Reg rs);

    // R-type arithmetic / logic
    void add(Reg rd, Reg a, Reg b);
    void sub(Reg rd, Reg a, Reg b);
    void mul(Reg rd, Reg a, Reg b);
    void divu(Reg rd, Reg a, Reg b);
    void remu(Reg rd, Reg a, Reg b);
    void and_(Reg rd, Reg a, Reg b);
    void or_(Reg rd, Reg a, Reg b);
    void xor_(Reg rd, Reg a, Reg b);
    void sll(Reg rd, Reg a, Reg b);
    void srl(Reg rd, Reg a, Reg b);
    void sra(Reg rd, Reg a, Reg b);
    void slt(Reg rd, Reg a, Reg b);
    void sltu(Reg rd, Reg a, Reg b);
    void min(Reg rd, Reg a, Reg b);
    void max(Reg rd, Reg a, Reg b);
    void minu(Reg rd, Reg a, Reg b);
    void maxu(Reg rd, Reg a, Reg b);

    // I-type arithmetic / logic
    void addi(Reg rd, Reg a, std::int16_t imm);
    void andi(Reg rd, Reg a, std::uint16_t imm);
    void ori(Reg rd, Reg a, std::uint16_t imm);
    void xori(Reg rd, Reg a, std::uint16_t imm);
    void slli(Reg rd, Reg a, std::uint16_t sh);
    void srli(Reg rd, Reg a, std::uint16_t sh);
    void srai(Reg rd, Reg a, std::uint16_t sh);
    void slti(Reg rd, Reg a, std::int16_t imm);
    void sltiu(Reg rd, Reg a, std::uint16_t imm);

    // Memory: address = base + signed offset
    void ld8(Reg rd, Reg base, std::int16_t offset = 0);
    void ld8s(Reg rd, Reg base, std::int16_t offset = 0);
    void ld16(Reg rd, Reg base, std::int16_t offset = 0);
    void st8(Reg value, Reg base, std::int16_t offset = 0);
    void st16(Reg value, Reg base, std::int16_t offset = 0);

    // Control flow
    void beq(Reg a, Reg b, Label target);
    void bne(Reg a, Reg b, Label target);
    void blt(Reg a, Reg b, Label target);
    void bge(Reg a, Reg b, Label target);
    void bltu(Reg a, Reg b, Label target);
    void bgeu(Reg a, Reg b, Label target);
    void jmp(Label target);
    void jal(Reg rd, Label target);
    void jr(Reg rs);

    // Incidental computing
    /**
     * Record a resume point here: @p frame_reg carries the frame
     * induction variable; @p match_mask is the compiler-generated bitmask
     * of registers that must match for SIMD adoption (paper Sec. 4).
     */
    void markResume(Reg frame_reg, std::uint16_t match_mask);
    void acSet(std::uint16_t reg_mask);
    void acClear(std::uint16_t reg_mask);
    void acEnable(bool on);
    void assemble(Reg base, Reg len, AssembleMode mode);

    // Pseudo-instructions
    /** rd = -rs (sub rd, r0, rs). */
    void neg(Reg rd, Reg rs);
    /** rd = |rs| via branchless max(rs, -rs); clobbers @p tmp. */
    void abs_(Reg rd, Reg rs, Reg tmp);

    /** Patch labels and return the program. Builder stays reusable-free. */
    Program finish();

  private:
    void emit(Op op, std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2,
              std::uint16_t imm);
    void emitBranch(Op op, Reg a, Reg b, Label target);

    struct Fixup
    {
        std::size_t inst_index;
        int label_id;
    };

    std::vector<Instruction> code_;
    std::vector<int> label_addrs_;         // -1 until bound
    std::vector<std::string> label_names_;
    std::vector<Fixup> fixups_;
    std::vector<int> pending_binds_;       // labels bound to next inst
    bool finished_ = false;
};

} // namespace inc::isa

#endif // INC_ISA_BUILDER_H
