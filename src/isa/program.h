/**
 * @file
 * A fully resolved program image: instruction sequence plus the label
 * map produced by the assembler / builder (kept for disassembly and for
 * locating pragma-marked points such as resume PCs).
 */

#ifndef INC_ISA_PROGRAM_H
#define INC_ISA_PROGRAM_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace inc::isa
{

/** An assembled program. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::vector<Instruction> code,
                     std::map<std::string, std::uint16_t> labels = {});

    std::size_t size() const { return code_.size(); }
    bool empty() const { return code_.empty(); }

    /** Instruction at @p pc; out-of-range PCs fetch a halt. */
    const Instruction &at(std::uint16_t pc) const;

    const std::vector<Instruction> &code() const { return code_; }
    const std::map<std::string, std::uint16_t> &labels() const
    {
        return labels_;
    }

    /** True if @p name is a known label. */
    bool hasLabel(const std::string &name) const;

    /** Address of label @p name; fatal() if missing. */
    std::uint16_t labelAddress(const std::string &name) const;

    /** Label at @p pc, empty string if none. */
    std::string labelAt(std::uint16_t pc) const;

    /** Count of instructions whose op matches @p op. */
    std::size_t countOp(Op op) const;

  private:
    std::vector<Instruction> code_;
    std::map<std::string, std::uint16_t> labels_;
};

} // namespace inc::isa

#endif // INC_ISA_PROGRAM_H
