/**
 * @file
 * Two-pass text assembler.
 *
 * Syntax (one instruction per line; ';' or '#' start comments):
 *
 *   label:
 *       ldi   r1, 42          ; decimal, 0x.. hex, -n negatives
 *       add   r2, r1, r3
 *       ld8   r4, 5(r2)       ; loads/stores: offset(base)
 *       st8   r4, 0(r2)       ; store value r4 at r2+0
 *       beq   r1, r0, label
 *       jmp   label
 *       markrp r5, 0x0030
 *       acen  1
 *       assem r1, r2, higherbits
 *
 * Errors are reported with line numbers via util::fatal in assembleOrDie,
 * or returned as a message in AssembleResult.
 */

#ifndef INC_ISA_ASSEMBLER_H
#define INC_ISA_ASSEMBLER_H

#include <string>

#include "isa/program.h"

namespace inc::isa
{

/** Outcome of an assembly attempt. */
struct AssembleResult
{
    bool ok = false;
    Program program;
    std::string error; ///< "line N: message" when !ok
};

/** Assemble @p source; never terminates the process. */
AssembleResult assemble(const std::string &source);

/** Assemble @p source; fatal() with the error message on failure. */
Program assembleOrDie(const std::string &source);

} // namespace inc::isa

#endif // INC_ISA_ASSEMBLER_H
