/**
 * @file
 * Instruction set of the NVP functional model.
 *
 * The paper's platform is a modified 8051 RTL. We model an equivalent-
 * complexity 8-bit-datapath MCU with a cleaner load/store ISA so that the
 * ten kernels can be written by hand (directly or through ProgramBuilder)
 * and so that incidental-computing state (resume points, AC flags,
 * merges) is architecturally visible, mirroring the paper's Sec. 4
 * microarchitecture support:
 *
 *  - 16 general registers r0..r15, 16 bits each; r0 is hardwired to zero.
 *    Registers are wide enough for addresses; *data* values are 8-bit
 *    significant and subject to bitwidth approximation when their
 *    register carries the AC flag.
 *  - Harvard organization: word-addressed instruction memory (PC indexes
 *    instructions), byte-addressed 64 KiB data memory, no cache.
 *  - Multi-cycle execution in a simple 5-stage pipeline; per-op cycle
 *    counts below follow 8051-class costs (MUL/DIV are slow).
 *  - Incidental-computing ops: MARKRP (records a resume point with the
 *    frame register and a compiler-generated register-match mask), ACSET/
 *    ACCLR (per-register AC flags), ACEN (global approximation enable),
 *    ASSEM (controller-driven versioned-memory merge).
 */

#ifndef INC_ISA_ISA_H
#define INC_ISA_ISA_H

#include <cstdint>
#include <string>

namespace inc::isa
{

/** Number of general-purpose registers. */
constexpr int kNumRegs = 16;

/** Data memory size in bytes. */
constexpr std::size_t kDataMemBytes = 65536;

/** Opcodes. */
enum class Op : std::uint8_t
{
    // System
    nop,
    halt,

    // Immediate / moves
    ldi,    ///< rd = imm16
    mov,    ///< rd = rs1

    // Arithmetic / logic (R-type: rd = rs1 op rs2)
    add,
    sub,
    mul,    ///< low 16 bits of product
    divu,   ///< unsigned divide (rs2 == 0 -> 0xffff)
    remu,   ///< unsigned remainder (rs2 == 0 -> rs1)
    and_,
    or_,
    xor_,
    sll,    ///< shift left by rs2 & 15
    srl,    ///< logical shift right by rs2 & 15
    sra,    ///< arithmetic shift right by rs2 & 15
    slt,    ///< rd = (signed) rs1 < rs2
    sltu,   ///< rd = (unsigned) rs1 < rs2
    min,    ///< signed minimum (branchless data ops for SIMD safety)
    max,    ///< signed maximum
    minu,   ///< unsigned minimum
    maxu,   ///< unsigned maximum

    // Immediate arithmetic/logic (rd = rs1 op imm16)
    addi,
    andi,
    ori,
    xori,
    slli,
    srli,
    srai,
    slti,
    sltiu,

    // Memory (address = rs1 + signed imm)
    ld8,    ///< zero-extended byte load
    ld8s,   ///< sign-extended byte load
    ld16,   ///< little-endian halfword load
    st8,
    st16,

    // Control flow (targets are absolute instruction indices)
    beq,
    bne,
    blt,
    bge,
    bltu,
    bgeu,
    jmp,
    jal,    ///< rd = return PC; jump to target
    jr,     ///< PC = rs1

    // Incidental computing support (paper Sec. 4-5)
    markrp, ///< record resume point: frame reg = rs1, match mask = imm16
    acset,  ///< set AC flag on registers in imm16 mask
    acclr,  ///< clear AC flag on registers in imm16 mask
    acen,   ///< global approximation enable = imm16 != 0
    assem,  ///< merge versioned memory [rs1, rs1+rs2) with mode imm16

    num_ops
};

/** Assemble-instruction merge modes (paper Table 1 "assemble_mode"). */
enum class AssembleMode : std::uint16_t
{
    higherbits = 0, ///< keep the value with the higher precision metadata
    sum = 1,
    max = 2,
    min = 3
};

/** Broad execution class of an op, used by cost and energy models. */
enum class OpClass
{
    system,
    alu,       ///< 1-cycle integer ops
    mul,       ///< multiplier
    div,       ///< divider
    load,
    store,
    branch,
    jump,
    incidental ///< markrp / acset / acclr / acen / assem
};

/** A decoded instruction. */
struct Instruction
{
    Op op = Op::nop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint16_t imm = 0;

    bool operator==(const Instruction &other) const = default;
};

/** Mnemonic for @p op ("add", "ld8", ...). */
const std::string &opName(Op op);

/** Parse a mnemonic; returns Op::num_ops if unknown. */
Op opFromName(const std::string &name);

/** Execution class of @p op. */
OpClass opClass(Op op);

/** Base cycle count of @p op (taken-branch extra handled by the core). */
int opCycles(Op op);

/** True for ops whose result is data (candidates for approximation). */
bool isDataOp(Op op);

/** True if @p op writes register rd. */
bool writesRd(Op op);

/** True if @p op reads rs1 / rs2. */
bool readsRs1(Op op);
bool readsRs2(Op op);

/** True for branch/jump ops (PC not simply incremented). */
bool isControlFlow(Op op);

} // namespace inc::isa

#endif // INC_ISA_ISA_H
