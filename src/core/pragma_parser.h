/**
 * @file
 * The paper's programming model (Sec. 5, Table 1) as a source-level
 * front end: "#pragma ac ..." directives embedded in assembly source,
 * the way the paper's programmer annotates C.
 *
 * Supported directives (each on its own line):
 *
 *   .region NAME ADDR SIZE
 *       Declare a named data-memory region (the "variables" pragmas
 *       refer to).
 *
 *   #pragma ac incidental(NAME, MINBITS, MAXBITS, POLICY)
 *       Region NAME may be approximated within [MINBITS, MAXBITS] and
 *       its backup storage uses retention POLICY (full/linear/log/
 *       parabola).
 *
 *   #pragma ac incidental_recover_from(rN)
 *       Register rN is the frame induction variable; the program must
 *       contain a markrp on rN (the compiler half of the paper's
 *       directive — we verify rather than synthesize).
 *
 *   #pragma ac recompute(NAME, MINBITS)
 *       Data in region NAME found "interesting" should be recomputed at
 *       >= MINBITS.
 *
 *   #pragma ac assemble(NAME, MODE)
 *       Merge recomputed results for region NAME with MODE
 *       (sum/max/min/higherbits).
 *
 * Directive lines are consumed by the front end; everything else goes
 * through the regular two-pass assembler. parse() returns the program
 * plus the structured configuration, and applyTo() pushes the memory
 * declarations into a DataMemory and the precision bounds into a
 * BitwidthConfig — the "compiler's role" of Sec. 5.
 */

#ifndef INC_CORE_PRAGMA_PARSER_H
#define INC_CORE_PRAGMA_PARSER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "approx/bitwidth_controller.h"
#include "isa/program.h"
#include "nvm/retention_policy.h"

namespace inc::nvp
{
class DataMemory;
} // namespace inc::nvp

namespace inc::core
{

/** A named data-memory region. */
struct NamedRegion
{
    std::uint32_t address = 0;
    std::uint32_t size = 0;
};

/** "#pragma ac incidental(...)" payload. */
struct IncidentalDirective
{
    std::string region;
    int min_bits = 1;
    int max_bits = 8;
    nvm::RetentionPolicy policy = nvm::RetentionPolicy::full;
};

/** "#pragma ac recompute(...)" payload. */
struct RecomputeDirective
{
    std::string region;
    int min_bits = 4;
};

/** "#pragma ac assemble(...)" payload. */
struct AssembleDirective
{
    std::string region;
    isa::AssembleMode mode = isa::AssembleMode::higherbits;
};

/** Everything the front end extracted from an annotated source file. */
struct AnnotatedProgram
{
    isa::Program program;
    std::map<std::string, NamedRegion> regions;
    std::vector<IncidentalDirective> incidental;
    std::vector<RecomputeDirective> recomputes;
    std::vector<AssembleDirective> assembles;
    int recover_register = -1; ///< -1: no incidental_recover_from

    /** Declare the incidental regions (AC + policies) on @p memory. */
    void applyRegions(nvp::DataMemory &memory) const;

    /**
     * Derive the bitwidth bounds from the incidental directives (the
     * tightest min and loosest max across regions; dynamic mode).
     */
    approx::BitwidthConfig bitwidthConfig() const;
};

/** Outcome of parsing annotated source. */
struct PragmaParseResult
{
    bool ok = false;
    AnnotatedProgram annotated;
    std::string error; ///< "line N: message" when !ok
};

/** Parse annotated assembly source. */
PragmaParseResult parseAnnotated(const std::string &source);

/** Parse; fatal() with the error on failure. */
AnnotatedProgram parseAnnotatedOrDie(const std::string &source);

} // namespace inc::core

#endif // INC_CORE_PRAGMA_PARSER_H
