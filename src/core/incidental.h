/**
 * @file
 * The incidental computing controller — the paper's primary contribution
 * (Secs. 3-4), implemented as the microarchitectural control unit sitting
 * next to the NVP core:
 *
 *  - Roll-forward recovery: after a power failure, instead of resuming
 *    the interrupted frame, execution restarts at the resume point
 *    (markrp) with the frame induction variable advanced to the newest
 *    captured frame. The interrupted computation's {PC, frame, register
 *    snapshot} is pushed into the 4-entry nonvolatile resume buffer.
 *
 *  - Incidental SIMD adoption: while processing the new frame, whenever
 *    the current PC equals a buffered entry's PC and the compiler-masked
 *    registers (loop induction variables) match, the old computation is
 *    adopted as an extra SIMD lane and continues from exactly where it
 *    stopped, at a power-dependent reduced bitwidth.
 *
 *  - History spawning: unprocessed buffered frames are picked up as
 *    incidental lanes at frame boundaries when surplus energy exists
 *    ("processing the historical buffered data with incidental
 *    computing", Sec. 2.1).
 *
 *  - Recompute-and-combine: frames flagged interesting are re-run at a
 *    guaranteed minimum precision and merged through the versioned
 *    memory's higher-bits arbitration (Sec. 8.5).
 *
 *  - Incidental backup: backup images of AC-marked state are written
 *    with a retention-shaping policy; at restore, bits whose shaped
 *    retention was outlived by the outage settle randomly (Sec. 3.2).
 */

#ifndef INC_CORE_INCIDENTAL_H
#define INC_CORE_INCIDENTAL_H

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "approx/bitwidth_controller.h"
#include "core/config.h"
#include "core/recompute.h"
#include "core/resume_buffer.h"
#include "nvp/core.h"
#include "util/rng.h"

namespace inc::core
{

/** A completed output frame (for quality scoring by the harness). */
struct FrameCompletion
{
    std::uint32_t frame = 0;
    int lane = 0;      ///< lane that finished it (0 = main)
    int bits = 8;      ///< lane precision at completion
};

/** Controller event counters. */
struct ControllerStats
{
    std::uint64_t backups = 0;
    std::uint64_t restores = 0;
    std::uint64_t roll_forwards = 0;
    std::uint64_t plain_resumes = 0;
    std::uint64_t adoptions = 0;
    std::uint64_t history_spawns = 0;
    std::uint64_t recompute_spawns = 0;
    std::uint64_t retirements = 0;
    std::uint64_t dropped_stale = 0;
    std::uint64_t frames_started = 0;
    std::uint64_t frames_completed = 0;
    std::uint64_t frames_abandoned = 0;
    std::uint64_t reg_decay_events = 0;
};

/** The incidental computing control unit. */
class IncidentalController
{
  public:
    IncidentalController(nvp::Core *core, ControllerConfig config,
                         FrameLayout layout,
                         approx::BitwidthController *bits,
                         util::Rng rng);

    const ControllerConfig &config() const { return config_; }
    const ControllerStats &stats() const { return stats_; }
    ResumeBuffer &resumeBuffer() { return buffer_; }
    RecomputeQueue &recomputeQueue() { return recompute_; }

    // ---- power events -----------------------------------------------------

    /** Power emergency: capture all active lanes as pending entries. */
    void onBackup();

    /**
     * Power recovery after an outage of @p outage_tenth_ms. Applies
     * retention decay (memory + backed-up registers), then either rolls
     * forward (newest frame available and roll_forward configured) or
     * resumes in place.
     */
    void onRestore(double outage_tenth_ms, std::uint32_t newest_frame);

    // ---- execution hooks ---------------------------------------------------

    /**
     * Per-instruction fast path: adopt a buffered computation whose PC
     * and masked registers match the current state.
     */
    void maybeAdopt(double energy_frac, std::uint32_t newest_frame);

    /** Per-sample tick: refresh all lane bitwidths from the energy state. */
    void updateLaneBits(double energy_frac);

    /** Outcome of a frame-boundary (markrp) event. */
    struct MarkOutcome
    {
        std::uint32_t frame = 0;    ///< frame lane 0 will process
        bool wait_for_frame = false; ///< frame not yet captured
    };

    /**
     * Handle a markrp executed by lane 0 with frame-register value
     * @p frame_value: retire finished lanes, pick the next frame
     * (newest-first), reset its output slot on first start, and spawn
     * surplus lanes (recompute queue, history backlog, full-SIMD fill).
     */
    MarkOutcome handleMarkResume(std::uint16_t frame_value,
                                 std::uint32_t newest_frame,
                                 double energy_frac);

    // ---- host API ----------------------------------------------------------

    /** Request @p times recompute passes of @p frame at >= @p min_bits. */
    void requestRecompute(std::uint16_t frame, int min_bits, int times);

    /** Drain the completed-frame event list. */
    std::vector<FrameCompletion> takeCompletions();

    /**
     * Immediate completion hook, invoked the moment a frame finishes —
     * before its output ring slot can be recycled by a newer frame. Use
     * this (rather than takeCompletions) when the handler must read the
     * finished output buffer.
     */
    void setCompletionCallback(
        std::function<void(const FrameCompletion &)> callback)
    {
        completion_callback_ = std::move(callback);
    }

  private:
    void spawnLanes(std::uint32_t newest_frame, double energy_frac);
    void spawnLane(std::uint16_t frame, int bits, int min_bits,
                   bool first_start, std::uint8_t origin);
    void decayRegisters(nvp::RegSnapshot &regs, int cutoff);
    void slideWindow(std::uint32_t newest_frame);
    bool isStarted(std::uint32_t frame) const;
    std::uint32_t oldestLiveFrame(std::uint32_t newest_frame) const;

    nvp::Core *core_;
    ControllerConfig config_;
    FrameLayout layout_;
    approx::BitwidthController *bits_;
    util::Rng rng_;

    ResumeBuffer buffer_;
    RecomputeQueue recompute_;
    ControllerStats stats_;

    void emitCompletion(const FrameCompletion &completion);

    std::vector<ResumeEntry> pending_; ///< captured at last backup
    std::vector<FrameCompletion> completions_;
    std::function<void(const FrameCompletion &)> completion_callback_;
    std::set<std::uint32_t> started_;
    std::uint32_t window_start_ = 0;
    bool main_frame_valid_ = false;
    std::uint32_t main_frame_ = 0;
    int main_min_bits_ = 1; ///< floor while lane 0 runs a recompute pass
    std::array<int, nvp::kMaxLanes> lane_min_bits_{};

    /** How a lane came to be: adopted interrupted work is not evictable,
     *  history / full-SIMD filler lanes are. */
    enum class LaneOrigin : std::uint8_t
    {
        none,
        adopted,
        history,
        recompute
    };
    std::array<LaneOrigin, nvp::kMaxLanes> lane_origin_{};
};

} // namespace inc::core

#endif // INC_CORE_INCIDENTAL_H
