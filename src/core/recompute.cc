#include "core/recompute.h"

#include <algorithm>

#include "util/logging.h"

namespace inc::core
{

void
RecomputeQueue::request(std::uint16_t frame, int min_bits, int passes)
{
    if (passes <= 0)
        return;
    if (min_bits < 1 || min_bits > 8)
        util::fatal("recompute min_bits must be 1..8, got %d", min_bits);
    INC_OBS_COUNT(obs_, requests);
    for (RecomputeRequest &r : queue_) {
        if (r.frame == frame) {
            r.min_bits = std::max(r.min_bits, min_bits);
            r.passes_left = std::max(r.passes_left, passes);
            return;
        }
    }
    queue_.push_back({frame, min_bits, passes});
}

RecomputeRequest
RecomputeQueue::takePass()
{
    if (queue_.empty())
        util::panic("RecomputeQueue::takePass on empty queue");
    INC_OBS_COUNT(obs_, passes);
    RecomputeRequest pass = queue_.front();
    if (--queue_.front().passes_left <= 0)
        queue_.pop_front();
    pass.passes_left = 1;
    return pass;
}

const RecomputeRequest &
RecomputeQueue::front() const
{
    if (queue_.empty())
        util::panic("RecomputeQueue::front on empty queue");
    return queue_.front();
}

int
RecomputeQueue::dropStale(std::uint32_t oldest_live_frame)
{
    const auto before = queue_.size();
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [oldest_live_frame](
                                    const RecomputeRequest &r) {
                                    return r.frame < oldest_live_frame;
                                }),
                 queue_.end());
    INC_OBS_ADD(obs_, dropped, before - queue_.size());
    return static_cast<int>(before - queue_.size());
}

} // namespace inc::core
