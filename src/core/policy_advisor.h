/**
 * @file
 * Power-profile-driven policy selection (paper Sec. 8.6).
 *
 * The paper's tuning guidance: choose minbits first to clear the QoS
 * floor, use linear retention shaping "when average power is expected
 * to be higher (profiles 1, 4) and parabola when average power is low
 * (profiles 2, 3, 5)", and — when the expected power characteristics
 * are unknown — apply "a lookup table or machine learning based mapping
 * from the sampled power to configurations".
 *
 * PolicyAdvisor is that lookup table: it ingests sampled power online
 * (or a whole trace), reduces it to the features the paper's guidance
 * keys on (mean power, emergency rate, outage-duration spread), and
 * emits a recommended incidental configuration.
 */

#ifndef INC_CORE_POLICY_ADVISOR_H
#define INC_CORE_POLICY_ADVISOR_H

#include <cstdint>

#include "core/config.h"
#include "trace/power_trace.h"

namespace inc::core
{

/** Power features the advisor keys on. */
struct PowerFeatures
{
    double mean_uw = 0.0;
    double emergencies_per_10s = 0.0;
    double mean_outage_tenth_ms = 0.0;
    double long_outage_fraction = 0.0; ///< outages > 100 ms
};

/** A recommended incidental configuration. */
struct PolicyAdvice
{
    nvm::RetentionPolicy backup = nvm::RetentionPolicy::linear;
    int min_bits = 2;
    int recompute_times = 0;
    std::string rationale;
};

/** Online power sampler + lookup-table policy selection. */
class PolicyAdvisor
{
  public:
    PolicyAdvisor() = default;

    /** Feed one 0.1 ms power sample (uW). */
    void addSample(double power_uw);

    /** Feed a whole trace. */
    void addTrace(const trace::PowerTrace &trace);

    /** Features accumulated so far. */
    PowerFeatures features() const;

    /** Number of samples ingested. */
    std::uint64_t samples() const { return samples_; }

    /**
     * The lookup table: map the accumulated features to a
     * configuration per the paper's guidance. @p quality_sensitive
     * biases toward higher minbits and recomputation (kernels like
     * sobel that degrade sharply under approximation).
     */
    PolicyAdvice recommend(bool quality_sensitive = false) const;

    /** Apply a recommendation onto a controller configuration. */
    static void apply(const PolicyAdvice &advice,
                      ControllerConfig &config);

    void reset();

  private:
    std::uint64_t samples_ = 0;
    double power_sum_ = 0.0;
    std::uint64_t emergencies_ = 0;
    std::uint64_t outage_samples_ = 0;
    std::uint64_t long_outages_ = 0;
    std::uint64_t current_run_ = 0; ///< length of the in-flight outage
};

} // namespace inc::core

#endif // INC_CORE_POLICY_ADVISOR_H
