/**
 * @file
 * Host-side configuration of incidental computing — the programming
 * model's pragma information (paper Table 1) in API form.
 *
 * The in-program half of each pragma lives in the kernel's instruction
 * stream (acset / acen / markrp / assem); the host half — memory region
 * declarations, precision bounds, backup policy and frame-buffer layout —
 * is carried by these structs, which the compiler of the paper would
 * derive from the #pragma directives.
 */

#ifndef INC_CORE_CONFIG_H
#define INC_CORE_CONFIG_H

#include <cstdint>

#include "nvm/retention_policy.h"

namespace inc::core
{

/**
 * Frame buffering layout: the sensor writes captured frames into a ring
 * of input slots; each frame's output goes to a ring of output slots.
 */
struct FrameLayout
{
    std::uint32_t in_base = 0;    ///< input ring base address
    std::uint32_t in_bytes = 0;   ///< bytes per input frame
    int in_slots = 4;             ///< input ring depth

    std::uint32_t out_base = 0;   ///< output ring base address
    std::uint32_t out_bytes = 0;  ///< bytes per output frame
    int out_slots = 4;            ///< output ring depth

    std::uint32_t inSlotAddr(std::uint32_t frame) const
    {
        return in_base + (frame % static_cast<std::uint32_t>(in_slots)) *
                             in_bytes;
    }

    std::uint32_t outSlotAddr(std::uint32_t frame) const
    {
        return out_base + (frame % static_cast<std::uint32_t>(out_slots)) *
                              out_bytes;
    }
};

/**
 * Equivalent of "#pragma ac incidental(src, minbits, maxbits, policy)":
 * precision bounds for approximation plus the retention-shaping policy
 * for the marked data's backup storage.
 */
struct IncidentalPragma
{
    int min_bits = 1;
    int max_bits = 8;
    nvm::RetentionPolicy policy = nvm::RetentionPolicy::full;
};

/** Incidental-controller policy knobs. */
struct ControllerConfig
{
    /** Roll forward to the newest frame on recovery (false = precise
     *  baseline NVP behaviour: resume exactly where interrupted). */
    bool roll_forward = true;

    /**
     * Staleness threshold for rolling forward: abandon the interrupted
     * frame only when the newest capture is at least this many frames
     * ahead ("resuming work on the input it was processing when power
     * failed may have lower utility ... than moving on to the newest
     * input" — the utility loss must be real; unconditional abandonment
     * would livelock under fast sensors, completing nothing).
     */
    std::uint32_t roll_forward_min_frames = 2;

    /** Adopt interrupted computations as SIMD lanes at matching PCs. */
    bool simd_adoption = true;

    /** Fill idle lanes with unprocessed buffered history frames. */
    bool history_spawn = true;

    /** Always keep all four lanes busy at full precision (the Fig. 9
     *  "4-SIMD NVP" reference design). */
    bool force_full_simd = false;

    /** Skip straight to the newest captured frame at each frame start. */
    bool process_newest_first = true;

    /** Stored-energy fraction above which surplus-powered lanes
     *  (adoption / history / recompute) may be activated. */
    double spawn_energy_frac = 0.18;

    /** Automatic recompute passes for every completed incidental frame
     *  (Table 2 "Recompute"); 0 disables. */
    int auto_recompute_times = 0;

    /** Precision floor for recompute lanes (pragma recompute minbits). */
    int recompute_min_bits = 4;

    /** Retention policy for backup images (registers / marked data). */
    nvm::RetentionPolicy backup_policy = nvm::RetentionPolicy::full;
};

} // namespace inc::core

#endif // INC_CORE_CONFIG_H
