#include "core/pragma_parser.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "isa/assembler.h"
#include "nvp/memory.h"
#include "util/logging.h"

namespace inc::core
{

namespace
{

std::string
trim(const std::string &s)
{
    size_t a = 0, b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a])))
        ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])))
        --b;
    return s.substr(a, b - a);
}

/** Split "name(arg1, arg2, ...)" into name + trimmed args. */
bool
parseCall(const std::string &text, std::string &name,
          std::vector<std::string> &args)
{
    const size_t open = text.find('(');
    const size_t close = text.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
        return false;
    name = trim(text.substr(0, open));
    args.clear();
    std::string cell;
    for (size_t i = open + 1; i < close; ++i) {
        if (text[i] == ',') {
            args.push_back(trim(cell));
            cell.clear();
        } else {
            cell.push_back(text[i]);
        }
    }
    const std::string last = trim(cell);
    if (!last.empty() || !args.empty())
        args.push_back(last);
    return !name.empty();
}

bool
parseUint(const std::string &tok, std::uint32_t &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    const unsigned long v = std::strtoul(tok.c_str(), &end, 0);
    if (*end != '\0')
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool
parseBits(const std::string &tok, int &out)
{
    std::uint32_t v = 0;
    if (!parseUint(tok, v) || v < 1 || v > 8)
        return false;
    out = static_cast<int>(v);
    return true;
}

bool
parsePolicy(const std::string &tok, nvm::RetentionPolicy &policy)
{
    for (auto p : {nvm::RetentionPolicy::full, nvm::RetentionPolicy::linear,
                   nvm::RetentionPolicy::log,
                   nvm::RetentionPolicy::parabola}) {
        if (tok == nvm::policyName(p)) {
            policy = p;
            return true;
        }
    }
    return false;
}

bool
parseMode(const std::string &tok, isa::AssembleMode &mode)
{
    if (tok == "higherbits")
        mode = isa::AssembleMode::higherbits;
    else if (tok == "sum")
        mode = isa::AssembleMode::sum;
    else if (tok == "max")
        mode = isa::AssembleMode::max;
    else if (tok == "min")
        mode = isa::AssembleMode::min;
    else
        return false;
    return true;
}

} // namespace

void
AnnotatedProgram::applyRegions(nvp::DataMemory &memory) const
{
    for (const IncidentalDirective &d : incidental) {
        const auto it = regions.find(d.region);
        if (it == regions.end())
            util::panic("incidental region '%s' undeclared",
                        d.region.c_str());
        memory.addAcRegion(
            {it->second.address, it->second.size, d.policy});
    }
}

approx::BitwidthConfig
AnnotatedProgram::bitwidthConfig() const
{
    approx::BitwidthConfig cfg;
    if (incidental.empty())
        return cfg; // precise by default
    cfg.mode = approx::ApproxMode::dynamic;
    cfg.min_bits = 8;
    cfg.max_bits = 1;
    for (const IncidentalDirective &d : incidental) {
        cfg.min_bits = std::min(cfg.min_bits, d.min_bits);
        cfg.max_bits = std::max(cfg.max_bits, d.max_bits);
    }
    return cfg;
}

PragmaParseResult
parseAnnotated(const std::string &source)
{
    PragmaParseResult result;
    AnnotatedProgram &out = result.annotated;

    std::ostringstream stripped;
    std::istringstream in(source);
    std::string raw;
    int lineno = 0;

    auto fail = [&result, &lineno](const std::string &msg) {
        result.error = util::format("line %d: %s", lineno, msg.c_str());
        return result;
    };

    while (std::getline(in, raw)) {
        ++lineno;
        const std::string line = trim(raw);

        if (line.rfind(".region", 0) == 0) {
            std::istringstream parts(line.substr(7));
            std::string name, addr_tok, size_tok;
            parts >> name >> addr_tok >> size_tok;
            NamedRegion region;
            if (name.empty() || !parseUint(addr_tok, region.address) ||
                !parseUint(size_tok, region.size) || region.size == 0)
                return fail("expected: .region NAME ADDR SIZE");
            if (out.regions.count(name))
                return fail("duplicate region '" + name + "'");
            if (region.address + region.size > isa::kDataMemBytes)
                return fail("region '" + name + "' exceeds data memory");
            out.regions[name] = region;
            stripped << '\n';
            continue;
        }

        if (line.rfind("#pragma", 0) == 0) {
            std::string rest = trim(line.substr(7));
            if (rest.rfind("ac", 0) != 0)
                return fail("only '#pragma ac ...' is supported");
            rest = trim(rest.substr(2));
            std::string name;
            std::vector<std::string> args;
            if (!parseCall(rest, name, args))
                return fail("malformed pragma '" + rest + "'");

            if (name == "incidental") {
                IncidentalDirective d;
                if (args.size() != 4 || !parseBits(args[1], d.min_bits) ||
                    !parseBits(args[2], d.max_bits) ||
                    !parsePolicy(args[3], d.policy) ||
                    d.min_bits > d.max_bits)
                    return fail("expected: incidental(region, minbits, "
                                "maxbits, policy)");
                d.region = args[0];
                if (!out.regions.count(d.region))
                    return fail("incidental region '" + d.region +
                                "' not declared with .region");
                out.incidental.push_back(d);
            } else if (name == "incidental_recover_from") {
                if (args.size() != 1 || args[0].size() < 2 ||
                    args[0][0] != 'r')
                    return fail(
                        "expected: incidental_recover_from(rN)");
                std::uint32_t reg = 0;
                if (!parseUint(args[0].substr(1), reg) ||
                    reg >= static_cast<std::uint32_t>(isa::kNumRegs))
                    return fail("bad register in recover_from");
                out.recover_register = static_cast<int>(reg);
            } else if (name == "recompute") {
                RecomputeDirective d;
                if (args.size() != 2 || !parseBits(args[1], d.min_bits))
                    return fail("expected: recompute(region, minbits)");
                d.region = args[0];
                if (!out.regions.count(d.region))
                    return fail("recompute region '" + d.region +
                                "' not declared");
                out.recomputes.push_back(d);
            } else if (name == "assemble") {
                AssembleDirective d;
                if (args.size() != 2 || !parseMode(args[1], d.mode))
                    return fail("expected: assemble(region, mode)");
                d.region = args[0];
                if (!out.regions.count(d.region))
                    return fail("assemble region '" + d.region +
                                "' not declared");
                out.assembles.push_back(d);
            } else {
                return fail("unknown pragma '" + name + "'");
            }
            stripped << '\n';
            continue;
        }

        stripped << raw << '\n';
    }

    isa::AssembleResult assembled = isa::assemble(stripped.str());
    if (!assembled.ok) {
        result.error = assembled.error;
        return result;
    }
    out.program = std::move(assembled.program);

    // The compiler's verification half of incidental_recover_from: the
    // program must mark a resume point on the named register.
    if (out.recover_register >= 0) {
        bool found = false;
        for (const isa::Instruction &inst : out.program.code()) {
            if (inst.op == isa::Op::markrp &&
                inst.rs1 == out.recover_register)
                found = true;
        }
        if (!found) {
            result.error = util::format(
                "incidental_recover_from(r%d) has no matching 'markrp "
                "r%d, ...' in the program",
                out.recover_register, out.recover_register);
            return result;
        }
    }

    result.ok = true;
    return result;
}

AnnotatedProgram
parseAnnotatedOrDie(const std::string &source)
{
    PragmaParseResult r = parseAnnotated(source);
    if (!r.ok)
        util::fatal("pragma parse failed: %s", r.error.c_str());
    return std::move(r.annotated);
}

} // namespace inc::core
