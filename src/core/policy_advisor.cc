#include "core/policy_advisor.h"

#include "trace/outage_stats.h"
#include "util/logging.h"

namespace inc::core
{

namespace
{
/** Outages longer than this count as "long" (100 ms). */
constexpr std::uint64_t kLongOutageSamples = 1000;
} // namespace

void
PolicyAdvisor::addSample(double power_uw)
{
    ++samples_;
    power_sum_ += power_uw;
    if (power_uw < trace::kOperationThresholdUw) {
        ++outage_samples_;
        ++current_run_;
        if (current_run_ == kLongOutageSamples)
            ++long_outages_;
    } else {
        if (current_run_ > 0)
            ++emergencies_;
        current_run_ = 0;
    }
}

void
PolicyAdvisor::addTrace(const trace::PowerTrace &trace)
{
    for (double s : trace.samples())
        addSample(s);
}

PowerFeatures
PolicyAdvisor::features() const
{
    PowerFeatures f;
    if (samples_ == 0)
        return f;
    f.mean_uw = power_sum_ / static_cast<double>(samples_);
    const double seconds =
        static_cast<double>(samples_) * trace::kSamplePeriodSec;
    f.emergencies_per_10s =
        seconds > 0 ? static_cast<double>(emergencies_) * 10.0 / seconds
                    : 0.0;
    f.mean_outage_tenth_ms =
        emergencies_ > 0 ? static_cast<double>(outage_samples_) /
                               static_cast<double>(emergencies_)
                         : 0.0;
    f.long_outage_fraction =
        emergencies_ > 0 ? static_cast<double>(long_outages_) /
                               static_cast<double>(emergencies_)
                         : 0.0;
    return f;
}

PolicyAdvice
PolicyAdvisor::recommend(bool quality_sensitive) const
{
    if (samples_ == 0)
        util::fatal("PolicyAdvisor::recommend before any samples");
    const PowerFeatures f = features();
    PolicyAdvice advice;

    // Backup shaping: linear for high-power periods (profiles 1 and 4
    // average ~30-40 uW), parabola for low-power ones (Sec. 8.6). Long
    // outages also argue for the conservative parabola — low-order bits
    // would expire under any aggressive policy anyway.
    if (f.mean_uw >= 25.0 && f.long_outage_fraction < 0.10) {
        advice.backup = nvm::RetentionPolicy::linear;
        advice.rationale = "high average power: linear shaping";
    } else {
        advice.backup = nvm::RetentionPolicy::parabola;
        advice.rationale = "low power or long outages: parabola";
    }

    // Precision floor: the scarcer the energy, the lower the floor the
    // programmer should accept ("set minbits lower if the application
    // is to be run faster, but with low quality incidental outputs").
    if (quality_sensitive)
        advice.min_bits = 4;
    else if (f.mean_uw >= 25.0)
        advice.min_bits = 3;
    else
        advice.min_bits = 2;

    // Recomputation compensates a low floor when emergencies leave
    // surplus windows to spend (paper Table 2 pairs minbits 4 with two
    // recompute passes for the quality-sensitive kernels).
    advice.recompute_times =
        quality_sensitive ? 2 : (advice.min_bits <= 2 ? 1 : 0);
    return advice;
}

void
PolicyAdvisor::apply(const PolicyAdvice &advice, ControllerConfig &config)
{
    config.backup_policy = advice.backup;
    config.auto_recompute_times = advice.recompute_times;
    config.recompute_min_bits = std::max(6, advice.min_bits);
}

void
PolicyAdvisor::reset()
{
    samples_ = 0;
    power_sum_ = 0.0;
    emergencies_ = 0;
    outage_samples_ = 0;
    long_outages_ = 0;
    current_run_ = 0;
}

} // namespace inc::core
