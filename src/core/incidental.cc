#include "core/incidental.h"

#include <algorithm>

#include "nvm/nvm_array.h"
#include "util/bit_ops.h"
#include "util/logging.h"

namespace inc::core
{

IncidentalController::IncidentalController(nvp::Core *core,
                                           ControllerConfig config,
                                           FrameLayout layout,
                                           approx::BitwidthController *bits,
                                           util::Rng rng)
    : core_(core), config_(config), layout_(layout), bits_(bits),
      rng_(rng)
{
    if (!core_ || !bits_)
        util::panic("IncidentalController requires a core and a "
                    "bitwidth controller");
    if (layout_.in_slots < 1 || layout_.out_slots < 1)
        util::fatal("FrameLayout slots must be >= 1");
    lane_min_bits_.fill(1);
}

std::uint32_t
IncidentalController::oldestLiveFrame(std::uint32_t newest_frame) const
{
    const auto slots = static_cast<std::uint32_t>(layout_.in_slots);
    return newest_frame + 1 >= slots ? newest_frame + 1 - slots : 0;
}

bool
IncidentalController::isStarted(std::uint32_t frame) const
{
    return started_.count(frame) > 0;
}

void
IncidentalController::slideWindow(std::uint32_t newest_frame)
{
    const std::uint32_t new_start = oldestLiveFrame(newest_frame);
    for (std::uint32_t f = window_start_; f < new_start; ++f) {
        if (!isStarted(f))
            ++stats_.frames_abandoned;
        started_.erase(f);
    }
    if (new_start > window_start_)
        window_start_ = new_start;
}

void
IncidentalController::onBackup()
{
    pending_.clear();
    // Oldest lanes first so the newest pushed entry is lane 0's state.
    for (int lane = nvp::kMaxLanes - 1; lane >= 0; --lane) {
        const nvp::LaneInfo &info = core_->lane(lane);
        if (!info.active)
            continue;
        ResumeEntry entry;
        entry.valid = true;
        entry.pc = core_->pc();
        entry.frame = info.frame;
        entry.regs = core_->regs().snapshot(lane);
        pending_.push_back(entry);
    }
    ++stats_.backups;
}

void
IncidentalController::decayRegisters(nvp::RegSnapshot &regs, int cutoff)
{
    if (cutoff <= 0)
        return;
    const std::uint16_t ac_mask = core_->regs().acMask();
    const auto bit_mask = static_cast<std::uint16_t>(
        util::lowMask(static_cast<unsigned>(cutoff)));
    for (int r = 1; r < isa::kNumRegs; ++r) {
        if (!((ac_mask >> r) & 1))
            continue;
        const auto noise = static_cast<std::uint16_t>(rng_.next());
        regs[static_cast<size_t>(r)] = static_cast<std::uint16_t>(
            (regs[static_cast<size_t>(r)] & ~bit_mask) |
            (noise & bit_mask));
    }
}

void
IncidentalController::onRestore(double outage_tenth_ms,
                                std::uint32_t newest_frame)
{
    ++stats_.restores;

    // Retention decay of AC memory regions across the outage.
    core_->memory().applyOutageDecay(outage_tenth_ms);

    // Retention decay of the backed-up approximable register bits.
    const int cutoff = nvm::NvmArray::expiredCutoff(config_.backup_policy,
                                                    outage_tenth_ms);
    if (cutoff > 0) {
        ++stats_.reg_decay_events;
        for (ResumeEntry &e : pending_)
            decayRegisters(e.regs, cutoff);
    }

    slideWindow(newest_frame);
    buffer_.dropStale(oldestLiveFrame(newest_frame));
    recompute_.dropStale(oldestLiveFrame(newest_frame));

    if (!config_.roll_forward || pending_.empty() ||
        !core_->hasResumePoint()) {
        // Precise-NVP behaviour: resume exactly where execution stopped.
        pending_.clear();
        ++stats_.plain_resumes;
        return;
    }

    const ResumeEntry &newest = pending_.back();
    if (newest_frame <
        newest.frame + std::max<std::uint32_t>(
                           1, config_.roll_forward_min_frames)) {
        // The interrupted frame is still fresh enough: resuming it is
        // both precise and timely.
        pending_.clear();
        ++stats_.plain_resumes;
        return;
    }

    // Roll forward: abandon all in-flight lanes into the resume buffer
    // and restart lane 0 at the resume point; the markrp handler will
    // advance the frame register to the newest capture. When mid-loop
    // adoption is disabled (kernels with loop-carried memory scratch),
    // abandoned frames are instead un-marked as started so that history
    // spawning can restart them from the frame top.
    const nvp::RegSnapshot restored = pending_.back().regs;
    const std::uint32_t oldest_live = oldestLiveFrame(newest_frame);
    for (const ResumeEntry &e : pending_) {
        if (e.frame < oldest_live) {
            // Input slot already recycled: the computation is lost.
            ++stats_.dropped_stale;
            started_.erase(e.frame);
        } else if (config_.simd_adoption) {
            buffer_.push(e);
        } else {
            started_.erase(e.frame);
        }
    }
    pending_.clear();
    core_->deactivateAllLanes();
    core_->regs().load(0, restored);
    core_->setPc(core_->resumePc());
    // The interrupted frame was abandoned, not completed: its eventual
    // completion (if any) comes from SIMD adoption or a history respawn.
    main_frame_valid_ = false;
    ++stats_.roll_forwards;
}

void
IncidentalController::maybeAdopt(double energy_frac,
                                 std::uint32_t newest_frame)
{
    // Adoption itself is not energy-gated: a match point passes exactly
    // once per frame scan, and the lane's precision floor (minbits) is
    // what bounds its energy draw — the bitwidth controller apportions
    // any surplus (paper Sec. 3.1).
    if (!config_.simd_adoption || buffer_.empty())
        return;

    const std::uint16_t pc = core_->pc();
    const std::uint16_t mask = core_->matchMask();
    for (int i = 0; i < ResumeBuffer::capacity(); ++i) {
        ResumeEntry &entry = buffer_.at(i);
        if (!entry.valid || entry.pc != pc)
            continue;
        if (entry.frame < oldestLiveFrame(newest_frame)) {
            buffer_.invalidate(i);
            ++stats_.dropped_stale;
            continue;
        }
        const std::uint16_t match =
            core_->regs().compareSnapshot(0, entry.regs);
        if ((match & mask) != mask)
            continue;

        // Copy out before any buffer mutation: pushing the displaced
        // lane below may reuse this entry's slot.
        const ResumeEntry adopted = entry;
        int lane = core_->freeLane();
        if (lane < 0) {
            // Finishing interrupted work outranks freshly started
            // history / filler lanes: evict one back into the buffer
            // (it re-adopts from this same point on a later pass).
            int victim = -1;
            for (int l = core_->maxLanes() - 1; l >= 1; --l) {
                const auto origin = lane_origin_[static_cast<size_t>(l)];
                if (core_->lane(l).active &&
                    (origin == LaneOrigin::history ||
                     origin == LaneOrigin::recompute)) {
                    victim = l;
                    break;
                }
            }
            if (victim < 0)
                return;
            ResumeEntry displaced;
            displaced.valid = true;
            displaced.pc = pc;
            displaced.frame = core_->lane(victim).frame;
            displaced.regs = core_->regs().snapshot(victim);
            buffer_.invalidate(i);
            core_->deactivateLane(victim);
            buffer_.push(displaced);
            lane = victim;
        } else {
            buffer_.invalidate(i);
        }

        const int bits = config_.force_full_simd
                             ? 8
                             : bits_->incidentalBits(energy_frac);
        core_->activateLane(lane, adopted.regs, bits, adopted.frame);
        lane_min_bits_[static_cast<size_t>(lane)] = 1;
        lane_origin_[static_cast<size_t>(lane)] = LaneOrigin::adopted;
        ++stats_.adoptions;
        return; // one adoption per instruction
    }
}

void
IncidentalController::updateLaneBits(double energy_frac)
{
    core_->setMainBits(
        config_.force_full_simd
            ? 8
            : std::max(bits_->mainBits(energy_frac), main_min_bits_));
    for (int lane = 1; lane < nvp::kMaxLanes; ++lane) {
        if (!core_->lane(lane).active)
            continue;
        int bits = config_.force_full_simd
                       ? 8
                       : bits_->incidentalBits(energy_frac);
        bits = std::max(bits, lane_min_bits_[static_cast<size_t>(lane)]);
        core_->setLaneBits(lane, bits);
    }
}

void
IncidentalController::spawnLane(std::uint16_t frame, int bits,
                                int min_bits, bool first_start,
                                std::uint8_t origin)
{
    const int lane = core_->freeLane();
    if (lane < 0)
        util::panic("spawnLane without a free lane");
    nvp::RegSnapshot regs = core_->regs().snapshot(0);
    regs[static_cast<size_t>(core_->frameReg())] = frame;
    core_->activateLane(lane, regs, std::max(bits, min_bits), frame);
    lane_min_bits_[static_cast<size_t>(lane)] = min_bits;
    lane_origin_[static_cast<size_t>(lane)] =
        static_cast<LaneOrigin>(origin);
    if (first_start) {
        core_->memory().resetVersionedRange(layout_.outSlotAddr(frame),
                                            layout_.out_bytes);
        started_.insert(frame);
        ++stats_.frames_started;
    }
}

void
IncidentalController::spawnLanes(std::uint32_t newest_frame,
                                 double energy_frac)
{
    const bool surplus = energy_frac >= config_.spawn_energy_frac;
    if (!config_.force_full_simd && !surplus)
        return;

    // 1. Explicit recompute requests ("interesting" data).
    while (core_->freeLane() >= 0 && !recompute_.empty()) {
        const std::uint32_t oldest = oldestLiveFrame(newest_frame);
        recompute_.dropStale(oldest);
        if (recompute_.empty())
            break;
        const RecomputeRequest req = recompute_.takePass();
        const int dyn = config_.force_full_simd
                            ? 8
                            : bits_->incidentalBits(energy_frac);
        spawnLane(req.frame, dyn, req.min_bits, false,
                  static_cast<std::uint8_t>(LaneOrigin::recompute));
        ++stats_.recompute_spawns;
    }

    // 2. Unprocessed buffered history, newest first. Keep one lane slot
    // free per live resume-buffer entry: interrupted computations adopt
    // mid-pass and finishing them outranks starting fresh history.
    if (config_.history_spawn || config_.force_full_simd) {
        const std::uint32_t oldest = oldestLiveFrame(newest_frame);
        for (std::uint32_t f = newest_frame + 1; f-- > oldest;) {
            if (core_->freeLane() < 0)
                break;
            if (isStarted(f) || f == main_frame_)
                continue;
            // Skip entries still adoptable from the resume buffer.
            bool buffered = false;
            for (int i = 0; i < ResumeBuffer::capacity(); ++i) {
                if (buffer_.at(i).valid && buffer_.at(i).frame == f)
                    buffered = true;
            }
            if (buffered)
                continue;
            const int dyn = config_.force_full_simd
                                ? 8
                                : bits_->incidentalBits(energy_frac);
            spawnLane(static_cast<std::uint16_t>(f), dyn, 1, true,
                      static_cast<std::uint8_t>(LaneOrigin::history));
            ++stats_.history_spawns;
        }
    }

    // 3. Full-SIMD fill: keep all lanes busy at full precision.
    if (config_.force_full_simd) {
        while (core_->freeLane() >= 0) {
            spawnLane(static_cast<std::uint16_t>(main_frame_), 8, 8,
                      false,
                      static_cast<std::uint8_t>(LaneOrigin::history));
            ++stats_.recompute_spawns;
        }
    }
}

IncidentalController::MarkOutcome
IncidentalController::handleMarkResume(std::uint16_t frame_value,
                                       std::uint32_t newest_frame,
                                       double energy_frac)
{
    slideWindow(newest_frame);

    // Retire incidental lanes: their frames are complete. (This runs
    // before any wait decision so completions are never deferred by a
    // starved sensor; re-executions of the markrp while waiting find
    // main_frame_valid_ already cleared and no active lanes.)
    for (int lane = 1; lane < nvp::kMaxLanes; ++lane) {
        const nvp::LaneInfo &info = core_->lane(lane);
        if (!info.active)
            continue;
        emitCompletion({info.frame, lane, info.bits});
        ++stats_.frames_completed;
        ++stats_.retirements;
        if (config_.auto_recompute_times > 0 && info.bits < 8) {
            recompute_.request(info.frame, config_.recompute_min_bits,
                               config_.auto_recompute_times);
        }
        core_->deactivateLane(lane);
    }

    // Lane 0 finished its previous frame. Approximate completions are
    // recompute candidates just like incidental-lane ones.
    if (main_frame_valid_) {
        emitCompletion({main_frame_, 0, core_->mainBits()});
        ++stats_.frames_completed;
        if (config_.auto_recompute_times > 0 && core_->mainBits() < 8 &&
            main_min_bits_ <= 1) { // not itself a recompute pass
            recompute_.request(static_cast<std::uint16_t>(main_frame_),
                               config_.recompute_min_bits,
                               config_.auto_recompute_times);
        }
        main_frame_valid_ = false;
    }

    // Select the next frame: newest-first when configured. If it has not
    // been captured yet, either spend the idle time on a queued
    // recompute pass (Sec. 8.5: recomputation must not affect the
    // current data processing loop — here it fills sensor-wait slack),
    // or report a wait; the simulator re-executes the markrp once the
    // frame arrives.
    std::uint32_t frame = frame_value;
    if (config_.process_newest_first && newest_frame > frame)
        frame = newest_frame;
    bool recompute_pass = false;
    int recompute_floor = 1;
    if (frame > newest_frame) {
        recompute_.dropStale(oldestLiveFrame(newest_frame));
        if (recompute_.empty() ||
            energy_frac < config_.spawn_energy_frac)
            return {frame, true};
        const RecomputeRequest req = recompute_.takePass();
        frame = req.frame;
        recompute_floor = req.min_bits;
        recompute_pass = true;
        ++stats_.recompute_spawns;
    }

    MarkOutcome outcome;
    outcome.frame = frame;
    outcome.wait_for_frame = false;

    main_min_bits_ = recompute_pass ? recompute_floor : 1;
    core_->regs().write(0, core_->frameReg(),
                        static_cast<std::uint16_t>(frame));
    core_->setMainFrame(static_cast<std::uint16_t>(frame));
    main_frame_ = frame;
    main_frame_valid_ = true;

    if (!isStarted(frame)) {
        core_->memory().resetVersionedRange(layout_.outSlotAddr(frame),
                                            layout_.out_bytes);
        started_.insert(frame);
        ++stats_.frames_started;
    }

    spawnLanes(newest_frame, energy_frac);
    return outcome;
}

void
IncidentalController::requestRecompute(std::uint16_t frame, int min_bits,
                                       int times)
{
    recompute_.request(frame, min_bits, times);
}

void
IncidentalController::emitCompletion(const FrameCompletion &completion)
{
    completions_.push_back(completion);
    if (completion_callback_)
        completion_callback_(completion);
}

std::vector<FrameCompletion>
IncidentalController::takeCompletions()
{
    std::vector<FrameCompletion> out;
    out.swap(completions_);
    return out;
}

} // namespace inc::core
