/**
 * @file
 * Recompute-and-combine work queue (paper Secs. 3.1, 8.5).
 *
 * When low-quality incidental output turns out to be "interesting", the
 * programmer (or an automatic policy) requests recomputation: the frame
 * is re-run through the incidental SIMD path at a guaranteed minimum
 * bitwidth and its output is merged into the versioned memory, keeping
 * the higher-precision sub-components. The queue tracks how many passes
 * remain per frame.
 */

#ifndef INC_CORE_RECOMPUTE_H
#define INC_CORE_RECOMPUTE_H

#include <cstdint>
#include <deque>

#include "obs/obs.h"

namespace inc::core
{

/** One outstanding recompute request. */
struct RecomputeRequest
{
    std::uint16_t frame = 0;
    int min_bits = 4;        ///< precision floor for the passes
    int passes_left = 1;
};

/** FIFO of recompute work. */
class RecomputeQueue
{
  public:
    /** Queue @p passes recompute passes of @p frame at >= @p min_bits.
     *  Requests for an already-queued frame update it in place. */
    void request(std::uint16_t frame, int min_bits, int passes);

    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }

    /**
     * Take one pass of work: returns the front request and decrements
     * its remaining passes (popping it when exhausted). Must not be
     * called on an empty queue.
     */
    RecomputeRequest takePass();

    /** Peek without consuming. */
    const RecomputeRequest &front() const;

    /** Drop requests whose frame is older than @p oldest_live_frame. */
    int dropStale(std::uint32_t oldest_live_frame);

    void clear() { queue_.clear(); }

    /** Attach (or detach with nullptr) observability counters. */
    void setObsCounters(obs::QueueCounters *counters)
    {
        obs_ = counters;
    }

  private:
    std::deque<RecomputeRequest> queue_;
    obs::QueueCounters *obs_ = nullptr;
};

} // namespace inc::core

#endif // INC_CORE_RECOMPUTE_H
