#include "core/resume_buffer.h"

#include "util/logging.h"

namespace inc::core
{

void
ResumeBuffer::push(const ResumeEntry &entry)
{
    // Find an invalid slot, else evict the oldest (lowest sequence).
    int slot = -1;
    for (int i = 0; i < kCapacity; ++i) {
        if (!entries_[static_cast<size_t>(i)].valid) {
            slot = i;
            break;
        }
    }
    if (slot < 0) {
        std::uint64_t oldest = seq_[0];
        slot = 0;
        for (int i = 1; i < kCapacity; ++i) {
            if (seq_[static_cast<size_t>(i)] < oldest) {
                oldest = seq_[static_cast<size_t>(i)];
                slot = i;
            }
        }
    }
    entries_[static_cast<size_t>(slot)] = entry;
    entries_[static_cast<size_t>(slot)].valid = true;
    seq_[static_cast<size_t>(slot)] = next_seq_++;
}

int
ResumeBuffer::count() const
{
    int n = 0;
    for (const auto &e : entries_) {
        if (e.valid)
            ++n;
    }
    return n;
}

ResumeEntry &
ResumeBuffer::at(int index)
{
    if (index < 0 || index >= kCapacity)
        util::panic("ResumeBuffer index out of range: %d", index);
    return entries_[static_cast<size_t>(index)];
}

const ResumeEntry &
ResumeBuffer::at(int index) const
{
    if (index < 0 || index >= kCapacity)
        util::panic("ResumeBuffer index out of range: %d", index);
    return entries_[static_cast<size_t>(index)];
}

void
ResumeBuffer::invalidate(int index)
{
    at(index).valid = false;
}

void
ResumeBuffer::clear()
{
    for (auto &e : entries_)
        e.valid = false;
}

int
ResumeBuffer::newestIndex() const
{
    int best = -1;
    std::uint64_t best_seq = 0;
    for (int i = 0; i < kCapacity; ++i) {
        if (entries_[static_cast<size_t>(i)].valid &&
            seq_[static_cast<size_t>(i)] >= best_seq) {
            best_seq = seq_[static_cast<size_t>(i)];
            best = i;
        }
    }
    return best;
}

int
ResumeBuffer::dropStale(std::uint32_t oldest_live_frame)
{
    int dropped = 0;
    for (auto &e : entries_) {
        if (e.valid && e.frame < oldest_live_frame) {
            e.valid = false;
            ++dropped;
        }
    }
    return dropped;
}

} // namespace inc::core
