/**
 * @file
 * The controller's circular nonvolatile resume-point buffer (paper
 * Sec. 4): the last N (four) interrupted computations, each recorded as
 * the PC where it stopped, the frame it was processing, and its register
 * snapshot (held in the multi-version nonvolatile register file; modeled
 * here as part of the entry). When the current PC matches an entry's PC
 * and the compiler-masked registers agree, the entry can be adopted as
 * an incidental SIMD lane; matched entries are cleared.
 */

#ifndef INC_CORE_RESUME_BUFFER_H
#define INC_CORE_RESUME_BUFFER_H

#include <array>
#include <cstdint>

#include "nvp/register_file.h"

namespace inc::core
{

/** One interrupted computation. */
struct ResumeEntry
{
    bool valid = false;
    std::uint16_t pc = 0;      ///< PC at interruption
    std::uint16_t frame = 0;   ///< frame being processed
    nvp::RegSnapshot regs{};   ///< register state at interruption
};

/** Fixed-capacity FIFO of resume entries. */
class ResumeBuffer
{
  public:
    static constexpr int kCapacity = 4;

    /** Insert an entry, evicting the oldest when full. */
    void push(const ResumeEntry &entry);

    /** Number of valid entries. */
    int count() const;
    bool empty() const { return count() == 0; }

    /** Entry access (slot order is storage order, not age order). */
    ResumeEntry &at(int index);
    const ResumeEntry &at(int index) const;
    static constexpr int capacity() { return kCapacity; }

    /** Invalidate one slot. */
    void invalidate(int index);

    /** Invalidate everything. */
    void clear();

    /**
     * Index of the most recently pushed valid entry, or -1. Used at
     * restore time: the newest entry is the interrupted lane-0 state.
     */
    int newestIndex() const;

    /** Drop entries whose frame is older than @p oldest_live_frame. */
    int dropStale(std::uint32_t oldest_live_frame);

  private:
    std::array<ResumeEntry, kCapacity> entries_;
    std::array<std::uint64_t, kCapacity> seq_{};
    std::uint64_t next_seq_ = 1;
};

} // namespace inc::core

#endif // INC_CORE_RESUME_BUFFER_H
