#include "energy/energy_model.h"

#include "util/logging.h"

namespace inc::energy
{

EnergyModel::EnergyModel(EnergyParams params, nvm::SttModel stt)
    : params_(params), table_(stt)
{
    if (params_.cycle_energy_nj <= 0 || params_.base_fraction <= 0 ||
        params_.base_fraction >= 1) {
        util::fatal("EnergyParams: cycle energy and base fraction invalid");
    }
    base_nj_ = params_.cycle_energy_nj * params_.base_fraction;
    datapath_nj_ = params_.cycle_energy_nj * (1.0 - params_.base_fraction);
}

double
EnergyModel::instructionEnergyNj(isa::Op op, int main_bits,
                                 int lane_bits_sum,
                                 nvm::RetentionPolicy store_policy) const
{
    if (main_bits < 1 || main_bits > 8)
        util::panic("instructionEnergyNj: main_bits out of range %d",
                    main_bits);

    const isa::OpClass cls = isa::opClass(op);
    double dp_factor = 1.0;
    if (cls == isa::OpClass::mul)
        dp_factor = params_.mul_factor;
    else if (cls == isa::OpClass::div)
        dp_factor = params_.div_factor;

    // Per-cycle energy: shared base + width-scaled datapath per lane.
    const double width_scale =
        (static_cast<double>(main_bits) +
         params_.lane_share * static_cast<double>(lane_bits_sum)) / 8.0;
    const double per_cycle = base_nj_ + datapath_nj_ * dp_factor *
                                            width_scale;
    double energy = per_cycle * isa::opCycles(op);

    // NVM access adders. Store energy is discounted by the retention
    // policy's write-energy saving (approximate backup writes cost less).
    if (cls == isa::OpClass::load) {
        energy += params_.load_extra_nj;
    } else if (cls == isa::OpClass::store) {
        const double saving = table_.wordSaving(store_policy);
        energy += params_.store_extra_nj * (1.0 - saving);
    }
    return energy;
}

double
EnergyModel::instructionBaseEnergyNj(isa::Op op) const
{
    return base_nj_ * isa::opCycles(op);
}

double
EnergyModel::idleCycleEnergyNj() const
{
    // Clock-gated core: base only, halved.
    return 0.5 * base_nj_;
}

double
EnergyModel::backupEnergyNj(nvm::RetentionPolicy policy, int versions) const
{
    if (versions < 1 || versions > 4)
        util::panic("backupEnergyNj: versions out of range %d", versions);
    const double fj_to_nj = 1e-6 * params_.backup_peripheral_factor;
    const double full_bit_fj =
        table_.bitEnergyFj(nvm::RetentionPolicy::full, 8);
    const double control_fj =
        static_cast<double>(params_.control_state_bits) * full_bit_fj;
    // Data words: data_bits_per_version / 8 words, each written with the
    // shaped per-bit energies.
    const double words_per_version =
        static_cast<double>(params_.data_bits_per_version) / 8.0;
    const double data_fj = static_cast<double>(versions) *
                           words_per_version *
                           table_.wordEnergyFj(policy);
    return (control_fj + data_fj) * fj_to_nj;
}

double
EnergyModel::restoreEnergyNj(int versions) const
{
    return params_.restore_fraction *
           backupEnergyNj(nvm::RetentionPolicy::full, versions);
}

double
EnergyModel::assembleEnergyNj(int bytes) const
{
    // Two cycles per byte through the merge state machine.
    return static_cast<double>(bytes) * 2.0 *
           (base_nj_ + datapath_nj_ * 0.5);
}

} // namespace inc::energy
