#include "energy/capacitor.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace inc::energy
{

Capacitor::Capacitor(CapacitorParams params)
    : params_(params),
      energy_nj_(params.capacity_nj * params.initial_frac)
{
    if (params_.capacity_nj <= 0)
        util::fatal("Capacitor capacity must be positive");
    if (params_.efficiency <= 0 || params_.efficiency > 1)
        util::fatal("Capacitor efficiency must be in (0,1]");
    if (params_.initial_frac < 0 || params_.initial_frac > 1)
        util::fatal("Capacitor initial fraction must be in [0,1]");
}

double
Capacitor::fraction() const
{
    return energy_nj_ / params_.capacity_nj;
}

double
Capacitor::voltage() const
{
    return params_.v_full * std::sqrt(fraction());
}

double
Capacitor::step(double income_uw, double dt_ms)
{
    // uW * ms = nJ.
    double in_nj = 0.0;
    if (income_uw >= params_.min_charge_uw)
        in_nj = income_uw * dt_ms * params_.efficiency;

    const double leak_nj = params_.leak_nj_per_ms * dt_ms +
                           params_.leak_frac_per_ms * dt_ms * energy_nj_;

    double e = energy_nj_ + in_nj - leak_nj;
    double banked = in_nj;
    if (e > params_.capacity_nj) {
        total_loss_nj_ += e - params_.capacity_nj;
        banked -= e - params_.capacity_nj;
        e = params_.capacity_nj;
    }
    if (e < 0.0) {
        e = 0.0;
    }
    total_loss_nj_ += std::min(leak_nj, energy_nj_ + in_nj);
    total_income_nj_ += in_nj;
    energy_nj_ = e;
    return banked;
}

bool
Capacitor::draw(double amount_nj)
{
    if (amount_nj < 0)
        util::panic("Capacitor::draw negative amount");
    if (energy_nj_ < amount_nj)
        return false;
    energy_nj_ -= amount_nj;
    return true;
}

double
Capacitor::drain(double amount_nj)
{
    const double drained = std::min(amount_nj, energy_nj_);
    energy_nj_ -= drained;
    return drained;
}

void
Capacitor::setEnergyNj(double energy_nj)
{
    energy_nj_ = std::clamp(energy_nj, 0.0, params_.capacity_nj);
}

} // namespace inc::energy
