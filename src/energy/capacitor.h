/**
 * @file
 * Capacitor and harvesting front-end model (paper Sec. 2.2, refs [24,30]).
 *
 * The NVP execution paradigm uses a small on-chip capacitor — just enough
 * to guarantee the backup operation and stabilize cycle-level voltages —
 * instead of the large energy-storage device of wait-compute MCUs. The
 * model tracks stored energy directly (E = C*V^2/2 conversions are
 * provided for voltage-threshold reasoning), applies the AC-DC front-end
 * conversion efficiency to income, and drains leakage continuously.
 *
 * The same class models the wait-compute baseline's large storage device,
 * whose higher capacitance brings proportionally higher leakage and a
 * minimum charging current below which income is wasted (paper cites the
 * GZ115's 20 uA floor).
 */

#ifndef INC_ENERGY_CAPACITOR_H
#define INC_ENERGY_CAPACITOR_H

namespace inc::energy
{

/** Capacitor + front-end parameters. */
struct CapacitorParams
{
    double capacity_nj = 2000.0;   ///< usable energy at full charge
    double initial_frac = 0.0;     ///< starting state of charge
    double efficiency = 0.70;      ///< AC-DC + regulation efficiency
    double leak_nj_per_ms = 0.5;   ///< fixed leakage
    double leak_frac_per_ms = 0.0; ///< proportional leakage (big caps)
    /** AC-DC rectifier dropout: income below this is wasted. Idle-rest
     *  trickle (a few uW) falls under it, so long rests are genuine
     *  outages rather than slow-charge periods. */
    double min_charge_uw = 8.0;
    double v_full = 2.5;           ///< volts at full charge
};

/** Energy-domain capacitor model. */
class Capacitor
{
  public:
    explicit Capacitor(CapacitorParams params = {});

    const CapacitorParams &params() const { return params_; }

    /** Stored energy, nJ. */
    double energyNj() const { return energy_nj_; }

    /** Stored-energy fraction of capacity, [0,1]. */
    double fraction() const;

    /** Terminal voltage (E = C V^2 / 2 scaling from v_full). */
    double voltage() const;

    /**
     * Advance @p dt_ms with harvested input power @p income_uw; applies
     * efficiency, the minimum-charge floor, and leakage. Returns the
     * energy actually banked (after losses), nJ.
     */
    double step(double income_uw, double dt_ms);

    /**
     * Draw @p amount_nj for computation or backup. Returns false (and
     * leaves the charge unchanged) if insufficient.
     */
    bool draw(double amount_nj);

    /**
     * Unconditional drain (brown-out modeling); clamps at zero. Returns
     * the energy actually removed, which is less than @p amount_nj when
     * the charge ran out — callers tracking a conservation ledger
     * account the shortfall as unfunded demand.
     */
    double drain(double amount_nj);

    /** Set the state of charge directly (tests / scenario setup). */
    void setEnergyNj(double energy_nj);

    /** Cumulative income energy banked so far, nJ. */
    double totalIncomeNj() const { return total_income_nj_; }

    /** Cumulative energy lost to leakage and charge clamping, nJ. */
    double totalLossNj() const { return total_loss_nj_; }

  private:
    CapacitorParams params_;
    double energy_nj_;
    double total_income_nj_ = 0.0;
    double total_loss_nj_ = 0.0;
};

} // namespace inc::energy

#endif // INC_ENERGY_CAPACITOR_H
