/**
 * @file
 * Per-instruction, backup and restore energy accounting.
 *
 * Calibration anchors (paper Sec. 2.1-2.2, 3.2):
 *  - the NVP runs at 1 MHz and consumes 0.209 mW at full precision, i.e.
 *    0.209 nJ per cycle on average;
 *  - the per-cycle energy splits into a bit-independent base (fetch,
 *    decode, control, clock) and a datapath part that scales with the
 *    active bitwidth; extra SIMD lanes add datapath energy but share the
 *    base (the paper's "SIMD benefits of reduced instruction fetch
 *    energy");
 *  - a full backup at 1-day retention costs ~200 nJ, so that with the
 *    watch traces backups consume 20-33 % of income energy (Sec. 3.2).
 *    Device-level STT write energies (fJ/bit) are scaled to system level
 *    by a peripheral factor covering bitline charging, drivers and
 *    charge pumps.
 */

#ifndef INC_ENERGY_ENERGY_MODEL_H
#define INC_ENERGY_ENERGY_MODEL_H

#include "isa/isa.h"
#include "nvm/retention_policy.h"

namespace inc::energy
{

/** Measured system-level constants from the paper's prototypes. */
struct SystemConstants
{
    double nvp_clock_hz = 1e6;
    double nvp_power_mw = 0.209;     ///< full-precision average
    double rf_power_mw = 89.1;       ///< transceiver @ 250 kbps
    double rf_rate_kbps = 250.0;
};

/** Parameters of the energy model. */
struct EnergyParams
{
    /** Average full-precision energy per cycle, nJ (0.209 mW @ 1 MHz). */
    double cycle_energy_nj = 0.209;

    /** Fraction of cycle energy that is bit-independent base. */
    double base_fraction = 0.4;

    /**
     * Datapath share an extra SIMD lane adds (relative to lane 0).
     * Incidental lanes reuse the fetch/decode/control path entirely and
     * add only narrow packed-datapath switching (paper Sec. 8.6: "SIMD
     * benefits of reduced instruction fetch energy").
     */
    double lane_share = 0.6;

    /** Extra datapath weight for multiplier / divider cycles. */
    double mul_factor = 1.25;
    double div_factor = 1.15;

    /** Additional NVM access energy per load / store, nJ. */
    double load_extra_nj = 0.04;
    double store_extra_nj = 0.08;

    /**
     * Device-to-system scale factor for backup NVM writes (peripheral
     * overheads); calibrated so a full-retention backup of the baseline
     * state is ~200 nJ.
     */
    double backup_peripheral_factor = 2000.0;

    /** Bits of non-approximable control state in a backup (pipeline
     *  flip-flops, PC, resume-point buffer). */
    int control_state_bits = 256;

    /** Approximable data bits per register version (16 regs x 8 bits). */
    int data_bits_per_version = 128;

    /** Restore energy as a fraction of the full backup write energy. */
    double restore_fraction = 0.3;
};

/** Energy accounting for the NVP core. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyParams params = {},
                         nvm::SttModel stt = nvm::SttModel());

    const EnergyParams &params() const { return params_; }

    /**
     * Energy of one instruction in nJ.
     *
     * @param op     the instruction's opcode
     * @param main_bits  precision of lane 0 (1..8)
     * @param lane_bits_sum  sum of active incidental lanes' bitwidths
     *                       (0 when no SIMD lanes are active)
     * @param store_policy   retention policy of the stored-to region
     *                       (stores only; discounts approximate writes)
     */
    double instructionEnergyNj(
        isa::Op op, int main_bits, int lane_bits_sum = 0,
        nvm::RetentionPolicy store_policy =
            nvm::RetentionPolicy::full) const;

    /**
     * Bit-independent fetch/decode/control component of one
     * instruction's energy, nJ — the `base` term of
     * instructionEnergyNj. Lets the observability ledger split
     * consumption into fetch vs datapath without re-deriving the
     * model's internals.
     */
    double instructionBaseEnergyNj(isa::Op op) const;

    /** Idle (clock-gated but on) energy per cycle, nJ. */
    double idleCycleEnergyNj() const;

    /**
     * Backup energy in nJ with @p versions register versions under
     * @p policy for the approximable data bits.
     */
    double backupEnergyNj(nvm::RetentionPolicy policy, int versions) const;

    /** Restore energy in nJ (always full-fidelity reads). */
    double restoreEnergyNj(int versions) const;

    /** Energy of merging @p bytes through the versioned memory FSM. */
    double assembleEnergyNj(int bytes) const;

  private:
    EnergyParams params_;
    nvm::RetentionEnergyTable table_;
    double base_nj_;
    double datapath_nj_;
};

} // namespace inc::energy

#endif // INC_ENERGY_ENERGY_MODEL_H
