/**
 * @file
 * Fleet worker process body (`nvpsim work`).
 *
 * A worker connects to the coordinator's Unix socket, announces the
 * campaign fingerprint it derived independently from the campaign
 * file, then executes SHARD assignments until told to EXIT. Each shard
 * runs through a SweepRunner restricted to the shard's job range, with
 * a per-shard arena journal (<fleet-dir>/shard-<id>) bound to the
 * campaign fingerprint: a shard reassigned after a crash warm-restarts
 * from whatever the dead incarnation committed instead of recomputing.
 * Finished jobs stream back as RESULT frames the moment they are
 * journaled (the delivery hook), so a mid-shard crash loses nothing
 * the coordinator already folded, and every frame doubles as a
 * heartbeat.
 *
 * Live telemetry plane (DESIGN.md §16): alongside each RESULT the
 * worker emits PROGRESS frames on a jobs-based cadence
 * (progress_every) carrying the shard position, the last job label,
 * a cumulative canonical-JSON metrics snapshot of the shard so far,
 * and a batch of completed trace spans (shard/job lifecycle, per-job
 * backup/restore counts) stamped with the worker's real pid on the
 * shared wall clock. The plane is strictly one-way and lossy-safe:
 * nothing in the result path reads it back.
 */

#ifndef INC_FLEET_WORKER_H
#define INC_FLEET_WORKER_H

#include <cstddef>
#include <string>

namespace inc::fleet
{

struct WorkerOptions
{
    std::string socket_path;
    std::string campaign_path;
    std::string fleet_dir;
    int jobs = 1;                ///< threads per worker process
    bool collect_metrics = false;
    /** Emit a PROGRESS frame every N delivered jobs (0 = never).
     *  A final frame always precedes DONE when enabled. */
    std::size_t progress_every = 1;
    /** Test hook: SIGKILL self after this many jobs have been
     *  journaled (0 = disabled) — the fleet kill/reassign matrix. */
    std::size_t kill_after = 0;
};

/** Run the worker loop; returns the process exit code. Fatal (with a
 *  clear message) when the socket cannot be connected or the campaign
 *  file does not load. */
int runWorker(const WorkerOptions &options);

} // namespace inc::fleet

#endif // INC_FLEET_WORKER_H
