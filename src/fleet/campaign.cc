#include "fleet/campaign.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "kernels/kernel.h"
#include "nvm/retention_policy.h"
#include "obs/json.h"
#include "trace/trace_generator.h"
#include "util/logging.h"

namespace inc::fleet
{

namespace
{

/** Split a comma-separated list ("a,b,c"); empty string -> empty. */
std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(list);
    while (std::getline(in, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

bool
member(const obs::JsonValue &doc, const std::string &key,
       obs::JsonValue::Kind kind, const obs::JsonValue **out,
       std::string *error)
{
    const obs::JsonValue *v = doc.find(key);
    if (!v) {
        *out = nullptr;
        return true;
    }
    if (v->kind() != kind) {
        *error = "campaign key '" + key + "' has the wrong type";
        return false;
    }
    *out = v;
    return true;
}

} // namespace

bool
campaignFromJson(const std::string &text, CampaignSpec *out,
                 std::string *error)
{
    std::string err;
    obs::JsonValue doc;
    if (!obs::parseJson(text, &doc, &err)) {
        if (error)
            *error = "campaign JSON: " + err;
        return false;
    }
    if (!doc.isObject()) {
        if (error)
            *error = "campaign JSON must be one object";
        return false;
    }

    static const char *const kKnown[] = {
        "kernels", "profiles", "seconds",      "seed",
        "mode",    "bits",     "minbits",      "policy",
        "baseline", "engine",  "strategy",     "income_scale",
        "frame_factor"};
    for (const auto &[key, value] : doc.members()) {
        (void)value;
        bool known = false;
        for (const char *k : kKnown)
            known = known || key == k;
        if (!known) {
            if (error)
                *error = "unknown campaign key '" + key + "'";
            return false;
        }
    }

    CampaignSpec spec;
    std::string merr;
    const obs::JsonValue *v = nullptr;
    using Kind = obs::JsonValue::Kind;
    if (!member(doc, "kernels", Kind::string, &v, &merr))
        goto fail;
    if (v)
        spec.kernels = v->string();
    if (!member(doc, "profiles", Kind::string, &v, &merr))
        goto fail;
    if (v)
        spec.profiles = v->string();
    if (!member(doc, "seconds", Kind::number, &v, &merr))
        goto fail;
    if (v)
        spec.seconds = v->number();
    if (!member(doc, "seed", Kind::number, &v, &merr))
        goto fail;
    if (v)
        spec.seed = static_cast<std::uint64_t>(v->number());
    if (!member(doc, "mode", Kind::string, &v, &merr))
        goto fail;
    if (v)
        spec.mode = v->string();
    if (!member(doc, "bits", Kind::number, &v, &merr))
        goto fail;
    if (v)
        spec.bits = static_cast<int>(v->number());
    if (!member(doc, "minbits", Kind::number, &v, &merr))
        goto fail;
    if (v)
        spec.minbits = static_cast<int>(v->number());
    if (!member(doc, "policy", Kind::string, &v, &merr))
        goto fail;
    if (v)
        spec.policy = v->string();
    if (!member(doc, "baseline", Kind::boolean, &v, &merr))
        goto fail;
    if (v)
        spec.baseline = v->boolean();
    if (!member(doc, "engine", Kind::string, &v, &merr))
        goto fail;
    if (v)
        spec.engine = v->string();
    if (!member(doc, "strategy", Kind::string, &v, &merr))
        goto fail;
    if (v)
        spec.strategy = v->string();
    if (!member(doc, "income_scale", Kind::number, &v, &merr))
        goto fail;
    if (v)
        spec.income_scale = v->number();
    if (!member(doc, "frame_factor", Kind::number, &v, &merr))
        goto fail;
    if (v)
        spec.frame_factor = v->number();

    *out = spec;
    return true;

fail:
    if (error)
        *error = merr;
    return false;
}

bool
loadCampaignFile(const std::string &path, CampaignSpec *out,
                 std::string *error)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        if (error)
            *error = "cannot open campaign file '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string err;
    if (!campaignFromJson(ss.str(), out, &err)) {
        if (error)
            *error = path + ": " + err;
        return false;
    }
    return true;
}

std::string
campaignToJson(const CampaignSpec &spec)
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("kernels", obs::JsonValue::of(spec.kernels));
    doc.set("profiles", obs::JsonValue::of(spec.profiles));
    doc.set("seconds", obs::JsonValue::of(spec.seconds));
    doc.set("seed", obs::JsonValue::of(
                        static_cast<double>(spec.seed)));
    doc.set("mode", obs::JsonValue::of(spec.mode));
    doc.set("bits", obs::JsonValue::of(static_cast<double>(spec.bits)));
    doc.set("minbits",
            obs::JsonValue::of(static_cast<double>(spec.minbits)));
    doc.set("policy", obs::JsonValue::of(spec.policy));
    doc.set("baseline", obs::JsonValue::of(spec.baseline));
    doc.set("engine", obs::JsonValue::of(spec.engine));
    doc.set("strategy", obs::JsonValue::of(spec.strategy));
    doc.set("income_scale", obs::JsonValue::of(spec.income_scale));
    doc.set("frame_factor", obs::JsonValue::of(spec.frame_factor));
    return doc.dump();
}

sim::SimConfig
campaignConfig(const CampaignSpec &spec)
{
    sim::SimConfig cfg;
    cfg.seed = spec.seed;
    if (spec.mode == "precise") {
        cfg.bits.mode = approx::ApproxMode::precise;
    } else if (spec.mode == "fixed") {
        cfg.bits.mode = approx::ApproxMode::fixed;
        cfg.bits.fixed_bits = spec.bits;
    } else if (spec.mode == "dynamic") {
        cfg.bits.mode = approx::ApproxMode::dynamic;
        cfg.bits.min_bits = spec.minbits;
    } else {
        util::fatal("unknown campaign mode '%s' (precise, fixed, "
                    "dynamic)",
                    spec.mode.c_str());
    }
    cfg.controller.backup_policy = nvm::policyFromName(spec.policy);
    if (spec.baseline) {
        cfg.controller.roll_forward = false;
        cfg.controller.simd_adoption = false;
        cfg.controller.history_spawn = false;
        cfg.controller.process_newest_first = false;
    }
    if (spec.income_scale >= 0.0)
        cfg.income_scale = spec.income_scale;
    if (spec.frame_factor >= 0.0)
        cfg.frame_period_factor = spec.frame_factor;
    if (spec.engine != "default") {
        const auto parsed = nvp::execEngineFromName(spec.engine);
        if (!parsed)
            util::fatal("unknown campaign engine '%s' (%s)",
                        spec.engine.c_str(),
                        nvp::execEngineNames().c_str());
        cfg.exec_engine = *parsed;
    }
    if (!spec.strategy.empty()) {
        const auto parsed = sim::strategyFromName(spec.strategy);
        if (!parsed)
            util::fatal("unknown campaign strategy '%s' (%s)",
                        spec.strategy.c_str(),
                        sim::strategyNames().c_str());
        cfg.strategy = *parsed;
    }
    return cfg;
}

runner::SweepSpec
buildSweepSpec(const CampaignSpec &spec, bool collect_metrics)
{
    runner::SweepSpec sweep;
    sweep.kernels = spec.kernels == "all" ? kernels::kernelNames()
                                          : splitList(spec.kernels);
    if (sweep.kernels.empty())
        util::fatal("campaign lists no kernels");
    // Validate up front: makeKernel() fatals on unknown names, which
    // must happen on the caller's thread, not inside a worker.
    for (const auto &name : sweep.kernels)
        kernels::makeKernel(name);

    std::vector<int> profiles;
    if (spec.profiles == "all") {
        profiles = {1, 2, 3, 4, 5};
    } else {
        for (const auto &p : splitList(spec.profiles))
            profiles.push_back(std::atoi(p.c_str()));
    }
    for (const int profile : profiles) {
        trace::TraceGenerator gen(trace::paperProfile(profile),
                                  spec.seed);
        sweep.traces.push_back(gen.generate(
            static_cast<std::size_t>(spec.seconds * 1e4)));
    }

    const sim::SimConfig cfg = campaignConfig(spec);
    sweep.variants = {{spec.mode,
                       [cfg](const std::string &) { return cfg; }}};
    sweep.master_seed = spec.seed;
    sweep.collect_metrics = collect_metrics;
    return sweep;
}

std::string
campaignFingerprintExtra(const CampaignSpec &spec, bool collect_metrics)
{
    // Byte-identical to the string `nvpsim sweep --arena` has derived
    // from its flags since PR 6 — changing it would orphan every
    // existing journal.
    const sim::SimConfig cfg = campaignConfig(spec);
    return util::format(
        "mode=%s bits=%d minbits=%d policy=%s baseline=%d "
        "engine=%s strategy=%s income-scale=%.17g "
        "frame-factor=%.17g metrics=%d",
        spec.mode.c_str(), spec.bits, spec.minbits,
        spec.policy.c_str(), spec.baseline ? 1 : 0,
        spec.engine.c_str(), sim::strategyName(cfg.strategy),
        cfg.income_scale, cfg.frame_period_factor,
        collect_metrics ? 1 : 0);
}

} // namespace inc::fleet
