/**
 * @file
 * Deterministic job-index-order folding of worker results.
 *
 * The coordinator decodes RESULT frames in whatever order the fleet
 * produces them and hands each to a ResultFolder, which slots it by
 * job index. Because aggregation (SweepReport::mergedMetrics(), the
 * report pipeline, CSV emission) walks the slots in index order, the
 * folded campaign is byte-identical to a serial run regardless of
 * worker count, shard plan, or delivery interleaving.
 *
 * Duplicate deliveries are expected — a reassigned shard's journal
 * warm-restart replays results the dead worker already streamed — and
 * must match the first delivery byte-for-byte on the determinism
 * surface (result text + metrics JSON); a mismatched duplicate means
 * nondeterminism and is reported as an error.
 *
 * The fuzzer's fleet_merge mode drives this class directly against an
 * un-sharded oracle (DESIGN.md §8, §15).
 */

#ifndef INC_FLEET_FOLDER_H
#define INC_FLEET_FOLDER_H

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/protocol.h"
#include "runner/sweep.h"

namespace inc::fleet
{

class ResultFolder
{
  public:
    /** @p jobs is the campaign's full expansion (kept by copy). */
    explicit ResultFolder(std::vector<runner::JobSpec> jobs);

    /**
     * Fold one decoded RESULT. False + @p error on an out-of-range
     * index, an unparsable payload, or a duplicate that differs from
     * the first delivery.
     */
    bool fold(const DecodedResult &decoded, std::string *error);

    std::size_t jobCount() const { return jobs_.size(); }
    std::size_t filledCount() const { return filled_count_; }
    bool complete() const { return filled_count_ == jobs_.size(); }

    /** All of [begin, end) folded? (The DONE-message check.) */
    bool rangeComplete(std::size_t begin, std::size_t end) const;

    /** Total payload bytes folded (the fleet.merge.bytes metric). */
    std::uint64_t bytesFolded() const { return bytes_; }

    /**
     * Hand the folded campaign back as a SweepReport (results in
     * job-index order). Panics unless complete().
     */
    runner::SweepReport takeReport(double wall_seconds,
                                   unsigned jobs_used);

  private:
    std::vector<runner::JobSpec> jobs_;
    std::vector<runner::JobResult> slots_;
    std::vector<bool> filled_;
    /** Determinism surface of the first delivery, for duplicate
     *  verification: result_text + '\0' + metrics_json. */
    std::vector<std::string> signatures_;
    std::size_t filled_count_ = 0;
    std::uint64_t bytes_ = 0;
};

} // namespace inc::fleet

#endif // INC_FLEET_FOLDER_H
