/**
 * @file
 * Thin Unix-domain-socket wrappers for the fleet service.
 *
 * Error handling is by return value + message (never fatal): the
 * coordinator turns a failed listen into a hard CLI error, while a
 * worker losing its socket mid-campaign is an expected event the
 * coordinator's reassignment logic absorbs. All writes are EINTR-safe
 * and use MSG_NOSIGNAL, so a peer dying mid-write surfaces as an error
 * return instead of SIGPIPE.
 */

#ifndef INC_FLEET_SOCKET_H
#define INC_FLEET_SOCKET_H

#include <cstddef>
#include <string>

namespace inc::fleet
{

/** sockaddr_un path capacity; longer socket paths are rejected with a
 *  clear error instead of silent truncation. */
std::size_t maxSocketPathBytes();

/**
 * Create, bind and listen on a Unix stream socket at @p path (any
 * stale file there is unlinked first). Returns the listening fd, or
 * -1 with @p error set.
 */
int listenUnix(const std::string &path, std::string *error);

/** Connect to @p path. Returns the fd, or -1 with @p error set. */
int connectUnix(const std::string &path, std::string *error);

/** Write all @p n bytes (EINTR-safe, MSG_NOSIGNAL). False when the
 *  peer is gone. */
bool writeAll(int fd, const void *data, std::size_t n);

/**
 * Read whatever is available into @p buffer (up to @p capacity).
 * Returns bytes read; 0 means the peer closed the connection; -1
 * means a real error (EINTR/EAGAIN are retried/reported as -2, "try
 * again later").
 */
long readSome(int fd, char *buffer, std::size_t capacity);

} // namespace inc::fleet

#endif // INC_FLEET_SOCKET_H
