/**
 * @file
 * Fleet coordinator (`nvpsim serve`): shard a campaign across a fleet
 * of worker processes and fold their results deterministically.
 *
 * The coordinator expands the campaign's SweepSpec once, plans
 * contiguous job shards (runner/shard.h), spawns N `nvpsim work`
 * processes pointed at a Unix socket, and event-loops over their
 * connections: every RESULT frame is folded by job index
 * (fleet/folder.h), every DONE retires a shard, and a worker that
 * crashes (socket EOF — SIGKILL closes it instantly) or goes silent
 * past the heartbeat timeout has its in-flight shard re-queued, with a
 * bounded per-shard retry budget, and a fresh worker respawned. A
 * reassigned shard warm-restarts from its per-shard arena journal, so
 * crashes cost only the jobs that had not yet committed.
 *
 * Determinism argument (DESIGN.md §15): job identity (specs + seed
 * tree) is fixed at expansion time; shard boundaries and delivery
 * order only schedule *when* a job runs, never *what* it computes;
 * folding restores job-index order before any aggregation. Hence the
 * merged metrics, report and CSV bytes are identical to a serial
 * `nvpsim sweep` at any worker count — including after SIGKILLing
 * every worker once (the fleet test tier pins this).
 *
 * Live telemetry plane (DESIGN.md §16): workers additionally stream
 * PROGRESS frames (shard position, cumulative metrics snapshot,
 * completed trace spans); the coordinator folds the latest snapshot
 * per shard into a live view and, when a --status-socket is
 * configured, serves point-in-time STATE snapshots — campaign
 * fingerprint, per-worker health/heartbeat/shard progress, jobs
 * done/total, throughput/ETA, fleet.* counters, live outage
 * percentiles — to every status connection on a throttled cadence
 * plus a final jobs_done == jobs_total frame at completion. With
 * trace_out set, worker span batches and coordinator scheduling
 * events (spawn/accept/assign/reassign/loss) merge into one
 * Chrome-trace timeline with a process-name record per worker. The
 * entire plane is read-only over the result path, so enabling it
 * cannot perturb the byte-identity guarantees above.
 */

#ifndef INC_FLEET_COORDINATOR_H
#define INC_FLEET_COORDINATOR_H

#include <cstddef>
#include <string>

#include "obs/metrics.h"
#include "runner/sweep.h"

namespace inc::fleet
{

struct ServeOptions
{
    std::string campaign_path;
    /** Shard journals, fingerprint marker and (by default) the socket
     *  live here. */
    std::string fleet_dir;
    /** Empty = <fleet_dir>/fleet.sock. */
    std::string socket_path;
    /** Path to the nvpsim binary to exec workers from
     *  (/proc/self/exe, resolved by the CLI). */
    std::string nvpsim_path;
    int workers = 1;
    int worker_jobs = 1;    ///< threads per worker process
    std::size_t shards = 0; ///< 0 = auto (4 per worker)
    int max_shard_retries = 3;
    double heartbeat_timeout_s = 120.0;
    bool collect_metrics = false;
    /** Live status endpoint socket path; empty = no status socket. */
    std::string status_socket;
    /** Merged fleet-wide Chrome-trace output path; empty = no trace. */
    std::string trace_out;
    /** Worker PROGRESS cadence in delivered jobs (0 = disabled). */
    std::size_t progress_every = 1;
    /** Test hook: first-generation workers get --kill-after K, so
     *  every worker dies exactly once (respawns run clean). */
    std::size_t kill_worker_after = 0;
};

struct FleetOutcome
{
    /** The folded campaign, results in job-index order. */
    runner::SweepReport report;
    /** fleet.* scheduling metrics (separate registry; see
     *  obs/schema.h). */
    obs::MetricsRegistry fleet_metrics;
    /** The campaign fingerprint the fleet ran under. */
    std::string fingerprint;
};

/**
 * Serve one campaign to completion. Fatal (clear message) on
 * configuration errors: unloadable campaign, a fleet dir whose
 * fingerprint marker names a different campaign, an unusable socket
 * path, or a shard exceeding its retry budget. Job failures are not
 * fatal — they surface in the report exactly as in a serial sweep.
 */
FleetOutcome serveCampaign(const ServeOptions &options);

} // namespace inc::fleet

#endif // INC_FLEET_COORDINATOR_H
