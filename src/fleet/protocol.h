/**
 * @file
 * The coordinator <-> worker line protocol (DESIGN.md §15).
 *
 * Every message is one ASCII header line ending in '\n', optionally
 * followed by a binary payload whose length the header states — so a
 * reader never scans payload bytes for framing, and the serialized
 * SimResult / metrics JSON travel verbatim:
 *
 *   worker -> coordinator
 *     HELLO <fingerprint> <pid>
 *     RESULT <index> <attempts> <ok> <result_len> <metrics_len>
 *            <error_len> \n <result><metrics><error>
 *     PROGRESS <shard_id> <jobs_done> <jobs_assigned> <label_len>
 *              <metrics_len> <spans_len> \n <label><metrics><spans>
 *     DONE <shard_id>
 *     ERROR <len> \n <message>
 *
 *   coordinator -> worker
 *     SHARD <id> <begin> <end>
 *     EXIT
 *
 *   coordinator -> status client (the --status-socket endpoint)
 *     STATE <len> \n <snapshot_json>
 *
 * PROGRESS frames are the live telemetry plane (DESIGN.md §16): the
 * label is the last job's "kernel x trace" description, the metrics
 * payload is the worker's cumulative canonical-JSON registry snapshot
 * for its current shard (empty when the campaign does not collect
 * metrics), and the spans payload is an obs::SpanBatch JSON array of
 * completed trace events. Losing or reordering them never affects the
 * result plane — RESULT/DONE alone reconstruct the campaign.
 *
 * RESULT payloads carry sim::serializeResult() text (hexfloat,
 * bit-exact round-trip) and the job's canonical metrics JSON (empty
 * when metrics were not collected — the SweepJournal convention), so
 * folding decoded results reproduces the serial sweep byte-for-byte.
 * Any RESULT a worker sends also doubles as its heartbeat.
 *
 * MessageReader is an incremental parser: feed() it raw socket bytes
 * in any fragmentation and next() yields complete messages. It is the
 * single framing implementation used by both endpoints (and by the
 * fleet_merge fuzzer mode, which pushes every shard result through
 * encode -> feed -> decode to pin the round trip).
 */

#ifndef INC_FLEET_PROTOCOL_H
#define INC_FLEET_PROTOCOL_H

#include <cstddef>
#include <string>

#include "runner/shard.h"
#include "runner/sweep.h"

namespace inc::fleet
{

/** One framed message: the header line (no '\n') + raw payload. */
struct Message
{
    std::string line;
    std::string payload;
};

/** Header keyword of @p line ("RESULT", "SHARD", ...). */
std::string messageKind(const std::string &line);

/** Incremental frame parser over a byte stream. */
class MessageReader
{
  public:
    /** Append raw bytes received from the peer. */
    void feed(const char *data, std::size_t n);

    /**
     * Extract the next complete message. Returns false with empty
     * @p error when more bytes are needed, false with @p error set on
     * a malformed header (the connection should be dropped then).
     */
    bool next(Message *out, std::string *error);

  private:
    std::string buffer_;
    std::string line_;
    std::size_t need_ = 0;
    bool have_line_ = false;
};

// --- encoders -------------------------------------------------------

std::string encodeHello(const std::string &fingerprint, long pid);
std::string encodeShard(const runner::ShardRange &shard);
std::string encodeExit();
std::string encodeDone(std::size_t shard_id);
std::string encodeError(const std::string &message);

/** Full RESULT frame (header + payloads) for one finished job. */
std::string encodeResult(const runner::JobResult &result);

/** One live-telemetry update from a worker (DESIGN.md §16). */
struct ProgressUpdate
{
    std::size_t shard_id = 0;
    std::size_t jobs_done = 0;     ///< delivered so far in the shard
    std::size_t jobs_assigned = 0; ///< shard size
    std::string label;        ///< last job's "kernel x trace" text
    std::string metrics_json; ///< cumulative shard snapshot, or empty
    std::string spans_json;   ///< obs::SpanBatch array, or empty
};

/** Full PROGRESS frame (header + payloads). */
std::string encodeProgress(const ProgressUpdate &update);

/** Full STATE frame around a status-snapshot JSON document. */
std::string encodeState(const std::string &snapshot_json);

// --- decoders -------------------------------------------------------

/** A RESULT decoded back to the fields a JobResult needs. */
struct DecodedResult
{
    std::size_t index = 0;
    int attempts = 0;
    bool ok = false;
    std::string result_text;  ///< sim::serializeResult() bytes
    std::string metrics_json; ///< empty when not collected
    std::string error;        ///< failed-job message (ok == false)
};

bool parseHello(const std::string &line, std::string *fingerprint,
                long *pid);
bool parseShard(const std::string &line, runner::ShardRange *out);
bool parseDone(const std::string &line, std::size_t *shard_id);

/** Decode a RESULT message; false + @p error on malformed frames. */
bool decodeResult(const Message &message, DecodedResult *out,
                  std::string *error);

/** Decode a PROGRESS message; false + @p error on malformed frames. */
bool decodeProgress(const Message &message, ProgressUpdate *out,
                    std::string *error);

/** Decode a STATE message into its snapshot JSON. */
bool decodeState(const Message &message, std::string *snapshot_json,
                 std::string *error);

/**
 * Rebuild the JobResult of @p spec from a decoded frame: result text
 * parsed bit-exactly, metrics JSON re-parsed (wall_ms stays 0 — a
 * scheduling artifact). False + @p error when the payload does not
 * parse or @p decoded names a different job index.
 */
bool resultFromDecoded(const DecodedResult &decoded,
                       const runner::JobSpec &spec,
                       runner::JobResult *out, std::string *error);

} // namespace inc::fleet

#endif // INC_FLEET_PROTOCOL_H
