#include "fleet/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include <map>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fleet/campaign.h"
#include "fleet/folder.h"
#include "fleet/protocol.h"
#include "fleet/socket.h"
#include "obs/fleet_trace.h"
#include "obs/json.h"
#include "obs/schema.h"
#include "runner/journal.h"
#include "runner/shard.h"
#include "util/fs.h"
#include "util/logging.h"

namespace inc::fleet
{

namespace
{

using Clock = std::chrono::steady_clock;

/** One accepted socket connection (unclaimed until its HELLO). */
struct Connection
{
    int fd = -1;
    long pid = -1; ///< claimed worker pid, -1 before HELLO
    MessageReader reader;
    Clock::time_point last_heard;
};

/** One spawned worker process (possibly not yet connected). */
struct WorkerProc
{
    long pid = -1;
    int generation = 0;
    Clock::time_point spawned_at;
    int shard = -1; ///< assigned shard id, -1 when idle
    Connection *conn = nullptr;
    bool alive = true;
    bool greeted = false;

    // Live telemetry plane: the latest PROGRESS position. Display
    // state only — nothing on the result path reads these.
    std::size_t shard_done = 0;
    std::size_t shard_assigned = 0;
    std::string last_label;
};

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return std::string();
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/** The whole coordinator state, so helpers share it without globals. */
class Coordinator
{
  public:
    explicit Coordinator(const ServeOptions &options);
    FleetOutcome run();

  private:
    void spawnWorker(bool first_generation);
    void dispatchShards();
    void assignShard(WorkerProc &worker, std::size_t shard_id);
    void handleMessage(Connection &conn, const Message &message);
    void handleHello(Connection &conn, const Message &message);
    void handleProgress(WorkerProc &worker, const Message &message);
    void readConnection(Connection *conn);
    void dropConnection(Connection *conn, const char *why);
    void workerLost(WorkerProc &worker, const char *why);
    void reapChildren();
    void checkHeartbeats();
    void shutdownFleet();
    WorkerProc *findWorker(long pid);
    bool allShardsCompleted() const
    {
        return completed_count_ == plan_.size();
    }

    // --- live telemetry plane (DESIGN.md §16) ------------------------
    void traceInstant(const std::string &name);
    void acceptStatusConnections();
    void broadcastStatus(bool force);
    void closeStatusPlane();
    std::string buildStatusJson() const;

    const ServeOptions &options_;
    CampaignSpec campaign_;
    runner::SweepSpec spec_;
    std::vector<runner::JobSpec> jobs_;
    std::string fingerprint_;
    std::string socket_path_;
    int listen_fd_ = -1;

    std::vector<runner::ShardRange> plan_;
    std::deque<std::size_t> pending_;
    std::vector<int> dispatch_count_;
    std::vector<bool> shard_completed_;
    std::size_t completed_count_ = 0;

    std::vector<std::unique_ptr<Connection>> connections_;
    /** deque: spawnWorker() appends while references to existing
     *  elements are live further up the stack. */
    std::deque<WorkerProc> workers_;
    int next_generation_ = 0;
    int startup_failures_ = 0;

    std::unique_ptr<ResultFolder> folder_;
    obs::MetricsRegistry metrics_;
    double worker_wall_ms_ = 0.0;

    // --- live telemetry plane ----------------------------------------
    long self_pid_ = 0;
    Clock::time_point campaign_start_;
    double base_wall_us_ = 0.0; ///< wall clock at campaign start
    int status_listen_fd_ = -1;
    std::vector<int> status_fds_;
    Clock::time_point last_status_write_;
    bool status_written_once_ = false;
    /** Latest cumulative snapshot per shard; the live folded view is
     *  their merge (completed shards contribute their full prefix). */
    std::map<std::size_t, obs::MetricsRegistry> shard_live_;
    obs::FleetTraceMerger trace_;
};

Coordinator::Coordinator(const ServeOptions &options)
    : options_(options)
{
    std::string error;
    if (!loadCampaignFile(options_.campaign_path, &campaign_, &error))
        util::fatal("%s", error.c_str());

    spec_ = buildSweepSpec(campaign_, options_.collect_metrics);
    jobs_ = runner::expandSweep(spec_);
    fingerprint_ = runner::SweepJournal::fingerprint(
        spec_, jobs_,
        campaignFingerprintExtra(campaign_,
                                 options_.collect_metrics));

    if (options_.workers < 1)
        util::fatal("fleet: --workers must be >= 1");
    if (options_.max_shard_retries < 0)
        util::fatal("fleet: --max-shard-retries must be >= 0");

    if (!util::ensureDir(options_.fleet_dir))
        util::fatal("cannot create fleet dir '%s'",
                    options_.fleet_dir.c_str());

    // Fingerprint marker: a fleet dir holds shard journals for exactly
    // one campaign; folding a different campaign's journals would mix
    // results silently, so a mismatch is a hard error.
    const std::string marker = options_.fleet_dir + "/campaign.fp";
    const std::string existing = readFileOrEmpty(marker);
    if (!existing.empty() && existing != fingerprint_)
        util::fatal("fleet dir '%s' holds journals for a different "
                    "campaign (fingerprint %s, this campaign is %s); "
                    "use a fresh directory or the original campaign "
                    "file/flags",
                    options_.fleet_dir.c_str(), existing.c_str(),
                    fingerprint_.c_str());
    if (existing.empty()) {
        std::ofstream out(marker, std::ios::binary);
        out << fingerprint_;
        if (!out)
            util::fatal("cannot write '%s'", marker.c_str());
    } else {
        std::fprintf(stderr,
                     "fleet: resuming campaign %s in '%s'\n",
                     fingerprint_.c_str(),
                     options_.fleet_dir.c_str());
    }

    socket_path_ = options_.socket_path.empty()
                       ? options_.fleet_dir + "/fleet.sock"
                       : options_.socket_path;

    const std::size_t target_shards =
        options_.shards > 0
            ? options_.shards
            : static_cast<std::size_t>(options_.workers) * 4;
    plan_ = runner::planShards(jobs_.size(), target_shards);
    dispatch_count_.assign(plan_.size(), 0);
    shard_completed_.assign(plan_.size(), false);
    for (const runner::ShardRange &shard : plan_)
        pending_.push_back(shard.id);
    metrics_.gauge(obs::kFleetShardsPlanned).value =
        static_cast<double>(plan_.size());

    folder_ = std::make_unique<ResultFolder>(jobs_);
}

WorkerProc *
Coordinator::findWorker(long pid)
{
    for (WorkerProc &w : workers_) {
        if (w.pid == pid)
            return &w;
    }
    return nullptr;
}

void
Coordinator::spawnWorker(bool first_generation)
{
    std::vector<std::string> argv_strings = {
        options_.nvpsim_path,
        "work",
        "--socket",
        socket_path_,
        "--campaign",
        options_.campaign_path,
        "--fleet-dir",
        options_.fleet_dir,
        "--jobs",
        std::to_string(options_.worker_jobs),
        "--collect-metrics",
        options_.collect_metrics ? "1" : "0",
        "--progress-every",
        std::to_string(options_.progress_every),
    };
    if (first_generation && options_.kill_worker_after > 0) {
        argv_strings.push_back("--kill-after");
        argv_strings.push_back(
            std::to_string(options_.kill_worker_after));
    }
    std::vector<char *> argv;
    argv.reserve(argv_strings.size() + 1);
    for (std::string &s : argv_strings)
        argv.push_back(s.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        util::fatal("fleet: fork() failed");
    if (pid == 0) {
        ::execv(options_.nvpsim_path.c_str(), argv.data());
        // Exec failure: exit without running any parent atexit state.
        ::_exit(127);
    }
    WorkerProc worker;
    worker.pid = pid;
    worker.generation = next_generation_++;
    worker.spawned_at = Clock::now();
    workers_.push_back(worker);
    metrics_.counter(obs::kFleetWorkersSpawned).value += 1;
    traceInstant(util::format("spawn worker g%d (pid %ld)",
                              workers_.back().generation,
                              static_cast<long>(pid)));
}

void
Coordinator::assignShard(WorkerProc &worker, std::size_t shard_id)
{
    const runner::ShardRange &shard = plan_[shard_id];
    const std::string frame = encodeShard(shard);
    if (!writeAll(worker.conn->fd, frame.data(), frame.size())) {
        // The worker died between poll rounds: requeue the shard and
        // retire the connection now, so the dispatch loop does not
        // keep picking the same dead "idle" worker.
        pending_.push_front(shard_id);
        dropConnection(worker.conn, "write failed");
        return;
    }
    worker.shard = static_cast<int>(shard_id);
    worker.shard_done = 0;
    worker.shard_assigned = shard.end - shard.begin;
    dispatch_count_[shard_id] += 1;
    metrics_.counter(obs::kFleetShardsDispatched).value += 1;
    if (dispatch_count_[shard_id] > 1)
        metrics_.counter(obs::kFleetShardsRetried).value += 1;
    traceInstant(util::format("assign shard %zu -> pid %ld", shard_id,
                              worker.pid));
}

void
Coordinator::dispatchShards()
{
    while (!pending_.empty()) {
        WorkerProc *idle = nullptr;
        for (WorkerProc &w : workers_) {
            if (w.alive && w.greeted && w.conn && w.shard < 0) {
                idle = &w;
                break;
            }
        }
        if (!idle)
            return;
        const std::size_t shard_id = pending_.front();
        pending_.pop_front();
        assignShard(*idle, shard_id);
    }
}

void
Coordinator::handleHello(Connection &conn, const Message &message)
{
    std::string fp;
    long pid = -1;
    if (!parseHello(message.line, &fp, &pid))
        util::fatal("fleet: malformed HELLO '%s'",
                    message.line.c_str());
    if (fp != fingerprint_)
        util::fatal("fleet: worker %ld derived campaign fingerprint "
                    "%s, coordinator derived %s — the campaign file "
                    "expanded differently (nondeterministic "
                    "expansion?)",
                    pid, fp.c_str(), fingerprint_.c_str());
    WorkerProc *worker = findWorker(pid);
    if (!worker || !worker->alive)
        util::fatal("fleet: HELLO from unknown worker pid %ld", pid);
    conn.pid = pid;
    worker->conn = &conn;
    worker->greeted = true;
    trace_.setProcessName(
        pid, util::format("nvpsim work g%d (pid %ld)",
                          worker->generation, pid));
    traceInstant(util::format("hello from pid %ld", pid));
}

void
Coordinator::handleProgress(WorkerProc &worker, const Message &message)
{
    ProgressUpdate update;
    std::string error;
    if (!decodeProgress(message, &update, &error))
        util::fatal("fleet: %s", error.c_str());
    worker.shard_done = update.jobs_done;
    worker.shard_assigned = update.jobs_assigned;
    worker.last_label = update.label;
    metrics_.counter(obs::kFleetStatusProgressFrames).value += 1;
    metrics_.counter(obs::kFleetStatusProgressBytes).value +=
        message.payload.size();
    if (!update.metrics_json.empty()) {
        // Latest cumulative snapshot wins: a reassigned shard's warm
        // restart re-merges the journaled prefix, so replacing the
        // dead incarnation's snapshot keeps the live view a prefix of
        // the final fold (DESIGN.md §16).
        obs::MetricsRegistry snapshot;
        if (!obs::MetricsRegistry::fromJson(update.metrics_json,
                                            &snapshot, &error))
            util::fatal("fleet: PROGRESS snapshot from worker %ld: %s",
                        worker.pid, error.c_str());
        shard_live_[update.shard_id] = std::move(snapshot);
    }
    if (!update.spans_json.empty() && !options_.trace_out.empty()) {
        obs::SpanBatch batch;
        if (!obs::SpanBatch::fromJson(update.spans_json, &batch,
                                      &error))
            util::fatal("fleet: PROGRESS spans from worker %ld: %s",
                        worker.pid, error.c_str());
        metrics_.counter(obs::kFleetStatusSpansMerged).value +=
            batch.size();
        trace_.add(batch);
    }
}

void
Coordinator::handleMessage(Connection &conn, const Message &message)
{
    const std::string kind = messageKind(message.line);
    if (kind == "HELLO") {
        handleHello(conn, message);
        return;
    }
    WorkerProc *worker = conn.pid >= 0 ? findWorker(conn.pid) : nullptr;
    if (!worker)
        util::fatal("fleet: message '%s' from a connection that never "
                    "sent HELLO",
                    message.line.c_str());
    if (kind == "RESULT") {
        DecodedResult decoded;
        std::string error;
        if (!decodeResult(message, &decoded, &error) ||
            !folder_->fold(decoded, &error))
            util::fatal("fleet: %s", error.c_str());
        metrics_.counter(obs::kFleetMergeBytes).value +=
            message.payload.size();
        return;
    }
    if (kind == "PROGRESS") {
        handleProgress(*worker, message);
        return;
    }
    if (kind == "DONE") {
        std::size_t shard_id = 0;
        if (!parseDone(message.line, &shard_id) ||
            shard_id >= plan_.size())
            util::fatal("fleet: malformed DONE '%s'",
                        message.line.c_str());
        if (worker->shard != static_cast<int>(shard_id))
            util::fatal("fleet: worker %ld finished shard %zu but was "
                        "assigned %d",
                        worker->pid, shard_id, worker->shard);
        const runner::ShardRange &shard = plan_[shard_id];
        if (!folder_->rangeComplete(shard.begin, shard.end))
            util::fatal("fleet: worker %ld reported shard %zu done "
                        "with results missing",
                        worker->pid, shard_id);
        worker->shard = -1;
        if (!shard_completed_[shard_id]) {
            shard_completed_[shard_id] = true;
            ++completed_count_;
            metrics_.counter(obs::kFleetShardsCompleted).value += 1;
        }
        return;
    }
    if (kind == "ERROR") {
        util::fatal("fleet: worker %ld failed: %s", worker->pid,
                    message.payload.c_str());
    }
    util::fatal("fleet: unexpected message '%s' from worker %ld",
                message.line.c_str(), worker->pid);
}

void
Coordinator::workerLost(WorkerProc &worker, const char *why)
{
    worker.alive = false;
    worker.conn = nullptr;
    worker_wall_ms_ +=
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  worker.spawned_at)
            .count();
    metrics_.counter(obs::kFleetWorkersLost).value += 1;
    traceInstant(util::format("worker pid %ld lost: %s", worker.pid,
                              why));
    ::kill(static_cast<pid_t>(worker.pid), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<pid_t>(worker.pid), &status, WNOHANG);
    if (worker.shard >= 0) {
        const auto shard_id = static_cast<std::size_t>(worker.shard);
        worker.shard = -1;
        if (dispatch_count_[shard_id] >
            options_.max_shard_retries)
            util::fatal("fleet: shard %zu lost its worker %d times "
                        "(last: %s); retry budget exhausted",
                        shard_id, dispatch_count_[shard_id], why);
        std::fprintf(stderr,
                     "fleet: worker %ld lost (%s); reassigning shard "
                     "%zu (attempt %d)\n",
                     worker.pid, why, shard_id,
                     dispatch_count_[shard_id] + 1);
        pending_.push_front(shard_id);
        metrics_.counter(obs::kFleetShardsReassigned).value += 1;
        traceInstant(util::format("reassign shard %zu", shard_id));
    }
    // Keep the fleet at strength while work remains — even a worker
    // that died idle may be needed for a later reassignment.
    if (!allShardsCompleted())
        spawnWorker(false);
}

void
Coordinator::dropConnection(Connection *conn, const char *why)
{
    if (conn->fd >= 0)
        ::close(conn->fd);
    const long pid = conn->pid;
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [conn](const std::unique_ptr<Connection> &c) {
                           return c.get() == conn;
                       }),
        connections_.end());
    if (pid >= 0) {
        WorkerProc *worker = findWorker(pid);
        if (worker && worker->alive)
            workerLost(*worker, why);
    }
}

void
Coordinator::readConnection(Connection *conn)
{
    char buffer[64 * 1024];
    const long n = readSome(conn->fd, buffer, sizeof(buffer));
    if (n == -2)
        return; // spurious wakeup
    if (n <= 0) {
        dropConnection(conn, "connection closed");
        return;
    }
    conn->reader.feed(buffer, static_cast<std::size_t>(n));
    conn->last_heard = Clock::now();
    while (true) {
        Message message;
        std::string error;
        if (!conn->reader.next(&message, &error)) {
            if (!error.empty())
                util::fatal("fleet: %s", error.c_str());
            break;
        }
        handleMessage(*conn, message);
    }
}

void
Coordinator::reapChildren()
{
    while (true) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0)
            return;
        WorkerProc *worker = findWorker(pid);
        if (!worker || !worker->alive)
            continue;
        if (!worker->greeted) {
            // Died before HELLO: exec failure or a worker-side fatal
            // (bad campaign, unreachable socket). Bounded respawns so
            // a systematic failure surfaces instead of looping.
            worker->alive = false;
            metrics_.counter(obs::kFleetWorkersLost).value += 1;
            ++startup_failures_;
            if (startup_failures_ > options_.workers * 2)
                util::fatal("fleet: workers keep dying before "
                            "connecting (%d startup failures); see "
                            "their stderr above",
                            startup_failures_);
            if (!allShardsCompleted())
                spawnWorker(false);
        }
        // Greeted workers are handled by their connection's EOF,
        // which arrives with the process death.
    }
}

void
Coordinator::checkHeartbeats()
{
    const auto now = Clock::now();
    const double timeout_s = options_.heartbeat_timeout_s;
    if (timeout_s <= 0)
        return;
    // Collect first: dropConnection mutates connections_.
    std::vector<Connection *> stale;
    for (const auto &conn : connections_) {
        if (conn->pid < 0)
            continue;
        WorkerProc *worker = findWorker(conn->pid);
        if (!worker || worker->shard < 0)
            continue; // idle workers are allowed to be silent
        const double silent_s =
            std::chrono::duration<double>(now - conn->last_heard)
                .count();
        if (silent_s > timeout_s)
            stale.push_back(conn.get());
    }
    for (Connection *conn : stale)
        dropConnection(conn, "heartbeat timeout");
}

void
Coordinator::traceInstant(const std::string &name)
{
    if (options_.trace_out.empty())
        return;
    obs::FleetSpanEvent event;
    event.phase = 'i';
    event.pid = self_pid_;
    event.tid = 0;
    event.name = name;
    event.ts_us = obs::wallClockUs();
    trace_.add(std::move(event));
}

void
Coordinator::acceptStatusConnections()
{
    if (status_listen_fd_ < 0)
        return;
    while (true) {
        // Non-blocking fds: a status client that stops reading gets
        // dropped by a failed write instead of stalling the fleet.
        const int fd =
            ::accept4(status_listen_fd_, nullptr, nullptr,
                      SOCK_CLOEXEC | SOCK_NONBLOCK);
        if (fd < 0)
            return;
        metrics_.counter(obs::kFleetStatusRequests).value += 1;
        const std::string frame = encodeState(buildStatusJson());
        if (writeAll(fd, frame.data(), frame.size()))
            status_fds_.push_back(fd);
        else
            ::close(fd);
    }
}

void
Coordinator::broadcastStatus(bool force)
{
    if (status_fds_.empty())
        return;
    const auto now = Clock::now();
    if (!force && status_written_once_ &&
        std::chrono::duration<double>(now - last_status_write_)
                .count() < 0.2)
        return;
    last_status_write_ = now;
    status_written_once_ = true;
    const std::string frame = encodeState(buildStatusJson());
    std::vector<int> still_open;
    for (const int fd : status_fds_) {
        if (writeAll(fd, frame.data(), frame.size()))
            still_open.push_back(fd);
        else
            ::close(fd); // gone or stalled: the live plane is lossy
    }
    status_fds_.swap(still_open);
}

void
Coordinator::closeStatusPlane()
{
    // Final frame first: every attached watcher sees jobs_done ==
    // jobs_total before EOF, which is what `nvpsim status --watch`
    // (and the fleet status test) keys on.
    acceptStatusConnections();
    broadcastStatus(true);
    for (const int fd : status_fds_)
        ::close(fd);
    status_fds_.clear();
    if (status_listen_fd_ >= 0) {
        ::close(status_listen_fd_);
        status_listen_fd_ = -1;
        ::unlink(options_.status_socket.c_str());
    }
}

std::string
Coordinator::buildStatusJson() const
{
    const auto now = Clock::now();
    const double elapsed_s =
        std::chrono::duration<double>(now - campaign_start_).count();
    const std::size_t jobs_total = folder_->jobCount();
    const std::size_t jobs_done = folder_->filledCount();
    const double throughput =
        elapsed_s > 0.0 ? static_cast<double>(jobs_done) / elapsed_s
                        : 0.0;
    const double eta_s =
        throughput > 0.0
            ? static_cast<double>(jobs_total - jobs_done) / throughput
            : -1.0;

    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("schema", obs::JsonValue::of(
                          std::string("inc-fleet-status-v1")));
    doc.set("fingerprint", obs::JsonValue::of(fingerprint_));
    doc.set("jobs_total", obs::JsonValue::of(
                              static_cast<std::uint64_t>(jobs_total)));
    doc.set("jobs_done", obs::JsonValue::of(
                             static_cast<std::uint64_t>(jobs_done)));
    doc.set("shards_planned",
            obs::JsonValue::of(
                static_cast<std::uint64_t>(plan_.size())));
    doc.set("shards_completed",
            obs::JsonValue::of(
                static_cast<std::uint64_t>(completed_count_)));
    doc.set("elapsed_s", obs::JsonValue::of(elapsed_s));
    doc.set("throughput_jps", obs::JsonValue::of(throughput));
    doc.set("eta_s", obs::JsonValue::of(eta_s));

    obs::JsonValue workers = obs::JsonValue::array();
    for (const WorkerProc &w : workers_) {
        obs::JsonValue row = obs::JsonValue::object();
        row.set("pid",
                obs::JsonValue::of(static_cast<double>(w.pid)));
        row.set("generation",
                obs::JsonValue::of(
                    static_cast<std::uint64_t>(w.generation)));
        row.set("shard", obs::JsonValue::of(
                             static_cast<double>(w.shard)));
        row.set("shard_done",
                obs::JsonValue::of(
                    static_cast<std::uint64_t>(w.shard_done)));
        row.set("shard_assigned",
                obs::JsonValue::of(
                    static_cast<std::uint64_t>(w.shard_assigned)));
        row.set("job", obs::JsonValue::of(w.last_label));
        double age_s = -1.0;
        if (w.conn)
            age_s = std::chrono::duration<double>(
                        now - w.conn->last_heard)
                        .count();
        row.set("heartbeat_age_s", obs::JsonValue::of(age_s));
        const double timeout_s = options_.heartbeat_timeout_s;
        std::string health = "ok";
        if (!w.alive)
            health = "lost";
        else if (!w.greeted)
            health = "starting";
        else if (timeout_s > 0 && age_s > 0.5 * timeout_s)
            health = "stale";
        row.set("health", obs::JsonValue::of(health));
        workers.push(std::move(row));
    }
    doc.set("workers", std::move(workers));

    // fleet.* scheduling counters/gauges, live (obs/schema.h).
    obs::JsonValue fleet = obs::JsonValue::object();
    for (const auto &[name, counter] : metrics_.counters())
        fleet.set(name, obs::JsonValue::of(counter.value));
    for (const auto &[name, gauge] : metrics_.gauges())
        fleet.set(name, obs::JsonValue::of(gauge.value));
    doc.set("fleet", std::move(fleet));

    // Live folded view: merge the latest per-shard snapshots. A
    // prefix-consistent approximation of the final job-index-order
    // fold — counters are exact partial sums, gauges reassociate
    // floating-point addition (DESIGN.md §16).
    obs::MetricsRegistry live;
    for (const auto &[shard_id, snapshot] : shard_live_)
        live.merge(snapshot);
    obs::JsonValue live_obj = obs::JsonValue::object();
    if (live.has(obs::kHistOutageSamples)) {
        const obs::Histogram &h =
            live.histograms().at(obs::kHistOutageSamples);
        // Samples are 0.1 ms trace ticks; report milliseconds like
        // the run report does.
        live_obj.set("outage_p50_ms",
                     obs::JsonValue::of(h.percentile(0.50) / 10.0));
        live_obj.set("outage_p95_ms",
                     obs::JsonValue::of(h.percentile(0.95) / 10.0));
        live_obj.set("outage_p99_ms",
                     obs::JsonValue::of(h.percentile(0.99) / 10.0));
    }
    live_obj.set("backups_committed",
                 obs::JsonValue::of(live.counterValue(
                     obs::kSimBackupsCommitted)));
    live_obj.set("restores",
                 obs::JsonValue::of(
                     live.counterValue(obs::kSimRestores)));
    live_obj.set(
        "metrics_shards",
        obs::JsonValue::of(
            static_cast<std::uint64_t>(shard_live_.size())));
    doc.set("live", std::move(live_obj));

    return doc.dump();
}

void
Coordinator::shutdownFleet()
{
    const std::string exit_frame = encodeExit();
    for (const auto &conn : connections_) {
        writeAll(conn->fd, exit_frame.data(), exit_frame.size());
        ::close(conn->fd);
    }
    connections_.clear();
    // Close the listener before reaping: a late-spawned replacement
    // that never got accepted sees its connection reset (or its
    // connect refused) and exits, instead of blocking forever on a
    // socket nobody will ever serve.
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    ::unlink(socket_path_.c_str());
    for (WorkerProc &worker : workers_) {
        if (!worker.alive)
            continue;
        int status = 0;
        ::waitpid(static_cast<pid_t>(worker.pid), &status, 0);
        worker.alive = false;
        worker_wall_ms_ +=
            std::chrono::duration<double, std::milli>(
                Clock::now() - worker.spawned_at)
                .count();
    }
}

FleetOutcome
Coordinator::run()
{
    const auto campaign_start = Clock::now();
    campaign_start_ = campaign_start;
    base_wall_us_ = obs::wallClockUs();
    self_pid_ = static_cast<long>(::getpid());
    trace_.setProcessName(
        self_pid_,
        util::format("nvpsim serve (pid %ld)", self_pid_));

    std::string error;
    listen_fd_ = listenUnix(socket_path_, &error);
    if (listen_fd_ < 0)
        util::fatal("fleet: cannot listen on '%s': %s",
                    socket_path_.c_str(), error.c_str());

    if (!options_.status_socket.empty()) {
        status_listen_fd_ =
            listenUnix(options_.status_socket, &error);
        if (status_listen_fd_ < 0)
            util::fatal("fleet: cannot listen on status socket '%s': "
                        "%s",
                        options_.status_socket.c_str(),
                        error.c_str());
        // Non-blocking: the event loop drains pending status
        // connections opportunistically every round.
        const int flags = ::fcntl(status_listen_fd_, F_GETFL, 0);
        ::fcntl(status_listen_fd_, F_SETFL, flags | O_NONBLOCK);
    }

    for (int i = 0; i < options_.workers; ++i)
        spawnWorker(true);

    while (!allShardsCompleted()) {
        dispatchShards();

        std::vector<pollfd> fds;
        fds.push_back({listen_fd_, POLLIN, 0});
        // Snapshot: readConnection may drop entries mid-iteration.
        std::vector<Connection *> polled;
        for (const auto &conn : connections_) {
            fds.push_back({conn->fd, POLLIN, 0});
            polled.push_back(conn.get());
        }
        const int ready = ::poll(fds.data(),
                                 static_cast<nfds_t>(fds.size()), 200);
        if (ready < 0 && errno != EINTR)
            util::fatal("fleet: poll() failed");

        if (fds[0].revents & POLLIN) {
            const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                     SOCK_CLOEXEC);
            if (fd >= 0) {
                auto conn = std::make_unique<Connection>();
                conn->fd = fd;
                conn->last_heard = Clock::now();
                connections_.push_back(std::move(conn));
            }
        }
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Connection *conn = polled[i - 1];
            // The connection may already be gone (dropped while
            // handling an earlier fd this round).
            bool still_open = false;
            for (const auto &c : connections_)
                still_open = still_open || c.get() == conn;
            if (still_open)
                readConnection(conn);
        }

        reapChildren();
        checkHeartbeats();
        acceptStatusConnections();
        broadcastStatus(false);
    }

    if (!folder_->complete())
        util::fatal("fleet: all shards reported done but only %zu of "
                    "%zu jobs folded",
                    folder_->filledCount(), folder_->jobCount());

    // The folder is complete, so the final STATE frames report
    // jobs_done == jobs_total to every watcher before their EOF.
    closeStatusPlane();
    shutdownFleet();

    FleetOutcome outcome;
    const double wall_seconds =
        std::chrono::duration<double>(Clock::now() - campaign_start)
            .count();

    if (!options_.trace_out.empty()) {
        obs::FleetSpanEvent campaign_span;
        campaign_span.phase = 'X';
        campaign_span.pid = self_pid_;
        campaign_span.tid = 0;
        campaign_span.name = "campaign " + fingerprint_;
        campaign_span.ts_us = base_wall_us_;
        campaign_span.dur_us = wall_seconds * 1e6;
        trace_.add(std::move(campaign_span));
        if (!trace_.writeChromeTraceJson(options_.trace_out,
                                         base_wall_us_))
            util::fatal("fleet: could not write trace '%s'",
                        options_.trace_out.c_str());
        std::fprintf(stderr,
                     "fleet: %zu trace events written to %s\n",
                     trace_.eventCount(),
                     options_.trace_out.c_str());
    }

    outcome.report = folder_->takeReport(
        wall_seconds, static_cast<unsigned>(options_.workers));
    metrics_.gauge(obs::kFleetWorkerWallMs).value = worker_wall_ms_;
    outcome.fleet_metrics = std::move(metrics_);
    outcome.fingerprint = fingerprint_;
    return outcome;
}

} // namespace

FleetOutcome
serveCampaign(const ServeOptions &options)
{
    Coordinator coordinator(options);
    return coordinator.run();
}

} // namespace inc::fleet
