/**
 * @file
 * Campaign specification for the fleet service (`nvpsim serve`).
 *
 * A CampaignSpec is the JSON-file form of the `nvpsim sweep` flag set:
 * the kernel/profile grid, trace length and seed, and every SimConfig
 * knob that shapes a job. Both the serial sweep path and the fleet
 * coordinator/worker pair build their runner::SweepSpec through
 * buildSweepSpec() and derive their journal fingerprint through
 * campaignFingerprintExtra(), so a campaign executed by any of the
 * three produces bit-identical jobs — the foundation of the fleet's
 * byte-identity guarantee (DESIGN.md §15).
 *
 * Campaign JSON is one object; every member is optional and defaults
 * to the matching sweep-flag default, e.g.:
 *
 *   { "kernels": "sobel,median", "profiles": "2,3",
 *     "seconds": 0.5, "seed": 2017, "mode": "dynamic" }
 *
 * Unknown members are rejected — a typoed knob silently meaning "use
 * the default" would change results without changing the fingerprint
 * the user thinks they pinned.
 */

#ifndef INC_FLEET_CAMPAIGN_H
#define INC_FLEET_CAMPAIGN_H

#include <cstdint>
#include <string>

#include "runner/sweep.h"
#include "sim/system_sim.h"

namespace inc::fleet
{

/** Declarative campaign: the `nvpsim sweep` flag set as data. */
struct CampaignSpec
{
    std::string kernels = "all";  ///< comma list or "all"
    std::string profiles = "all"; ///< comma list of 1..5 or "all"
    double seconds = 5.0;         ///< trace length per profile
    std::uint64_t seed = 2017;    ///< trace + master + config seed
    std::string mode = "dynamic"; ///< precise | fixed | dynamic
    int bits = 4;                 ///< fixed-mode bitwidth
    int minbits = 2;              ///< dynamic-mode floor
    std::string policy = "linear";
    bool baseline = false;
    /** Engine name, or "default" for the library default (the same
     *  convention as an absent `--engine`). */
    std::string engine = "default";
    /** Strategy name, or "" for the library default. */
    std::string strategy;
    /** Negative = keep the SimConfig default (absent flag). */
    double income_scale = -1.0;
    double frame_factor = -1.0;
};

/** Parse campaign JSON. False + @p error on malformed input or an
 *  unknown member; @p out is untouched then. */
bool campaignFromJson(const std::string &text, CampaignSpec *out,
                      std::string *error);

/** Read + parse a campaign file. False + @p error on I/O or parse
 *  failure. */
bool loadCampaignFile(const std::string &path, CampaignSpec *out,
                      std::string *error);

/** Canonical JSON (sorted keys; round-trips through
 *  campaignFromJson). */
std::string campaignToJson(const CampaignSpec &spec);

/**
 * Resolve the campaign's SimConfig exactly as `nvpsim sweep` resolves
 * its flags (configFromArgs). Fatal on unknown mode/policy/engine/
 * strategy names, listing the valid ones.
 */
sim::SimConfig campaignConfig(const CampaignSpec &spec);

/**
 * Expand the campaign into a SweepSpec: validated kernel list, one
 * generated trace per profile, a single config variant named after the
 * mode. spec.jobs is left 0 — parallelism is the caller's scheduling
 * decision and never part of campaign identity. Fatal on empty or
 * unknown kernels/profiles.
 */
runner::SweepSpec buildSweepSpec(const CampaignSpec &spec,
                                 bool collect_metrics);

/**
 * The SweepJournal fingerprint "extra" string for this campaign —
 * byte-identical to the one `nvpsim sweep --arena` derives from its
 * flags, so fleet shard journals and serial sweep journals agree on
 * campaign identity.
 */
std::string campaignFingerprintExtra(const CampaignSpec &spec,
                                     bool collect_metrics);

} // namespace inc::fleet

#endif // INC_FLEET_CAMPAIGN_H
