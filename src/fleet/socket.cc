#include "fleet/socket.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace inc::fleet
{

std::size_t
maxSocketPathBytes()
{
    return sizeof(sockaddr_un{}.sun_path) - 1;
}

namespace
{

bool
fillAddress(const std::string &path, sockaddr_un *addr,
            std::string *error)
{
    if (path.size() > maxSocketPathBytes()) {
        *error = "socket path '" + path + "' exceeds the " +
                 std::to_string(maxSocketPathBytes()) +
                 "-byte sockaddr_un limit";
        return false;
    }
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size());
    return true;
}

} // namespace

int
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!fillAddress(path, &addr, error))
        return -1;
    // CLOEXEC everywhere: the coordinator forks workers while other
    // connections are open, and a leaked duplicate of a worker's fd
    // in a sibling process would defeat EOF-based crash detection.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        *error = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        *error = "bind('" + path + "'): " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        *error = "listen('" + path + "'): " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!fillAddress(path, &addr, error))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        *error = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        *error = "connect('" + path + "'): " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
writeAll(int fd, const void *data, std::size_t n)
{
    const char *p = static_cast<const char *>(data);
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t w =
            ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(w);
    }
    return true;
}

long
readSome(int fd, char *buffer, std::size_t capacity)
{
    while (true) {
        const ssize_t r = ::read(fd, buffer, capacity);
        if (r >= 0)
            return static_cast<long>(r);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return -2;
        return -1;
    }
}

} // namespace inc::fleet
