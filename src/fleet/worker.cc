#include "fleet/worker.h"

#include <atomic>
#include <csignal>
#include <memory>
#include <mutex>

#include <unistd.h>

#include "arena/arena.h"
#include "fleet/campaign.h"
#include "fleet/protocol.h"
#include "fleet/socket.h"
#include "obs/fleet_trace.h"
#include "runner/journal.h"
#include "runner/shard.h"
#include "util/logging.h"

namespace inc::fleet
{

namespace
{

/** Pending-span ring bound: at the default cadence a batch holds a
 *  couple of events, but with --progress-every 0 spans would pile up
 *  forever without this. */
constexpr std::size_t kSpanRingCapacity = 4096;

/** "sobel x profile2" — the PROGRESS label and job-span name. */
std::string
jobLabel(const runner::JobSpec &spec)
{
    return spec.kernel + " x " + spec.trace_name;
}

/** One shard execution: journal-backed, range-restricted, streaming. */
void
runShard(const runner::SweepSpec &spec, const std::string &fingerprint,
         std::size_t num_jobs, const runner::ShardRange &shard,
         const WorkerOptions &options, int fd,
         std::atomic<std::size_t> *journaled)
{
    const std::string arena_dir =
        options.fleet_dir + "/shard-" + std::to_string(shard.id);
    std::unique_ptr<arena::Arena> store;
    try {
        store = arena::Arena::open(arena_dir);
    } catch (const std::exception &e) {
        const std::string msg = util::format(
            "cannot open shard arena '%s': %s", arena_dir.c_str(),
            e.what());
        writeAll(fd, encodeError(msg).data(), encodeError(msg).size());
        util::fatal("%s", msg.c_str());
    }
    runner::SweepJournal journal(store.get());
    if (journal.bound()) {
        if (journal.boundFingerprint() != fingerprint)
            util::fatal("shard arena '%s' belongs to a different "
                        "campaign (fingerprint %s, this campaign is "
                        "%s)",
                        arena_dir.c_str(),
                        journal.boundFingerprint().c_str(),
                        fingerprint.c_str());
    } else {
        journal.bind(fingerprint, num_jobs);
    }

    runner::SweepRunner runner(spec);
    runner.setJournal(&journal);
    runner.setJobRange(shard.begin, shard.end);

    // Stream every delivery (fresh or journal-replayed) immediately:
    // the coordinator folds by job index, so order does not matter,
    // and anything sent before a crash survives the crash.
    std::mutex send_mutex;
    runner.setDeliveryHook([fd, &send_mutex](
                               const runner::JobResult &result) {
        const std::string frame = encodeResult(result);
        std::lock_guard<std::mutex> lock(send_mutex);
        if (!writeAll(fd, frame.data(), frame.size()))
            util::fatal("fleet worker: coordinator connection lost");
    });

    // Live telemetry plane: cumulative shard metrics snapshot (merged
    // in delivery order — a prefix-consistent approximation of the
    // final job-index-order fold; see DESIGN.md §16), completed trace
    // spans stamped with this process's real pid on the shared wall
    // clock, and PROGRESS frames on the jobs cadence. Everything here
    // is send-only: the result plane never reads it.
    const long pid = static_cast<long>(::getpid());
    obs::MetricsRegistry live_metrics;
    obs::SpanBatch spans(kSpanRingCapacity);
    const double shard_start_us = obs::wallClockUs();
    runner.setProgressHook([&](const runner::JobResult &result,
                               std::size_t done, std::size_t total) {
        std::lock_guard<std::mutex> lock(send_mutex);
        if (!result.metrics.empty())
            live_metrics.merge(result.metrics);
        const double now_us = obs::wallClockUs();
        obs::FleetSpanEvent job_span;
        job_span.phase = 'X';
        job_span.pid = pid;
        job_span.tid = 1; // per-job track
        job_span.name = jobLabel(result.spec);
        job_span.dur_us = result.wall_ms * 1000.0;
        job_span.ts_us = now_us - job_span.dur_us;
        spans.add(std::move(job_span));
        if (result.ok) {
            // Backup/restore burst series: one sample per job, so the
            // merged timeline shows where NVM traffic concentrated.
            obs::FleetSpanEvent backups;
            backups.phase = 'C';
            backups.pid = pid;
            backups.tid = 2;
            backups.name = "backups";
            backups.ts_us = now_us;
            backups.value =
                static_cast<double>(result.result.backups);
            spans.add(std::move(backups));
            obs::FleetSpanEvent restores = backups;
            restores.name = "restores";
            restores.value =
                static_cast<double>(result.result.restores);
            spans.add(std::move(restores));
        }
        if (options.progress_every == 0 ||
            (done % options.progress_every != 0 && done != total))
            return;
        ProgressUpdate update;
        update.shard_id = shard.id;
        update.jobs_done = done;
        update.jobs_assigned = total;
        update.label = jobLabel(result.spec);
        if (!live_metrics.empty())
            update.metrics_json = live_metrics.toJson();
        if (!spans.empty()) {
            update.spans_json = spans.toJson();
            spans.take(); // sent: reset the pending ring
        }
        const std::string frame = encodeProgress(update);
        if (!writeAll(fd, frame.data(), frame.size()))
            util::fatal("fleet worker: coordinator connection lost");
    });

    if (options.kill_after > 0) {
        const std::size_t kill_after = options.kill_after;
        runner.setRecordHook(
            [journaled, kill_after](std::size_t) {
                if (journaled->fetch_add(1) + 1 >= kill_after)
                    std::raise(SIGKILL);
            });
    }

    runner.run();

    if (options.progress_every > 0) {
        // Closing frame: the shard-lifecycle span (it only completes
        // here) plus the final snapshot, so the coordinator's live
        // view of a finished shard is its complete prefix.
        const double now_us = obs::wallClockUs();
        obs::FleetSpanEvent shard_span;
        shard_span.phase = 'X';
        shard_span.pid = pid;
        shard_span.tid = 0; // shard-lifecycle track
        shard_span.name = "shard " + std::to_string(shard.id);
        shard_span.ts_us = shard_start_us;
        shard_span.dur_us = now_us - shard_start_us;
        std::lock_guard<std::mutex> lock(send_mutex);
        spans.add(std::move(shard_span));
        ProgressUpdate update;
        update.shard_id = shard.id;
        update.jobs_done = shard.end - shard.begin;
        update.jobs_assigned = shard.end - shard.begin;
        update.label = "shard " + std::to_string(shard.id) + " done";
        if (!live_metrics.empty())
            update.metrics_json = live_metrics.toJson();
        update.spans_json = spans.toJson();
        spans.take();
        const std::string frame = encodeProgress(update);
        if (!writeAll(fd, frame.data(), frame.size()))
            util::fatal("fleet worker: coordinator connection lost");
    }

    const std::string done = encodeDone(shard.id);
    if (!writeAll(fd, done.data(), done.size()))
        util::fatal("fleet worker: coordinator connection lost");
}

} // namespace

int
runWorker(const WorkerOptions &options)
{
    CampaignSpec campaign;
    std::string error;
    if (!loadCampaignFile(options.campaign_path, &campaign, &error))
        util::fatal("%s", error.c_str());

    runner::SweepSpec spec =
        buildSweepSpec(campaign, options.collect_metrics);
    spec.jobs = options.jobs;
    const std::vector<runner::JobSpec> jobs = runner::expandSweep(spec);
    const std::string fingerprint = runner::SweepJournal::fingerprint(
        spec, jobs,
        campaignFingerprintExtra(campaign, options.collect_metrics));

    const int fd = connectUnix(options.socket_path, &error);
    if (fd < 0)
        util::fatal("cannot connect to fleet socket '%s': %s",
                    options.socket_path.c_str(), error.c_str());

    const std::string hello =
        encodeHello(fingerprint, static_cast<long>(::getpid()));
    if (!writeAll(fd, hello.data(), hello.size()))
        util::fatal("fleet worker: coordinator connection lost");

    // Counts journaled jobs across all shards this incarnation runs,
    // so --kill-after fires exactly once per worker process.
    std::atomic<std::size_t> journaled{0};

    MessageReader reader;
    char buffer[64 * 1024];
    while (true) {
        Message message;
        bool have = reader.next(&message, &error);
        if (!have && !error.empty())
            util::fatal("fleet worker: %s", error.c_str());
        if (!have) {
            const long n = readSome(fd, buffer, sizeof(buffer));
            if (n == 0) {
                // Coordinator closed the socket: campaign over (or
                // coordinator died) — either way, nothing left to do.
                ::close(fd);
                return 0;
            }
            if (n < 0)
                util::fatal("fleet worker: socket read failed");
            reader.feed(buffer, static_cast<std::size_t>(n));
            continue;
        }
        const std::string kind = messageKind(message.line);
        if (kind == "EXIT") {
            ::close(fd);
            return 0;
        }
        if (kind == "SHARD") {
            runner::ShardRange shard;
            if (!parseShard(message.line, &shard) ||
                shard.end > jobs.size())
                util::fatal("fleet worker: bad shard assignment '%s'",
                            message.line.c_str());
            runShard(spec, fingerprint, jobs.size(), shard, options,
                     fd, &journaled);
            continue;
        }
        util::fatal("fleet worker: unexpected message '%s'",
                    message.line.c_str());
    }
}

} // namespace inc::fleet
