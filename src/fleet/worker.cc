#include "fleet/worker.h"

#include <atomic>
#include <csignal>
#include <memory>
#include <mutex>

#include <unistd.h>

#include "arena/arena.h"
#include "fleet/campaign.h"
#include "fleet/protocol.h"
#include "fleet/socket.h"
#include "runner/journal.h"
#include "runner/shard.h"
#include "util/logging.h"

namespace inc::fleet
{

namespace
{

/** One shard execution: journal-backed, range-restricted, streaming. */
void
runShard(const runner::SweepSpec &spec, const std::string &fingerprint,
         std::size_t num_jobs, const runner::ShardRange &shard,
         const WorkerOptions &options, int fd,
         std::atomic<std::size_t> *journaled)
{
    const std::string arena_dir =
        options.fleet_dir + "/shard-" + std::to_string(shard.id);
    std::unique_ptr<arena::Arena> store;
    try {
        store = arena::Arena::open(arena_dir);
    } catch (const std::exception &e) {
        const std::string msg = util::format(
            "cannot open shard arena '%s': %s", arena_dir.c_str(),
            e.what());
        writeAll(fd, encodeError(msg).data(), encodeError(msg).size());
        util::fatal("%s", msg.c_str());
    }
    runner::SweepJournal journal(store.get());
    if (journal.bound()) {
        if (journal.boundFingerprint() != fingerprint)
            util::fatal("shard arena '%s' belongs to a different "
                        "campaign (fingerprint %s, this campaign is "
                        "%s)",
                        arena_dir.c_str(),
                        journal.boundFingerprint().c_str(),
                        fingerprint.c_str());
    } else {
        journal.bind(fingerprint, num_jobs);
    }

    runner::SweepRunner runner(spec);
    runner.setJournal(&journal);
    runner.setJobRange(shard.begin, shard.end);

    // Stream every delivery (fresh or journal-replayed) immediately:
    // the coordinator folds by job index, so order does not matter,
    // and anything sent before a crash survives the crash.
    std::mutex send_mutex;
    runner.setDeliveryHook([fd, &send_mutex](
                               const runner::JobResult &result) {
        const std::string frame = encodeResult(result);
        std::lock_guard<std::mutex> lock(send_mutex);
        if (!writeAll(fd, frame.data(), frame.size()))
            util::fatal("fleet worker: coordinator connection lost");
    });

    if (options.kill_after > 0) {
        const std::size_t kill_after = options.kill_after;
        runner.setRecordHook(
            [journaled, kill_after](std::size_t) {
                if (journaled->fetch_add(1) + 1 >= kill_after)
                    std::raise(SIGKILL);
            });
    }

    runner.run();

    const std::string done = encodeDone(shard.id);
    if (!writeAll(fd, done.data(), done.size()))
        util::fatal("fleet worker: coordinator connection lost");
}

} // namespace

int
runWorker(const WorkerOptions &options)
{
    CampaignSpec campaign;
    std::string error;
    if (!loadCampaignFile(options.campaign_path, &campaign, &error))
        util::fatal("%s", error.c_str());

    runner::SweepSpec spec =
        buildSweepSpec(campaign, options.collect_metrics);
    spec.jobs = options.jobs;
    const std::vector<runner::JobSpec> jobs = runner::expandSweep(spec);
    const std::string fingerprint = runner::SweepJournal::fingerprint(
        spec, jobs,
        campaignFingerprintExtra(campaign, options.collect_metrics));

    const int fd = connectUnix(options.socket_path, &error);
    if (fd < 0)
        util::fatal("cannot connect to fleet socket '%s': %s",
                    options.socket_path.c_str(), error.c_str());

    const std::string hello =
        encodeHello(fingerprint, static_cast<long>(::getpid()));
    if (!writeAll(fd, hello.data(), hello.size()))
        util::fatal("fleet worker: coordinator connection lost");

    // Counts journaled jobs across all shards this incarnation runs,
    // so --kill-after fires exactly once per worker process.
    std::atomic<std::size_t> journaled{0};

    MessageReader reader;
    char buffer[64 * 1024];
    while (true) {
        Message message;
        bool have = reader.next(&message, &error);
        if (!have && !error.empty())
            util::fatal("fleet worker: %s", error.c_str());
        if (!have) {
            const long n = readSome(fd, buffer, sizeof(buffer));
            if (n == 0) {
                // Coordinator closed the socket: campaign over (or
                // coordinator died) — either way, nothing left to do.
                ::close(fd);
                return 0;
            }
            if (n < 0)
                util::fatal("fleet worker: socket read failed");
            reader.feed(buffer, static_cast<std::size_t>(n));
            continue;
        }
        const std::string kind = messageKind(message.line);
        if (kind == "EXIT") {
            ::close(fd);
            return 0;
        }
        if (kind == "SHARD") {
            runner::ShardRange shard;
            if (!parseShard(message.line, &shard) ||
                shard.end > jobs.size())
                util::fatal("fleet worker: bad shard assignment '%s'",
                            message.line.c_str());
            runShard(spec, fingerprint, jobs.size(), shard, options,
                     fd, &journaled);
            continue;
        }
        util::fatal("fleet worker: unexpected message '%s'",
                    message.line.c_str());
    }
}

} // namespace inc::fleet
