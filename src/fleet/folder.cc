#include "fleet/folder.h"

#include <utility>

#include "util/logging.h"

namespace inc::fleet
{

ResultFolder::ResultFolder(std::vector<runner::JobSpec> jobs)
    : jobs_(std::move(jobs)), slots_(jobs_.size()),
      filled_(jobs_.size(), false), signatures_(jobs_.size())
{
}

bool
ResultFolder::fold(const DecodedResult &decoded, std::string *error)
{
    if (decoded.index >= jobs_.size()) {
        *error = util::format("RESULT for job %zu outside the %zu-job "
                              "campaign",
                              decoded.index, jobs_.size());
        return false;
    }
    const std::string signature =
        decoded.result_text + '\0' + decoded.metrics_json;
    if (filled_[decoded.index]) {
        // A journal replay from a reassigned shard: determinism says
        // the bytes must match what the first worker delivered.
        if (signature != signatures_[decoded.index]) {
            *error = util::format(
                "job %zu delivered twice with differing bytes "
                "(nondeterministic worker?)",
                decoded.index);
            return false;
        }
        bytes_ += decoded.result_text.size() +
                  decoded.metrics_json.size() + decoded.error.size();
        return true;
    }
    runner::JobResult jr;
    if (!resultFromDecoded(decoded, jobs_[decoded.index], &jr, error))
        return false;
    slots_[decoded.index] = std::move(jr);
    signatures_[decoded.index] = signature;
    filled_[decoded.index] = true;
    ++filled_count_;
    bytes_ += decoded.result_text.size() + decoded.metrics_json.size() +
              decoded.error.size();
    return true;
}

bool
ResultFolder::rangeComplete(std::size_t begin, std::size_t end) const
{
    if (end > jobs_.size())
        return false;
    for (std::size_t i = begin; i < end; ++i) {
        if (!filled_[i])
            return false;
    }
    return true;
}

runner::SweepReport
ResultFolder::takeReport(double wall_seconds, unsigned jobs_used)
{
    for (std::size_t i = 0; i < filled_.size(); ++i) {
        if (!filled_[i])
            util::panic("ResultFolder: job %zu never folded", i);
    }
    runner::SweepReport report;
    report.results = std::move(slots_);
    report.wall_seconds = wall_seconds;
    report.jobs_used = jobs_used;
    return report;
}

} // namespace inc::fleet
