#include "fleet/protocol.h"

#include <sstream>

#include "obs/metrics.h"
#include "sim/result_io.h"
#include "util/logging.h"

namespace inc::fleet
{

namespace
{

/**
 * Payload byte count a header line announces (RESULT and PROGRESS:
 * sum of their three length fields; ERROR and STATE: one length
 * field; everything else: none). False on a header whose lengths do
 * not parse.
 */
bool
payloadBytes(const std::string &line, std::size_t *need,
             std::string *error)
{
    std::istringstream in(line);
    std::string kind;
    in >> kind;
    *need = 0;
    if (kind == "RESULT") {
        std::size_t index = 0, result_len = 0, metrics_len = 0,
                    error_len = 0;
        int attempts = 0, ok = 0;
        in >> index >> attempts >> ok >> result_len >> metrics_len >>
            error_len;
        if (!in) {
            *error = "malformed RESULT header: " + line;
            return false;
        }
        *need = result_len + metrics_len + error_len;
        return true;
    }
    if (kind == "PROGRESS") {
        std::size_t shard_id = 0, done = 0, assigned = 0,
                    label_len = 0, metrics_len = 0, spans_len = 0;
        in >> shard_id >> done >> assigned >> label_len >>
            metrics_len >> spans_len;
        if (!in) {
            *error = "malformed PROGRESS header: " + line;
            return false;
        }
        *need = label_len + metrics_len + spans_len;
        return true;
    }
    if (kind == "ERROR" || kind == "STATE") {
        std::size_t len = 0;
        in >> len;
        if (!in) {
            *error = "malformed " + kind + " header: " + line;
            return false;
        }
        *need = len;
        return true;
    }
    return true;
}

} // namespace

std::string
messageKind(const std::string &line)
{
    const std::size_t space = line.find(' ');
    return space == std::string::npos ? line : line.substr(0, space);
}

void
MessageReader::feed(const char *data, std::size_t n)
{
    buffer_.append(data, n);
}

bool
MessageReader::next(Message *out, std::string *error)
{
    error->clear();
    if (!have_line_) {
        const std::size_t nl = buffer_.find('\n');
        if (nl == std::string::npos)
            return false;
        line_ = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        if (!payloadBytes(line_, &need_, error))
            return false;
        have_line_ = true;
    }
    if (buffer_.size() < need_)
        return false;
    out->line = std::move(line_);
    out->payload = buffer_.substr(0, need_);
    buffer_.erase(0, need_);
    line_.clear();
    have_line_ = false;
    need_ = 0;
    return true;
}

std::string
encodeHello(const std::string &fingerprint, long pid)
{
    return util::format("HELLO %s %ld\n", fingerprint.c_str(), pid);
}

std::string
encodeShard(const runner::ShardRange &shard)
{
    return util::format("SHARD %zu %zu %zu\n", shard.id, shard.begin,
                        shard.end);
}

std::string
encodeExit()
{
    return "EXIT\n";
}

std::string
encodeDone(std::size_t shard_id)
{
    return util::format("DONE %zu\n", shard_id);
}

std::string
encodeError(const std::string &message)
{
    return util::format("ERROR %zu\n", message.size()) + message;
}

std::string
encodeResult(const runner::JobResult &result)
{
    // The SweepJournal payload convention: serialized result text for
    // successful jobs, metrics JSON only when a registry was attached.
    const std::string result_text =
        result.ok ? sim::serializeResult(result.result)
                  : std::string();
    const std::string metrics_json =
        result.metrics.empty() ? std::string()
                               : result.metrics.toJson();
    std::string frame = util::format(
        "RESULT %zu %d %d %zu %zu %zu\n", result.spec.index,
        result.attempts, result.ok ? 1 : 0, result_text.size(),
        metrics_json.size(), result.error.size());
    frame += result_text;
    frame += metrics_json;
    frame += result.error;
    return frame;
}

std::string
encodeProgress(const ProgressUpdate &update)
{
    std::string frame = util::format(
        "PROGRESS %zu %zu %zu %zu %zu %zu\n", update.shard_id,
        update.jobs_done, update.jobs_assigned, update.label.size(),
        update.metrics_json.size(), update.spans_json.size());
    frame += update.label;
    frame += update.metrics_json;
    frame += update.spans_json;
    return frame;
}

std::string
encodeState(const std::string &snapshot_json)
{
    return util::format("STATE %zu\n", snapshot_json.size()) +
           snapshot_json;
}

bool
parseHello(const std::string &line, std::string *fingerprint,
           long *pid)
{
    std::istringstream in(line);
    std::string kind;
    in >> kind >> *fingerprint >> *pid;
    return static_cast<bool>(in) && kind == "HELLO";
}

bool
parseShard(const std::string &line, runner::ShardRange *out)
{
    std::istringstream in(line);
    std::string kind;
    in >> kind >> out->id >> out->begin >> out->end;
    return static_cast<bool>(in) && kind == "SHARD" &&
           out->begin < out->end;
}

bool
parseDone(const std::string &line, std::size_t *shard_id)
{
    std::istringstream in(line);
    std::string kind;
    in >> kind >> *shard_id;
    return static_cast<bool>(in) && kind == "DONE";
}

bool
decodeResult(const Message &message, DecodedResult *out,
             std::string *error)
{
    std::istringstream in(message.line);
    std::string kind;
    std::size_t result_len = 0, metrics_len = 0, error_len = 0;
    int ok = 0;
    in >> kind >> out->index >> out->attempts >> ok >> result_len >>
        metrics_len >> error_len;
    if (!in || kind != "RESULT") {
        *error = "malformed RESULT header: " + message.line;
        return false;
    }
    if (message.payload.size() != result_len + metrics_len + error_len) {
        *error = util::format("RESULT payload is %zu bytes, header "
                              "announced %zu",
                              message.payload.size(),
                              result_len + metrics_len + error_len);
        return false;
    }
    out->ok = ok != 0;
    out->result_text = message.payload.substr(0, result_len);
    out->metrics_json = message.payload.substr(result_len, metrics_len);
    out->error = message.payload.substr(result_len + metrics_len,
                                        error_len);
    return true;
}

bool
decodeProgress(const Message &message, ProgressUpdate *out,
               std::string *error)
{
    std::istringstream in(message.line);
    std::string kind;
    std::size_t label_len = 0, metrics_len = 0, spans_len = 0;
    in >> kind >> out->shard_id >> out->jobs_done >>
        out->jobs_assigned >> label_len >> metrics_len >> spans_len;
    if (!in || kind != "PROGRESS") {
        *error = "malformed PROGRESS header: " + message.line;
        return false;
    }
    if (message.payload.size() != label_len + metrics_len + spans_len) {
        *error = util::format("PROGRESS payload is %zu bytes, header "
                              "announced %zu",
                              message.payload.size(),
                              label_len + metrics_len + spans_len);
        return false;
    }
    if (out->jobs_done > out->jobs_assigned) {
        *error = util::format("PROGRESS claims %zu of %zu shard jobs "
                              "done",
                              out->jobs_done, out->jobs_assigned);
        return false;
    }
    out->label = message.payload.substr(0, label_len);
    out->metrics_json = message.payload.substr(label_len, metrics_len);
    out->spans_json =
        message.payload.substr(label_len + metrics_len, spans_len);
    return true;
}

bool
decodeState(const Message &message, std::string *snapshot_json,
            std::string *error)
{
    std::istringstream in(message.line);
    std::string kind;
    std::size_t len = 0;
    in >> kind >> len;
    if (!in || kind != "STATE") {
        *error = "malformed STATE header: " + message.line;
        return false;
    }
    if (message.payload.size() != len) {
        *error = util::format("STATE payload is %zu bytes, header "
                              "announced %zu",
                              message.payload.size(), len);
        return false;
    }
    *snapshot_json = message.payload;
    return true;
}

bool
resultFromDecoded(const DecodedResult &decoded,
                  const runner::JobSpec &spec, runner::JobResult *out,
                  std::string *error)
{
    if (decoded.index != spec.index) {
        *error = util::format("RESULT for job %zu folded against spec "
                              "of job %zu",
                              decoded.index, spec.index);
        return false;
    }
    runner::JobResult jr;
    jr.spec = spec;
    jr.attempts = decoded.attempts;
    jr.ok = decoded.ok;
    jr.error = decoded.error;
    if (decoded.ok &&
        !sim::parseResult(decoded.result_text, &jr.result, error))
        return false;
    if (!decoded.metrics_json.empty() &&
        !obs::MetricsRegistry::fromJson(decoded.metrics_json,
                                        &jr.metrics, error))
        return false;
    *out = std::move(jr);
    return true;
}

} // namespace inc::fleet
