/**
 * @file
 * Output-quality metrics: mean squared error and peak signal-to-noise
 * ratio against an 8-bit precise baseline (paper Sec. 8.1). The paper's
 * MATLAB quality analysis is replaced by these in-library equivalents.
 */

#ifndef INC_APPROX_QUALITY_H
#define INC_APPROX_QUALITY_H

#include <cstdint>
#include <vector>

#include "util/image.h"

namespace inc::approx
{

/** MSE between two equal-length byte sequences. */
double mse(const std::vector<std::uint8_t> &a,
           const std::vector<std::uint8_t> &b);

/** MSE between two equal-size images. */
double mse(const util::Image &a, const util::Image &b);

/**
 * PSNR in dB for 8-bit data: 10*log10(255^2 / mse). Identical outputs
 * report +inf, returned as kPsnrCap.
 */
double psnrFromMse(double mse_value);

/** PSNR cap reported for exact matches, dB. */
constexpr double kPsnrCap = 99.0;

double psnr(const std::vector<std::uint8_t> &a,
            const std::vector<std::uint8_t> &b);
double psnr(const util::Image &a, const util::Image &b);

/**
 * MSE over the positions where @p mask is non-zero only. Incidental
 * outputs may be partial; quality is scored over the pixels actually
 * produced while completeness is reported separately as coverage.
 * Returns 0 when the mask selects nothing.
 */
double maskedMse(const std::vector<std::uint8_t> &a,
                 const std::vector<std::uint8_t> &b,
                 const std::vector<std::uint8_t> &mask);

/** Quality record for one output frame. */
struct QualityScore
{
    double mse = 0.0;
    double psnr = kPsnrCap;
    double coverage = 1.0; ///< fraction of output pixels actually written
};

} // namespace inc::approx

#endif // INC_APPROX_QUALITY_H
