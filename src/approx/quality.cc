#include "approx/quality.h"

#include <cmath>

#include "util/logging.h"

namespace inc::approx
{

double
mse(const std::vector<std::uint8_t> &a, const std::vector<std::uint8_t> &b)
{
    if (a.size() != b.size())
        util::panic("mse: size mismatch (%zu vs %zu)", a.size(), b.size());
    if (a.empty())
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) -
                         static_cast<double>(b[i]);
        sum += d * d;
    }
    return sum / static_cast<double>(a.size());
}

double
mse(const util::Image &a, const util::Image &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        util::panic("mse: image size mismatch");
    return mse(a.data(), b.data());
}

double
psnrFromMse(double mse_value)
{
    if (mse_value <= 0.0)
        return kPsnrCap;
    const double v = 10.0 * std::log10(255.0 * 255.0 / mse_value);
    return v > kPsnrCap ? kPsnrCap : v;
}

double
psnr(const std::vector<std::uint8_t> &a, const std::vector<std::uint8_t> &b)
{
    return psnrFromMse(mse(a, b));
}

double
maskedMse(const std::vector<std::uint8_t> &a,
          const std::vector<std::uint8_t> &b,
          const std::vector<std::uint8_t> &mask)
{
    if (a.size() != b.size() || a.size() != mask.size())
        util::panic("maskedMse: size mismatch");
    double sum = 0.0;
    std::size_t n = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        if (!mask[i])
            continue;
        const double d = static_cast<double>(a[i]) -
                         static_cast<double>(b[i]);
        sum += d * d;
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
psnr(const util::Image &a, const util::Image &b)
{
    return psnrFromMse(mse(a, b));
}

} // namespace inc::approx
