/**
 * @file
 * Power-tracking bitwidth control (paper Secs. 3.1, 4, 8.3).
 *
 * The approximation control unit sets the number of precise datapath and
 * memory bits per component from the available power level: between the
 * pragma's minbits (quality floor) and maxbits. Approximation is
 * *passive* — it is induced by insufficient power on a computation that
 * is precise by default — so with a full capacitor the controller returns
 * maxbits and precision degrades as reserves fall.
 */

#ifndef INC_APPROX_BITWIDTH_CONTROLLER_H
#define INC_APPROX_BITWIDTH_CONTROLLER_H

#include <array>
#include <cstdint>

namespace inc::approx
{

/** How the main lane's precision is chosen. */
enum class ApproxMode
{
    precise, ///< always 8 bits (baseline NVP)
    fixed,   ///< fixed reduced bitwidth (Figs. 11-16)
    dynamic  ///< tracks stored energy within [minbits, maxbits]
};

/** Configuration of the bitwidth controller. */
struct BitwidthConfig
{
    ApproxMode mode = ApproxMode::precise;
    int fixed_bits = 8; ///< used by ApproxMode::fixed
    int min_bits = 1;   ///< dynamic floor (pragma minbits)
    int max_bits = 8;   ///< dynamic ceiling (pragma maxbits)

    /**
     * Stored-energy fractions (of capacitor capacity) mapped to min_bits
     * and max_bits respectively; linear in between.
     */
    double low_energy_frac = 0.15;
    double high_energy_frac = 0.75;
};

/**
 * Maps the live energy state to a bitwidth and records the utilization
 * histogram that Fig. 18 plots (time spent at each bitwidth plus OFF).
 */
class BitwidthController
{
  public:
    explicit BitwidthController(BitwidthConfig config = {});

    const BitwidthConfig &config() const { return config_; }

    /**
     * Current bitwidth for the main lane given the stored-energy fraction
     * in [0,1]. Clamped to [1,8] always.
     */
    int mainBits(double energy_frac) const;

    /**
     * Bitwidth for an incidental lane: always dynamic within
     * [min_bits, max_bits] regardless of mode (Table 2: "full precision
     * in the current iteration and dynamic bitwidth for incidental loop
     * executions").
     */
    int incidentalBits(double energy_frac) const;

    /** Record one 0.1 ms tick at bitwidth @p bits (0 = system off). */
    void recordTick(int bits);

    /** Ticks recorded at @p bits (0 = off). */
    std::uint64_t ticksAt(int bits) const;

    /** Fraction of ticks at @p bits; 0 if nothing recorded. */
    double fractionAt(int bits) const;

    std::uint64_t totalTicks() const { return total_ticks_; }

    void resetHistogram();

  private:
    int dynamicBits(double energy_frac, int lo, int hi) const;

    BitwidthConfig config_;
    std::array<std::uint64_t, 9> ticks_{}; ///< [0]=off, [1..8]=bits
    std::uint64_t total_ticks_ = 0;
};

} // namespace inc::approx

#endif // INC_APPROX_BITWIDTH_CONTROLLER_H
