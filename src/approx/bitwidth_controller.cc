#include "approx/bitwidth_controller.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace inc::approx
{

BitwidthController::BitwidthController(BitwidthConfig config)
    : config_(config)
{
    if (config_.min_bits < 1 || config_.max_bits > 8 ||
        config_.min_bits > config_.max_bits) {
        util::fatal("BitwidthConfig bits must satisfy 1 <= min <= max <= 8"
                    " (got %d..%d)",
                    config_.min_bits, config_.max_bits);
    }
    if (config_.fixed_bits < 1 || config_.fixed_bits > 8)
        util::fatal("BitwidthConfig fixed_bits must be 1..8");
    if (config_.low_energy_frac >= config_.high_energy_frac)
        util::fatal("BitwidthConfig energy fractions must be increasing");
}

int
BitwidthController::dynamicBits(double energy_frac, int lo, int hi) const
{
    const double t =
        (energy_frac - config_.low_energy_frac) /
        (config_.high_energy_frac - config_.low_energy_frac);
    const int span = hi - lo;
    const int bits =
        lo + static_cast<int>(std::floor(t * (span + 1)));
    return std::clamp(bits, lo, hi);
}

int
BitwidthController::mainBits(double energy_frac) const
{
    switch (config_.mode) {
      case ApproxMode::precise:
        return 8;
      case ApproxMode::fixed:
        return config_.fixed_bits;
      case ApproxMode::dynamic:
        return dynamicBits(energy_frac, config_.min_bits,
                           config_.max_bits);
    }
    util::panic("unhandled ApproxMode");
}

int
BitwidthController::incidentalBits(double energy_frac) const
{
    return dynamicBits(energy_frac, config_.min_bits, config_.max_bits);
}

void
BitwidthController::recordTick(int bits)
{
    if (bits < 0 || bits > 8)
        util::panic("recordTick bits out of range: %d", bits);
    ++ticks_[static_cast<size_t>(bits)];
    ++total_ticks_;
}

std::uint64_t
BitwidthController::ticksAt(int bits) const
{
    if (bits < 0 || bits > 8)
        util::panic("ticksAt bits out of range: %d", bits);
    return ticks_[static_cast<size_t>(bits)];
}

double
BitwidthController::fractionAt(int bits) const
{
    if (total_ticks_ == 0)
        return 0.0;
    return static_cast<double>(ticksAt(bits)) /
           static_cast<double>(total_ticks_);
}

void
BitwidthController::resetHistogram()
{
    ticks_.fill(0);
    total_ticks_ = 0;
}

} // namespace inc::approx
