/**
 * @file
 * nvpsim — command-line front end to the incidental-computing stack.
 *
 * Subcommands:
 *
 *   nvpsim trace [--profile N] [--seconds S] [--seed K] [--out F.csv]
 *       Synthesize a watch-harvester trace, print its statistics, and
 *       optionally save it as CSV (loadable back via --trace).
 *
 *   nvpsim run [--kernel NAME] [--profile N | --trace F.csv]
 *              [--mode precise|fixed|dynamic] [--bits B] [--minbits B]
 *              [--policy full|linear|log|parabola] [--baseline]
 *              [--engine reference|predecoded|batch]
 *              [--strategy active|freezer|ondemand] [--seconds S]
 *              [--seed K]
 *              [--metrics F.json] [--trace-out F.trace.json]
 *              [--arena DIR]
 *       Co-simulate a kernel on a power trace and print the result
 *       record (forward progress, backups, quality, lane statistics).
 *       --metrics attaches an observer (src/obs) and writes its metric
 *       registry as JSON, then verifies the cross-metric identities of
 *       obs/schema.h (violations exit nonzero). --trace-out writes a
 *       Chrome-trace / Perfetto JSON timeline (power phases, backups,
 *       restores, frame lifetimes, capacitor level); it is named
 *       --trace-out rather than --trace because --trace already means
 *       "input power-trace CSV". --arena DIR backs the simulated NVM
 *       (data memory + RAC version store) with a persistence arena
 *       (src/arena) at DIR instead of heap buffers; with --metrics the
 *       arena.* session statistics are folded into the registry.
 *       --strategy selects the backup strategy attached to the run
 *       (sim::allStrategies(): active, freezer, ondemand; DESIGN.md
 *       §14). Strategies are an observation overlay — the simulated
 *       trajectory is bit-identical across all of them — that persists
 *       a checkpoint image ("ckpt.image"/"ckpt.meta", CRC-verified,
 *       arena-backed with --arena) and reports its backup cost in the
 *       ckpt.* metric block.
 *
 *   nvpsim sweep [--kernels A,B,...|all] [--profiles 1,2,...|all]
 *                [--mode precise|fixed|dynamic] [--bits B] [--minbits B]
 *                [--policy full|linear|log|parabola] [--baseline]
 *                [--engine reference|predecoded|batch]
 *                [--strategy active|freezer|ondemand] [--seconds S]
 *                [--seed K] [--jobs N] [--batch-width W] [--out F.csv]
 *                [--metrics F.json] [--report] [--report-out F.json]
 *                [--arena DIR] [--resume] [--kill-after N]
 *       Run the kernel x profile grid in parallel on N worker threads
 *       (default: hardware concurrency) via runner::SweepRunner.
 *       Results are aggregated in deterministic job order — the output
 *       is byte-identical at any --jobs value, including the merged
 *       metric registry that --metrics writes (per-job registries are
 *       folded in job-index order and scheduling artifacts are
 *       excluded). Failing jobs are retried once, then reported; the
 *       exit status is nonzero only if failures remain after retry.
 *       --inject-failure J makes job J throw (a testing aid for the
 *       failure-capture path). --batch-width W packs pending jobs, in
 *       expansion order, into lane-batched groups of up to W
 *       co-simulators stepped in lockstep (sim::SimBatch); like
 *       --jobs, it only changes scheduling — every output is
 *       byte-identical at any --jobs x --batch-width combination.
 *       --report derives a run report from the
 *       merged registry (plus per-kernel efficiency rows) and prints
 *       it; --report-out saves its JSON. Report output carries no
 *       scheduling artifacts — with --report the sweep header also
 *       omits worker/wall-clock info — so the full stdout and the
 *       saved report are byte-identical at any --jobs value.
 *       --arena DIR journals campaign progress into a persistence
 *       arena: each completed job's bit-exact result is committed to
 *       DIR, and a killed campaign restarted with the same flags plus
 *       --resume re-runs only the unfinished jobs — the merged
 *       metrics/report/CSV output is byte-identical to an
 *       uninterrupted run. Resuming requires --resume (a bound arena
 *       without it is a fatal error, as is a flag/fingerprint
 *       mismatch). Arena session statistics go to stderr so stdout
 *       stays parallelism- and history-independent. --kill-after N is
 *       a testing aid that SIGKILLs the process after N jobs have been
 *       journaled.
 *
 *   nvpsim serve CAMPAIGN.json --workers N [--fleet-dir DIR]
 *                [--socket PATH] [--shards S] [--worker-jobs J]
 *                [--max-shard-retries R] [--heartbeat-timeout SEC]
 *                [--out F.csv] [--metrics F.json] [--report]
 *                [--report-out F.json] [--fleet-metrics F.json]
 *                [--status-socket [PATH]] [--trace-out F.trace.json]
 *                [--progress-every N] [--kill-worker-after K]
 *       Fleet campaign service (src/fleet, DESIGN.md §15): expand the
 *       campaign file's sweep grid once, partition it into contiguous
 *       job shards, and execute them across N `nvpsim work` child
 *       processes over a Unix-domain socket, folding every streamed
 *       result back into job-index order. The folded --out/--metrics/
 *       --report output is byte-identical to the serial `nvpsim
 *       sweep` with the same campaign at ANY --workers count — the
 *       shard plan and delivery order only schedule when a job runs,
 *       never what it computes. Workers journal each shard into a
 *       per-shard persistence arena under --fleet-dir (default
 *       CAMPAIGN.json.fleet): a worker that crashes (detected by
 *       socket EOF) or stalls past --heartbeat-timeout is SIGKILLed
 *       and its shard reassigned (bounded by --max-shard-retries,
 *       default 3) to a respawned worker, which warm-restarts from
 *       the journal instead of recomputing. Serving the same campaign
 *       into the same --fleet-dir resumes it; a fleet dir whose
 *       fingerprint marker names a different campaign is a hard
 *       error. fleet.* scheduling metrics (shards dispatched/
 *       reassigned/retried, workers spawned/lost, worker wall time,
 *       merge bytes) stay in a separate registry — stderr summary and
 *       a telemetry snapshot JSON ({"schema":"inc-fleet-telemetry-v1",
 *       "campaign":FP,"fleet":{...}}) written to --fleet-metrics or,
 *       by default when --metrics F.json is given, to
 *       F.json.fleet.json — so campaign outputs stay crash-history-
 *       independent. --kill-worker-after K is a testing
 *       aid: first-generation workers SIGKILL themselves after K
 *       journaled jobs (respawned replacements run clean), the
 *       kill/reassign matrix of tests/test_fleet.cc.
 *       Live telemetry plane (DESIGN.md §16): workers stream PROGRESS
 *       frames every --progress-every delivered jobs (default 1, 0
 *       disables) carrying shard position, a cumulative metrics
 *       snapshot and completed trace spans. --status-socket [PATH]
 *       opens a second Unix socket (default <fleet-dir>/status.sock)
 *       that streams point-in-time STATE snapshots to every
 *       connection — see `nvpsim status`. --trace-out merges worker
 *       span batches with coordinator scheduling events
 *       (spawn/hello/assign/reassign/loss) into one Chrome-trace /
 *       Perfetto JSON with a process-name record per worker, on a
 *       shared wall-clock time base. The entire plane is read-only
 *       over the result path: all campaign outputs stay byte-identical
 *       whether or not any of these flags are set.
 *
 *   nvpsim work --socket PATH --campaign FILE --fleet-dir DIR
 *               [--jobs N] [--collect-metrics 0|1]
 *               [--progress-every N] [--kill-after K]
 *       Fleet worker entry point (spawned by `nvpsim serve`; usable
 *       manually for debugging). Connects to the coordinator socket,
 *       announces the campaign fingerprint it derived independently
 *       from the campaign file, and executes SHARD assignments —
 *       journal-backed, streaming each result the moment it commits —
 *       until told to EXIT.
 *
 *   nvpsim status <SOCKET|FLEET-DIR> [--json] [--watch]
 *       Query a running campaign's --status-socket (a fleet dir
 *       resolves to DIR/status.sock). By default prints a one-shot
 *       human-readable snapshot: jobs done/total, shard progress,
 *       throughput and ETA, a per-worker health table (pid,
 *       generation, ok/starting/stale/lost, heartbeat age, shard
 *       position, current job), and live outage percentiles folded
 *       from worker PROGRESS snapshots. --json prints the raw
 *       inc-fleet-status-v1 document instead; --watch follows the
 *       stream until the campaign completes (with --json, one
 *       document per line — the final one always reports
 *       jobs_done == jobs_total). Exits nonzero when the socket is
 *       unreachable or no snapshot arrives.
 *
 *   nvpsim fuzz [--trials N] [--seed K] [--jobs N] [--samples S]
 *               [--repro-dir DIR] [--minimize] [--replay DIR]
 *               [--inject-bug leaky-backup] [--engine-diff]
 *               [--modes A,B,...]
 *       Differential crash-consistency fuzzing (src/check): N seeded
 *       trials of randomized kernels on mutated power traces through
 *       the co-simulator, cross-validated against the functional
 *       simulator and the structural invariants of incidental
 *       computing. Violations exit nonzero and, with --repro-dir,
 *       write self-contained repro bundles (--minimize also shrinks
 *       them). --replay re-runs one bundle deterministically.
 *       --inject-bug is a testing aid that plants a known recovery
 *       bug so the harness itself can be validated. --engine-diff
 *       additionally re-runs every co-simulator trial under each of
 *       the other registered engines (nvp::allExecEngines():
 *       reference, predecoded, batch) and requires the serialized
 *       SimResult and metrics JSON to match byte-for-byte (the
 *       engine-equivalence invariant; see DESIGN.md §11, §13).
 *       --modes restricts trials to a comma-separated list of trial
 *       modes (exact_recovery, bounded_error, monotone_bits,
 *       rac_merge, arena_recovery, batch_lanes, strategy_diff,
 *       fleet_merge);
 *       filtered trials keep the specs an unfiltered run of the same
 *       seed would draw, so repro seeds stay exact.
 *
 *   nvpsim report [--kernel NAME] [--profile N | --trace F.csv]
 *                 [run flags] [--flight-capacity N] [--out F.json]
 *                 [--from-metrics F.json]
 *       Run a co-simulation with an observer + flight recorder attached
 *       and print the derived run report (src/obs/report): energy
 *       attribution over the energy.* ledger split, conservation
 *       ledger, outage/on-period p50/p95/p99, per-kernel
 *       forward-progress efficiency, and the per-outage flight log.
 *       --out also saves the canonical JSON form. --from-metrics
 *       re-derives the report offline from a previously written
 *       metrics JSON (no simulation, no flight log). Exits nonzero
 *       when the registry violates the obs/schema.h identities.
 *
 *   nvpsim asm FILE.s [--run] [--steps N]
 *       Assemble a program; print the disassembly, optionally execute.
 *
 *   nvpsim kernels
 *       List the registered testbench kernels with program sizes.
 */

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

#include "arena/arena.h"
#include "arena/backend.h"
#include "check/diff_harness.h"
#include "core/pragma_parser.h"
#include "fleet/campaign.h"
#include "fleet/coordinator.h"
#include "fleet/protocol.h"
#include "fleet/socket.h"
#include "fleet/worker.h"
#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "kernels/kernel.h"
#include "obs/event_tracer.h"
#include "obs/json.h"
#include "obs/observer.h"
#include "obs/report/flight_recorder.h"
#include "obs/report/report.h"
#include "obs/schema.h"
#include "runner/journal.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "sim/system_sim.h"
#include "trace/outage_stats.h"
#include "trace/trace_generator.h"
#include "util/csv.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/table.h"

using namespace inc;

namespace
{

/** Tiny --flag value argument parser. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 0; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                const std::string key = arg.substr(2);
                const std::size_t eq = key.find('=');
                if (eq != std::string::npos) {
                    // --key=value form.
                    values_[key.substr(0, eq)] = key.substr(eq + 1);
                } else if (i + 1 < argc && argv[i + 1][0] != '-') {
                    values_[key] = argv[++i];
                } else {
                    values_[key] = "1";
                }
            } else {
                positional_.push_back(arg);
            }
        }
    }

    std::string get(const std::string &key,
                    const std::string &fallback = "") const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    double num(const std::string &key, double fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::strtod(it->second.c_str(),
                                                 nullptr);
    }

    bool has(const std::string &key) const
    {
        return values_.count(key) > 0;
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

/** Write @p content to @p path, creating the parent directory first
 *  (nested output paths get the same treatment as INC_BENCH_OUTDIR). */
bool
writeTextFile(const std::string &path, const std::string &content)
{
    if (!util::ensureParentDir(path))
        return false;
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out);
}

/** Open (or create/recover) a persistence arena; fatal on corruption
 *  the recovery path cannot skip. */
std::unique_ptr<arena::Arena>
openArenaOrDie(const std::string &dir)
{
    try {
        return arena::Arena::open(dir);
    } catch (const std::exception &e) {
        util::fatal("cannot open arena '%s': %s", dir.c_str(),
                    e.what());
    }
    return nullptr; // unreachable
}

trace::PowerTrace
loadOrGenerateTrace(const Args &args)
{
    if (args.has("trace")) {
        trace::PowerTrace t =
            trace::PowerTrace::loadCsv(args.get("trace"), "file trace");
        if (t.empty())
            util::fatal("could not load trace '%s'",
                        args.get("trace").c_str());
        return t;
    }
    const int profile = static_cast<int>(args.num("profile", 2));
    const double seconds = args.num("seconds", 5.0);
    const auto seed = static_cast<std::uint64_t>(args.num("seed", 2017));
    trace::TraceGenerator gen(trace::paperProfile(profile), seed);
    return gen.generate(static_cast<std::size_t>(seconds * 1e4));
}

int
cmdTrace(const Args &args)
{
    const trace::PowerTrace t = loadOrGenerateTrace(args);
    const trace::OutageStats stats = trace::analyzeOutages(t);

    util::Table table(t.name());
    table.setHeader({"metric", "value"});
    table.addRow({"duration", util::Table::num(t.durationSec(), 2) +
                                  " s"});
    table.addRow({"mean power",
                  util::Table::num(t.meanPower(), 1) + " uW"});
    table.addRow({"peak power",
                  util::Table::num(t.peakPower(), 0) + " uW"});
    table.addRow({"harvestable energy",
                  util::Table::num(t.totalEnergyUj(), 1) + " uJ"});
    table.addRow({"emergencies (33 uW)",
                  util::Table::integer(
                      static_cast<long long>(stats.count()))});
    table.addRow({"mean outage",
                  util::Table::num(stats.meanDurationTenthMs() / 10.0,
                                   2) +
                      " ms"});
    table.addRow({"longest outage",
                  util::Table::num(stats.maxDurationTenthMs() / 10.0,
                                   1) +
                      " ms"});
    table.print();

    if (args.has("out")) {
        if (!t.saveCsv(args.get("out")))
            util::fatal("could not write '%s'", args.get("out").c_str());
        std::printf("trace written to %s\n", args.get("out").c_str());
    }
    return 0;
}

/** Build a SimConfig from the shared run/sweep command-line flags. */
sim::SimConfig
configFromArgs(const Args &args)
{
    sim::SimConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(args.num("seed", 2017));
    const std::string mode = args.get("mode", "dynamic");
    if (mode == "precise") {
        cfg.bits.mode = approx::ApproxMode::precise;
    } else if (mode == "fixed") {
        cfg.bits.mode = approx::ApproxMode::fixed;
        cfg.bits.fixed_bits = static_cast<int>(args.num("bits", 4));
    } else if (mode == "dynamic") {
        cfg.bits.mode = approx::ApproxMode::dynamic;
        cfg.bits.min_bits = static_cast<int>(args.num("minbits", 2));
    } else {
        util::fatal("unknown --mode '%s'", mode.c_str());
    }
    cfg.controller.backup_policy =
        nvm::policyFromName(args.get("policy", "linear"));
    if (args.has("baseline")) {
        cfg.controller.roll_forward = false;
        cfg.controller.simd_adoption = false;
        cfg.controller.history_spawn = false;
        cfg.controller.process_newest_first = false;
    }
    cfg.income_scale = args.num("income-scale", cfg.income_scale);
    cfg.frame_period_factor =
        args.num("frame-factor", cfg.frame_period_factor);
    if (args.has("engine")) {
        const std::string engine = args.get("engine");
        const auto parsed = nvp::execEngineFromName(engine);
        if (!parsed)
            util::fatal("unknown --engine '%s' (%s)", engine.c_str(),
                        nvp::execEngineNames().c_str());
        cfg.exec_engine = *parsed;
    }
    if (args.has("strategy")) {
        const std::string strategy = args.get("strategy");
        const auto parsed = sim::strategyFromName(strategy);
        if (!parsed)
            util::fatal("unknown --strategy '%s' (%s)",
                        strategy.c_str(),
                        sim::strategyNames().c_str());
        cfg.strategy = *parsed;
    }
    return cfg;
}

int
cmdRun(const Args &args)
{
    const std::string name = args.get("kernel", "sobel");
    const trace::PowerTrace t = loadOrGenerateTrace(args);
    const kernels::Kernel kernel = kernels::makeKernel(name);
    sim::SimConfig cfg = configFromArgs(args);

    const bool want_metrics = args.has("metrics");
    const bool want_trace = args.has("trace-out");
    obs::Observer observer;
    obs::EventTracer tracer;
    if (want_metrics || want_trace) {
        if (want_trace)
            observer.tracer = &tracer;
        cfg.obs = &observer;
    }

    // --arena: back the simulated NVM with a file-resident persistence
    // arena so the data-memory image survives the process.
    std::unique_ptr<arena::Arena> store;
    std::unique_ptr<arena::ArenaBackend> backend;
    if (args.has("arena")) {
        store = openArenaOrDie(args.get("arena"));
        backend = std::make_unique<arena::ArenaBackend>(store.get());
        cfg.persistence = backend.get();
    }

    sim::SystemSimulator s(kernel, &t, cfg);
    const sim::SimResult r = s.run();

    util::Table table(name + " on " + t.name());
    table.setHeader({"metric", "value"});
    auto add = [&table](const char *k, const std::string &v) {
        table.addRow({k, v});
    };
    add("forward progress (all lanes)",
        util::Table::integer(
            static_cast<long long>(r.forward_progress)));
    add("lane-0 instructions",
        util::Table::integer(
            static_cast<long long>(r.main_instructions)));
    add("system-on time",
        util::Table::num(100.0 * r.on_time_fraction, 1) + " %");
    add("backups / restores",
        util::Table::integer(static_cast<long long>(r.backups)) + " / " +
            util::Table::integer(static_cast<long long>(r.restores)));
    add("roll-forwards",
        util::Table::integer(
            static_cast<long long>(r.controller.roll_forwards)));
    add("SIMD adoptions",
        util::Table::integer(
            static_cast<long long>(r.controller.adoptions)));
    add("history spawns",
        util::Table::integer(
            static_cast<long long>(r.controller.history_spawns)));
    add("frames captured / completed",
        util::Table::integer(
            static_cast<long long>(r.frames_captured)) +
            " / " +
            util::Table::integer(static_cast<long long>(
                r.controller.frames_completed)));
    if (r.frames_scored > 0) {
        add("mean PSNR",
            util::Table::num(r.mean_psnr, 1) + " dB over " +
                util::Table::integer(r.frames_scored) + " frames");
        add("mean coverage",
            util::Table::num(100.0 * r.mean_coverage, 1) + " %");
    }
    add("backup energy",
        util::Table::num(r.backup_energy_nj / 1000.0, 1) + " uJ");
    add("retention violations",
        util::Table::integer(static_cast<long long>(
            r.retention_failures.totalViolations())));
    table.print();

    if (want_trace) {
        const std::string path = args.get("trace-out");
        if (!util::ensureParentDir(path))
            util::fatal("cannot create parent directory for '%s'",
                        path.c_str());
        if (!tracer.writeChromeTraceJson(path))
            util::fatal("could not write '%s'", path.c_str());
        std::printf("chrome trace written to %s (%zu events",
                    path.c_str(), tracer.size());
        if (tracer.dropped() > 0)
            std::printf(", %llu dropped",
                        static_cast<unsigned long long>(
                            tracer.dropped()));
        std::printf(")\n");
    }
    if (want_metrics) {
        const std::string path = args.get("metrics");
        if (!util::ensureParentDir(path))
            util::fatal("cannot create parent directory for '%s'",
                        path.c_str());
        if (store)
            arena::publishArenaStats(store->stats(),
                                     observer.registry);
        if (!observer.registry.writeJson(path))
            util::fatal("could not write '%s'", path.c_str());
        std::printf("metrics written to %s\n", path.c_str());
        const std::vector<std::string> problems =
            obs::verifySimMetricIdentities(observer.registry);
        if (!problems.empty()) {
            for (const auto &p : problems)
                std::fprintf(stderr, "metric identity violated: %s\n",
                             p.c_str());
            return 1;
        }
    }
    return 0;
}

int
cmdReport(const Args &args)
{
    const std::string out = args.get("out");

    // Offline mode: re-derive the report from a saved metrics JSON
    // (e.g. one written by `run --metrics` or `sweep --metrics`).
    if (args.has("from-metrics")) {
        const std::string path = args.get("from-metrics");
        std::ifstream f(path, std::ios::binary);
        if (!f)
            util::fatal("cannot open '%s'", path.c_str());
        std::ostringstream ss;
        ss << f.rdbuf();
        obs::MetricsRegistry registry;
        std::string error;
        if (!obs::MetricsRegistry::fromJson(ss.str(), &registry,
                                            &error))
            util::fatal("could not parse '%s': %s", path.c_str(),
                        error.c_str());
        const obs::RunReport report = obs::buildRunReport(registry);
        std::fputs(report.renderText().c_str(), stdout);
        if (!out.empty()) {
            if (!writeTextFile(out, report.toJson()))
                util::fatal("could not write '%s'", out.c_str());
            std::printf("report written to %s\n", out.c_str());
        }
        return report.identity_violations.empty() ? 0 : 1;
    }

    const std::string name = args.get("kernel", "sobel");
    const trace::PowerTrace t = loadOrGenerateTrace(args);
    const kernels::Kernel kernel = kernels::makeKernel(name);
    sim::SimConfig cfg = configFromArgs(args);

    const auto capacity = static_cast<std::size_t>(
        args.num("flight-capacity", 1024));
    obs::Observer observer;
    obs::FlightRecorder flight(capacity, capacity);
    observer.flight = &flight;
    cfg.obs = &observer;

    sim::SystemSimulator s(kernel, &t, cfg);
    const sim::SimResult r = s.run();

    std::vector<obs::KernelEfficiency> efficiency(1);
    efficiency[0].kernel = name;
    efficiency[0].forward_progress = r.forward_progress;
    efficiency[0].instructions = r.main_instructions;
    efficiency[0].frames_completed = r.controller.frames_completed;
    efficiency[0].consumed_nj = r.consumed_energy_nj;

    const obs::RunReport report = obs::buildRunReport(
        observer.registry, &flight, std::move(efficiency));
    std::fputs(report.renderText().c_str(), stdout);
    if (!out.empty()) {
        if (!writeTextFile(out, report.toJson()))
            util::fatal("could not write '%s'", out.c_str());
        std::printf("report written to %s\n", out.c_str());
    }
    if (!report.identity_violations.empty()) {
        for (const auto &v : report.identity_violations)
            std::fprintf(stderr, "metric identity violated: %s\n",
                         v.c_str());
        return 1;
    }
    return 0;
}

/** Map the shared sweep grid/config flags onto a CampaignSpec — the
 *  single definition of a campaign, shared with `serve`/`work`, so
 *  the CLI sweep and a fleet run of the equivalent campaign file
 *  expand identical jobs and derive identical arena fingerprints. */
fleet::CampaignSpec
campaignFromArgs(const Args &args)
{
    fleet::CampaignSpec campaign;
    campaign.kernels = args.get("kernels", "all");
    campaign.profiles = args.get("profiles", "all");
    campaign.seconds = args.num("seconds", 5.0);
    campaign.seed =
        static_cast<std::uint64_t>(args.num("seed", 2017));
    campaign.mode = args.get("mode", "dynamic");
    campaign.bits = static_cast<int>(args.num("bits", 4));
    campaign.minbits = static_cast<int>(args.num("minbits", 2));
    campaign.policy = args.get("policy", "linear");
    campaign.baseline = args.has("baseline");
    campaign.engine = args.get("engine", "default");
    if (args.has("strategy"))
        campaign.strategy = args.get("strategy");
    if (args.has("income-scale"))
        campaign.income_scale = args.num("income-scale", -1.0);
    if (args.has("frame-factor"))
        campaign.frame_factor = args.num("frame-factor", -1.0);
    return campaign;
}

/** Emit a (possibly fleet-folded) sweep report: results table plus
 *  the optional --out CSV, --metrics JSON, and --report/--report-out
 *  run report, then the failure summary. Shared verbatim by `sweep`
 *  and `serve`, so the fleet's outputs are byte-identical to the
 *  serial run's by construction. */
int
emitSweepOutputs(const runner::SweepReport &report, const Args &args,
                 bool want_report, const std::string &title)
{
    util::Table table(title);
    table.setHeader({"kernel", "trace", "variant", "FP (all lanes)",
                     "on-time", "backups", "mean PSNR", "status"});
    util::CsvWriter csv;
    csv.setHeader({"kernel", "trace", "variant", "forward_progress",
                   "on_time_fraction", "backups", "mean_psnr",
                   "status"});
    for (const auto &jr : report.results) {
        const sim::SimResult &r = jr.result;
        const std::string psnr =
            jr.ok && r.frames_scored > 0
                ? util::Table::num(r.mean_psnr, 1) + " dB"
                : "-";
        table.addRow(
            {jr.spec.kernel, jr.spec.trace_name, jr.spec.variant,
             jr.ok ? util::Table::integer(
                         static_cast<long long>(r.forward_progress))
                   : "-",
             jr.ok ? util::Table::num(100.0 * r.on_time_fraction, 1) +
                         " %"
                   : "-",
             jr.ok ? util::Table::integer(
                         static_cast<long long>(r.backups))
                   : "-",
             psnr, jr.ok ? "ok" : "FAILED"});
        csv.addRow({jr.spec.kernel, jr.spec.trace_name, jr.spec.variant,
                    jr.ok ? std::to_string(r.forward_progress) : "",
                    jr.ok ? util::Table::num(r.on_time_fraction, 6) : "",
                    jr.ok ? std::to_string(r.backups) : "",
                    jr.ok ? util::Table::num(r.mean_psnr, 3) : "",
                    jr.ok ? "ok" : "failed"});
    }
    table.print();
    if (args.has("out")) {
        if (!util::ensureParentDir(args.get("out")))
            util::fatal("cannot create parent directory for '%s'",
                        args.get("out").c_str());
        if (!csv.write(args.get("out")))
            util::fatal("could not write '%s'", args.get("out").c_str());
        std::printf("results written to %s\n", args.get("out").c_str());
    }
    if (args.has("metrics")) {
        const std::string path = args.get("metrics");
        if (!util::ensureParentDir(path))
            util::fatal("cannot create parent directory for '%s'",
                        path.c_str());
        const obs::MetricsRegistry merged = report.mergedMetrics();
        if (!merged.writeJson(path))
            util::fatal("could not write '%s'", path.c_str());
        std::printf("merged metrics written to %s\n", path.c_str());
    }
    if (want_report) {
        const obs::RunReport run_report = obs::buildRunReport(
            report.mergedMetrics(), nullptr, report.kernelEfficiency());
        std::fputs(run_report.renderText().c_str(), stdout);
        if (args.has("report-out")) {
            const std::string path = args.get("report-out");
            if (!writeTextFile(path, run_report.toJson()))
                util::fatal("could not write '%s'", path.c_str());
            std::printf("report written to %s\n", path.c_str());
        }
    }
    if (!report.allOk()) {
        std::fputs(report.failureReport().c_str(), stderr);
        std::fprintf(stderr, "%zu of %zu jobs failed after retry\n",
                     report.failureCount(), report.results.size());
        return 1;
    }
    return 0;
}

/** The sweep/serve stdout header: with --report every stdout byte
 *  must be independent of the parallelism (and of sweep-vs-fleet), so
 *  the header drops the worker/wall-clock info. */
std::string
sweepTitle(const runner::SweepReport &report, bool want_report)
{
    return want_report
               ? util::format("sweep: %zu jobs", report.results.size())
               : util::format(
                     "sweep: %zu jobs on %u workers, %.1f s wall",
                     report.results.size(), report.jobs_used,
                     report.wall_seconds);
}

int
cmdSweep(const Args &args)
{
    const fleet::CampaignSpec campaign = campaignFromArgs(args);
    const bool want_report =
        args.has("report") || args.has("report-out");
    runner::SweepSpec spec = fleet::buildSweepSpec(
        campaign, args.has("metrics") || want_report);
    spec.jobs = static_cast<int>(args.num(
        "jobs", runner::ThreadPool::defaultThreads()));
    if (spec.jobs < 1)
        util::fatal("--jobs must be >= 1");
    spec.batch_width =
        static_cast<int>(args.num("batch-width", 1));
    if (spec.batch_width < 1)
        util::fatal("--batch-width must be >= 1");
    // Like --jobs, --batch-width only changes scheduling: the output
    // is byte-identical at any width, so it is not part of the arena
    // fingerprint below.
    if (spec.batch_width > 1 && args.has("inject-failure"))
        util::fatal("--batch-width > 1 cannot be combined with "
                    "--inject-failure (the injected body is a custom "
                    "JobFn, which the SimBatch packer rejects)");

    std::unique_ptr<runner::SweepRunner> sweep_holder;
    if (args.has("inject-failure")) {
        const auto victim =
            static_cast<std::size_t>(args.num("inject-failure", 0));
        runner::SweepRunner::JobFn body =
            [victim](const runner::JobSpec &job,
                     const trace::PowerTrace &trace,
                     util::Rng &rng) -> sim::SimResult {
            if (job.index == victim)
                throw std::runtime_error("injected failure (testing)");
            return runner::SweepRunner::simJob(job, trace, rng);
        };
        sweep_holder =
            std::make_unique<runner::SweepRunner>(spec, body);
    } else {
        // One-arg constructor: marks the body as the default sim job,
        // which is what allows --batch-width to pack jobs.
        sweep_holder = std::make_unique<runner::SweepRunner>(spec);
    }
    runner::SweepRunner &sweep = *sweep_holder;

    // --arena: journal campaign progress so a killed sweep can warm-
    // restart. The fingerprint covers the expanded jobs (kernels,
    // trace bytes, seed tree) plus every flag that shapes a job's
    // SimConfig, so a resume with different flags is refused instead
    // of silently mixing results.
    std::unique_ptr<arena::Arena> store;
    std::unique_ptr<runner::SweepJournal> journal;
    if (args.has("arena")) {
        const std::string dir = args.get("arena");
        const std::string fingerprint_extra =
            fleet::campaignFingerprintExtra(campaign,
                                            spec.collect_metrics);
        const std::vector<runner::JobSpec> jobs =
            runner::expandSweep(spec);
        const std::string fp = runner::SweepJournal::fingerprint(
            spec, jobs, fingerprint_extra);
        store = openArenaOrDie(dir);
        journal = std::make_unique<runner::SweepJournal>(store.get());
        if (journal->bound()) {
            if (!args.has("resume"))
                util::fatal(
                    "arena '%s' already holds a campaign (%zu of %zu "
                    "jobs done); pass --resume to continue it or use "
                    "a fresh directory",
                    dir.c_str(), journal->completedCount(),
                    journal->jobsTotal());
            if (journal->boundFingerprint() != fp)
                util::fatal(
                    "arena '%s' holds a different campaign "
                    "(fingerprint %s, this sweep is %s); re-run with "
                    "the original flags or use a fresh directory",
                    dir.c_str(), journal->boundFingerprint().c_str(),
                    fp.c_str());
            std::fprintf(stderr,
                         "arena: resuming %zu of %zu jobs done\n",
                         journal->completedCount(),
                         journal->jobsTotal());
        } else {
            journal->bind(fp, jobs.size());
        }
        sweep.setJournal(journal.get());
    }

    // --kill-after N: SIGKILL ourselves after N jobs have been
    // journaled — the harness for the kill-and-resume recipe
    // (EXPERIMENTS.md) and tests/test_arena_sweep.cc.
    if (args.has("kill-after")) {
        if (!journal)
            util::fatal("--kill-after requires --arena");
        const auto kill_after =
            static_cast<std::size_t>(args.num("kill-after", 1));
        auto recorded = std::make_shared<std::atomic<std::size_t>>(0);
        sweep.setRecordHook([recorded, kill_after](std::size_t) {
            if (recorded->fetch_add(1) + 1 >= kill_after)
                std::raise(SIGKILL);
        });
    }

    const runner::SweepReport report = sweep.run();

    // Arena session stats go to stderr: stdout must stay byte-
    // identical between a fresh run and a resumed one.
    if (store) {
        const arena::ArenaStats &st = store->stats();
        std::fprintf(
            stderr,
            "arena: epoch %llu, %llu records (%llu commits, %llu "
            "bytes) appended; replayed %llu records (%llu commits), "
            "discarded %llu torn bytes, recovery %.2f ms\n",
            static_cast<unsigned long long>(store->epoch()),
            static_cast<unsigned long long>(st.log_records),
            static_cast<unsigned long long>(st.commits),
            static_cast<unsigned long long>(st.log_bytes),
            static_cast<unsigned long long>(st.replayed_records),
            static_cast<unsigned long long>(st.replayed_commits),
            static_cast<unsigned long long>(st.discarded_tail_bytes),
            st.recovery_ms);
    }
    return emitSweepOutputs(report, args, want_report,
                            sweepTitle(report, want_report));
}

/** Absolute path of the running binary: `serve` respawns itself as
 *  `work` processes, so the fleet always runs one build. */
std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf,
                                 sizeof(buf) - 1);
    if (n <= 0)
        util::fatal("cannot resolve /proc/self/exe: %s",
                    std::strerror(errno));
    return std::string(buf, static_cast<std::size_t>(n));
}

int
cmdServe(const Args &args)
{
    if (args.positional().size() < 2)
        util::fatal("usage: nvpsim serve CAMPAIGN.json --workers N "
                    "[--fleet-dir DIR] (see the header of "
                    "tools/nvpsim.cc)");
    fleet::ServeOptions opt;
    opt.campaign_path = args.positional()[1];
    opt.fleet_dir =
        args.get("fleet-dir", opt.campaign_path + ".fleet");
    opt.socket_path = args.get("socket");
    opt.nvpsim_path = selfExePath();

    // Strict parse: "--workers banana" (or 0) must die loudly, not
    // silently fall back to a serial fleet.
    const std::string workers = args.get("workers", "1");
    char *end = nullptr;
    const long parsed = std::strtol(workers.c_str(), &end, 10);
    if (end == workers.c_str() || *end != '\0' || parsed < 1)
        util::fatal("unknown worker count '%s' (--workers wants a "
                    "positive integer)",
                    workers.c_str());
    opt.workers = static_cast<int>(parsed);

    opt.worker_jobs = static_cast<int>(args.num("worker-jobs", 1));
    if (opt.worker_jobs < 1)
        util::fatal("--worker-jobs must be >= 1");
    opt.shards = static_cast<std::size_t>(args.num("shards", 0));
    opt.max_shard_retries =
        static_cast<int>(args.num("max-shard-retries", 3));
    opt.heartbeat_timeout_s = args.num("heartbeat-timeout", 120.0);
    // A zero/negative timeout would silently mean "never detect a
    // stalled worker" — reject it so typos die loudly; crank the
    // value up instead if a campaign legitimately needs slack.
    if (opt.heartbeat_timeout_s <= 0)
        util::fatal("--heartbeat-timeout must be a positive number of "
                    "seconds (got '%s')",
                    args.get("heartbeat-timeout").c_str());
    const bool want_report =
        args.has("report") || args.has("report-out");
    opt.collect_metrics = args.has("metrics") || want_report;
    if (args.has("status-socket")) {
        const std::string path = args.get("status-socket");
        // Bare `--status-socket` (parsed as "1") means the default
        // path beside the campaign socket.
        opt.status_socket = (path.empty() || path == "1")
                                ? opt.fleet_dir + "/status.sock"
                                : path;
    }
    opt.trace_out = args.get("trace-out");
    const double progress_every = args.num("progress-every", 1.0);
    if (progress_every < 0)
        util::fatal("--progress-every must be >= 0 (0 disables "
                    "PROGRESS frames)");
    opt.progress_every = static_cast<std::size_t>(progress_every);
    opt.kill_worker_after =
        static_cast<std::size_t>(args.num("kill-worker-after", 0));

    const fleet::FleetOutcome outcome = fleet::serveCampaign(opt);

    // Scheduling telemetry goes to stderr (and --fleet-metrics): the
    // campaign's stdout/file outputs must stay byte-identical to the
    // serial sweep, independent of worker count and crash history.
    const auto counter = [&outcome](const char *name) {
        return static_cast<unsigned long long>(
            outcome.fleet_metrics.counterValue(name));
    };
    std::fprintf(
        stderr,
        "fleet: %llu shard dispatches (%llu reassigned, %llu "
        "retried), %llu workers spawned (%llu lost), %llu result "
        "bytes merged\n",
        counter(obs::kFleetShardsDispatched),
        counter(obs::kFleetShardsReassigned),
        counter(obs::kFleetShardsRetried),
        counter(obs::kFleetWorkersSpawned),
        counter(obs::kFleetWorkersLost),
        counter(obs::kFleetMergeBytes));
    // Fleet telemetry snapshot: the fleet.* registry wrapped in its
    // own document (separate "fleet" top-level key, tagged with the
    // campaign fingerprint). Written to --fleet-metrics, or defaulted
    // to a sibling of --metrics — NEVER folded into the campaign
    // metrics document itself, which must stay byte-identical to the
    // serial `nvpsim sweep`.
    std::string fleet_metrics_path = args.get("fleet-metrics");
    if (fleet_metrics_path.empty() && args.has("metrics"))
        fleet_metrics_path = args.get("metrics") + ".fleet.json";
    if (!fleet_metrics_path.empty()) {
        obs::JsonValue registry_json;
        std::string parse_error;
        if (!obs::parseJson(outcome.fleet_metrics.toJson(),
                            &registry_json, &parse_error))
            util::fatal("fleet metrics registry did not serialize: %s",
                        parse_error.c_str());
        obs::JsonValue doc = obs::JsonValue::object();
        doc.set("schema",
                obs::JsonValue::of(std::string("inc-fleet-telemetry-"
                                               "v1")));
        doc.set("campaign", obs::JsonValue::of(outcome.fingerprint));
        doc.set("fleet", std::move(registry_json));
        if (!writeTextFile(fleet_metrics_path, doc.dump() + "\n"))
            util::fatal("could not write '%s'",
                        fleet_metrics_path.c_str());
        std::fprintf(stderr, "fleet telemetry written to %s\n",
                     fleet_metrics_path.c_str());
    }

    return emitSweepOutputs(outcome.report, args, want_report,
                            sweepTitle(outcome.report, want_report));
}

int
cmdWork(const Args &args)
{
    fleet::WorkerOptions opt;
    opt.socket_path = args.get("socket");
    opt.campaign_path = args.get("campaign");
    opt.fleet_dir = args.get("fleet-dir");
    if (opt.socket_path.empty() || opt.campaign_path.empty() ||
        opt.fleet_dir.empty())
        util::fatal("usage: nvpsim work --socket PATH --campaign FILE "
                    "--fleet-dir DIR (normally spawned by `nvpsim "
                    "serve`)");
    opt.jobs = static_cast<int>(args.num("jobs", 1));
    if (opt.jobs < 1)
        util::fatal("--jobs must be >= 1");
    opt.collect_metrics =
        static_cast<int>(args.num("collect-metrics", 0)) != 0;
    opt.progress_every =
        static_cast<std::size_t>(args.num("progress-every", 1));
    opt.kill_after =
        static_cast<std::size_t>(args.num("kill-after", 0));
    return fleet::runWorker(opt);
}

double
statusNum(const obs::JsonValue &doc, const char *key, double fallback)
{
    const obs::JsonValue *v = doc.find(key);
    return v != nullptr && v->isNumber() ? v->number() : fallback;
}

std::string
statusStr(const obs::JsonValue &doc, const char *key)
{
    const obs::JsonValue *v = doc.find(key);
    return v != nullptr && v->isString() ? v->string() : std::string();
}

/** Render one inc-fleet-status-v1 snapshot as human-readable text. */
void
renderStatus(const obs::JsonValue &doc)
{
    const double jobs_done = statusNum(doc, "jobs_done", 0);
    const double jobs_total = statusNum(doc, "jobs_total", 0);
    const double throughput = statusNum(doc, "throughput_jps", 0);
    const double eta = statusNum(doc, "eta_s", -1);
    std::printf("fleet status: %.0f/%.0f jobs (%.1f %%), %.0f/%.0f "
                "shards, %.2f jobs/s",
                jobs_done, jobs_total,
                jobs_total > 0 ? 100.0 * jobs_done / jobs_total : 0.0,
                statusNum(doc, "shards_completed", 0),
                statusNum(doc, "shards_planned", 0), throughput);
    if (eta >= 0)
        std::printf(", ETA %.1f s", eta);
    std::printf("\ncampaign %s, %.1f s elapsed\n",
                statusStr(doc, "fingerprint").c_str(),
                statusNum(doc, "elapsed_s", 0));

    const obs::JsonValue *workers = doc.find("workers");
    if (workers != nullptr && workers->isArray()) {
        util::Table table("workers");
        table.setHeader({"pid", "gen", "health", "heartbeat", "shard",
                         "progress", "job"});
        for (const auto &row : workers->items()) {
            const double age = statusNum(row, "heartbeat_age_s", -1);
            const double shard = statusNum(row, "shard", -1);
            table.addRow(
                {util::Table::integer(static_cast<long long>(
                     statusNum(row, "pid", 0))),
                 util::Table::integer(static_cast<long long>(
                     statusNum(row, "generation", 0))),
                 statusStr(row, "health"),
                 age >= 0 ? util::Table::num(age, 1) + " s" : "-",
                 shard >= 0 ? util::Table::integer(
                                  static_cast<long long>(shard))
                            : "-",
                 util::format(
                     "%.0f/%.0f", statusNum(row, "shard_done", 0),
                     statusNum(row, "shard_assigned", 0)),
                 statusStr(row, "job")});
        }
        table.print();
    }

    const obs::JsonValue *live = doc.find("live");
    if (live != nullptr && live->isObject() &&
        live->find("outage_p50_ms") != nullptr) {
        std::printf("live outage percentiles: p50 %.1f ms, p95 %.1f "
                    "ms, p99 %.1f ms (%.0f backups, %.0f restores, "
                    "%.0f shard snapshots)\n",
                    statusNum(*live, "outage_p50_ms", 0),
                    statusNum(*live, "outage_p95_ms", 0),
                    statusNum(*live, "outage_p99_ms", 0),
                    statusNum(*live, "backups_committed", 0),
                    statusNum(*live, "restores", 0),
                    statusNum(*live, "metrics_shards", 0));
    }
}

int
cmdStatus(const Args &args)
{
    if (args.positional().size() < 2)
        util::fatal("usage: nvpsim status <SOCKET|FLEET-DIR> "
                    "[--json] [--watch]");
    std::string path = args.positional()[1];
    struct stat st = {};
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
        path += "/status.sock"; // a fleet dir: the default endpoint
    std::string error;
    const int fd = fleet::connectUnix(path, &error);
    if (fd < 0) {
        std::fprintf(stderr,
                     "nvpsim status: cannot connect to '%s': %s\n",
                     path.c_str(), error.c_str());
        return 1;
    }

    const bool watch = args.has("watch");
    const bool as_json = args.has("json");
    fleet::MessageReader reader;
    char buffer[64 * 1024];
    std::string snapshot;
    bool saw_frame = false;
    // The coordinator sends one STATE immediately on accept, then a
    // throttled stream, then a final jobs_done == jobs_total frame
    // before closing. Plain mode answers from the first frame;
    // --watch follows the stream to completion.
    while (true) {
        fleet::Message message;
        const bool have = reader.next(&message, &error);
        if (!have && !error.empty()) {
            std::fprintf(stderr, "nvpsim status: %s\n", error.c_str());
            ::close(fd);
            return 1;
        }
        if (!have) {
            const long n = fleet::readSome(fd, buffer, sizeof(buffer));
            if (n == 0)
                break; // campaign finished (or coordinator died)
            if (n < 0) {
                std::fprintf(stderr,
                             "nvpsim status: socket read failed\n");
                ::close(fd);
                return 1;
            }
            reader.feed(buffer, static_cast<std::size_t>(n));
            continue;
        }
        if (!fleet::decodeState(message, &snapshot, &error)) {
            std::fprintf(stderr, "nvpsim status: %s\n", error.c_str());
            ::close(fd);
            return 1;
        }
        saw_frame = true;
        if (watch && as_json) {
            // One canonical-JSON document per line: the streaming
            // form tests and dashboards consume.
            std::fputs((snapshot + "\n").c_str(), stdout);
            std::fflush(stdout);
        }
        if (!watch)
            break;
    }
    ::close(fd);
    if (!saw_frame) {
        std::fprintf(stderr,
                     "nvpsim status: no snapshot received from '%s'\n",
                     path.c_str());
        return 1;
    }
    if (as_json) {
        if (!watch)
            std::fputs((snapshot + "\n").c_str(), stdout);
        return 0;
    }
    obs::JsonValue doc;
    if (!obs::parseJson(snapshot, &doc, &error)) {
        std::fprintf(stderr, "nvpsim status: bad snapshot: %s\n",
                     error.c_str());
        return 1;
    }
    renderStatus(doc);
    return 0;
}

int
cmdAsm(const Args &args)
{
    if (args.positional().size() < 2)
        util::fatal("usage: nvpsim asm FILE.s [--run] [--steps N]");
    const std::string path = args.positional()[1];
    std::ifstream f(path);
    if (!f)
        util::fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();

    // The front end accepts both plain assembly and the Sec. 5
    // "#pragma ac" annotated dialect.
    const core::PragmaParseResult result =
        core::parseAnnotated(ss.str());
    if (!result.ok)
        util::fatal("%s: %s", path.c_str(), result.error.c_str());
    const isa::Program &program = result.annotated.program;
    std::printf("%zu instructions\n%s", program.size(),
                isa::disassemble(program).c_str());
    for (const auto &[name, region] : result.annotated.regions) {
        std::printf(".region %s at 0x%x, %u bytes\n", name.c_str(),
                    region.address, region.size);
    }
    for (const auto &d : result.annotated.incidental) {
        std::printf("incidental(%s, %d, %d, %s)\n", d.region.c_str(),
                    d.min_bits, d.max_bits,
                    nvm::policyName(d.policy).c_str());
    }
    if (result.annotated.recover_register >= 0) {
        std::printf("incidental_recover_from(r%d)\n",
                    result.annotated.recover_register);
    }

    if (args.has("run")) {
        util::Rng rng(1);
        nvp::DataMemory mem(rng.split());
        result.annotated.applyRegions(mem);
        nvp::Core core(&program, &mem, {}, rng.split());
        const auto steps = static_cast<long>(args.num("steps", 100000));
        long executed = 0;
        while (!core.halted() && executed < steps) {
            core.step();
            ++executed;
        }
        std::printf("executed %ld instructions; %s\n", executed,
                    core.halted() ? "halted" : "step limit reached");
        for (int r = 1; r < isa::kNumRegs; ++r) {
            if (core.regs().read(0, r) != 0)
                std::printf("  r%-2d = %u\n", r, core.regs().read(0, r));
        }
    }
    return 0;
}

int
cmdKernels()
{
    util::Table table("registered kernels");
    table.setHeader({"name", "instructions", "frame", "in ring",
                     "out ring", "adoption-safe"});
    for (const auto &name : kernels::kernelNames()) {
        const kernels::Kernel k = kernels::makeKernel(name);
        table.addRow(
            {k.name,
             util::Table::integer(
                 static_cast<long long>(k.program.size())),
             util::format("%dx%d", k.width, k.height),
             util::format("%d x %u B", k.layout.in_slots,
                          k.layout.in_bytes),
             util::format("%d x %u B", k.layout.out_slots,
                          k.layout.out_bytes),
             k.adoption_safe ? "yes" : "no (memory scratch)"});
    }
    table.print();
    return 0;
}

int
cmdFuzz(const Args &args)
{
    if (args.has("replay")) {
        check::TrialSpec spec;
        if (!check::loadBundle(args.get("replay"), &spec))
            util::fatal("could not load repro bundle '%s'",
                        args.get("replay").c_str());
        const check::Divergence div = check::runTrial(spec);
        if (div.violated) {
            std::printf("replay: VIOLATION invariant=%s frame=%u "
                        "byte=%zu expected=%d actual=%d\n  %s\n",
                        div.invariant.c_str(), div.frame, div.byte,
                        div.expected, div.actual, div.detail.c_str());
            return 1;
        }
        std::printf("replay: clean (seed=%llu mode=%s)\n",
                    static_cast<unsigned long long>(spec.seed),
                    check::modeName(spec.mode));
        return 0;
    }

    check::CheckConfig cfg;
    cfg.trials = static_cast<int>(args.num("trials", 200));
    if (cfg.trials < 1)
        util::fatal("--trials must be >= 1");
    cfg.master_seed = static_cast<std::uint64_t>(args.num("seed", 1));
    cfg.jobs = static_cast<unsigned>(args.num("jobs", 0));
    cfg.trace_samples =
        static_cast<std::size_t>(args.num("samples", 6000));
    if (cfg.trace_samples < 100)
        util::fatal("--samples must be >= 100");
    cfg.repro_dir = args.get("repro-dir");
    cfg.minimize = args.has("minimize");
    const std::string bug = args.get("inject-bug", "none");
    if (bug == "leaky-backup" || bug == "leaky_backup")
        cfg.inject = check::BugKind::leaky_backup;
    else if (bug != "none")
        util::fatal("unknown --inject-bug '%s'", bug.c_str());
    cfg.engine_diff = args.has("engine-diff");
    cfg.mode_filter = args.get("modes");

    const check::CheckReport report = check::runCheck(cfg);
    std::printf("fuzz: %s\n", report.summary().c_str());
    for (const auto &failure : report.failures) {
        if (!failure.bundle_dir.empty())
            std::printf("  repro bundle: %s\n",
                        failure.bundle_dir.c_str());
    }
    return report.allOk() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(
            stderr,
            "usage: nvpsim "
            "<trace|run|sweep|serve|work|status|report|fuzz|asm|"
            "kernels> [options]\n"
            "see the file header of tools/nvpsim.cc\n");
        return 1;
    }
    const Args args(argc - 1, argv + 1);
    const std::string cmd = argv[1];
    if (cmd == "trace")
        return cmdTrace(args);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "serve")
        return cmdServe(args);
    if (cmd == "work")
        return cmdWork(args);
    if (cmd == "status")
        return cmdStatus(args);
    if (cmd == "report")
        return cmdReport(args);
    if (cmd == "fuzz")
        return cmdFuzz(args);
    if (cmd == "asm")
        return cmdAsm(args);
    if (cmd == "kernels")
        return cmdKernels();
    std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
    return 1;
}
