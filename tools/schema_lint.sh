#!/bin/sh
# Metric-name schema lint.
#
# Every metric-name string literal handed to a counter()/gauge()/
# histogram() call in src/, tools/ or bench/ must be declared in
# src/obs/schema.h. An undeclared literal is how two emitters of "the
# same" metric drift apart silently (a typo'd name merges into its own
# registry entry and every identity built on the real one goes quietly
# stale) — this grep turns that drift into a CI failure. The normal
# idiom, emitting through the schema.h constants, never trips it: the
# lint only sees raw string literals at call sites.
#
# Usage: tools/schema_lint.sh            lint the tree (exit 1 on any
#                                        undeclared name)
#        tools/schema_lint.sh --self-test  additionally prove the lint
#                                          catches a planted literal
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
schema="$root/src/obs/schema.h"
[ -r "$schema" ] || {
    echo "schema-lint: cannot read $schema" >&2
    exit 2
}

# Call sites like `registry.counter("sim.samples")` — one line, literal
# first argument. Multi-line calls and computed names (the
# kBitTicksPrefix family) are out of scope by construction: they go
# through schema.h constants already.
extract_literals() {
    grep -rhoE '(counter|gauge|histogram)[[:space:]]*\([[:space:]]*"[^"]+"' \
        --include='*.cc' --include='*.h' --exclude='schema.h' \
        "$root/src" "$root/tools" "$root/bench" 2>/dev/null |
        sed -E 's/.*"([^"]+)"$/\1/' | sort -u
}

lint() {
    status=0
    for name in $(extract_literals); do
        if ! grep -qF "\"$name\"" "$schema"; then
            echo "schema-lint: metric name \"$name\" is emitted but" \
                "not declared in src/obs/schema.h" >&2
            status=1
        fi
    done
    return $status
}

if [ "${1:-}" = "--self-test" ]; then
    # Plant an undeclared literal and require the lint to fail on it:
    # a lint that cannot fail gates nothing.
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    mkdir -p "$tmp/src" "$tmp/tools" "$tmp/bench"
    cp "$schema" "$tmp/src-schema.h"
    printf '%s\n' 'x.counter("lint.selftest.bogus");' \
        >"$tmp/src/planted.cc"
    if (root="$tmp" schema="$tmp/src-schema.h" lint) 2>/dev/null; then
        echo "schema-lint: self-test FAILED (planted undeclared name" \
            "was not caught)" >&2
        exit 2
    fi
    echo "schema-lint: self-test OK"
fi

if ! lint; then
    echo "schema-lint: FAIL (declare the names above in" \
        "src/obs/schema.h or emit through its constants)" >&2
    exit 1
fi
echo "schema-lint: OK (every emitted metric-name literal is declared)"
