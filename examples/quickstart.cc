/**
 * @file
 * Quickstart: run one kernel on one harvested-power trace, precise
 * baseline vs incidental NVP, and print the headline numbers.
 *
 *   ./quickstart [kernel] [profile 1-5]
 *
 * Walks through the whole public API surface in ~100 lines: trace
 * synthesis, kernel construction, system simulation, and the result
 * record.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "kernels/kernel.h"
#include "sim/system_sim.h"
#include "trace/outage_stats.h"
#include "trace/trace_generator.h"
#include "util/table.h"

using namespace inc;

int
main(int argc, char **argv)
{
    const std::string kernel_name = argc > 1 ? argv[1] : "sobel";
    const int profile = argc > 2 ? std::atoi(argv[2]) : 2;

    // 1. A harvested-power trace: 5 seconds of the watch harvester.
    trace::TraceGenerator gen(trace::paperProfile(profile), 42);
    const trace::PowerTrace power = gen.generate(50000);
    const auto outages = trace::analyzeOutages(power);
    std::printf("%s: mean %.1f uW, %zu power emergencies in %.1f s\n",
                power.name().c_str(), power.meanPower(), outages.count(),
                power.durationSec());

    // 2. The workload: one of the paper's testbench kernels, expressed
    //    as a program for the NVP's ISA plus frame-ring layout.
    const kernels::Kernel kernel = kernels::makeKernel(kernel_name);
    std::printf("%s: %zu instructions, %dx%d frames\n",
                kernel.name.c_str(), kernel.program.size(), kernel.width,
                kernel.height);

    // 3a. Precise 8-bit NVP baseline: resume-where-interrupted, no
    //     approximation, no incidental lanes.
    sim::SimConfig baseline;
    baseline.bits.mode = approx::ApproxMode::precise;
    baseline.controller.roll_forward = false;
    baseline.controller.simd_adoption = false;
    baseline.controller.history_spawn = false;
    baseline.controller.process_newest_first = false;
    baseline.score_quality = false;
    sim::SystemSimulator base_sim(kernel, &power, baseline);
    const sim::SimResult rb = base_sim.run();

    // 3b. Incidental NVP: roll-forward recovery, SIMD adoption of
    //     interrupted frames, dynamic bitwidth in [2, 8], linear
    //     retention-shaped backups.
    sim::SimConfig incidental;
    incidental.bits.mode = approx::ApproxMode::dynamic;
    incidental.bits.min_bits = 2;
    incidental.controller.backup_policy = nvm::RetentionPolicy::linear;
    incidental.frame_period_factor = 0.3; // sensor outpaces the NVP
    sim::SystemSimulator inc_sim(kernel, &power, incidental);
    const sim::SimResult ri = inc_sim.run();

    // 4. Results.
    util::Table table("precise NVP vs incidental NVP");
    table.setHeader({"metric", "precise", "incidental"});
    auto intRow = [&table](const char *name, std::uint64_t a,
                           std::uint64_t b) {
        table.addRow({name,
                      util::Table::integer(static_cast<long long>(a)),
                      util::Table::integer(static_cast<long long>(b))});
    };
    intRow("forward progress (instructions)", rb.forward_progress,
           ri.forward_progress);
    intRow("backups", rb.backups, ri.backups);
    intRow("SIMD adoptions", rb.controller.adoptions,
           ri.controller.adoptions);
    intRow("frames completed", rb.controller.frames_completed,
           ri.controller.frames_completed);
    table.addRow({"system-on time",
                  util::Table::num(100.0 * rb.on_time_fraction, 1) + " %",
                  util::Table::num(100.0 * ri.on_time_fraction, 1) +
                      " %"});
    table.addRow({"mean output PSNR", "exact",
                  ri.frames_scored
                      ? util::Table::num(ri.mean_psnr, 1) + " dB"
                      : "n/a"});
    table.print();

    std::printf("incidental forward-progress gain: %.2fx\n",
                static_cast<double>(ri.forward_progress) /
                    static_cast<double>(rb.forward_progress));
    return 0;
}
