/**
 * @file
 * Assembly playground: write a kernel for the NVP in textual assembly,
 * assemble it, run it functionally, and single-step it with a register
 * trace — the developer loop for extending the kernel library.
 *
 * The built-in demo program computes an 8-entry running maximum with
 * the incidental-computing pragmas in place (acen/acset/markrp), then
 * halts. Pass a path to assemble and trace your own program instead:
 *
 *   ./asm_playground [program.s]
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "nvp/core.h"

using namespace inc;

namespace
{

constexpr const char *kDemo = R"(
; running maximum over 8 bytes stored at 0x100
        acen 1
        acset 0x0006        ; r1, r2 carry approximable data
        ldi r10, 0x100      ; input base
        ldi r11, 0          ; index
        ldi r1, 0           ; running max
frame_loop:
        markrp r15, 0x0800  ; resume point, match on r11
loop:
        add r9, r10, r11
        ld8 r2, 0(r9)
        max r1, r1, r2
        addi r11, r11, 1
        ldi r9, 8
        blt r11, r9, loop
        st8 r1, 0x120(r0)   ; result at 0x120
        halt
)";

} // namespace

int
main(int argc, char **argv)
{
    std::string source = kDemo;
    if (argc > 1) {
        std::ifstream f(argv[1]);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        source = ss.str();
    }

    const isa::AssembleResult result = isa::assemble(source);
    if (!result.ok) {
        std::fprintf(stderr, "assembly failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    const isa::Program &program = result.program;

    std::printf("assembled %zu instructions; disassembly:\n%s\n",
                program.size(),
                isa::disassemble(program).c_str());

    // Set up a core with some recognizable input data.
    util::Rng rng(1);
    nvp::DataMemory mem(rng.split());
    const std::uint8_t input[8] = {12, 200, 7, 99, 143, 3, 250, 31};
    for (std::uint32_t i = 0; i < 8; ++i)
        mem.hostWrite8(0x100 + i, input[i]);

    nvp::Core core(&program, &mem, {}, rng.split());

    std::printf("single-step trace:\n");
    std::uint64_t cycles = 0;
    for (int step = 0; step < 200 && !core.halted(); ++step) {
        const std::uint16_t pc = core.pc();
        const auto s = core.step();
        cycles += static_cast<std::uint64_t>(s.cycles);
        std::printf("%3d  pc=%-3u %-22s r1=%-5u r2=%-5u r11=%-5u%s\n",
                    step, pc,
                    isa::disassemble(program.at(pc)).c_str(),
                    core.regs().read(0, 1), core.regs().read(0, 2),
                    core.regs().read(0, 11),
                    s.mark_resume ? "  <resume point>" : "");
    }
    std::printf("halted after %llu cycles; mem[0x120] = %u\n",
                static_cast<unsigned long long>(cycles),
                mem.hostRead8(0x120));
    return 0;
}
