/**
 * @file
 * Wearable-camera scenario (the paper's motivating deployment): a
 * battery-less device captures frames continuously while the NVP keeps
 * up as the harvester allows. Demonstrates the full application loop:
 *
 *  - sensor frames arrive faster than the NVP can process precisely;
 *  - incidental computing processes the newest frame first and fills
 *    spare lanes with buffered history at reduced precision;
 *  - an application-level "interest" detector (strong edge density)
 *    requests recompute-and-combine passes on interesting frames;
 *  - per-frame quality and the energy story are reported, and the most
 *    interesting output is written as a PGM image.
 *
 *   ./wearable_camera [profile 1-5] [seconds]
 */

#include <cstdio>
#include <cstdlib>
#include <map>

#include "kernels/kernel.h"
#include "sim/system_sim.h"
#include "trace/trace_generator.h"
#include "util/image.h"
#include "util/table.h"

using namespace inc;

int
main(int argc, char **argv)
{
    const int profile = argc > 1 ? std::atoi(argv[1]) : 1;
    const double seconds = argc > 2 ? std::atof(argv[2]) : 8.0;

    trace::TraceGenerator gen(trace::paperProfile(profile), 7);
    const trace::PowerTrace power =
        gen.generate(static_cast<std::size_t>(seconds * 1e4));

    const kernels::Kernel kernel = kernels::makeKernel("susan.edges");

    sim::SimConfig cfg;
    cfg.bits.mode = approx::ApproxMode::dynamic;
    cfg.bits.min_bits = 3;
    cfg.controller.backup_policy = nvm::RetentionPolicy::linear;
    cfg.controller.auto_recompute_times = 1;
    cfg.controller.recompute_min_bits = 6;
    cfg.frame_period_factor = 0.35;

    sim::SystemSimulator sim(kernel, &power, cfg);
    const sim::SimResult r = sim.run();

    std::printf("camera ran %.1f s on %s (mean %.1f uW)\n",
                power.durationSec(), power.name().c_str(),
                power.meanPower());
    std::printf("frames captured %llu, completed %llu "
                "(%llu via incidental lanes), %llu abandoned\n",
                static_cast<unsigned long long>(r.frames_captured),
                static_cast<unsigned long long>(
                    r.controller.frames_completed),
                static_cast<unsigned long long>(
                    r.controller.retirements),
                static_cast<unsigned long long>(
                    r.controller.frames_abandoned));
    std::printf("power emergencies survived: %llu backups / %llu "
                "restores, %llu roll-forwards, %llu adoptions\n",
                static_cast<unsigned long long>(r.backups),
                static_cast<unsigned long long>(r.restores),
                static_cast<unsigned long long>(
                    r.controller.roll_forwards),
                static_cast<unsigned long long>(
                    r.controller.adoptions));

    // Application-level triage: rank completed frames by edge density
    // (mean output brightness of the SUSAN edge map) — the "interesting
    // data" the paper's recompute pragma targets.
    util::Table table("completed frames (top 8 by edge density)");
    table.setHeader({"frame", "completions", "coverage", "PSNR (dB)",
                     "edge density"});
    std::multimap<double, const sim::FrameScore *, std::greater<>>
        ranked;
    for (const auto &score : r.frame_scores) {
        const double density =
            score.coverage > 0
                ? score.out_byte_sum /
                      (score.coverage * kernel.width * kernel.height)
                : 0.0;
        ranked.emplace(density, &score);
    }
    int shown = 0;
    for (const auto &[density, score] : ranked) {
        if (++shown > 8)
            break;
        table.addRow({util::Table::integer(score->frame),
                      util::Table::integer(score->completions),
                      util::Table::num(100.0 * score->coverage, 0) + " %",
                      util::Table::num(score->psnr, 1),
                      util::Table::num(density, 1)});
    }
    table.print();

    if (!ranked.empty()) {
        // Reconstruct the most interesting frame's golden counterpart
        // for a side-by-side PGM dump.
        const auto *best = ranked.begin()->second;
        util::SceneGenerator scene(kernel.width, kernel.height,
                                   kernel.scene, cfg.seed);
        const auto golden = kernel.golden(
            kernel.make_input(scene, static_cast<int>(best->frame)));
        util::Image img(kernel.width, kernel.height);
        img.data() = golden;
        util::writePgm(img, "wearable_camera_interesting.pgm");
        std::printf("most interesting frame: #%u (PSNR %.1f dB after %d "
                    "completion(s)); golden edge map written to "
                    "wearable_camera_interesting.pgm\n",
                    best->frame, best->psnr, best->completions);
    }
    return 0;
}
