/**
 * @file
 * Retention-policy tuning walkthrough: how a deployment engineer picks
 * the backup retention-shaping policy for a device (paper Sec. 8.6).
 *
 * Sweeps the three shaping policies against the expected power profile,
 * reporting per-policy backup energy, retention-failure exposure against
 * the trace's measured outage distribution, and the end-to-end forward
 * progress / quality the system simulator observes. Finishes with the
 * paper's rule of thumb (linear for high-power days, parabola for low).
 *
 *   ./retention_tuning [profile 1-5]
 */

#include <cstdio>
#include <cstdlib>

#include "core/policy_advisor.h"
#include "kernels/kernel.h"
#include "nvm/write_driver.h"
#include "sim/system_sim.h"
#include "trace/outage_stats.h"
#include "trace/trace_generator.h"
#include "util/logging.h"
#include "util/table.h"

using namespace inc;
using nvm::RetentionPolicy;

int
main(int argc, char **argv)
{
    const int profile = argc > 1 ? std::atoi(argv[1]) : 2;

    trace::TraceGenerator gen(trace::paperProfile(profile), 11);
    const trace::PowerTrace power = gen.generate(50000);
    const trace::OutageStats outages = trace::analyzeOutages(power);

    std::printf("%s: %zu outages, mean %.1f x0.1ms, longest %.0f\n",
                power.name().c_str(), outages.count(),
                outages.meanDurationTenthMs(),
                outages.maxDurationTenthMs());

    // Device-level view: per-bit write energy and the fraction of the
    // trace's outages each bit's shaped retention survives.
    const nvm::RetentionEnergyTable energy_table;
    for (RetentionPolicy policy :
         {RetentionPolicy::linear, RetentionPolicy::log,
          RetentionPolicy::parabola}) {
        util::Table t(util::format(
            "%s policy — device view", nvm::policyName(policy).c_str()));
        t.setHeader({"bit", "retention (0.1ms)", "write energy (fJ)",
                     "outages survived"});
        for (int b = 8; b >= 1; --b) {
            t.addRow({util::Table::integer(b),
                      util::Table::num(
                          nvm::retentionTenthMs(policy, b), 0),
                      util::Table::num(
                          energy_table.bitEnergyFj(policy, b), 1),
                      util::Table::num(
                          100.0 * outages.survivalFraction(
                                      nvm::retentionTenthMs(policy, b)),
                          1) +
                          " %"});
        }
        t.print();
    }

    // System-level view: run the device under each policy.
    util::Table result("system view (median kernel)");
    result.setHeader({"policy", "backup energy/word", "FP", "backups",
                      "PSNR (dB)"});
    for (RetentionPolicy policy :
         {RetentionPolicy::full, RetentionPolicy::linear,
          RetentionPolicy::log, RetentionPolicy::parabola}) {
        sim::SimConfig cfg;
        cfg.bits.mode = approx::ApproxMode::dynamic;
        cfg.bits.min_bits = 4;
        cfg.controller.backup_policy = policy;
        cfg.income_scale = 2.5; // backup-dominated regime
        sim::SystemSimulator s(kernels::makeKernel("median"), &power,
                               cfg);
        const auto r = s.run();
        result.addRow(
            {nvm::policyName(policy),
             util::Table::num(energy_table.wordEnergyFj(policy), 0) +
                 " fJ",
             util::Table::integer(
                 static_cast<long long>(r.forward_progress)),
             util::Table::integer(static_cast<long long>(r.backups)),
             r.frames_scored ? util::Table::num(r.mean_psnr, 1)
                             : "n/a"});
    }
    result.print();

    const bool high_power = profile == 1 || profile == 4;
    std::printf("paper guidance (Sec. 8.6): use %s here — %s\n",
                high_power ? "linear" : "parabola",
                high_power
                    ? "average power is expected to be high (profiles "
                      "1, 4)"
                    : "average power is low (profiles 2, 3, 5)");

    // And the automated version: the Sec. 8.6 lookup-table advisor fed
    // with the sampled power.
    core::PolicyAdvisor advisor;
    advisor.addTrace(power);
    const auto advice = advisor.recommend(/*quality_sensitive=*/false);
    std::printf("PolicyAdvisor agrees: %s backup, minbits %d, "
                "%d recompute pass(es) — %s\n",
                nvm::policyName(advice.backup).c_str(), advice.min_bits,
                advice.recompute_times, advice.rationale.c_str());
    return 0;
}
