; Annotated-assembly demo of the paper's Sec. 5 programming model:
; a per-frame byte-inversion "kernel" with the incidental pragmas in
; place. Assemble and run it with:
;
;   nvpsim asm examples/programs/incidental_demo.s --run
;
; Memory layout: a 4-slot input ring of 64-byte frames at 0x400 and the
; matching output ring at 0x600.

.region src 0x400 256
.region out 0x600 256

#pragma ac incidental(src, 2, 8, linear)
#pragma ac incidental_recover_from(r15)
#pragma ac recompute(out, 6)
#pragma ac assemble(out, higherbits)

        acen 1
        acset 0x0006        ; r1, r2 hold approximable pixel data
        ldi r15, 0          ; frame induction variable
frame_loop:
        markrp r15, 0x0800  ; resume point; match on r11
        andi r13, r15, 3    ; ring slot = frame % 4
        slli r13, r13, 6    ; * 64 bytes
        ldi r10, 0x400
        add r14, r13, r10   ; input slot base
        ldi r10, 0x600
        add r13, r13, r10   ; output slot base
        ldi r11, 0
pixel_loop:
        add r10, r14, r11
        ld8 r1, 0(r10)
        ldi r2, 255
        sub r1, r2, r1      ; invert
        add r10, r13, r11
        st8 r1, 0(r10)
        addi r11, r11, 1
        ldi r10, 64
        blt r11, r10, pixel_loop
        addi r15, r15, 1
        ldi r10, 4          ; stop after four frames when run standalone
        blt r15, r10, frame_loop
        halt
