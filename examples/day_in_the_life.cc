/**
 * @file
 * Day-in-the-life scenario: the watch harvester's income varies with the
 * wearer's activity (Fig. 2's "daily life use"). A composed schedule —
 * commute walks, desk stillness, errands — drives the incidental NVP
 * through feast and famine, and the per-activity report shows where the
 * forward progress and the completed frames actually come from.
 *
 *   ./day_in_the_life [seconds] [kernel]
 */

#include <cstdio>
#include <cstdlib>

#include "kernels/kernel.h"
#include "sim/system_sim.h"
#include "trace/outage_stats.h"
#include "trace/trace_generator.h"
#include "util/table.h"

using namespace inc;

int
main(int argc, char **argv)
{
    const double seconds = argc > 1 ? std::atof(argv[1]) : 30.0;
    const std::string kernel_name = argc > 2 ? argv[2] : "susan.edges";

    const auto schedule = trace::typicalDay(seconds);
    const trace::PowerTrace day =
        trace::composeSchedule(schedule, 99, "a day on the wrist");

    std::printf("%s: %.0f s, mean %.1f uW, %.1f uJ harvestable\n",
                day.name().c_str(), day.durationSec(), day.meanPower(),
                day.totalEnergyUj());

    // Per-activity income breakdown.
    util::Table plan("schedule");
    plan.setHeader({"activity", "profile", "seconds", "mean uW",
                    "emergencies"});
    std::size_t cursor = 0;
    for (const auto &segment : schedule) {
        const auto n = static_cast<std::size_t>(segment.seconds * 1e4);
        std::vector<double> part(
            day.samples().begin() + static_cast<long>(cursor),
            day.samples().begin() + static_cast<long>(cursor + n));
        const trace::PowerTrace window(std::move(part),
                                       segment.activity);
        const auto outages = trace::analyzeOutages(window);
        plan.addRow({segment.activity,
                     util::Table::integer(segment.profile),
                     util::Table::num(segment.seconds, 0),
                     util::Table::num(window.meanPower(), 1),
                     util::Table::integer(
                         static_cast<long long>(outages.count()))});
        cursor += n;
    }
    plan.print();

    sim::SimConfig cfg;
    cfg.bits.mode = approx::ApproxMode::dynamic;
    cfg.bits.min_bits = 3;
    cfg.controller.backup_policy = nvm::RetentionPolicy::linear;
    cfg.frame_period_factor = 0.5;
    sim::SystemSimulator sim(kernels::makeKernel(kernel_name), &day,
                             cfg);
    const auto r = sim.run();

    util::Table out("the device's day (" + kernel_name + ")");
    out.setHeader({"metric", "value"});
    out.addRow({"forward progress",
                util::Table::integer(
                    static_cast<long long>(r.forward_progress))});
    out.addRow({"system-on time",
                util::Table::num(100.0 * r.on_time_fraction, 1) + " %"});
    out.addRow({"power failures survived",
                util::Table::integer(
                    static_cast<long long>(r.backups))});
    out.addRow({"frames captured / completed",
                util::Table::integer(static_cast<long long>(
                    r.frames_captured)) +
                    " / " +
                    util::Table::integer(static_cast<long long>(
                        r.controller.frames_completed))});
    out.addRow({"of which via incidental lanes",
                util::Table::integer(static_cast<long long>(
                    r.controller.retirements))});
    if (r.frames_scored > 0) {
        out.addRow({"mean output PSNR",
                    util::Table::num(r.mean_psnr, 1) + " dB"});
        out.addRow({"mean data age at completion",
                    util::Table::num(r.mean_completion_age / 10.0, 0) +
                        " ms"});
    }
    out.print();
    return 0;
}
